#!/usr/bin/env python
"""Variation-aware scheduling on the 4-core CMP.

With per-core EVAL adaptation, each core of a chip reaches a *different*
frequency for a given application — its variation map decides which
subsystem binds.  A scheduler that knows each (application, core)
performance can therefore beat a variation-oblivious assignment for free.

This example adapts four applications on all four cores of a chip,
prints the resulting performance matrix, and solves the assignment
problem exactly.

Run:  python examples/variation_scheduling.py
"""

from __future__ import annotations

from repro import (
    TS_ASV,
    VariationModel,
    measure_workload,
    optimize_phase,
    spec2000_like_suite,
)
from repro.chip import CMP, schedule_applications
from repro.microarch import DEFAULT_CORE_CONFIG


def main() -> None:
    chip = VariationModel().population(1, seed=13)[0]
    cmp_chip = CMP.from_chip(chip)
    apps = spec2000_like_suite()[:4]
    measurements = [measure_workload(w, DEFAULT_CORE_CONFIG) for w in apps]

    cache = {}

    def evaluate(core, app_index):
        key = (core.core_index, app_index)
        if key not in cache:
            result = optimize_phase(core, TS_ASV, measurements[app_index])
            cache[key] = result.performance_ips
        return cache[key]

    result = schedule_applications(cmp_chip, evaluate)

    print("Per-(application, core) performance under TS+ASV (G-instr/s):\n")
    header = "app        " + "".join(f"  core{c}" for c in range(4))
    print(header)
    for a, app in enumerate(apps):
        row = "".join(
            f"  {result.per_pair_performance[(a, c)] / 1e9:5.2f}"
            for c in range(4)
        )
        print(f"{app.name:10s}{row}")

    print("\nOptimal assignment (app -> core):",
          {apps[a].name: f"core{c}" for a, c in enumerate(result.assignment)})
    print(f"Throughput: {result.throughput / 1e9:.2f} G-instr/s vs naive "
          f"{result.naive_throughput / 1e9:.2f} "
          f"(+{100 * result.gain:.1f}%)")
    print("\nEven a single chip's within-die variation is worth scheduling "
          "around — a follow-on the paper's conclusions anticipate.")


if __name__ == "__main__":
    main()
