#!/usr/bin/env python
"""Fuzzy controller vs Exhaustive search: accuracy and speed.

Trains the per-subsystem fuzzy controllers (Appendix A) against the
Exhaustive Freq/Power oracle, then compares their selections and runtime
on fresh chips — the Section 6.3 / Table 2 study in miniature.

Run:  python examples/fuzzy_vs_exhaustive.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import TS_ASV, VariationModel, build_core
from repro.core import AdaptationMode, optimize_phase
from repro.microarch import DEFAULT_CORE_CONFIG, measure_workload, spec2000_like_suite
from repro.ml import train_controller_bank


def main() -> None:
    chips = VariationModel().population(6, seed=21)
    template = build_core(chips[0], 0)
    spec = TS_ASV.optimization_spec(template.n_subsystems, template.calib)

    print("Training fuzzy-controller bank (Exhaustive-labelled examples)...")
    t0 = time.perf_counter()
    bank = train_controller_bank(template, spec, n_examples=4000, epochs=2)
    print(f"  trained {len(bank.freq_fcs)} Freq FCs + "
          f"{len(bank.vdd_fcs)} Vdd FCs in {time.perf_counter() - t0:.1f} s")
    rmse = 1e3 * np.mean(list(bank.freq_rmse.values()))
    print(f"  mean Freq-FC training RMSE: {rmse:.0f} MHz "
          "[paper Table 2: 135-450 MHz]\n")

    meas = measure_workload(spec2000_like_suite()[0], DEFAULT_CORE_CONFIG)
    print(f"{'chip':>4s} {'Exh f_rel':>10s} {'Fuzzy f_rel':>12s} "
          f"{'gap':>6s} {'Exh ms':>7s} {'Fuzzy ms':>9s}")
    for i, chip in enumerate(chips[1:], start=1):
        core = build_core(chip, 0)
        t0 = time.perf_counter()
        exact = optimize_phase(core, TS_ASV, meas)
        t_exh = 1e3 * (time.perf_counter() - t0)
        t0 = time.perf_counter()
        fuzzy = optimize_phase(
            core, TS_ASV, meas, mode=AdaptationMode.FUZZY_DYN, bank=bank
        )
        t_fz = 1e3 * (time.perf_counter() - t0)
        gap = fuzzy.f_core / exact.f_core - 1.0
        print(f"{i:4d} {exact.f_core / 4e9:10.3f} {fuzzy.f_core / 4e9:12.3f} "
              f"{100 * gap:5.1f}% {t_exh:7.1f} {t_fz:9.1f}")

    print("\nThe fuzzy controller reaches within a few percent of the "
          "Exhaustive oracle (the retuning cycles absorb the residue), "
          "which is why the paper deploys it on-line.")


if __name__ == "__main__":
    main()
