#!/usr/bin/env python
"""Phase-driven adaptation: the Figure 6 runtime in action.

Generates a stream of program phases for a swim-like FP application,
feeds their basic-block vectors to the Sherwood-style phase detector, and
executes the EVAL runtime: the controller runs once per *new* phase,
recurring phases reuse their saved configuration, and every invocation is
classified into the Figure 13 outcome classes.

Run:  python examples/phase_adaptation.py
"""

from __future__ import annotations

from repro import TS_ASV, VariationModel, build_core, spec2000_like_suite
from repro.core import run_timeline
from repro.microarch import generate_phase_stream


def main() -> None:
    core = build_core(VariationModel().population(1, seed=7)[0], 0)
    workload = spec2000_like_suite()[5]  # swim-like, two phase kinds
    stream = generate_phase_stream(workload, total_ms=2000, seed=3)

    print(f"Executing {workload.name}: {len(stream)} stable phases "
          f"({sum(p.duration_ms for p in stream):.0f} ms total)\n")
    result = run_timeline(core, TS_ASV, stream)

    print(f"{'phase':12s} {'ms':>6s} {'detector':>8s} {'config':>10s} "
          f"{'f_rel':>6s}")
    for event in result.events:
        source = "reused" if event.reused_saved_config else "controller"
        print(f"{event.phase_name:12s} {event.duration_ms:6.0f} "
              f"#{event.detector_phase_id:<7d} {source:>10s} "
              f"{event.f_rel:6.3f}")

    print(f"\nController executions: {result.controller_runs} "
          f"(saved-config reuse: {100 * result.reuse_fraction:.0f}%)")
    print(f"Adaptation overhead: {100 * result.mean_overhead_fraction:.4f}% "
          "of execution time [paper: negligible — controller runs ~6 us "
          "per ~120 ms phase]")
    print(f"Duration-weighted performance vs 4 GHz nominal: "
          f"{result.mean_perf_rel():.3f}")


if __name__ == "__main__":
    main()
