#!/usr/bin/env python
"""Quickstart: adapt one variation-afflicted core with full EVAL.

Builds one chip from the Monte-Carlo variation model, measures a
SPEC-2000-like workload on the pipeline model, and runs high-dimensional
dynamic adaptation (TS + ASV + queue resizing + FU replication) —
printing the chosen operating point next to the Baseline and NoVar
reference points.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BASELINE,
    DEFAULT_CALIBRATION,
    TS_ASV_Q_FU,
    TechniqueState,
    VariationModel,
    build_core,
    measure_workload,
    optimize_phase,
    spec2000_like_suite,
)
from repro.microarch import DEFAULT_CORE_CONFIG


def main() -> None:
    calib = DEFAULT_CALIBRATION

    # 1. Manufacture a chip: draw systematic Vt/Leff maps, build core 0.
    chip = VariationModel().population(1, seed=42)[0]
    core = build_core(chip, core_index=0)
    print("Chip 0, core 0 — per-subsystem slowdown (delay factor):")
    factors = core.delay_factor(1.0, 0.0, calib.t_design)
    for name, factor in zip(core.names, factors):
        bar = "#" * int((factor - 0.8) * 50)
        print(f"  {name:11s} {factor:6.3f} {bar}")

    # 2. Measure a workload phase (the controller's sensed inputs).
    workload = spec2000_like_suite()[0]  # gzip-like integer code
    env = TS_ASV_Q_FU
    base_cfg = TechniqueState(domain=workload.domain).core_config(
        DEFAULT_CORE_CONFIG, replication_built=env.fu
    )
    meas_full = measure_workload(workload, base_cfg)
    meas_resized = measure_workload(
        workload, base_cfg.with_resized_queue(workload.domain)
    )
    print(f"\nWorkload {workload.name}: CPIcomp={meas_full.cpi_comp:.2f}, "
          f"L2 misses/inst={meas_full.l2_miss_rate:.4f}")

    # 3. Baseline: no checker — the chip must run error-free.
    baseline = optimize_phase(core, BASELINE, meas_full)
    print(f"\nBaseline:     {baseline.f_core / 1e9:.2f} GHz "
          f"({baseline.f_core / calib.f_nominal:.3f}x NoVar), "
          f"{baseline.state.total_power:.1f} W")

    # 4. Full EVAL: tolerate errors, reshape with per-subsystem ASV,
    #    resize the queue / pick the FU replica, check every constraint.
    result = optimize_phase(core, env, meas_full, meas_resized)
    technique = result.config.technique
    print(f"EVAL (Q+FU):  {result.f_core / 1e9:.2f} GHz "
          f"({result.f_core / calib.f_nominal:.3f}x NoVar), "
          f"{result.state.total_power:.1f} W")
    print(f"  outcome: {result.outcome.value}; "
          f"queue={'full' if technique.queue_full else '3/4'}; "
          f"FU={'low-slope' if technique.lowslope else 'normal'}")
    print(f"  error rate: {result.state.pe_total:.2e} err/inst "
          f"(budget {calib.pe_max:.0e}); "
          f"hottest subsystem: {result.state.max_temperature - 273.15:.1f} C")
    print("  per-subsystem Vdd (V):",
          np.array2string(result.config.vdd, precision=2))

    speedup = result.f_core / baseline.f_core
    print(f"\nEVAL runs this chip {100 * (speedup - 1):.0f}% faster than "
          "its worst-case-safe Baseline.")


if __name__ == "__main__":
    main()
