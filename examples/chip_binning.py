#!/usr/bin/env python
"""Chip binning: what EVAL does to a manufacturing frequency distribution.

The paper's economic argument (Section 1) is that tolerating
variation-induced errors makes a *population* of chips more valuable:
instead of binning every die at its worst-case-safe frequency, EVAL
recovers most of the variation loss on every die.

This example draws a population of chips, bins each one under the
Baseline rules and under EVAL (TS+ASV+Q), and prints the two frequency
histograms side by side.

Run:  python examples/chip_binning.py [n_chips]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    BASELINE,
    DEFAULT_CALIBRATION,
    TechniqueState,
    VariationModel,
    build_core,
    measure_workload,
    optimize_phase,
    spec2000_like_suite,
)
from repro.core import TS_ASV_Q
from repro.microarch import DEFAULT_CORE_CONFIG


def bin_population(n_chips: int = 16):
    calib = DEFAULT_CALIBRATION
    workload = spec2000_like_suite()[1]  # gcc-like
    meas = measure_workload(workload, DEFAULT_CORE_CONFIG)
    meas_resized = measure_workload(
        workload, DEFAULT_CORE_CONFIG.with_resized_queue(workload.domain)
    )

    chips = VariationModel().population(n_chips, seed=11)
    baseline_bins, eval_bins = [], []
    for chip in chips:
        core = build_core(chip, 0)
        baseline_bins.append(
            optimize_phase(core, BASELINE, meas).f_core / calib.f_nominal
        )
        eval_bins.append(
            optimize_phase(core, TS_ASV_Q, meas, meas_resized).f_core
            / calib.f_nominal
        )
    return np.array(baseline_bins), np.array(eval_bins)


def histogram(title: str, values: np.ndarray) -> None:
    print(f"\n{title}  (mean {values.mean():.3f}, "
          f"min {values.min():.3f}, max {values.max():.3f})")
    edges = np.arange(0.6, 1.35, 0.05)
    counts, _ = np.histogram(values, bins=edges)
    for lo, count in zip(edges[:-1], counts):
        print(f"  {lo:4.2f}-{lo + 0.05:4.2f}x | {'#' * count}{count and '' or ''}")


def main() -> None:
    n_chips = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    baseline, adaptive = bin_population(n_chips)
    histogram("Baseline bins (worst-case-safe frequency, x NoVar)", baseline)
    histogram("EVAL TS+ASV+Q bins (x NoVar)", adaptive)
    recovered = adaptive.mean() / baseline.mean() - 1.0
    print(f"\nEVAL lifts the average bin by {100 * recovered:.0f}% "
          "across the population [paper: +44% for TS+ASV+Q dyn].")


if __name__ == "__main__":
    main()
