"""VARIUS-style variation model: correlogram, grid, maps, populations."""

import numpy as np
import pytest

from repro import obs
from repro.variation import (
    DEFAULT_JITTER,
    ChipSample,
    DieGrid,
    VariationModel,
    VariationParams,
    clear_factor_memo,
    correlated_normal_factor,
    correlation_matrix,
    factor_key_data,
    get_factor,
    memo_size,
    prime_factor,
    set_store,
    spherical_correlation,
)


class TestSphericalCorrelation:
    def test_unity_at_zero_distance(self):
        assert spherical_correlation(0.0, 0.5) == pytest.approx(1.0)

    def test_zero_at_and_beyond_range(self):
        assert spherical_correlation(0.5, 0.5) == pytest.approx(0.0)
        assert spherical_correlation(2.0, 0.5) == pytest.approx(0.0)

    def test_monotone_decreasing(self):
        r = np.linspace(0.0, 0.5, 50)
        rho = spherical_correlation(r, 0.5)
        assert np.all(np.diff(rho) <= 1e-12)

    def test_rejects_bad_phi(self):
        with pytest.raises(ValueError):
            spherical_correlation(0.1, 0.0)

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            spherical_correlation(-0.1, 0.5)

    def test_correlation_matrix_is_symmetric_with_unit_diagonal(self):
        points = np.random.default_rng(0).random((10, 2))
        corr = correlation_matrix(points, 0.5)
        assert np.allclose(corr, corr.T)
        assert np.allclose(np.diag(corr), 1.0)

    def test_factor_reproduces_matrix(self):
        points = np.random.default_rng(1).random((15, 2))
        corr = correlation_matrix(points, 0.5)
        factor = correlated_normal_factor(points, 0.5)
        assert np.allclose(factor @ factor.T, corr, atol=1e-6)


class TestDieGrid:
    def test_cell_centers_shape_and_bounds(self):
        grid = DieGrid(nx=5, ny=4)
        centers = grid.cell_centers()
        assert centers.shape == (20, 2)
        assert centers.min() > 0.0 and centers.max() < 1.0

    def test_cell_index_at_corners(self):
        grid = DieGrid(nx=4, ny=4)
        assert grid.cell_index_at(0.01, 0.01) == 0
        assert grid.cell_index_at(0.99, 0.99) == 15

    def test_cell_index_rejects_outside(self):
        with pytest.raises(ValueError):
            DieGrid().cell_index_at(1.5, 0.5)

    def test_cells_in_rect_returns_inside_cells(self):
        grid = DieGrid(nx=10, ny=10)
        cells = grid.cells_in_rect(0.0, 0.0, 0.5, 0.5)
        assert len(cells) == 25

    def test_cells_in_rect_tiny_rectangle_gets_one_cell(self):
        grid = DieGrid(nx=4, ny=4)
        cells = grid.cells_in_rect(0.26, 0.26, 0.27, 0.27)
        assert len(cells) == 1

    def test_cells_in_rect_rejects_degenerate(self):
        with pytest.raises(ValueError):
            DieGrid().cells_in_rect(0.5, 0.5, 0.5, 0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            DieGrid(nx=0)


class TestVariationParams:
    def test_figure_7a_defaults(self):
        p = VariationParams()
        assert p.vt_mean == pytest.approx(0.150)
        assert p.vt_sigma_rel == pytest.approx(0.09)
        assert p.leff_sigma_rel == pytest.approx(0.045)  # 0.5 x Vt's
        assert p.phi == pytest.approx(0.5)

    def test_equal_split_of_variance(self):
        p = VariationParams()
        total = np.hypot(p.vt_sigma_sys, p.vt_sigma_ran)
        assert total == pytest.approx(p.vt_mean * p.vt_sigma_rel)
        assert p.vt_sigma_sys == pytest.approx(p.vt_sigma_ran)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            VariationParams(systematic_fraction=1.5)

    def test_rejects_nonpositive_phi(self):
        with pytest.raises(ValueError):
            VariationParams(phi=0.0)


class TestChipSample:
    def test_population_is_reproducible(self, variation_model):
        a = variation_model.population(3, seed=9)
        b = variation_model.population(3, seed=9)
        for x, y in zip(a, b):
            assert np.array_equal(x.vt_sys, y.vt_sys)
            assert np.array_equal(x.leff_sys, y.leff_sys)

    def test_population_chips_differ(self, population):
        assert not np.array_equal(population[0].vt_sys, population[1].vt_sys)

    def test_systematic_sigma_close_to_spec(self, variation_model):
        chips = variation_model.population(40, seed=3)
        values = np.concatenate([c.vt_sys for c in chips])
        expected = variation_model.params.vt_sigma_sys
        assert np.std(values) == pytest.approx(expected, rel=0.1)

    def test_spatial_correlation_decays(self, population):
        chip = population[0]
        grid = chip.grid
        field = chip.vt_sys.reshape(grid.ny, grid.nx)
        # Neighbouring columns should correlate far more than distant ones.
        near = np.corrcoef(field[:, 0], field[:, 1])[0, 1]
        # Average several distant pairs (single-pair estimates are noisy).
        far = np.mean(
            [
                np.corrcoef(field[:, i], field[:, i + grid.nx - 4])[0, 1]
                for i in range(3)
            ]
        )
        assert near > 0.8
        assert near > far + 0.2

    def test_region_stats_ordering(self, population):
        chip = population[0]
        cells = chip.grid.cells_in_rect(0.0, 0.0, 0.4, 0.4)
        stats = chip.region_vt0(cells)
        assert stats.worst_leaky <= stats.mean <= stats.worst_slow

    def test_shape_validation(self):
        grid = DieGrid(nx=3, ny=3)
        with pytest.raises(ValueError):
            ChipSample(
                grid=grid,
                params=VariationParams(),
                vt_sys=np.zeros(5),
                leff_sys=np.zeros(9),
            )

    def test_rejects_nonpositive_leff(self):
        grid = DieGrid(nx=2, ny=2)
        with pytest.raises(ValueError):
            ChipSample(
                grid=grid,
                params=VariationParams(),
                vt_sys=np.zeros(4),
                leff_sys=np.full(4, -1.5),
            )

    def test_vt_leff_independent_by_default(self, variation_model):
        chips = variation_model.population(30, seed=11)
        vt = np.concatenate([c.vt_sys for c in chips])
        leff = np.concatenate([c.leff_sys for c in chips])
        assert abs(np.corrcoef(vt, leff)[0, 1]) < 0.12


def _assert_same_chips(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert np.array_equal(x.vt_sys, y.vt_sys)
        assert np.array_equal(x.leff_sys, y.leff_sys)
        assert x.chip_id == y.chip_id


class TestBatchedSampling:
    """population(batch=True) must reproduce the serial loop bit for bit."""

    GRID = DieGrid(nx=12, ny=10)

    def _model(self, **params):
        return VariationModel(grid=self.GRID, params=VariationParams(**params))

    def test_batched_matches_serial(self):
        model = self._model()
        _assert_same_chips(
            model.population(7, seed=5, batch=True),
            model.population(7, seed=5, batch=False),
        )

    def test_batched_matches_serial_with_d2d(self):
        model = self._model(d2d_sigma_rel=0.08)
        _assert_same_chips(
            model.population(7, seed=5, batch=True),
            model.population(7, seed=5, batch=False),
        )

    def test_batched_matches_serial_with_vt_leff_correlation(self):
        model = self._model(vt_leff_correlation=0.4)
        _assert_same_chips(
            model.population(7, seed=5, batch=True),
            model.population(7, seed=5, batch=False),
        )

    def test_batched_matches_serial_combined(self):
        model = self._model(d2d_sigma_rel=0.05, vt_leff_correlation=-0.3)
        _assert_same_chips(
            model.population(7, seed=5, batch=True),
            model.population(7, seed=5, batch=False),
        )

    def test_single_chip_population(self):
        model = self._model()
        _assert_same_chips(
            model.population(1, seed=2, batch=True),
            model.population(1, seed=2, batch=False),
        )

    def test_batched_matches_serial_on_tiny_grid(self):
        # Small dies are where narrow/wide BLAS kernels most often differ,
        # i.e. where the width-2 panel fallback tends to engage.
        model = VariationModel(grid=DieGrid(nx=6, ny=5))
        _assert_same_chips(
            model.population(5, seed=1, batch=True),
            model.population(5, seed=1, batch=False),
        )

    def test_exactly_one_batch_strategy_counted(self):
        scope = obs.MetricsRegistry()
        with obs.scoped(scope):
            self._model().population(4, seed=0, batch=True)
        counters = scope.to_dict()["counters"]
        # Paired counters: both always present, exactly one taken.
        assert (
            counters["variation.batch.wide"]
            + counters["variation.batch.panel"]
        ) == 1.0

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            self._model().population(0)


class TestFactorMemo:
    GRID = DieGrid(nx=8, ny=8)

    def test_second_lookup_is_a_hit(self):
        clear_factor_memo()
        scope = obs.MetricsRegistry()
        with obs.scoped(scope):
            first = get_factor(self.GRID, 0.5)
            second = get_factor(self.GRID, 0.5)
        assert second is first  # same memoised array, no copy
        counters = scope.to_dict()["counters"]
        assert counters["variation.factor.misses"] == 1.0
        assert counters["variation.factor.hits"] == 1.0
        assert counters["variation.cholesky_seconds"] > 0.0

    def test_memoised_factor_is_read_only(self):
        factor = get_factor(self.GRID, 0.5)
        with pytest.raises(ValueError):
            factor[0, 0] = 99.0

    def test_matches_direct_construction(self):
        expected = correlated_normal_factor(
            self.GRID.cell_centers(), 0.5, jitter=DEFAULT_JITTER
        )
        assert np.array_equal(get_factor(self.GRID, 0.5), expected)

    def test_key_tracks_grid_and_phi(self):
        base = factor_key_data(self.GRID, 0.5)
        assert base == factor_key_data(DieGrid(nx=8, ny=8), 0.5)
        assert base != factor_key_data(DieGrid(nx=8, ny=9), 0.5)
        assert base != factor_key_data(self.GRID, 0.3)
        assert base != factor_key_data(self.GRID, 0.5, jitter=1e-6)

    def test_distinct_keys_get_distinct_entries(self):
        clear_factor_memo()
        get_factor(self.GRID, 0.5)
        get_factor(self.GRID, 0.3)  # phi change: new factorisation
        get_factor(DieGrid(nx=6, ny=6), 0.5)  # grid change: new factorisation
        assert memo_size() == 3
        clear_factor_memo()
        assert memo_size() == 0

    def test_prime_factor_seeds_memo(self):
        clear_factor_memo()
        factor = correlated_normal_factor(
            self.GRID.cell_centers(), 0.5, jitter=DEFAULT_JITTER
        )
        primed = prime_factor(factor.copy(), self.GRID, 0.5)
        assert memo_size() == 1
        assert not primed.flags.writeable
        # The memo now serves the primed array without factorising.
        assert get_factor(self.GRID, 0.5) is primed
        # An existing entry wins over later priming attempts.
        assert prime_factor(np.zeros_like(factor), self.GRID, 0.5) is primed
        assert np.array_equal(get_factor(self.GRID, 0.5), factor)

    def test_store_roundtrip_and_cold_process_load(self, tmp_path):
        from repro.exps.cache import ExperimentCache, FactorStore

        cache = ExperimentCache(tmp_path)
        set_store(FactorStore(cache))
        try:
            clear_factor_memo()
            saved = get_factor(self.GRID, 0.5)  # store miss: saves artifact
            assert cache.stats.misses["factor"] == 1
            clear_factor_memo()  # simulate a cold process, warm disk
            loaded = get_factor(self.GRID, 0.5)
            assert cache.stats.hits["factor"] == 1
            assert np.array_equal(loaded, saved)
            assert not loaded.flags.writeable
        finally:
            set_store(None)
            clear_factor_memo()

    def test_population_shares_one_factorisation(self):
        clear_factor_memo()
        model = VariationModel(grid=self.GRID)
        scope = obs.MetricsRegistry()
        with obs.scoped(scope):
            model.population(3, seed=0)
            VariationModel(grid=self.GRID).population(3, seed=1)
        counters = scope.to_dict()["counters"]
        # Two models, two populations — one Cholesky.
        assert counters["variation.factor.misses"] == 1.0


class TestDieToDie:
    def test_d2d_widens_chip_mean_spread(self, variation_model):
        from repro.variation import VariationModel, VariationParams

        wid_only = variation_model.population(30, seed=2)
        d2d_model = VariationModel(
            grid=variation_model.grid,
            params=VariationParams(d2d_sigma_rel=0.08),
        )
        with_d2d = d2d_model.population(30, seed=2)
        spread_wid = np.std([c.vt_sys.mean() for c in wid_only])
        spread_d2d = np.std([c.vt_sys.mean() for c in with_d2d])
        assert spread_d2d > 2 * spread_wid

    def test_d2d_defaults_off(self):
        from repro.variation import VariationParams

        assert VariationParams().d2d_sigma_rel == 0.0

    def test_d2d_validation(self):
        from repro.variation import VariationParams

        with pytest.raises(ValueError):
            VariationParams(d2d_sigma_rel=-0.1)
