"""The `python -m repro.exps` command-line interface."""

import json

import pytest

from repro.exps.__main__ import main


class TestCLI:
    def test_area_target(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "10.6" in out and "Checker" in out

    def test_fig1_target(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "T_nom" in out

    def test_multiple_targets(self, capsys):
        assert main(["area", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "=== area ===" in out and "=== fig2 ===" in out

    def test_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_rejects_bad_jobs(self, capsys):
        with pytest.raises(SystemExit):
            main(["area", "--jobs", "0"])


class TestCLISettings:
    def test_metrics_out_writes_valid_json(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["area", "fig1", "--metrics-out", str(path)]) == 0
        assert f"metrics written to {path}" in capsys.readouterr().out
        document = json.loads(path.read_text())
        assert set(document) == {"counters", "gauges", "histograms"}

    def test_env_provides_defaults(self, tmp_path, capsys, monkeypatch):
        path = tmp_path / "metrics.json"
        monkeypatch.setenv("EVAL_REPRO_METRICS_OUT", str(path))
        assert main(["area"]) == 0
        capsys.readouterr()
        assert json.loads(path.read_text()) is not None

    def test_flag_beats_env(self, tmp_path, capsys, monkeypatch):
        env_path = tmp_path / "from_env.json"
        flag_path = tmp_path / "from_flag.json"
        monkeypatch.setenv("EVAL_REPRO_METRICS_OUT", str(env_path))
        assert main(["area", "--metrics-out", str(flag_path)]) == 0
        capsys.readouterr()
        assert flag_path.exists() and not env_path.exists()


class TestVersion:
    def test_exps_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_serve_version(self, capsys):
        from repro import __version__
        from repro.serve.__main__ import main as serve_main

        with pytest.raises(SystemExit) as excinfo:
            serve_main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out
