"""The `python -m repro.exps` command-line interface."""

import json

import pytest

from repro.exps.__main__ import main


class TestCLI:
    def test_area_target(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "10.6" in out and "Checker" in out

    def test_fig1_target(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "T_nom" in out

    def test_multiple_targets(self, capsys):
        assert main(["area", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "=== area ===" in out and "=== fig2 ===" in out

    def test_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_rejects_bad_jobs(self, capsys):
        with pytest.raises(SystemExit):
            main(["area", "--jobs", "0"])


class TestCLISettings:
    def test_metrics_out_writes_valid_json(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["area", "fig1", "--metrics-out", str(path)]) == 0
        assert f"metrics written to {path}" in capsys.readouterr().out
        document = json.loads(path.read_text())
        assert set(document) == {"counters", "gauges", "histograms"}

    def test_env_provides_defaults(self, tmp_path, capsys, monkeypatch):
        path = tmp_path / "metrics.json"
        monkeypatch.setenv("EVAL_REPRO_METRICS_OUT", str(path))
        assert main(["area"]) == 0
        capsys.readouterr()
        assert json.loads(path.read_text()) is not None

    def test_flag_beats_env(self, tmp_path, capsys, monkeypatch):
        env_path = tmp_path / "from_env.json"
        flag_path = tmp_path / "from_flag.json"
        monkeypatch.setenv("EVAL_REPRO_METRICS_OUT", str(env_path))
        assert main(["area", "--metrics-out", str(flag_path)]) == 0
        capsys.readouterr()
        assert flag_path.exists() and not env_path.exists()


@pytest.fixture(scope="module")
def dse_spec_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("dse-cli") / "sweep.json"
    path.write_text(json.dumps({
        "base": {"chips": 1, "n_instructions": 1500, "fc_examples": 300},
        "axes": [
            {"param": "environment", "values": ["TS", "TS+ASV"]},
        ],
    }))
    return str(path)


@pytest.fixture(scope="module")
def dse_run_dir(dse_spec_path, tmp_path_factory):
    """One tiny `dse run` shared by the run/report assertions."""
    out = tmp_path_factory.mktemp("dse-out")
    assert main([
        "dse", "run", "--spec", dse_spec_path, "--out", str(out),
        "--cache-dir", str(tmp_path_factory.mktemp("dse-cli-cache")),
        "--metrics-out", str(out / "metrics.json"),
    ]) == 0
    return out


class TestDseCLI:
    def test_expand_table(self, dse_spec_path, capsys):
        assert main(["dse", "expand", "--spec", dse_spec_path]) == 0
        out = capsys.readouterr().out
        assert "2 points" in out
        assert "TS+ASV" in out

    def test_expand_json(self, dse_spec_path, capsys):
        assert main(["dse", "expand", "--spec", dse_spec_path, "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        points = [json.loads(line) for line in lines]
        assert len(points) == 2
        assert points[0]["index"] == 0
        assert points[0]["params"]["environment"] == "TS"
        assert len(points[0]["point"]) == 16

    def test_run_writes_artifacts(self, dse_run_dir):
        for name in ("results.csv", "results.json", "pareto.csv",
                     "report.json"):
            assert (dse_run_dir / name).exists()
        metrics = json.loads((dse_run_dir / "metrics.json").read_text())
        assert metrics["counters"]["dse.points"] >= 2

    def test_report_reanalyses(self, dse_run_dir, capsys):
        assert main([
            "dse", "report", "--results", str(dse_run_dir),
            "--objective", "f_rel:max", "--objective", "power:min",
        ]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "f_rel:max power:min" in out

    def test_run_rejects_bad_objective(self, dse_spec_path, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "dse", "run", "--spec", dse_spec_path,
                "--out", str(tmp_path), "--objective", ":max",
            ])


class TestVersion:
    def test_exps_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_serve_version(self, capsys):
        from repro import __version__
        from repro.serve.__main__ import main as serve_main

        with pytest.raises(SystemExit) as excinfo:
            serve_main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out
