"""The `python -m repro.exps` command-line interface."""

import pytest

from repro.exps.__main__ import main


class TestCLI:
    def test_area_target(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "10.6" in out and "Checker" in out

    def test_fig1_target(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "T_nom" in out

    def test_multiple_targets(self, capsys):
        assert main(["area", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "=== area ===" in out and "=== fig2 ===" in out

    def test_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
