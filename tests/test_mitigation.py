"""Mitigation techniques: tilt, shift, reshape, decisions, area."""

import numpy as np
import pytest

from repro.calibration import DEFAULT_CALIBRATION
from repro.microarch import DEFAULT_CORE_CONFIG
from repro.mitigation import (
    TechniqueState,
    area_budget,
    choose_fu_implementation,
    choose_queue_size,
    reshape_curve,
    technique_choices,
)
from repro.timing import PerfParams


class TestTechniqueState:
    def test_queue_and_fu_names_by_domain(self):
        int_state = TechniqueState(domain="int")
        fp_state = TechniqueState(domain="fp")
        assert int_state.queue_name == "IntQ" and int_state.fu_name == "IntALU"
        assert fp_state.queue_name == "FPQ" and fp_state.fu_name == "FPUnit"

    def test_rejects_unknown_domain(self):
        with pytest.raises(ValueError):
            TechniqueState(domain="vector")

    def test_identity_modifiers(self, core):
        mods = TechniqueState().stage_modifiers(core)
        assert np.all(mods.delay_scale == 1.0)
        assert np.all(mods.sigma_scale == 1.0)

    def test_resize_modifies_only_the_queue(self, core):
        state = TechniqueState(queue_full=False, domain="int")
        mods = state.stage_modifiers(core)
        idx = core.floorplan.index_of("IntQ")
        assert mods.delay_scale[idx] == pytest.approx(
            DEFAULT_CALIBRATION.queue_resize_delay_factor
        )
        others = np.delete(mods.delay_scale, idx)
        assert np.all(others == 1.0)

    def test_lowslope_modifies_only_the_fu(self, core):
        state = TechniqueState(lowslope=True, domain="fp")
        mods = state.stage_modifiers(core)
        idx = core.floorplan.index_of("FPUnit")
        assert mods.sigma_scale[idx] == pytest.approx(
            DEFAULT_CALIBRATION.lowslope_sigma_factor
        )

    def test_power_factors(self, core):
        state = TechniqueState(queue_full=False, lowslope=True, domain="int")
        factors = state.power_factors(core)
        fp = core.floorplan
        assert factors[fp.index_of("IntALU")] == pytest.approx(
            DEFAULT_CALIBRATION.lowslope_power_factor
        )
        assert factors[fp.index_of("IntQ")] == pytest.approx(
            DEFAULT_CALIBRATION.queue_resize_power_factor
        )

    def test_core_config_resize_and_replication(self):
        state = TechniqueState(queue_full=False, domain="int")
        cfg = state.core_config(DEFAULT_CORE_CONFIG, replication_built=True)
        assert cfg.extra_exec_stage == 1
        assert cfg.int_queue_size < DEFAULT_CORE_CONFIG.int_queue_size

    def test_replication_stage_present_even_with_normal_fu(self):
        # The extra stage is hardware: it stays whichever replica runs.
        state = TechniqueState(lowslope=False)
        cfg = state.core_config(DEFAULT_CORE_CONFIG, replication_built=True)
        assert cfg.extra_exec_stage == 1

    def test_technique_choices_enumeration(self):
        both = technique_choices(True, True, "int")
        assert len(both) == 4
        neither = technique_choices(False, False, "fp")
        assert len(neither) == 1
        assert neither[0].queue_full and not neither[0].lowslope


class TestFUDecision:
    def test_enable_lowslope_when_fu_is_bottleneck(self):
        d = choose_fu_implementation(3.0e9, 3.4e9, 4.0e9)
        assert d.use_lowslope
        assert d.core_frequency == pytest.approx(3.4e9)

    def test_keep_normal_when_fu_not_critical(self):
        d = choose_fu_implementation(4.5e9, 4.8e9, 4.0e9)
        assert not d.use_lowslope
        assert d.core_frequency == pytest.approx(4.0e9)

    def test_keep_normal_when_replica_does_not_help(self):
        # Thermal inversion: the replica's extra power makes it slower.
        d = choose_fu_implementation(3.0e9, 2.8e9, 4.0e9)
        assert not d.use_lowslope

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            choose_fu_implementation(0.0, 1e9, 1e9)


class TestQueueDecision:
    def make_params(self, cpi):
        return PerfParams.from_calibration(cpi, 0.002)

    def test_resize_wins_when_frequency_gain_dominates(self):
        d = choose_queue_size(
            4.0e9, self.make_params(1.0), 4.5e9, self.make_params(1.02), 1e-4
        )
        assert not d.use_full
        assert d.core_frequency == pytest.approx(4.5e9)

    def test_full_wins_when_cpi_cost_dominates(self):
        d = choose_queue_size(
            4.0e9, self.make_params(1.0), 4.05e9, self.make_params(1.4), 1e-4
        )
        assert d.use_full

    def test_performance_attribute_matches_choice(self):
        d = choose_queue_size(
            4.0e9, self.make_params(1.0), 4.3e9, self.make_params(1.05), 1e-4
        )
        expected = d.perf_resized if not d.use_full else d.perf_full
        assert d.performance == expected


class TestReshape:
    def test_reshape_lowers_pe_at_mid_frequencies(self, core, int_measurement):
        n = core.n_subsystems
        calib = core.calib
        freqs = np.linspace(0.85, 1.0, 12) * calib.f_nominal
        # Boost everything mildly: all stages speed up.
        result = reshape_curve(
            core,
            np.full(n, 1.1),
            np.zeros(n),
            freqs,
            int_measurement.activity,
            int_measurement.rho,
            calib.t_heatsink_max,
        )
        assert np.all(result.pe_after <= result.pe_before + 1e-30)

    def test_reshape_returns_both_delay_sets(self, core, int_measurement):
        n = core.n_subsystems
        calib = core.calib
        freqs = np.linspace(0.9, 1.0, 4) * calib.f_nominal
        result = reshape_curve(
            core, np.full(n, 1.15), np.zeros(n), freqs,
            int_measurement.activity, int_measurement.rho,
            calib.t_heatsink_max,
        )
        assert np.all(result.delays_after.mean < result.delays_before.mean)


class TestAreaBudget:
    def test_reproduces_figure_7d(self):
        budget = area_budget()
        table = budget.as_percent()
        assert table["IntALU replication"] == pytest.approx(0.7)
        assert table["FPAdd/Mul replication"] == pytest.approx(2.5)
        assert table["Checker"] == pytest.approx(7.0)
        assert table["Phase detector"] == pytest.approx(0.3)
        assert table["Sensors"] == pytest.approx(0.1)
        assert table["ASV"] == pytest.approx(0.0)
        assert table["Issue-queue resize"] == pytest.approx(0.0)

    def test_total_is_10_6_percent(self):
        assert 100 * area_budget().total == pytest.approx(10.6, abs=0.05)

    def test_abb_adds_two_percent(self):
        with_abb = area_budget(include_abb=True)
        assert 100 * (with_abb.total - area_budget().total) == pytest.approx(2.0)
