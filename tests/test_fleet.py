"""The worker fleet: artifact stores, wire codecs, registry, end-to-end."""

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro import obs
from repro.config import Settings
from repro.core import NOVAR, TS, AdaptationMode
from repro.exps import ExperimentRunner, RunnerConfig, RunSpec
from repro.exps.cache import (
    ArtifactStore,
    ExperimentCache,
    FactorStore,
    LocalDirStore,
    SharedDirStore,
    build_store,
)
from repro.microarch import spec2000_like_suite
from repro.serve import (
    CampaignService,
    FleetRegistry,
    FleetWorker,
    ProtocolError,
    ServiceClient,
    ServiceDaemon,
    UnknownWorkerError,
    build_cell,
    rows_from_wire,
    rows_to_wire,
    runner_context_from_wire,
    runner_context_to_wire,
    summaries_from_wire,
    unit_from_wire,
    unit_to_wire,
)
from repro.serve.coalesce import UnitTask

#: Same tiny-but-multi-chip scale as test_serve.py: two chips exercise
#: decomposition, and two workers can split the units.
FLEET_CONFIG = RunnerConfig(
    n_chips=2,
    cores_per_chip=1,
    n_instructions=3000,
    fuzzy_examples=300,
    fuzzy_epochs=1,
)


@pytest.fixture()
def runner():
    return ExperimentRunner(FLEET_CONFIG)


@pytest.fixture()
def two_workloads():
    return tuple(spec2000_like_suite()[:2])


@pytest.fixture()
def metrics():
    """An isolated metrics registry so counter asserts see only this test."""
    registry = obs.MetricsRegistry()
    with obs.scoped(registry):
        yield registry


# ----------------------------------------------------------------------
# Artifact stores (the api_redesign core).
# ----------------------------------------------------------------------
class TestArtifactStores:
    def test_local_roundtrip(self, tmp_path):
        store = LocalDirStore(tmp_path)
        assert not store.exists("summaries", "k", ".json")
        assert store.get("summaries", "k", ".json") is None
        store.put("summaries", "k", ".json", b"{}")
        assert store.exists("summaries", "k", ".json")
        assert store.is_complete("summaries", "k", ".json")
        assert store.get("summaries", "k", ".json") == b"{}"
        assert store.delete("summaries", "k", ".json") is True
        assert store.delete("summaries", "k", ".json") is False

    def test_local_put_leaves_no_temp_files(self, tmp_path):
        store = LocalDirStore(tmp_path)
        store.put("measurements", "m1", ".npz", b"data")
        files = sorted(p.name for p in (tmp_path / "measurements").iterdir())
        assert files == ["m1.npz"]

    def test_local_layout_matches_legacy_cache(self, tmp_path):
        # The pluggable backend must keep reading caches written by
        # pre-1.7 ExperimentCache versions: same kind dirs, same names.
        store = LocalDirStore(tmp_path)
        assert store.path_for("summaries", "abc", ".json") == (
            tmp_path / "summaries" / "abc.json"
        )
        assert store.path_for("banks", "b", ".npz") == (
            tmp_path / "banks" / "b.npz"
        )

    def test_shared_incomplete_write_is_invisible(self, tmp_path):
        store = SharedDirStore(tmp_path)
        # Simulate a peer mid-write: data file present, no .done marker.
        path = store.path_for("summaries", "k", ".json")
        path.write_bytes(b"partial")
        assert store.exists("summaries", "k", ".json")
        assert not store.is_complete("summaries", "k", ".json")
        assert store.get("summaries", "k", ".json") is None

    def test_shared_marker_roundtrip(self, tmp_path):
        store = SharedDirStore(tmp_path)
        store.put("summaries", "k", ".json", b"{}")
        assert store.is_complete("summaries", "k", ".json")
        assert store.get("summaries", "k", ".json") == b"{}"
        assert store.delete("summaries", "k", ".json") is True
        assert store.get("summaries", "k", ".json") is None
        assert not store.exists("summaries", "k", ".json")

    def test_build_store_factory(self, tmp_path):
        for backend in ("local", "shared"):
            assert isinstance(build_store(tmp_path, backend), ArtifactStore)
        assert isinstance(build_store(tmp_path, "local"), LocalDirStore)
        assert isinstance(build_store(tmp_path, "shared"), SharedDirStore)
        with pytest.raises(ValueError, match="backend"):
            build_store(tmp_path, "s3")

    def test_cache_takes_exactly_one_of_root_or_store(self, tmp_path):
        with pytest.raises(ValueError):
            ExperimentCache()
        with pytest.raises(ValueError):
            ExperimentCache(tmp_path, store=LocalDirStore(tmp_path))
        assert isinstance(ExperimentCache(tmp_path).store, LocalDirStore)
        shared = ExperimentCache(store=SharedDirStore(tmp_path))
        assert isinstance(shared.store, SharedDirStore)

    def test_path_shim_is_deprecated(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        with pytest.warns(DeprecationWarning):
            path = cache._path("summaries", "k", ".json")
        assert path == tmp_path / "summaries" / "k.json"

    def test_factor_store_accepts_bare_artifact_store(self, tmp_path):
        import numpy as np

        store = FactorStore(SharedDirStore(tmp_path))
        key_data = ("grid", 8, 0.5)
        assert store.load(key_data) is None
        factor = np.eye(3)
        store.save(key_data, factor)
        loaded = store.load(key_data)
        assert loaded is not None and (loaded == factor).all()


class TestLoadGuardedSharedSafety:
    """The satellite fix: only *completed* corrupt artifacts are deleted."""

    def test_completed_corrupt_artifact_heals(self, tmp_path, metrics):
        store = SharedDirStore(tmp_path)
        store.put("summaries", "k", ".json", b"not json at all")
        cache = ExperimentCache(store=store)
        assert cache.load_summary("k") is None
        assert not store.exists("summaries", "k", ".json")
        counters = metrics.to_dict()["counters"]
        assert counters["cache.corrupt"] == 1.0

    def test_inflight_write_is_not_clobbered(self, tmp_path, metrics):
        store = SharedDirStore(tmp_path)
        path = store.path_for("summaries", "k", ".json")
        path.write_bytes(b"partial garbage from a peer mid-write")
        cache = ExperimentCache(store=store)
        assert cache.load_summary("k") is None
        # Crucially: the peer's in-flight bytes are still there.
        assert path.exists()
        counters = metrics.to_dict()["counters"]
        assert counters.get("cache.corrupt", 0.0) == 0.0
        assert counters["cache.pending_writes"] >= 1.0

    def test_local_corrupt_artifact_still_heals(self, tmp_path, metrics):
        # A local store has no markers: exists == complete, so the
        # pre-1.7 self-healing behaviour is unchanged.
        store = LocalDirStore(tmp_path)
        path = store.path_for("summaries", "k", ".json")
        path.write_bytes(b"garbage")
        cache = ExperimentCache(store=store)
        assert cache.load_summary("k") is None
        assert not path.exists()
        assert metrics.to_dict()["counters"]["cache.corrupt"] == 1.0


# ----------------------------------------------------------------------
# Settings plumbing.
# ----------------------------------------------------------------------
class TestFleetSettings:
    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("EVAL_REPRO_WORKER_CONNECT", "10.0.0.2:7571")
        monkeypatch.setenv("EVAL_REPRO_HEARTBEAT_INTERVAL", "0.5")
        monkeypatch.setenv("EVAL_REPRO_LEASE_TIMEOUT", "12.5")
        monkeypatch.setenv("EVAL_REPRO_STORE_BACKEND", "shared")
        settings = Settings.from_env()
        assert settings.worker_connect == "10.0.0.2:7571"
        assert settings.heartbeat_interval == 0.5
        assert settings.lease_timeout == 12.5
        assert settings.store_backend == "shared"

    def test_flag_beats_env(self, monkeypatch):
        import argparse

        monkeypatch.setenv("EVAL_REPRO_STORE_BACKEND", "local")
        monkeypatch.setenv("EVAL_REPRO_HEARTBEAT_INTERVAL", "9.0")
        defaults = Settings.from_env()
        parser = argparse.ArgumentParser()
        Settings.add_fleet_arguments(parser, defaults, role="daemon")
        args = parser.parse_args(
            ["--store-backend", "shared", "--heartbeat-interval", "0.25"]
        )
        settings = Settings.from_args(args, base=defaults)
        assert settings.store_backend == "shared"
        assert settings.heartbeat_interval == 0.25
        assert settings.lease_timeout == defaults.lease_timeout

    def test_validation(self):
        with pytest.raises(ValueError):
            Settings(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            Settings(lease_timeout=-1.0)
        with pytest.raises(ValueError):
            Settings(store_backend="s3")

    def test_role_selects_flags(self):
        import argparse

        defaults = Settings()
        daemon_p = argparse.ArgumentParser()
        Settings.add_fleet_arguments(daemon_p, defaults, role="daemon")
        assert daemon_p.parse_args([]).fleet_only is False
        worker_p = argparse.ArgumentParser()
        Settings.add_fleet_arguments(worker_p, defaults, role="worker")
        assert worker_p.parse_args(["--connect", "h:1"]).connect == "h:1"

    def test_build_cache_uses_backend(self, tmp_path):
        settings = Settings(
            cache_dir=str(tmp_path), store_backend="shared"
        )
        cache = settings.build_cache()
        assert isinstance(cache.store, SharedDirStore)


# ----------------------------------------------------------------------
# Wire codecs (protocol v3).
# ----------------------------------------------------------------------
class TestFleetWireCodecs:
    def test_runner_context_roundtrip(self, runner):
        doc = json.loads(json.dumps(runner_context_to_wire(runner)))
        config, calib, core_config = runner_context_from_wire(doc)
        assert config == runner.config
        assert calib == runner.calib
        assert core_config == runner.core_config

    def test_runner_context_fingerprint_mismatch(self, runner):
        doc = runner_context_to_wire(runner)
        doc["runner_config"]["seed"] = doc["runner_config"]["seed"] + 1
        with pytest.raises(ProtocolError, match="fingerprint"):
            runner_context_from_wire(doc)

    def test_unit_roundtrip(self, two_workloads):
        cell = build_cell("cellkey", TS, AdaptationMode.EXH_DYN,
                          two_workloads, 2, 1)
        doc = json.loads(json.dumps(unit_to_wire(cell, cell.units[1])))
        unit = unit_from_wire(doc)
        assert unit.cell_key == "cellkey"
        assert unit.unit_key == cell.units[1].key
        assert (unit.chip_index, unit.core_index) == (1, 0)
        assert unit.env.name == "TS"
        assert unit.mode is AdaptationMode.EXH_DYN
        assert [w.name for w in unit.workloads] == [
            w.name for w in two_workloads
        ]

    def test_unit_rejects_unknown_workload(self, two_workloads):
        cell = build_cell("k", TS, AdaptationMode.EXH_DYN, two_workloads, 1, 1)
        doc = unit_to_wire(cell, cell.units[0])
        doc["workloads"] = ["no-such-workload"]
        with pytest.raises(ProtocolError, match="unknown workloads"):
            unit_from_wire(doc)

    def test_rows_roundtrip_bit_identical(self, runner, two_workloads):
        rows = runner.run_unit(TS, AdaptationMode.STATIC, 0, 0, two_workloads)
        rebuilt = rows_from_wire(
            json.loads(json.dumps(rows_to_wire(rows)))
        )
        assert rebuilt == rows


# ----------------------------------------------------------------------
# Protocol compat: v1/v2 clients against a v3 daemon.
# ----------------------------------------------------------------------
class TestProtocolCompat:
    @pytest.fixture()
    def daemon(self, runner):
        service = CampaignService(runner, workers=0)
        # start() so stop() has a serve loop to shut down; dispatch()
        # is still exercised directly, no sockets involved.
        daemon = ServiceDaemon(service, address="127.0.0.1:0").start()
        yield daemon
        daemon.stop()

    def test_v2_client_surface_still_works(self, daemon, two_workloads):
        spec = {"environments": ["NoVar"], "modes": ["Exh-Dyn"],
                "workloads": [w.name for w in two_workloads]}
        response = daemon.dispatch({"op": "submit", "v": 2, "spec": spec})
        assert response["ok"] and response["job_id"]
        assert daemon.dispatch({"op": "ping", "v": 2})["ok"]
        assert daemon.dispatch({"op": "ping"})["ok"]  # v1, pre-handshake

    @pytest.mark.parametrize("v", [None, 1, 2])
    def test_fleet_ops_gated_on_v3(self, daemon, v):
        request = {"op": "fleet.register"}
        if v is not None:
            request["v"] = v
        response = daemon.dispatch(request)
        assert not response["ok"]
        assert response["kind"] == "version"
        assert 3 in response["supported"]

    def test_v3_fleet_register_and_unknown_worker(self, daemon):
        response = daemon.dispatch({"op": "fleet.register", "v": 3})
        assert response["ok"]
        assert response["worker_id"]
        assert "fingerprint" in response["context"]
        bad = daemon.dispatch(
            {"op": "fleet.heartbeat", "v": 3, "worker_id": "w-999"}
        )
        assert not bad["ok"] and bad["kind"] == "unknown-worker"


# ----------------------------------------------------------------------
# Registry semantics (no sockets: injected fakes, pinned clocks).
# ----------------------------------------------------------------------
class _Harness:
    """A FleetRegistry wired to an in-memory queue and capture lists."""

    def __init__(self, **kwargs):
        self.queue = []
        self.requeued = []
        self.delivered = []
        self.failed = []
        kwargs.setdefault("heartbeat_interval", 1.0)
        kwargs.setdefault("lease_timeout", 60.0)
        self.registry = FleetRegistry(
            take=self._take,
            requeue=self._requeue,
            claim=lambda item: item[1].rows is None,
            deliver=self._deliver,
            fail=self._fail,
            **kwargs,
        )

    def push(self, unit_key, priority=0):
        unit = UnitTask(0, 0, unit_key)
        self.queue.append((-priority, ("cell", unit)))
        return unit

    def _take(self):
        return self.queue.pop(0) if self.queue else None

    def _requeue(self, neg_priority, item):
        self.requeued.append(item[1].key)
        self.queue.append((neg_priority, item))

    def _deliver(self, item, rows, attempts):
        item[1].rows = rows
        self.delivered.append((item[1].key, attempts))

    def _fail(self, item, error, attempts):
        self.failed.append((item[1].key, str(error), attempts))


class TestFleetRegistry:
    def test_lease_complete_delivers_once(self, metrics):
        h = _Harness()
        h.push("u1")
        wid = h.registry.register({"host": "test"})
        leases = h.registry.lease(wid, max_units=4)
        assert [lease.unit_key for lease in leases] == ["u1"]
        assert h.registry.lease(wid) == []  # queue drained
        assert h.registry.complete(wid, "u1", rows=["r"]) is True
        assert h.delivered == [("u1", 1)]
        # A second complete for the same key is late, not double-counted.
        assert h.registry.complete(wid, "u1", rows=["r"]) is False
        assert h.delivered == [("u1", 1)]

    def test_unknown_and_dead_workers_rejected(self):
        h = _Harness()
        with pytest.raises(UnknownWorkerError):
            h.registry.heartbeat("w-99")
        wid = h.registry.register()
        h.registry.heartbeat(wid)
        h.registry.reap(now=time.monotonic() + 1e6)
        with pytest.raises(UnknownWorkerError):
            h.registry.heartbeat(wid)
        with pytest.raises(UnknownWorkerError):
            h.registry.lease(wid)

    def test_dead_worker_leases_requeued(self, metrics):
        h = _Harness()
        h.push("u1")
        h.push("u2")
        dead = h.registry.register()
        alive = h.registry.register()
        assert len(h.registry.lease(dead, max_units=2)) == 2
        # Only the dead worker misses its deadline (pinned clocks: no
        # sleeping through heartbeat intervals in tests).
        now = time.monotonic()
        h.registry._workers[alive].last_beat = now
        h.registry._workers[dead].last_beat = now - 3.5  # > 3 * 1.0s
        retired = h.registry.reap(now=now)
        assert retired == [dead]
        assert sorted(h.requeued) == ["u1", "u2"]
        # The survivor picks the units back up.
        leases = h.registry.lease(alive, max_units=2)
        assert sorted(lease.unit_key for lease in leases) == ["u1", "u2"]
        counters = metrics.to_dict()["counters"]
        assert counters["fleet.units_requeued"] == 2.0
        assert counters["fleet.workers_dead"] == 1.0

    def test_delivered_units_not_requeued_on_death(self):
        h = _Harness()
        h.push("u1")
        wid = h.registry.register()
        h.registry.lease(wid)
        # Worker reports the unit, *then* dies: nothing to requeue.
        h.registry.complete(wid, "u1", rows=["r"])
        h.registry.reap(now=time.monotonic() + 1e6)
        assert h.requeued == []

    def test_fail_consumes_budget_then_poisons(self, metrics):
        h = _Harness(retries=1)
        h.push("u1")
        wid = h.registry.register()
        h.registry.lease(wid)
        assert h.registry.fail(wid, "u1", "boom") is True
        assert h.requeued == ["u1"]  # first failure: retry
        assert h.failed == []
        h.registry.lease(wid)
        h.registry.fail(wid, "u1", "boom again")
        assert h.failed == [("u1", "boom again", 2)]  # budget exhausted
        assert metrics.to_dict()["counters"]["fleet.retries"] == 1.0

    def test_steal_from_slow_worker(self, metrics):
        h = _Harness(lease_timeout=0.01)
        h.push("u1")
        slow = h.registry.register()
        thief = h.registry.register()
        assert len(h.registry.lease(slow)) == 1
        time.sleep(0.05)
        stolen = h.registry.lease(thief)
        assert [lease.unit_key for lease in stolen] == ["u1"]
        # Duplicate cap: a third worker cannot steal it again.
        third = h.registry.register()
        assert h.registry.lease(third) == []
        # First finisher wins; the loser's copy is late.
        assert h.registry.complete(thief, "u1", rows=["r"]) is True
        assert h.registry.complete(slow, "u1", rows=["r"]) is False
        assert h.delivered == [("u1", 1)]
        counters = metrics.to_dict()["counters"]
        assert counters["fleet.units_stolen"] == 1.0
        assert counters["fleet.late_completions"] == 1.0

    def test_fresh_lease_not_stealable(self):
        h = _Harness(lease_timeout=60.0)
        h.push("u1")
        holder = h.registry.register()
        thief = h.registry.register()
        h.registry.lease(holder)
        assert h.registry.lease(thief) == []


# ----------------------------------------------------------------------
# End-to-end: FleetWorkers over real TCP against a fleet-only daemon.
# ----------------------------------------------------------------------
def _fleet_daemon(runner, tmp_path=None, **settings_kwargs):
    settings_kwargs.setdefault("heartbeat_interval", 0.5)
    settings_kwargs.setdefault("lease_timeout", 60.0)
    if tmp_path is not None:
        settings_kwargs.setdefault("cache_dir", str(tmp_path))
        settings_kwargs.setdefault("store_backend", "shared")
    settings = Settings(**settings_kwargs)
    cache = settings.build_cache()
    service = CampaignService(
        runner, settings=settings, workers=0, cache=cache
    )
    return ServiceDaemon(service, address="127.0.0.1:0").start()


class TestFleetIntegration:
    def test_two_workers_bit_identical_to_direct(
        self, runner, two_workloads, metrics
    ):
        spec = RunSpec(
            environments=(TS, NOVAR),
            modes=(AdaptationMode.EXH_DYN,),
            workloads=two_workloads,
        )
        daemon = _fleet_daemon(runner)
        try:
            workers = [
                FleetWorker(daemon.address, poll_interval=0.05, max_idle=60.0)
                for _ in range(2)
            ]
            threads = [
                threading.Thread(target=w.run, daemon=True) for w in workers
            ]
            for thread in threads:
                thread.start()
            client = ServiceClient(daemon.address)
            response = client.result(client.submit(spec), timeout=300)
            cells = summaries_from_wire(response["cells"])
            for worker in workers:
                worker.stop()
            for thread in threads:
                thread.join(timeout=30.0)
        finally:
            daemon.stop()
        direct = ExperimentRunner(FLEET_CONFIG).run(spec)
        assert set(cells) == set(direct.summaries)
        for cell, summary in direct.summaries.items():
            assert cells[cell] == summary, cell
        # 2 chips x 1 core for TS, one pseudo-unit for NoVar = 3 units,
        # each computed exactly once across the whole fleet.
        assert sum(w.units_done for w in workers) == 3
        counters = metrics.to_dict()["counters"]
        assert counters["serve.units_done"] == 3.0
        assert counters["fleet.units_completed"] == 3.0
        assert counters.get("serve.units_duplicate", 0.0) == 0.0

    def test_killed_worker_requeues_no_duplicate_compute(
        self, runner, two_workloads, metrics, tmp_path
    ):
        spec = RunSpec(
            environments=(TS,),
            modes=(AdaptationMode.EXH_DYN,),
            workloads=two_workloads,
        )
        daemon = _fleet_daemon(runner, tmp_path)
        service = daemon.service
        try:
            client = ServiceClient(daemon.address)
            job = client.submit(spec)
            # "Worker A": registers, leases one unit, and is killed
            # before computing it — it never heartbeats again.
            doomed = client.request("fleet.register", meta={"role": "doomed"})
            doomed_id = doomed["worker_id"]
            granted = client.request(
                "fleet.lease", worker_id=doomed_id, max_units=1
            )["units"]
            assert len(granted) == 1
            # The reaper declares it dead and re-queues the lease
            # (pinned clock: no sleeping through heartbeat deadlines).
            retired = service.fleet.reap(now=time.monotonic() + 10.0)
            assert retired == [doomed_id]
            # Its late completion is rejected, not double-counted.
            with pytest.raises(UnknownWorkerError):
                client.request(
                    "fleet.complete", worker_id=doomed_id,
                    unit_key=granted[0]["unit_key"], rows=[],
                )
            # A healthy worker drains the whole cell, requeued unit
            # included.
            worker = FleetWorker(
                daemon.address, poll_interval=0.05, max_idle=60.0
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            response = client.result(job, timeout=300)
            cells = summaries_from_wire(response["cells"])
            worker.stop()
            thread.join(timeout=30.0)
        finally:
            daemon.stop()
        direct = ExperimentRunner(FLEET_CONFIG).run(spec)
        key = ("TS", "Exh-Dyn")
        assert cells[key] == direct.summaries[key]
        counters = metrics.to_dict()["counters"]
        assert counters["fleet.units_requeued"] >= 1.0
        assert counters["fleet.workers_dead"] == 1.0
        # Exactly one compute per unit: 2 chips x 1 core, all on the
        # survivor, none delivered twice.
        assert worker.units_done == 2
        assert counters["serve.units_done"] == 2.0
        assert counters.get("serve.units_duplicate", 0.0) == 0.0

    def test_shared_store_serves_warm_resubmission(
        self, runner, two_workloads, metrics, tmp_path
    ):
        spec = RunSpec(
            environments=(TS,),
            modes=(AdaptationMode.EXH_DYN,),
            workloads=two_workloads,
        )
        daemon = _fleet_daemon(runner, tmp_path)
        try:
            worker = FleetWorker(
                daemon.address,
                cache=ExperimentCache(store=build_store(tmp_path, "shared")),
                poll_interval=0.05,
                max_idle=60.0,
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            client = ServiceClient(daemon.address)
            cold = client.result(client.submit(spec), timeout=300)
            computed = worker.units_done
            warm = client.result(client.submit(spec), timeout=60)
            worker.stop()
            thread.join(timeout=30.0)
        finally:
            daemon.stop()
        assert computed == 2
        assert worker.units_done == computed  # warm run leased nothing
        assert summaries_from_wire(cold["cells"]) == summaries_from_wire(
            warm["cells"]
        )
        counters = metrics.to_dict()["counters"]
        assert counters["cache.summary.hits"] >= 1.0


class TestWorkerSubprocess:
    """The acceptance shape: real worker *processes* over a shared store."""

    def test_two_subprocess_workers_drain_ladder_cell(
        self, tmp_path, metrics
    ):
        spec = RunSpec(
            environments=(TS, NOVAR),
            modes=(AdaptationMode.EXH_DYN,),
            workloads=tuple(spec2000_like_suite()[:2]),
        )
        runner = ExperimentRunner(FLEET_CONFIG)
        # Generous heartbeat: subprocess interpreter startup on a loaded
        # machine can exceed a sub-second deadline, and a reaped worker
        # re-registers (benign, but it breaks the exact counts below).
        daemon = _fleet_daemon(runner, tmp_path, heartbeat_interval=5.0)
        env = {
            **os.environ,
            "PYTHONPATH": os.pathsep.join(
                [os.path.join(os.path.dirname(__file__), "..", "src")]
                + ([os.environ["PYTHONPATH"]]
                   if os.environ.get("PYTHONPATH") else [])
            ),
        }
        procs = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.serve", "worker",
                    "--connect", daemon.address,
                    "--cache-dir", str(tmp_path),
                    "--store-backend", "shared",
                    "--max-idle", "10",
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            for _ in range(2)
        ]
        try:
            client = ServiceClient(daemon.address)
            response = client.result(client.submit(spec), timeout=300)
            cells = summaries_from_wire(response["cells"])
            outputs = [proc.communicate(timeout=120)[0] for proc in procs]
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
            daemon.stop()
        for proc, output in zip(procs, outputs):
            assert proc.returncode == 0, output
        direct = ExperimentRunner(FLEET_CONFIG).run(spec)
        for cell, summary in direct.summaries.items():
            assert cells[cell] == summary, cell
        counters = metrics.to_dict()["counters"]
        assert counters["fleet.workers_registered"] == 2.0
        assert counters["fleet.units_completed"] == 3.0
