"""Phase stream generation and the Sherwood-style BBV detector."""

import numpy as np
import pytest

from repro.microarch import (
    COUNTER_MAX,
    N_BUCKETS,
    PhaseDetector,
    generate_phase_stream,
)


class TestPhaseStream:
    def test_covers_requested_time(self, fp_workload):
        stream = generate_phase_stream(fp_workload, total_ms=1000, seed=0)
        total = sum(p.duration_ms for p in stream)
        assert total == pytest.approx(1000, abs=1)

    def test_reproducible(self, fp_workload):
        a = generate_phase_stream(fp_workload, total_ms=500, seed=2)
        b = generate_phase_stream(fp_workload, total_ms=500, seed=2)
        assert [p.spec.name for p in a] == [p.spec.name for p in b]
        assert [p.duration_ms for p in a] == [p.duration_ms for p in b]

    def test_phases_alternate(self, fp_workload):
        stream = generate_phase_stream(fp_workload, total_ms=2000, seed=1)
        names = [p.spec.name for p in stream]
        assert all(a != b for a, b in zip(names, names[1:]))

    def test_signatures_persistent_per_phase_kind(self, fp_workload):
        stream = generate_phase_stream(fp_workload, total_ms=2000, seed=1)
        by_name = {}
        for p in stream:
            if p.spec.name in by_name:
                assert np.array_equal(by_name[p.spec.name], p.signature)
            by_name[p.spec.name] = p.signature

    def test_single_phase_workload(self, suite):
        crafty = next(w for w in suite if len(w.phases) == 1)
        stream = generate_phase_stream(crafty, total_ms=500, seed=0)
        assert {p.spec.name for p in stream} == {crafty.phases[0].name}

    def test_rejects_nonpositive_duration(self, fp_workload):
        with pytest.raises(ValueError):
            generate_phase_stream(fp_workload, total_ms=0)

    def test_bbv_quantised(self, fp_workload, rng):
        stream = generate_phase_stream(fp_workload, total_ms=300, seed=0)
        bbv = stream[0].sample_bbv(rng)
        assert bbv.shape == (N_BUCKETS,)
        assert bbv.dtype.kind == "i"
        assert bbv.max() <= COUNTER_MAX


class TestPhaseDetector:
    def test_recognises_recurring_phases(self, fp_workload, rng):
        stream = generate_phase_stream(fp_workload, total_ms=1500, seed=3)
        detector = PhaseDetector()
        ids = [detector.observe(p.sample_bbv(rng)).phase_id for p in stream]
        names = [p.spec.name for p in stream]
        mapping = {}
        for name, pid in zip(names, ids):
            mapping.setdefault(name, set()).add(pid)
        # Each true phase maps to exactly one detector id and vice versa.
        all_ids = [pid for ids_ in mapping.values() for pid in ids_]
        assert all(len(ids_) == 1 for ids_ in mapping.values())
        assert len(set(all_ids)) == len(all_ids)

    def test_first_observation_is_new(self, fp_workload, rng):
        stream = generate_phase_stream(fp_workload, total_ms=300, seed=3)
        detector = PhaseDetector()
        event = detector.observe(stream[0].sample_bbv(rng))
        assert event.is_new and event.changed

    def test_distance_properties(self):
        a = np.full(N_BUCKETS, 10)
        b = np.full(N_BUCKETS, 10)
        assert PhaseDetector.distance(a, b) == pytest.approx(0.0)
        c = np.zeros(N_BUCKETS)
        c[0] = 320
        assert PhaseDetector.distance(a, c) > 0.5

    def test_table_eviction_bounded(self, rng):
        detector = PhaseDetector(max_table=4)
        for i in range(10):
            bbv = np.zeros(N_BUCKETS, dtype=int)
            bbv[i % N_BUCKETS] = COUNTER_MAX
            bbv[(i * 7 + 3) % N_BUCKETS] = COUNTER_MAX
            detector.observe(bbv)
        assert detector.table_size <= 4

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            PhaseDetector().observe(np.zeros(5))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PhaseDetector(threshold=0.0)

    def test_changed_flag_tracks_transitions(self, fp_workload, rng):
        stream = generate_phase_stream(fp_workload, total_ms=1200, seed=3)
        detector = PhaseDetector()
        changes = [detector.observe(p.sample_bbv(rng)).changed for p in stream]
        # Alternating phases: every observation is a transition.
        assert all(changes)
