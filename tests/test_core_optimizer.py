"""The Freq and Power algorithms (Sections 4.2 / 4.3.1)."""

import numpy as np
import pytest

from repro.core import (
    BASELINE,
    TS,
    TS_ASV,
    TS_ASV_ABB,
    budget_z,
    core_subsystem_arrays,
    freq_algorithm,
    power_algorithm,
)
from repro.timing import StageModifiers


@pytest.fixture(scope="module")
def subs(core, int_measurement):
    return core_subsystem_arrays(
        core, int_measurement.activity, int_measurement.rho
    )


class TestBudgetZ:
    def test_zero_budget_gives_z_free(self, subs):
        z = budget_z(subs, 0.0)
        assert np.all(z == subs.calib.z_free)

    def test_budget_z_decreases_with_looser_budget(self, subs):
        tight = budget_z(subs, 1e-8)
        loose = budget_z(subs, 1e-3)
        assert np.all(loose <= tight)

    def test_z_clamped_to_design_margin(self, subs):
        z = budget_z(subs, 1e-15)
        assert np.all(z <= subs.calib.z_free)


class TestFreqAlgorithm:
    def test_ts_beats_baseline(self, subs, core):
        base = freq_algorithm(subs, BASELINE.optimization_spec(15, core.calib))
        ts = freq_algorithm(subs, TS.optimization_spec(15, core.calib))
        assert ts.core_frequency() >= base.core_frequency()

    def test_asv_beats_ts(self, subs, core):
        ts = freq_algorithm(subs, TS.optimization_spec(15, core.calib))
        asv = freq_algorithm(subs, TS_ASV.optimization_spec(15, core.calib))
        # ASV can never hurt; on the bottleneck it should help unless the
        # stage is already thermally capped at nominal supply.
        assert asv.core_frequency() >= ts.core_frequency()
        assert np.all(asv.f_max >= ts.f_max - 1e-6)
        assert np.mean(asv.f_max - ts.f_max) > 1e8  # most stages gain

    def test_abb_never_hurts(self, subs, core):
        asv = freq_algorithm(subs, TS_ASV.optimization_spec(15, core.calib))
        both = freq_algorithm(subs, TS_ASV_ABB.optimization_spec(15, core.calib))
        assert both.core_frequency() >= asv.core_frequency() - 1e-6

    def test_core_frequency_is_min_of_subsystems(self, subs, core, asv_spec):
        result = freq_algorithm(subs, asv_spec)
        assert result.core_frequency() <= result.f_max.min() + 1e-6

    def test_frequency_on_100mhz_grid(self, subs, asv_spec):
        f = freq_algorithm(subs, asv_spec).core_frequency()
        steps = (f - asv_spec.knob_ranges.f_min) / asv_spec.knob_ranges.f_step
        assert steps == pytest.approx(round(steps), abs=1e-6)

    def test_chosen_knobs_are_legal_levels(self, subs, asv_spec):
        result = freq_algorithm(subs, asv_spec)
        for v in result.vdd:
            assert np.min(np.abs(asv_spec.vdd_levels - v)) < 1e-9

    def test_min_rest_excludes_target(self, subs, asv_spec):
        result = freq_algorithm(subs, asv_spec)
        bottleneck = int(np.argmin(result.f_max))
        assert result.min_rest(bottleneck) >= result.f_max[bottleneck]

    def test_shift_modifier_raises_subsystem_fmax(self, core, int_measurement, asv_spec):
        idx = core.floorplan.index_of("IntQ")
        n = core.n_subsystems
        delay_scale = np.ones(n)
        delay_scale[idx] = 0.9
        modified = core_subsystem_arrays(
            core,
            int_measurement.activity,
            int_measurement.rho,
            StageModifiers(delay_scale=delay_scale, sigma_scale=np.ones(n)),
        )
        plain = core_subsystem_arrays(
            core, int_measurement.activity, int_measurement.rho
        )
        f_mod = freq_algorithm(modified, asv_spec).f_max[idx]
        f_plain = freq_algorithm(plain, asv_spec).f_max[idx]
        assert f_mod > f_plain

    def test_results_feasible(self, subs, asv_spec):
        result = freq_algorithm(subs, asv_spec)
        assert result.feasible.all()


class TestPowerAlgorithm:
    def test_all_subsystems_feasible_at_core_frequency(self, subs, core, asv_spec):
        f_core = freq_algorithm(subs, asv_spec).core_frequency()
        power = power_algorithm(subs, f_core, asv_spec)
        assert power.feasible.all()

    def test_respects_thermal_constraint(self, subs, asv_spec):
        f_core = freq_algorithm(subs, asv_spec).core_frequency()
        power = power_algorithm(subs, f_core, asv_spec)
        assert power.max_temperature() <= asv_spec.t_max + 0.1

    def test_meets_timing_at_chosen_voltages(self, subs, core, asv_spec):
        f_core = freq_algorithm(subs, asv_spec).core_frequency()
        power = power_algorithm(subs, f_core, asv_spec)
        z = budget_z(subs, asv_spec.pe_budget)
        period = subs.budget_period_rel(
            power.vdd, power.vbb, power.temperature, z
        ) / core.calib.f_nominal
        assert np.all(period <= 1.0 / f_core + 1e-15)

    def test_lower_frequency_means_no_more_power(self, subs, asv_spec):
        f_hi = freq_algorithm(subs, asv_spec).core_frequency()
        p_hi = power_algorithm(subs, f_hi, asv_spec).core_power()
        p_lo = power_algorithm(subs, f_hi * 0.75, asv_spec).core_power()
        assert p_lo < p_hi

    def test_slack_subsystems_get_reduced_vdd(self, subs, asv_spec):
        f_core = freq_algorithm(subs, asv_spec).core_frequency()
        power = power_algorithm(subs, f_core, asv_spec)
        # At least a third of the subsystems should save power below
        # nominal supply (the Reshape behaviour of Fig 2(d)).
        assert np.count_nonzero(power.vdd < 1.0) >= 5

    def test_accepts_per_row_frequencies(self, subs, asv_spec):
        f = np.full(len(subs), 3.0e9)
        result = power_algorithm(subs, f, asv_spec)
        assert result.vdd.shape == (len(subs),)

    def test_rejects_nonpositive_frequency(self, subs, asv_spec):
        with pytest.raises(ValueError):
            power_algorithm(subs, 0.0, asv_spec)
