"""The Freq and Power algorithms (Sections 4.2 / 4.3.1)."""

import numpy as np
import pytest

from repro import obs
from repro.core import (
    BASELINE,
    TS,
    TS_ASV,
    TS_ASV_ABB,
    budget_z,
    core_subsystem_arrays,
    freq_algorithm,
    power_algorithm,
)
from repro.core.optimizer import SubsystemArrays
from repro.obs import MetricsRegistry
from repro.timing import StageModifiers


@pytest.fixture(scope="module")
def subs(core, int_measurement):
    return core_subsystem_arrays(
        core, int_measurement.activity, int_measurement.rho
    )


@pytest.fixture(scope="module")
def lanes(core, int_measurement, fp_measurement):
    """Four lanes with distinct physics (mix of workloads and variants)."""
    n = core.n_subsystems
    slow = np.ones(n)
    slow[3] = 0.92
    tilt = np.ones(n)
    tilt[5] = np.sqrt(2.0)
    return [
        core_subsystem_arrays(
            core, int_measurement.activity, int_measurement.rho
        ),
        core_subsystem_arrays(
            core, fp_measurement.activity, fp_measurement.rho
        ),
        core_subsystem_arrays(
            core,
            int_measurement.activity,
            int_measurement.rho,
            StageModifiers(delay_scale=slow, sigma_scale=np.ones(n)),
        ),
        core_subsystem_arrays(
            core,
            fp_measurement.activity,
            fp_measurement.rho,
            StageModifiers(delay_scale=np.ones(n), sigma_scale=tilt),
        ),
        # A nearly idle phase: weak thermal feedback, so its joint
        # (f, T) fixed point converges in fewer iterations than the
        # active lanes — exercising the masked early retirement.
        core_subsystem_arrays(
            core, int_measurement.activity * 0.05, int_measurement.rho
        ),
    ]


class TestBudgetZ:
    def test_zero_budget_gives_z_free(self, subs):
        z = budget_z(subs, 0.0)
        assert np.all(z == subs.calib.z_free)

    def test_budget_z_decreases_with_looser_budget(self, subs):
        tight = budget_z(subs, 1e-8)
        loose = budget_z(subs, 1e-3)
        assert np.all(loose <= tight)

    def test_z_clamped_to_design_margin(self, subs):
        z = budget_z(subs, 1e-15)
        assert np.all(z <= subs.calib.z_free)


class TestFreqAlgorithm:
    def test_ts_beats_baseline(self, subs, core):
        base = freq_algorithm(subs, BASELINE.optimization_spec(15, core.calib))
        ts = freq_algorithm(subs, TS.optimization_spec(15, core.calib))
        assert ts.core_frequency() >= base.core_frequency()

    def test_asv_beats_ts(self, subs, core):
        ts = freq_algorithm(subs, TS.optimization_spec(15, core.calib))
        asv = freq_algorithm(subs, TS_ASV.optimization_spec(15, core.calib))
        # ASV can never hurt; on the bottleneck it should help unless the
        # stage is already thermally capped at nominal supply.
        assert asv.core_frequency() >= ts.core_frequency()
        assert np.all(asv.f_max >= ts.f_max - 1e-6)
        assert np.mean(asv.f_max - ts.f_max) > 1e8  # most stages gain

    def test_abb_never_hurts(self, subs, core):
        asv = freq_algorithm(subs, TS_ASV.optimization_spec(15, core.calib))
        both = freq_algorithm(subs, TS_ASV_ABB.optimization_spec(15, core.calib))
        assert both.core_frequency() >= asv.core_frequency() - 1e-6

    def test_core_frequency_is_min_of_subsystems(self, subs, core, asv_spec):
        result = freq_algorithm(subs, asv_spec)
        assert result.core_frequency() <= result.f_max.min() + 1e-6

    def test_frequency_on_100mhz_grid(self, subs, asv_spec):
        f = freq_algorithm(subs, asv_spec).core_frequency()
        steps = (f - asv_spec.knob_ranges.f_min) / asv_spec.knob_ranges.f_step
        assert steps == pytest.approx(round(steps), abs=1e-6)

    def test_chosen_knobs_are_legal_levels(self, subs, asv_spec):
        result = freq_algorithm(subs, asv_spec)
        for v in result.vdd:
            assert np.min(np.abs(asv_spec.vdd_levels - v)) < 1e-9

    def test_min_rest_excludes_target(self, subs, asv_spec):
        result = freq_algorithm(subs, asv_spec)
        bottleneck = int(np.argmin(result.f_max))
        assert result.min_rest(bottleneck) >= result.f_max[bottleneck]

    def test_shift_modifier_raises_subsystem_fmax(self, core, int_measurement, asv_spec):
        idx = core.floorplan.index_of("IntQ")
        n = core.n_subsystems
        delay_scale = np.ones(n)
        delay_scale[idx] = 0.9
        modified = core_subsystem_arrays(
            core,
            int_measurement.activity,
            int_measurement.rho,
            StageModifiers(delay_scale=delay_scale, sigma_scale=np.ones(n)),
        )
        plain = core_subsystem_arrays(
            core, int_measurement.activity, int_measurement.rho
        )
        f_mod = freq_algorithm(modified, asv_spec).f_max[idx]
        f_plain = freq_algorithm(plain, asv_spec).f_max[idx]
        assert f_mod > f_plain

    def test_results_feasible(self, subs, asv_spec):
        result = freq_algorithm(subs, asv_spec)
        assert result.feasible.all()


class TestPowerAlgorithm:
    def test_all_subsystems_feasible_at_core_frequency(self, subs, core, asv_spec):
        f_core = freq_algorithm(subs, asv_spec).core_frequency()
        power = power_algorithm(subs, f_core, asv_spec)
        assert power.feasible.all()

    def test_respects_thermal_constraint(self, subs, asv_spec):
        f_core = freq_algorithm(subs, asv_spec).core_frequency()
        power = power_algorithm(subs, f_core, asv_spec)
        assert power.max_temperature() <= asv_spec.t_max + 0.1

    def test_meets_timing_at_chosen_voltages(self, subs, core, asv_spec):
        f_core = freq_algorithm(subs, asv_spec).core_frequency()
        power = power_algorithm(subs, f_core, asv_spec)
        z = budget_z(subs, asv_spec.pe_budget)
        period = subs.budget_period_rel(
            power.vdd, power.vbb, power.temperature, z
        ) / core.calib.f_nominal
        assert np.all(period <= 1.0 / f_core + 1e-15)

    def test_lower_frequency_means_no_more_power(self, subs, asv_spec):
        f_hi = freq_algorithm(subs, asv_spec).core_frequency()
        p_hi = power_algorithm(subs, f_hi, asv_spec).core_power()
        p_lo = power_algorithm(subs, f_hi * 0.75, asv_spec).core_power()
        assert p_lo < p_hi

    def test_slack_subsystems_get_reduced_vdd(self, subs, asv_spec):
        f_core = freq_algorithm(subs, asv_spec).core_frequency()
        power = power_algorithm(subs, f_core, asv_spec)
        # At least a third of the subsystems should save power below
        # nominal supply (the Reshape behaviour of Fig 2(d)).
        assert np.count_nonzero(power.vdd < 1.0) >= 5

    def test_accepts_per_row_frequencies(self, subs, asv_spec):
        f = np.full(len(subs), 3.0e9)
        result = power_algorithm(subs, f, asv_spec)
        assert result.vdd.shape == (len(subs),)

    def test_rejects_nonpositive_frequency(self, subs, asv_spec):
        with pytest.raises(ValueError):
            power_algorithm(subs, 0.0, asv_spec)


class TestSubsystemArraysBatch:
    def test_stack_shapes_and_flags(self, lanes):
        stack = SubsystemArrays.stack(lanes)
        assert stack.is_batched
        assert stack.batch_size == len(lanes)
        assert stack.n_subsystems == len(lanes[0])
        assert stack.stage_mean_rel.shape == (len(lanes), len(lanes[0]))

    def test_unbatched_view_is_not_batched(self, subs):
        assert not subs.is_batched
        assert subs.batch_size == 1

    def test_lanes_view_adds_singleton_axis(self, subs):
        view = subs.lanes()
        assert view.is_batched
        assert view.batch_size == 1
        assert np.array_equal(view.alpha[0], subs.alpha)

    def test_stack_rejects_empty(self):
        with pytest.raises(ValueError):
            SubsystemArrays.stack([])

    def test_stack_rejects_already_batched(self, lanes):
        stack = SubsystemArrays.stack(lanes)
        with pytest.raises(ValueError):
            SubsystemArrays.stack([stack])

    def test_lane_subset_requires_batched(self, subs):
        with pytest.raises(ValueError):
            subs.lane_subset(np.array([0]))

    def test_lane_subset_selects_rows(self, lanes):
        stack = SubsystemArrays.stack(lanes)
        subset = stack.lane_subset(np.array([2, 0]))
        assert subset.batch_size == 2
        assert np.array_equal(subset.rho[0], lanes[2].rho)
        assert np.array_equal(subset.rho[1], lanes[0].rho)

    def test_rejects_mismatched_field_shapes(self, subs):
        with pytest.raises(ValueError):
            SubsystemArrays(
                vt0_timing=subs.vt0_timing,
                leff_timing=subs.leff_timing,
                vt0_leak=subs.vt0_leak,
                rth=subs.rth,
                kdyn=subs.kdyn,
                ksta=subs.ksta,
                alpha=subs.alpha[:-1],
                rho=subs.rho,
                stage_mean_rel=subs.stage_mean_rel,
                stage_sigma_rel=subs.stage_sigma_rel,
                power_factor=subs.power_factor,
            )


class TestBatchedFreqAlgorithm:
    def test_bit_identical_to_serial(self, lanes, asv_spec):
        stack = SubsystemArrays.stack(lanes)
        batched = freq_algorithm(stack, asv_spec)
        for lane, member in enumerate(lanes):
            serial = freq_algorithm(member, asv_spec)
            assert np.array_equal(batched.f_max[lane], serial.f_max)
            assert np.array_equal(batched.vdd[lane], serial.vdd)
            assert np.array_equal(batched.vbb[lane], serial.vbb)
            assert np.array_equal(batched.feasible[lane], serial.feasible)

    def test_core_frequencies_match_serial(self, lanes, asv_spec):
        stack = SubsystemArrays.stack(lanes)
        batched = freq_algorithm(stack, asv_spec)
        freqs = batched.core_frequencies(asv_spec.knob_ranges)
        assert freqs.shape == (len(lanes),)
        for lane, member in enumerate(lanes):
            serial = freq_algorithm(member, asv_spec)
            assert freqs[lane] == serial.core_frequency(asv_spec.knob_ranges)

    def test_batched_result_rejects_scalar_accessors(self, lanes, asv_spec):
        result = freq_algorithm(SubsystemArrays.stack(lanes), asv_spec)
        with pytest.raises(ValueError):
            result.core_frequency()
        with pytest.raises(ValueError):
            result.min_rest(0)

    def test_convergence_masking_matches_serial_iterations(
        self, lanes, asv_spec
    ):
        # Lanes with different physics converge at different speeds; the
        # masked joint fixed point must retire each lane after exactly as
        # many iterations as a serial call on that lane alone takes.
        def freq_iteration_values(arrays):
            with obs.scoped(MetricsRegistry()) as registry:
                freq_algorithm(arrays, asv_spec)
                doc = registry.to_dict()
            return doc["histograms"]["optimizer.freq_iterations"]["values"]

        serial_counts = [
            freq_iteration_values(member)[0] for member in lanes
        ]
        batched_counts = freq_iteration_values(SubsystemArrays.stack(lanes))
        assert batched_counts == serial_counts
        assert len(set(serial_counts)) > 1  # speeds genuinely differ

    def test_lane_counters(self, lanes, asv_spec):
        with obs.scoped(MetricsRegistry()) as registry:
            freq_algorithm(SubsystemArrays.stack(lanes), asv_spec)
            counters = registry.to_dict()["counters"]
        assert counters["optimizer.freq_calls"] == 1
        assert counters["optimizer.freq_lanes"] == len(lanes)


class TestBatchedPowerAlgorithm:
    def test_bit_identical_to_serial(self, lanes, asv_spec):
        stack = SubsystemArrays.stack(lanes)
        f_cores = np.array(
            [
                freq_algorithm(member, asv_spec).core_frequency()
                for member in lanes
            ]
        )
        batched = power_algorithm(stack, f_cores, asv_spec)
        for lane, member in enumerate(lanes):
            serial = power_algorithm(member, float(f_cores[lane]), asv_spec)
            assert np.array_equal(batched.vdd[lane], serial.vdd)
            assert np.array_equal(batched.vbb[lane], serial.vbb)
            assert np.array_equal(
                batched.temperature[lane], serial.temperature
            )
            assert np.array_equal(batched.p_dynamic[lane], serial.p_dynamic)
            assert np.array_equal(batched.p_static[lane], serial.p_static)
            assert np.array_equal(batched.feasible[lane], serial.feasible)

    def test_accepts_per_lane_matrix(self, lanes, asv_spec):
        stack = SubsystemArrays.stack(lanes)
        f = np.full((len(lanes), len(lanes[0])), 3.0e9)
        result = power_algorithm(stack, f, asv_spec)
        assert result.vdd.shape == (len(lanes), len(lanes[0]))

    def test_rejects_wrong_lane_vector_shape(self, lanes, asv_spec):
        stack = SubsystemArrays.stack(lanes)
        with pytest.raises(ValueError):
            power_algorithm(stack, np.full(len(lanes) + 1, 3.0e9), asv_spec)
        with pytest.raises(ValueError):
            power_algorithm(
                stack, np.full((len(lanes), 3), 3.0e9), asv_spec
            )

    def test_batched_result_rejects_scalar_accessors(self, lanes, asv_spec):
        stack = SubsystemArrays.stack(lanes)
        result = power_algorithm(stack, np.full(len(lanes), 3.0e9), asv_spec)
        with pytest.raises(ValueError):
            result.core_power()
        with pytest.raises(ValueError):
            result.max_temperature()
