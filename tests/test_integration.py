"""End-to-end integration tests across the whole stack."""

import pytest

import repro
from repro.core import (
    TS_ASV,
    AdaptationMode,
    run_timeline,
)
from repro.exps import run_table2, run_fig13
from repro.exps.runner import ExperimentRunner, RunnerConfig
from repro.microarch import generate_phase_stream

from tests.conftest import run_env


class TestQuickstartPath:
    def test_quick_adapt_produces_reasonable_point(self):
        result = repro.quick_adapt()
        calib = repro.DEFAULT_CALIBRATION
        assert 0.6 <= result.f_core / calib.f_nominal <= 1.4
        assert result.state.total_power <= calib.p_max + 1e-6
        assert result.state.pe_total <= calib.pe_max * 1.01

    def test_public_api_surface(self):
        assert callable(repro.build_core)
        assert callable(repro.optimize_phase)
        assert repro.__version__


class TestPaperHeadlineShapes:
    """The qualitative claims of the abstract, at reduced scale."""

    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(
            RunnerConfig(
                n_chips=3,
                cores_per_chip=1,
                n_instructions=6000,
                fuzzy_examples=800,
                fuzzy_epochs=1,
            )
        )

    def test_baseline_loses_roughly_a_fifth_of_frequency(self, runner):
        base = run_env(runner, repro.BASELINE)
        assert 0.68 <= base.f_rel <= 0.9  # paper: 0.78

    def test_full_eval_beats_novar_frequency(self, runner):
        best = run_env(runner, repro.TS_ASV_Q_FU, AdaptationMode.EXH_DYN)
        assert best.f_rel > 1.0  # paper: 1.21

    def test_full_eval_beats_baseline_performance_substantially(self, runner):
        base = run_env(runner, repro.BASELINE)
        best = run_env(runner, repro.TS_ASV_Q_FU, AdaptationMode.EXH_DYN)
        assert best.perf_rel / base.perf_rel > 1.15  # paper: 1.40

    def test_power_stays_within_budget(self, runner):
        best = run_env(runner, repro.TS_ASV_Q_FU, AdaptationMode.EXH_DYN)
        for r in best.results:
            assert r.power <= repro.DEFAULT_CALIBRATION.p_max + 1e-6

    def test_fuzzy_close_to_exhaustive(self, runner):
        fuzzy = run_env(runner, TS_ASV, AdaptationMode.FUZZY_DYN)
        exact = run_env(runner, TS_ASV, AdaptationMode.EXH_DYN)
        assert fuzzy.f_rel >= 0.85 * exact.f_rel  # tiny bank: loose bound


class TestControllerStudies:
    def test_table2_small(self, tiny_runner):
        from repro.core import TS as TS_ENV

        result = run_table2(
            tiny_runner, environments=[TS_ENV], n_workloads=2
        )
        assert "TS" in result.freq_mhz
        for kind in ("memory", "mixed", "logic"):
            assert result.freq_mhz["TS"][kind] >= 0.0
        assert result.rows()

    def test_fig13_small(self, tiny_runner):
        from repro.core import TS as TS_ENV

        result = run_fig13(tiny_runner, environments=[TS_ENV])
        for (opt, env), frac in result.fractions.items():
            assert env == "TS"
            assert sum(frac.values()) == pytest.approx(1.0)
        assert len(result.fractions) == 4  # the four opt configs


class TestTimelineIntegration:
    def test_full_phase_execution(self, core, fp_workload):
        stream = generate_phase_stream(fp_workload, total_ms=600, seed=9)
        result = run_timeline(core, TS_ASV, stream)
        assert result.controller_runs <= len(stream)
        assert 0.0 <= result.reuse_fraction <= 1.0
        assert result.mean_overhead_fraction < 0.01
