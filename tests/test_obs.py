"""The repro.obs observability layer: metrics, spans, events, engine wiring."""

import json
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import obs
from repro.core import TS, AdaptationMode
from repro.exps import ExperimentRunner, RunnerConfig, RunSpec
from repro.microarch import spec2000_like_suite
from repro.obs import (
    EventSink,
    MetricsRegistry,
    read_events,
    set_event_sink,
    span,
)

OBS_CONFIG = RunnerConfig(
    n_chips=2,
    cores_per_chip=1,
    n_instructions=3000,
    fuzzy_examples=300,
    fuzzy_epochs=1,
)


@pytest.fixture(autouse=True)
def _obs_reset():
    """Leave the process-global obs state exactly as we found it."""
    yield
    obs.enable()
    set_event_sink(None)
    obs.metrics_registry().clear()


class TestRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        reg.gauge("g").set(4)
        for v in (1.0, 2.0, 3.0):
            reg.histogram("h").observe(v)
        doc = reg.to_dict()
        assert doc["counters"]["c"] == 3.5
        assert doc["gauges"]["g"] == 4.0
        h = doc["histograms"]["h"]
        assert h["count"] == 3 and h["total"] == 6.0
        assert h["min"] == 1.0 and h["max"] == 3.0
        assert h["mean"] == pytest.approx(2.0)

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50.0) == pytest.approx(50.5)
        assert h.percentile(99.0) == pytest.approx(99.01)
        doc = h.summary()
        assert doc["p50"] == pytest.approx(50.5)
        assert doc["p90"] == pytest.approx(90.1)

    def test_histogram_reservoir_is_bounded(self):
        from repro.obs.metrics import RESERVOIR_SIZE

        h = MetricsRegistry().histogram("h")
        for v in range(RESERVOIR_SIZE + 100):
            h.observe(float(v))
        assert h.count == RESERVOIR_SIZE + 100  # moments stay exact
        assert len(h.values) == RESERVOIR_SIZE
        assert h.vmax == float(RESERVOIR_SIZE + 99)  # max tracked past cap

    def test_merge_sums_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.counter("only_b").inc()
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(5.0)
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.merge(b)
        doc = a.to_dict()
        assert doc["counters"]["c"] == 5.0
        assert doc["counters"]["only_b"] == 1.0
        assert doc["gauges"]["g"] == 9.0  # last write wins
        h = doc["histograms"]["h"]
        assert h["count"] == 2 and h["min"] == 1.0 and h["max"] == 5.0

    def test_merge_is_json_safe(self):
        """The wire document survives an actual JSON round trip."""
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("c").inc()
        b.histogram("h").observe(2.0)
        a.merge_dict(json.loads(json.dumps(b.to_dict())))
        assert a.to_dict()["counters"]["c"] == 1.0

    def test_drain_snapshots_and_resets(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        delta = reg.drain()
        assert delta["counters"]["c"] == 1.0
        assert not reg  # emptied
        assert reg.drain()["counters"] == {}

    def test_scoped_redirects_helpers(self):
        campaign = MetricsRegistry()
        with obs.scoped(campaign):
            obs.inc("scoped.c")
            assert obs.metrics_registry() is campaign
        assert campaign.counters["scoped.c"].value == 1.0
        assert "scoped.c" not in obs.metrics_registry().counters


def _worker_chunk(amount):
    """Module-level so the pool can pickle it: do work, return the delta."""
    obs.metrics_registry().clear()
    obs.enable()
    obs.inc("work.items", amount)
    obs.observe("work.seconds", 0.01 * amount)
    return obs.metrics_registry().drain()


class TestCrossProcessMerge:
    def test_parent_merges_worker_deltas(self):
        parent = MetricsRegistry()
        with ProcessPoolExecutor(max_workers=2) as pool:
            for delta in pool.map(_worker_chunk, [1, 2, 3, 4]):
                parent.merge_dict(delta)
        doc = parent.to_dict()
        assert doc["counters"]["work.items"] == 10.0
        assert doc["histograms"]["work.seconds"]["count"] == 4
        assert doc["histograms"]["work.seconds"]["max"] == pytest.approx(0.04)


class TestSpans:
    def test_span_records_histogram(self):
        reg = MetricsRegistry()
        with obs.scoped(reg):
            with span("unit.test"):
                pass
        assert reg.histograms["span.unit.test_seconds"].count == 1

    def test_disabled_span_is_shared_noop(self):
        from repro.obs.spans import _NULL_SPAN

        obs.disable()
        assert span("anything") is _NULL_SPAN
        assert span("else", field=1) is _NULL_SPAN

    def test_disabled_helpers_record_nothing(self):
        reg = MetricsRegistry()
        obs.disable()
        with obs.scoped(reg):
            obs.inc("c")
            obs.observe("h", 1.0)
            obs.set_gauge("g", 1.0)
            with span("s"):
                pass
        assert not reg

    def test_disabled_overhead_smoke(self):
        """A disabled helper call is a branch, not bookkeeping."""
        obs.disable()
        n = 100_000
        start = time.perf_counter()
        for _ in range(n):
            obs.inc("c")
            with span("s"):
                pass
        elapsed = time.perf_counter() - start
        # Generous bound (~10 us per iteration) — catches accidental
        # dict/clock work on the disabled path, not scheduler noise.
        assert elapsed < 10e-6 * n

    def test_span_nesting_tracked_in_events_not_names(self, tmp_path):
        path = tmp_path / "events.jsonl"
        reg = MetricsRegistry()
        with EventSink(path) as sink:
            set_event_sink(sink)
            with obs.scoped(reg):
                with span("outer"):
                    with span("inner", env="TS"):
                        pass
            set_event_sink(None)
        events = read_events(path)
        inner, outer = events[0], events[1]  # inner closes first
        assert inner["name"] == "inner"
        assert inner["depth"] == 1 and inner["parent"] == "outer"
        assert inner["env"] == "TS"
        assert outer["depth"] == 0 and outer["parent"] is None
        # Nesting never leaks into metric names (serial/parallel parity).
        assert set(reg.histograms) == {
            "span.outer_seconds", "span.inner_seconds",
        }


class TestEventSink:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventSink(path) as sink:
            sink.emit("cell", env="TS", source="cache")
            sink.emit("done", items=3)
        events = read_events(path)
        assert [e["event"] for e in events] == ["cell", "done"]
        assert events[0]["env"] == "TS"
        assert events[1]["items"] == 3
        assert all("ts" in e for e in events)

    def test_emit_event_without_sink_is_noop(self):
        set_event_sink(None)
        obs.emit_event("ignored", detail=1)  # must not raise


class TestEngineMetrics:
    @pytest.fixture(scope="class")
    def two_workloads(self):
        return tuple(spec2000_like_suite()[:2])

    def test_serial_and_parallel_metrics_same_structure(self, two_workloads):
        """--jobs N reports fleet-wide totals under the same metric names."""
        spec_args = dict(
            environments=(TS,),
            modes=(AdaptationMode.EXH_DYN,),
            workloads=two_workloads,
            use_cache=False,
        )
        serial = ExperimentRunner(OBS_CONFIG).run(
            RunSpec(**spec_args)
        ).summary(TS)
        parallel = ExperimentRunner(OBS_CONFIG).run(
            RunSpec(parallelism=2, **spec_args)
        ).summary(TS)
        assert serial.metrics is not None and parallel.metrics is not None
        for kind in ("counters", "gauges", "histograms"):
            assert set(serial.metrics[kind]) == set(parallel.metrics[kind])
        # Fleet-wide work totals agree exactly; only timings (and the
        # kernel *call* counts, which depend on how units were blocked
        # across workers) may differ.  Per-lane totals are the
        # blocking-independent measure of work.
        counters_s = serial.metrics["counters"]
        counters_p = parallel.metrics["counters"]
        for name in ("thermal.solves", "optimizer.freq_lanes",
                     "optimizer.candidates", "engine.cells_requested",
                     "engine.batched_units"):
            assert counters_s[name] == counters_p[name], name
        n_units = OBS_CONFIG.n_chips * OBS_CONFIG.cores_per_chip
        assert counters_s["engine.batched_units"] == n_units
        assert "span.engine.units_batched_seconds" in (
            serial.metrics["histograms"]
        )

    def test_metrics_absent_when_disabled(self, two_workloads):
        obs.disable()
        try:
            summary = ExperimentRunner(OBS_CONFIG).run(RunSpec(
                environments=(TS,),
                modes=(AdaptationMode.STATIC,),
                workloads=two_workloads,
                use_cache=False,
            )).summary(TS, AdaptationMode.STATIC)
        finally:
            obs.enable()
        assert summary.metrics is None

    def test_summary_json_carries_metrics(self, two_workloads):
        runner = ExperimentRunner(OBS_CONFIG)
        summary = runner.run(RunSpec(
            environments=(TS,),
            modes=(AdaptationMode.STATIC,),
            workloads=two_workloads,
            use_cache=False,
        )).summary(TS, AdaptationMode.STATIC)
        assert summary.metrics is not None
        restored = type(summary).from_json(summary.to_json())
        assert restored.metrics == summary.metrics
        assert restored.results == summary.results


class TestReportingFooter:
    def test_metrics_footer_renders(self):
        from repro.exps.reporting import metrics_footer

        reg = MetricsRegistry()
        reg.counter("cache.bank.hits").inc(3)
        reg.gauge("engine.jobs").set(2)
        reg.histogram("span.engine.unit_seconds").observe(0.5)
        text = metrics_footer(reg.to_dict())
        assert "cache.bank.hits=3" in text
        assert "engine.jobs=2" in text
        assert "span.engine.unit_seconds" in text and "p50=0.5" in text
        assert metrics_footer(None) == ""
        assert metrics_footer({}) == ""


class TestToDictPrefix:
    def test_prefix_filters_every_section(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("serve.job.job-1.cells_total").inc(2)
        reg.counter("serve.job.job-2.cells_total").inc(5)
        reg.gauge("serve.job.job-1.cells_pending").set(1)
        reg.gauge("other.gauge").set(9)
        reg.histogram("serve.job.job-1.seconds").observe(0.5)
        doc = reg.to_dict(prefix="serve.job.job-1.")
        assert set(doc["counters"]) == {"serve.job.job-1.cells_total"}
        assert set(doc["gauges"]) == {"serve.job.job-1.cells_pending"}
        assert set(doc["histograms"]) == {"serve.job.job-1.seconds"}

    def test_no_prefix_keeps_everything(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("a").inc(1)
        reg.gauge("b").set(2)
        assert set(reg.to_dict()["counters"]) == {"a"}
        assert set(reg.to_dict()["gauges"]) == {"b"}
