"""Environments (Table 1), adaptation, state evaluation, retuning."""

import numpy as np
import pytest

from repro.core import (
    ADAPTIVE_ENVIRONMENTS,
    BASELINE,
    NOVAR,
    TS,
    TS_ASV,
    TS_ASV_Q,
    TS_ASV_Q_FU,
    AdaptationMode,
    Configuration,
    Environment,
    Outcome,
    Violation,
    aggregate_static_measurement,
    by_name,
    evaluate_configuration,
    evaluate_configurations,
    optimize_phase,
    optimize_phases_batched,
    retune,
)
from repro.microarch import DEFAULT_CORE_CONFIG, measure_workload
from repro.mitigation import TechniqueState


@pytest.fixture(scope="module")
def q_measurements(int_workload):
    base = DEFAULT_CORE_CONFIG
    return (
        measure_workload(int_workload, base, 8000, seed=0),
        measure_workload(
            int_workload, base.with_resized_queue("int"), 8000, seed=0
        ),
    )


@pytest.fixture(scope="module")
def fu_measurements(int_workload):
    base = DEFAULT_CORE_CONFIG.with_fu_replication()
    return (
        measure_workload(int_workload, base, 8000, seed=0),
        measure_workload(
            int_workload, base.with_resized_queue("int"), 8000, seed=0
        ),
    )


class TestEnvironments:
    def test_table1_is_complete(self):
        names = {env.name for env in ADAPTIVE_ENVIRONMENTS}
        assert names == {
            "TS", "TS+ASV", "TS+ASV+ABB", "TS+ASV+Q", "TS+ASV+Q+FU", "ALL",
        }

    def test_lookup_by_name(self):
        assert by_name("TS+ASV").asv
        assert not by_name("TS").asv
        with pytest.raises(KeyError):
            by_name("TS+magic")

    def test_techniques_require_checker(self):
        with pytest.raises(ValueError, match="checker"):
            Environment("bad", checker=False, asv=True)

    def test_spec_reflects_knobs(self, calib):
        ts = TS.optimization_spec(15, calib)
        assert len(ts.vdd_levels) == 1 and len(ts.vbb_levels) == 1
        assert ts.pe_budget == pytest.approx(calib.pe_max / 15)
        base = BASELINE.optimization_spec(15, calib)
        assert base.pe_budget == 0.0
        asv = TS_ASV.optimization_spec(15, calib)
        assert len(asv.vdd_levels) == 9


class TestEvaluateConfiguration:
    def make_config(self, core, f=3.2e9, vdd=1.0):
        n = core.n_subsystems
        return Configuration(
            f_core=f,
            vdd=np.full(n, vdd),
            vbb=np.zeros(n),
            technique=TechniqueState(),
        )

    def test_state_consistency(self, core, int_measurement):
        config = self.make_config(core)
        state = evaluate_configuration(
            core, config, int_measurement.activity, int_measurement.rho
        )
        assert state.total_power == pytest.approx(
            state.subsystem_power + state.l2_power + state.checker_power
        )
        assert state.pe_total == pytest.approx(state.pe_per_subsystem.sum())

    def test_checker_power_flag(self, core, int_measurement):
        config = self.make_config(core)
        with_checker = evaluate_configuration(
            core, config, int_measurement.activity, int_measurement.rho,
            checker=True,
        )
        without = evaluate_configuration(
            core, config, int_measurement.activity, int_measurement.rho,
            checker=False,
        )
        assert with_checker.checker_power > 0.0
        assert without.checker_power == 0.0

    def test_violation_priority_error_first(self, core, int_measurement):
        config = self.make_config(core, f=5.5e9)  # absurdly fast
        state = evaluate_configuration(
            core, config, int_measurement.activity, int_measurement.rho
        )
        assert state.violation(core) is Violation.ERROR

    def test_no_violation_at_conservative_point(self, core, int_measurement):
        config = self.make_config(core, f=2.4e9)
        state = evaluate_configuration(
            core, config, int_measurement.activity, int_measurement.rho
        )
        assert state.violation(core) is Violation.NONE

    def test_batched_matches_serial(self, core, int_measurement, fp_measurement):
        configs = [
            self.make_config(core, f=2.4e9),
            self.make_config(core, f=3.2e9, vdd=1.1),
            self.make_config(core, f=2.8e9, vdd=0.9),
        ]
        workloads = [int_measurement, fp_measurement, int_measurement]
        batched = evaluate_configurations(
            core,
            configs,
            [m.activity for m in workloads],
            [m.rho for m in workloads],
        )
        for config, meas, got in zip(configs, workloads, batched):
            want = evaluate_configuration(
                core, config, meas.activity, meas.rho
            )
            assert np.array_equal(got.temperature, want.temperature)
            assert np.array_equal(got.p_dynamic, want.p_dynamic)
            assert np.array_equal(got.p_static, want.p_static)
            assert np.array_equal(
                got.pe_per_subsystem, want.pe_per_subsystem
            )
            assert got.l2_power == want.l2_power
            assert got.checker_power == want.checker_power
            assert np.array_equal(got.delays.mean, want.delays.mean)
            assert np.array_equal(got.delays.sigma, want.delays.sigma)

    def test_batched_checker_flag(self, core, int_measurement):
        configs = [self.make_config(core), self.make_config(core, f=2.4e9)]
        states = evaluate_configurations(
            core,
            configs,
            [int_measurement.activity] * 2,
            [int_measurement.rho] * 2,
            checker=False,
        )
        assert all(s.checker_power == 0.0 for s in states)

    def test_lowslope_burns_more_power(self, core, int_measurement):
        base = self.make_config(core)
        ls = Configuration(
            f_core=base.f_core,
            vdd=base.vdd,
            vbb=base.vbb,
            technique=TechniqueState(lowslope=True, domain="int"),
        )
        p_base = evaluate_configuration(
            core, base, int_measurement.activity, int_measurement.rho
        ).total_power
        p_ls = evaluate_configuration(
            core, ls, int_measurement.activity, int_measurement.rho
        ).total_power
        assert p_ls > p_base


class TestRetuning:
    def test_overshoot_backs_off_to_safety(self, core, int_measurement):
        n = core.n_subsystems
        config = Configuration(
            f_core=5.2e9,
            vdd=np.full(n, 1.0),
            vbb=np.zeros(n),
            technique=TechniqueState(),
        )
        result = retune(
            core, config, int_measurement.activity, int_measurement.rho,
            pe_max=core.calib.pe_max,
        )
        assert result.outcome in (Outcome.ERROR, Outcome.TEMP, Outcome.POWER)
        assert result.f_final < 5.2e9
        assert result.state.violation(core) is Violation.NONE

    def test_undershoot_ramps_up(self, core, int_measurement):
        n = core.n_subsystems
        config = Configuration(
            f_core=2.4e9,
            vdd=np.full(n, 1.0),
            vbb=np.zeros(n),
            technique=TechniqueState(),
        )
        result = retune(
            core, config, int_measurement.activity, int_measurement.rho,
            pe_max=core.calib.pe_max,
        )
        assert result.outcome is Outcome.LOW_FREQ
        assert result.f_final > 2.4e9

    def test_near_optimal_is_no_change(self, core, int_measurement):
        # First find the converged frequency, then re-run from it.
        n = core.n_subsystems
        probe = retune(
            core,
            Configuration(3.0e9, np.full(n, 1.0), np.zeros(n), TechniqueState()),
            int_measurement.activity,
            int_measurement.rho,
            pe_max=core.calib.pe_max,
        )
        again = retune(
            core,
            probe.config,
            int_measurement.activity,
            int_measurement.rho,
            pe_max=core.calib.pe_max,
        )
        assert again.outcome is Outcome.NO_CHANGE
        assert again.f_final == pytest.approx(probe.f_final)


class TestOptimizePhase:
    def test_environment_ladder_is_monotone(self, core, int_measurement, q_measurements, fu_measurements):
        meas = int_measurement
        f_base = optimize_phase(core, BASELINE, meas).f_core
        f_ts = optimize_phase(core, TS, meas).f_core
        f_asv = optimize_phase(core, TS_ASV, meas).f_core
        f_q = optimize_phase(core, TS_ASV_Q, *q_measurements).f_core
        f_fu = optimize_phase(core, TS_ASV_Q_FU, *fu_measurements).f_core
        assert f_base <= f_ts <= f_asv
        assert f_asv <= f_q + 1e8  # queue may tie but not regress a step
        assert f_q <= f_fu + 1e8

    def test_final_state_respects_constraints(self, core, q_measurements):
        result = optimize_phase(core, TS_ASV_Q, *q_measurements)
        calib = core.calib
        assert result.state.pe_total <= calib.pe_max * 1.01
        assert result.state.max_temperature <= calib.t_max + 0.1
        assert result.state.total_power <= calib.p_max + 1e-6

    def test_baseline_is_error_free(self, core, int_measurement):
        result = optimize_phase(core, BASELINE, int_measurement)
        assert result.state.pe_total < 1e-10

    def test_queue_env_requires_resized_measurement(self, core, int_measurement):
        with pytest.raises(ValueError, match="resized"):
            optimize_phase(core, TS_ASV_Q, int_measurement)

    def test_fuzzy_requires_bank(self, core, int_measurement):
        with pytest.raises(ValueError, match="bank"):
            optimize_phase(
                core, TS_ASV, int_measurement, mode=AdaptationMode.FUZZY_DYN
            )

    def test_fuzzy_close_to_exhaustive(self, core, int_measurement, tiny_bank):
        fuzzy = optimize_phase(
            core, TS_ASV, int_measurement,
            mode=AdaptationMode.FUZZY_DYN, bank=tiny_bank,
        )
        exact = optimize_phase(core, TS_ASV, int_measurement)
        # Tiny bank: accept a loose envelope; the production bank is ~2%.
        assert fuzzy.f_core >= 0.75 * exact.f_core
        assert fuzzy.state.violation(core) is Violation.NONE

    def test_retune_disabled_keeps_controller_choice(self, core, int_measurement):
        result = optimize_phase(
            core, TS_ASV, int_measurement, retune_enabled=False
        )
        assert result.f_core == result.f_controller

    def test_different_chips_get_different_operating_points(
        self, core, other_core, int_measurement
    ):
        a = optimize_phase(core, TS_ASV, int_measurement)
        b = optimize_phase(other_core, TS_ASV, int_measurement)
        # The 100 MHz grid can make frequencies collide, but the chosen
        # per-subsystem supplies reflect each chip's variation map.
        assert a.f_core != b.f_core or not np.allclose(
            a.config.vdd, b.config.vdd
        )

    def test_static_aggregate_is_elementwise_bound(self, int_measurement, fp_measurement):
        agg = aggregate_static_measurement([int_measurement, fp_measurement])
        stacked = np.maximum(int_measurement.activity, fp_measurement.activity)
        assert np.all(agg.activity <= stacked + 1e-12)
        assert agg.domain == "int"


def _assert_results_identical(batched, serial):
    """Every field of an AdaptationResult must match bit-for-bit."""
    assert len(batched) == len(serial)
    for got, want in zip(batched, serial):
        assert got.f_core == want.f_core
        assert got.f_controller == want.f_controller
        assert got.outcome is want.outcome
        assert np.array_equal(got.config.vdd, want.config.vdd)
        assert np.array_equal(got.config.vbb, want.config.vbb)
        assert got.performance_ips == want.performance_ips
        assert got.state.total_power == want.state.total_power
        assert got.state.pe_total == want.state.pe_total
        assert np.array_equal(got.state.temperature, want.state.temperature)
        assert np.array_equal(got.state.p_static, want.state.p_static)
        assert np.array_equal(
            got.state.delays.mean, want.state.delays.mean
        )
        assert got.measurement is want.measurement


class TestOptimizePhasesBatched:
    """Golden tests: the batched path reproduces the per-phase loop."""

    def test_matches_serial_ts_asv(self, core, int_measurement, fp_measurement):
        phases = [(int_measurement, None), (fp_measurement, None)]
        serial = [
            optimize_phase(core, TS_ASV, meas) for meas, _ in phases
        ]
        batched = optimize_phases_batched(core, TS_ASV, phases)
        _assert_results_identical(batched, serial)

    def test_matches_serial_with_queue_resize(self, core, q_measurements):
        full, resized = q_measurements
        phases = [(full, resized), (full, resized)]
        serial = [
            optimize_phase(core, TS_ASV_Q, meas, rs) for meas, rs in phases
        ]
        batched = optimize_phases_batched(core, TS_ASV_Q, phases)
        _assert_results_identical(batched, serial)

    def test_matches_serial_with_low_slope_fu(self, core, fu_measurements):
        full, resized = fu_measurements
        phases = [(full, resized), (full, resized), (full, resized)]
        serial = [
            optimize_phase(core, TS_ASV_Q_FU, meas, rs)
            for meas, rs in phases
        ]
        batched = optimize_phases_batched(core, TS_ASV_Q_FU, phases)
        _assert_results_identical(batched, serial)

    def test_matches_serial_mixed_phases(
        self, core, other_core, int_measurement, fp_measurement
    ):
        phases = [
            (int_measurement, None),
            (fp_measurement, None),
            (int_measurement, None),
        ]
        for which in (core, other_core):
            serial = [
                optimize_phase(which, TS, meas) for meas, _ in phases
            ]
            batched = optimize_phases_batched(which, TS, phases)
            _assert_results_identical(batched, serial)

    def test_retune_disabled_matches_serial(self, core, int_measurement, fp_measurement):
        phases = [(int_measurement, None), (fp_measurement, None)]
        serial = [
            optimize_phase(core, TS_ASV, meas, retune_enabled=False)
            for meas, _ in phases
        ]
        batched = optimize_phases_batched(
            core, TS_ASV, phases, retune_enabled=False
        )
        _assert_results_identical(batched, serial)

    def test_queue_env_requires_resized_measurements(self, core, int_measurement):
        with pytest.raises(ValueError, match="resize"):
            optimize_phases_batched(
                core,
                TS_ASV_Q,
                [(int_measurement, None), (int_measurement, None)],
            )

    def test_single_phase_falls_back_to_serial(self, core, int_measurement):
        serial = optimize_phase(core, TS_ASV, int_measurement)
        (batched,) = optimize_phases_batched(
            core, TS_ASV, [(int_measurement, None)]
        )
        _assert_results_identical([batched], [serial])

    def test_fuzzy_mode_falls_back_to_serial(self, core, int_measurement, tiny_bank):
        phases = [(int_measurement, None), (int_measurement, None)]
        serial = [
            optimize_phase(
                core, TS_ASV, meas,
                mode=AdaptationMode.FUZZY_DYN, bank=tiny_bank,
            )
            for meas, _ in phases
        ]
        batched = optimize_phases_batched(
            core, TS_ASV, phases,
            mode=AdaptationMode.FUZZY_DYN, bank=tiny_bank,
        )
        _assert_results_identical(batched, serial)
