"""The repro.config.Settings runtime-knob bundle."""

import argparse

import pytest

from repro.config import Settings


class TestDefaults:
    def test_dataclass_defaults(self):
        cfg = Settings()
        assert cfg.jobs == 1
        assert cfg.cache_dir is None and cfg.cache_enabled
        assert cfg.chips == 12 and cfg.cores == 1
        assert cfg.fc_examples == 4000 and cfg.seed == 7
        assert cfg.log_level == "WARNING" and not cfg.log_json
        assert cfg.metrics_out is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Settings(jobs=0)
        with pytest.raises(ValueError):
            Settings(log_level="LOUD")

    def test_replace(self):
        assert Settings().replace(jobs=4).jobs == 4


class TestFromEnv:
    def test_reads_every_variable(self):
        cfg = Settings.from_env({
            "EVAL_REPRO_JOBS": "3",
            "EVAL_REPRO_CACHE": "/tmp/c",
            "EVAL_REPRO_CHIPS": "20",
            "EVAL_REPRO_CORES": "2",
            "EVAL_REPRO_FC_EXAMPLES": "500",
            "EVAL_REPRO_SEED": "11",
            "EVAL_REPRO_LOG_LEVEL": "info",
            "EVAL_REPRO_LOG_JSON": "1",
            "EVAL_REPRO_METRICS_OUT": "/tmp/m.json",
        })
        assert cfg.jobs == 3 and cfg.cache_dir == "/tmp/c"
        assert cfg.chips == 20 and cfg.cores == 2
        assert cfg.fc_examples == 500 and cfg.seed == 11
        assert cfg.log_level == "INFO" and cfg.log_json
        assert cfg.metrics_out == "/tmp/m.json"

    def test_empty_env_keeps_defaults(self):
        assert Settings.from_env({}) == Settings()

    def test_no_cache_variable(self):
        assert not Settings.from_env({"EVAL_REPRO_NO_CACHE": "1"}).cache_enabled
        assert Settings.from_env({}).cache_enabled

    def test_serial_phases_variable(self):
        assert Settings.from_env({}).batch_phases
        assert not Settings.from_env(
            {"EVAL_REPRO_SERIAL_PHASES": "1"}
        ).batch_phases

    def test_shared_mem_variable(self):
        assert Settings.from_env({}).shared_mem
        for raw in ("0", "false", "no", "off", "False", " OFF "):
            assert not Settings.from_env(
                {"EVAL_REPRO_SHARED_MEM": raw}
            ).shared_mem
        assert Settings.from_env({"EVAL_REPRO_SHARED_MEM": "1"}).shared_mem

    def test_custom_defaults(self):
        bench = Settings(chips=8)
        assert Settings.from_env({}, defaults=bench).chips == 8
        assert Settings.from_env(
            {"EVAL_REPRO_CHIPS": "100"}, defaults=bench
        ).chips == 100


class TestFromArgs:
    def _parse(self, argv, env=None):
        base = Settings.from_env(env or {})
        parser = argparse.ArgumentParser()
        Settings.add_cli_arguments(parser, base)
        return Settings.from_args(parser.parse_args(argv), base=base)

    def test_flag_beats_env_beats_default(self):
        env = {"EVAL_REPRO_JOBS": "2"}
        assert self._parse([], env).jobs == 2          # env beats default
        assert self._parse(["--jobs", "5"], env).jobs == 5  # flag beats env
        assert self._parse([]).jobs == 1               # default

    def test_no_cache_flag(self):
        assert not self._parse(["--no-cache"]).cache_enabled
        assert self._parse([]).cache_enabled

    def test_serial_phases_flag(self):
        assert self._parse([]).batch_phases
        assert not self._parse(["--serial-phases"]).batch_phases
        # The env variable and the flag each independently force serial.
        env = {"EVAL_REPRO_SERIAL_PHASES": "1"}
        assert not self._parse([], env).batch_phases
        assert not self._parse(["--serial-phases"], env).batch_phases

    def test_shared_mem_flag_beats_env_beats_default(self):
        assert self._parse([]).shared_mem  # default on
        assert not self._parse(["--no-shared-mem"]).shared_mem
        env = {"EVAL_REPRO_SHARED_MEM": "0"}
        assert not self._parse([], env).shared_mem
        assert self._parse(["--shared-mem"], env).shared_mem  # flag wins

    def test_log_level_case_insensitive(self):
        assert self._parse(["--log-level", "debug"]).log_level == "DEBUG"

    def test_metrics_out_flag(self):
        assert self._parse(["--metrics-out", "m.json"]).metrics_out == "m.json"


class TestApplication:
    def test_effective_cache_dir(self, tmp_path):
        on = Settings(cache_dir=str(tmp_path))
        off = on.replace(cache_enabled=False)
        assert on.effective_cache_dir == str(tmp_path)
        assert off.effective_cache_dir is None

    def test_build_cache(self, tmp_path):
        from repro.exps.cache import ExperimentCache

        cache = Settings(cache_dir=str(tmp_path)).build_cache()
        assert isinstance(cache, ExperimentCache)
        assert Settings().build_cache() is None
        assert Settings(
            cache_dir=str(tmp_path), cache_enabled=False
        ).build_cache() is None

    def test_configure_sets_logger_level(self):
        import logging

        Settings(log_level="DEBUG").configure()
        try:
            assert logging.getLogger("repro").level == logging.DEBUG
        finally:
            Settings().configure()  # restore the WARNING default


class TestServiceKnobs:
    def test_defaults(self):
        cfg = Settings()
        assert cfg.service_addr is None
        assert cfg.service_max_jobs == 8
        assert cfg.service_retries == 1
        assert cfg.service_cell_timeout is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Settings(service_max_jobs=0)
        with pytest.raises(ValueError):
            Settings(service_retries=-1)
        with pytest.raises(ValueError):
            Settings(service_cell_timeout=0.0)
        assert Settings(service_retries=0).service_retries == 0

    def test_from_env(self):
        cfg = Settings.from_env({
            "EVAL_REPRO_SERVICE": "127.0.0.1:9000",
            "EVAL_REPRO_SERVICE_MAX_JOBS": "3",
            "EVAL_REPRO_SERVICE_RETRIES": "5",
            "EVAL_REPRO_SERVICE_TIMEOUT": "2.5",
        })
        assert cfg.service_addr == "127.0.0.1:9000"
        assert cfg.service_max_jobs == 3
        assert cfg.service_retries == 5
        assert cfg.service_cell_timeout == 2.5

    def test_empty_env_keeps_service_defaults(self):
        cfg = Settings.from_env({"EVAL_REPRO_SERVICE_TIMEOUT": ""})
        assert cfg.service_cell_timeout is None
        assert cfg.service_addr is None

    def _parse(self, argv, env=None):
        base = Settings.from_env(env or {})
        parser = argparse.ArgumentParser()
        # Mirrors the CLIs: clients register --service themselves, the
        # shared policy flags come from add_service_arguments.
        parser.add_argument("--service", default=base.service_addr)
        Settings.add_cli_arguments(parser, base)
        Settings.add_service_arguments(parser, base)
        return Settings.from_args(parser.parse_args(argv), base=base)

    def test_flag_beats_env_beats_default(self):
        env = {"EVAL_REPRO_SERVICE_RETRIES": "4"}
        assert self._parse([], env).service_retries == 4
        assert self._parse(
            ["--service-retries", "9"], env
        ).service_retries == 9
        assert self._parse([]).service_retries == 1

    def test_service_address_flag(self):
        env = {"EVAL_REPRO_SERVICE": "env-host:1"}
        assert self._parse([], env).service_addr == "env-host:1"
        assert self._parse(
            ["--service", "flag-host:2"], env
        ).service_addr == "flag-host:2"

    def test_timeout_and_max_jobs_flags(self):
        cfg = self._parse(
            ["--service-timeout", "1.5", "--service-max-jobs", "2"]
        )
        assert cfg.service_cell_timeout == 1.5
        assert cfg.service_max_jobs == 2
