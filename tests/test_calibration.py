"""Calibration constants: published anchors and internal consistency."""

import dataclasses

import pytest

from repro.calibration import DEFAULT_CALIBRATION, STAGE_KINDS, Calibration
from repro.units import celsius_to_kelvin


class TestPublishedAnchors:
    """Values the paper states explicitly (Figure 7(a)) are not free."""

    def test_nominal_point(self):
        c = DEFAULT_CALIBRATION
        assert c.f_nominal == pytest.approx(4e9)
        assert c.vdd_nominal == pytest.approx(1.0)

    def test_constraints(self):
        c = DEFAULT_CALIBRATION
        assert c.p_max == pytest.approx(30.0)
        assert c.t_max == pytest.approx(celsius_to_kelvin(85.0))
        assert c.t_heatsink_max == pytest.approx(celsius_to_kelvin(70.0))
        assert c.pe_max == pytest.approx(1e-4)

    def test_memory_latencies(self):
        c = DEFAULT_CALIBRATION
        assert c.l1_roundtrip_cycles_nominal == 2
        assert c.l2_roundtrip_cycles_nominal == 8
        assert c.memory_roundtrip_cycles_nominal == 208
        assert c.memory_latency_seconds == pytest.approx(208 / 4e9)

    def test_lowslope_published_factors(self):
        c = DEFAULT_CALIBRATION
        # [1]: +30% power/area; variance doubles -> sigma x sqrt(2).
        assert c.lowslope_power_factor == pytest.approx(1.30)
        assert c.lowslope_sigma_factor**2 == pytest.approx(2.0)


class TestInternalConsistency:
    def test_stage_means_positive(self):
        for kind in STAGE_KINDS:
            assert 0.0 < DEFAULT_CALIBRATION.stage_mean(kind) < 1.0

    def test_stage_balance_identity(self):
        c = DEFAULT_CALIBRATION
        for kind in STAGE_KINDS:
            total = c.stage_mean(kind) + c.z_free * c.stage_sigma[kind]
            assert total == pytest.approx(1.0)

    def test_onset_sharpness_ordering(self):
        c = DEFAULT_CALIBRATION
        assert (
            c.stage_sigma["memory"]
            < c.stage_sigma["mixed"]
            < c.stage_sigma["logic"]
        )

    def test_memory_has_most_parallel_paths(self):
        c = DEFAULT_CALIBRATION
        assert c.path_count["memory"] > c.path_count["logic"]

    def test_repair_only_for_arrays(self):
        c = DEFAULT_CALIBRATION
        assert c.repair_quantile["logic"] == pytest.approx(1.0)
        assert c.repair_quantile["memory"] < 1.0

    def test_validate_catches_bad_sigma(self):
        bad = dataclasses.replace(
            DEFAULT_CALIBRATION,
            stage_sigma={"memory": 0.2, "mixed": 0.2, "logic": 0.2},
        )
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_catches_bad_pe_max(self):
        with pytest.raises(ValueError):
            dataclasses.replace(DEFAULT_CALIBRATION, pe_max=2.0).validate()

    def test_validate_catches_inverted_thermals(self):
        bad = dataclasses.replace(
            DEFAULT_CALIBRATION, t_max=celsius_to_kelvin(60.0)
        )
        with pytest.raises(ValueError):
            bad.validate()

    def test_power_budget_split(self):
        c = DEFAULT_CALIBRATION
        # ~30% static fraction at 45 nm.
        frac = c.core_static_power_nominal / (
            c.core_static_power_nominal + c.core_dynamic_power_nominal
        )
        assert 0.2 < frac < 0.4
