"""The ``repro.workloads`` subsystem: ingest, generate, evolve.

Covers the profile wire format and content hashes, trace ingestion
accuracy against known synthetic sources, deterministic family
generation, the genetic loop's reproducibility and cache reuse, the
inline-profile protocol path (including a fleet worker over real TCP),
and the ``workload_family`` DSE axis.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.config import Settings
from repro.core import TS, AdaptationMode
from repro.exps.dse.spec import Axis, SweepSpec
from repro.exps.dse.drive import _point_runspec
from repro.exps.engine import RunSpec
from repro.exps.runner import ExperimentRunner, RunnerConfig

from repro.microarch.trace import generate_trace
from repro.microarch.workloads import WorkloadProfile, spec2000_like_suite
from repro.serve import (
    CampaignService,
    FleetWorker,
    ServiceClient,
    ServiceDaemon,
    UnknownWorkloadError,
    spec_from_wire,
    summaries_from_wire,
    workloads_from_wire,
    workloads_to_wire,
)
from repro.workloads import (
    EvolveConfig,
    canonical_family_ref,
    crossover_profiles,
    evolve,
    family_by_name,
    family_names,
    ingest_trace,
    iter_trace,
    load_profiles,
    mutate_profile,
    parse_family_ref,
    register_trace_adapter,
    save_profiles,
    trace_adapters,
    trace_records,
    write_jsonl_trace,
)
from repro.workloads.__main__ import main as workloads_main

TINY_CONFIG = RunnerConfig(
    n_chips=2,
    cores_per_chip=1,
    n_instructions=3000,
    fuzzy_examples=300,
    fuzzy_epochs=1,
)


@pytest.fixture()
def metrics():
    registry = obs.MetricsRegistry()
    with obs.scoped(registry):
        yield registry


# ----------------------------------------------------------------------
# Wire format + content hashes.
# ----------------------------------------------------------------------
class TestWireFormat:
    def test_suite_round_trips(self, suite):
        for profile in suite:
            clone = WorkloadProfile.from_wire(profile.to_wire())
            assert clone == profile
            assert clone.content_hash() == profile.content_hash()

    def test_wire_is_json_stable(self, suite):
        profile = suite[0]
        first = json.dumps(profile.to_wire(), sort_keys=True)
        second = json.dumps(
            WorkloadProfile.from_wire(json.loads(first)).to_wire(),
            sort_keys=True,
        )
        assert first == second

    def test_content_hash_tracks_content_not_name(self, suite):
        import dataclasses

        profile = suite[0]
        renamed = dataclasses.replace(profile, name="other")
        assert renamed.content_hash() != profile.content_hash()
        bumped = dataclasses.replace(
            profile, l2_miss_rate=profile.l2_miss_rate * 0.5
        )
        assert bumped.content_hash() != profile.content_hash()
        assert (
            WorkloadProfile.from_wire(profile.to_wire()).content_hash()
            == profile.content_hash()
        )

    def test_from_wire_rejects_unknown_mix_kind(self, suite):
        doc = suite[0].to_wire()
        doc["mix"] = {"NOT_A_UOP": 1.0}
        with pytest.raises(ValueError, match="mix kind"):
            WorkloadProfile.from_wire(doc)

    def test_from_wire_rejects_bad_phase(self, suite):
        doc = suite[0].to_wire()
        doc["phases"] = [{"weight": 0.5}]
        with pytest.raises(ValueError, match="phase document"):
            WorkloadProfile.from_wire(doc)


# ----------------------------------------------------------------------
# Ingestion.
# ----------------------------------------------------------------------
class TestIngestion:
    def test_measures_known_source(self, tmp_path, int_workload):
        trace = generate_trace(int_workload, 20000, seed=5)
        path = tmp_path / "t.jsonl"
        write_jsonl_trace(trace_records(trace), str(path))
        profile = ingest_trace(str(path), name="measured")
        assert profile.name == "measured"
        # The measured mix should sit near the generating distribution.
        for kind, fraction in int_workload.mix.items():
            assert profile.mix.get(kind, 0.0) == pytest.approx(
                fraction, abs=0.05
            )
        assert sum(profile.mix.values()) == 1.0
        assert profile.dep_mean_distance >= 1.0
        assert 0.0 <= profile.l2_miss_rate <= 1.0

    def test_csv_and_jsonl_agree(self, tmp_path, int_workload):
        trace = generate_trace(int_workload, 4000, seed=9)
        records = list(trace_records(trace))
        jsonl = tmp_path / "t.jsonl"
        write_jsonl_trace(records, str(jsonl))
        csv_path = tmp_path / "t.csv"
        with open(csv_path, "w", encoding="utf-8") as handle:
            handle.write(
                "op,dep1,dep2,branch_miss,l1_miss,l2_miss,icache_miss,block\n"
            )
            for r in records:
                block = "" if r.block is None else r.block
                handle.write(
                    f"{r.op.name},{r.dep1},{r.dep2},{int(r.branch_miss)},"
                    f"{int(r.l1_miss)},{int(r.l2_miss)},"
                    f"{int(r.icache_miss)},{block}\n"
                )
        a = ingest_trace(str(jsonl), name="x")
        b = ingest_trace(str(csv_path), name="x")
        assert a.content_hash() == b.content_hash()

    def test_adapter_registration(self, tmp_path, int_workload):
        trace = generate_trace(int_workload, 1000, seed=2)
        records = list(trace_records(trace))
        path = tmp_path / "t.custom"
        write_jsonl_trace(records, str(path))

        def read_custom(p):
            return iter_trace(p, format="jsonl")

        register_trace_adapter("customfmt", read_custom)
        assert "customfmt" in trace_adapters()
        profile = ingest_trace(str(path), name="c", format="customfmt")
        assert profile.name == "c"
        with pytest.raises(ValueError, match="customfmt"):
            next(iter_trace(str(path), format="nope"))
        with pytest.raises(ValueError):
            register_trace_adapter("jsonl", read_custom)

    def test_save_load_round_trip(self, tmp_path, suite):
        path = tmp_path / "profiles.json"
        save_profiles(suite[:3], str(path))
        loaded = load_profiles(str(path))
        assert loaded == tuple(suite[:3])

    def test_golden_ingest_wire_round_trip(self, tmp_path, int_workload):
        """Ingested-then-serialized profiles round-trip bit-identically."""
        trace = generate_trace(int_workload, 6000, seed=11)
        path = tmp_path / "t.jsonl"
        write_jsonl_trace(trace_records(trace), str(path))
        profile = ingest_trace(str(path), name="golden")
        out = tmp_path / "p.json"
        save_profiles([profile], str(out))
        (clone,) = load_profiles(str(out))
        assert clone == profile
        assert json.dumps(clone.to_wire(), sort_keys=True) == json.dumps(
            profile.to_wire(), sort_keys=True
        )


# ----------------------------------------------------------------------
# Families.
# ----------------------------------------------------------------------
class TestFamilies:
    def test_presets_exist(self):
        assert set(family_names()) >= {"bursty", "phase_heavy", "memory_bound"}

    @pytest.mark.parametrize("name", ["bursty", "phase_heavy", "memory_bound"])
    def test_generation_is_deterministic(self, name):
        family = family_by_name(name)
        first = family.generate(size=4, seed=42)
        second = family.generate(size=4, seed=42)
        assert [p.content_hash() for p in first] == [
            p.content_hash() for p in second
        ]
        other = family.generate(size=4, seed=43)
        assert [p.content_hash() for p in first] != [
            p.content_hash() for p in other
        ]

    def test_members_stable_under_size(self):
        family = family_by_name("bursty")
        small = family.generate(size=2, seed=7)
        large = family.generate(size=5, seed=7)
        assert [p.content_hash() for p in small] == [
            p.content_hash() for p in large[:2]
        ]

    def test_members_are_valid_and_tightly_closed(self):
        for name in family_names():
            for profile in family_by_name(name).generate(size=6, seed=1):
                assert sum(profile.mix.values()) == pytest.approx(
                    1.0, abs=1e-12
                )
                assert sum(p.weight for p in profile.phases) == pytest.approx(
                    1.0, abs=1e-12
                )

    def test_parse_family_ref(self):
        family, size, seed = parse_family_ref("bursty:3:9")
        assert (family.name, size, seed) == ("bursty", 3, 9)
        assert canonical_family_ref("bursty") == canonical_family_ref(
            "bursty:4:0"
        )
        with pytest.raises(KeyError):
            parse_family_ref("nonesuch:2:1")
        with pytest.raises(ValueError):
            parse_family_ref("bursty:0:1")


# ----------------------------------------------------------------------
# Genome operators + loop config.
# ----------------------------------------------------------------------
class TestEvolveOperators:
    def test_mutation_preserves_validity(self, suite):
        rng = np.random.default_rng(3)
        for profile in suite[:4]:
            child = mutate_profile(profile, rng, scale=0.6, name="kid")
            assert child.name == "kid"
            assert sum(child.mix.values()) == pytest.approx(1.0, abs=1e-12)
            assert sum(p.weight for p in child.phases) == pytest.approx(
                1.0, abs=1e-9
            )
            assert child.content_hash() != profile.content_hash()

    def test_mutation_is_seed_deterministic(self, suite):
        a = mutate_profile(suite[0], np.random.default_rng(5), name="m")
        b = mutate_profile(suite[0], np.random.default_rng(5), name="m")
        assert a.content_hash() == b.content_hash()

    def test_crossover_same_and_cross_domain(self, suite):
        rng = np.random.default_rng(1)
        int_a, int_b = suite[0], suite[1]
        child = crossover_profiles(int_a, int_b, rng, name="x")
        assert child.name == "x"
        assert sum(child.mix.values()) == pytest.approx(1.0, abs=1e-12)
        fp = next(p for p in suite if p.domain != int_a.domain)
        fallback = crossover_profiles(int_a, fp, rng, name="y")
        assert fallback.mix == int_a.mix

    def test_config_validation(self):
        with pytest.raises(ValueError, match="objective"):
            EvolveConfig(objective="nope")
        with pytest.raises(ValueError):
            EvolveConfig(population=1)
        with pytest.raises(ValueError):
            EvolveConfig(elite=6, population=6)
        with pytest.raises(KeyError):
            EvolveConfig(environment="nope")


# ----------------------------------------------------------------------
# The evolve loop against a real (tiny) runner.
# ----------------------------------------------------------------------
class TestEvolveLoop:
    def test_deterministic_and_cache_served(self, metrics):
        runner = ExperimentRunner(TINY_CONFIG)
        seeds = family_by_name("bursty").generate(size=3, seed=42)
        config = EvolveConfig(
            generations=3, population=4, elite=2, seed=7, objective="power"
        )
        first = evolve(seeds, config=config, runner=runner)
        second = evolve(seeds, config=config, runner=runner)
        assert first.winner_hash == second.winner_hash
        assert first.fitness == second.fitness
        assert [e["best"] for e in first.history] == [
            e["best"] for e in second.history
        ]
        # Elites re-scored from generation 2 onward hit the memo.
        assert first.evals_cached > 0
        assert first.evals_submitted + first.evals_cached >= (
            config.generations * config.population
        ) - first.evals_cached
        counters = metrics.to_dict()["counters"]
        assert counters["workloads.generations"] == 2 * config.generations
        assert counters["workloads.evals_cached"] >= 2.0
        assert counters["workloads.evals"] >= 2.0


# ----------------------------------------------------------------------
# Inline profiles across the protocol, daemon and fleet.
# ----------------------------------------------------------------------
class TestInlineProtocol:
    def test_generated_profile_round_trips_inline(self):
        profiles = family_by_name("bursty").generate(size=2, seed=3)
        wire = workloads_to_wire(profiles)
        assert all(isinstance(item, dict) for item in wire)
        assert workloads_from_wire(wire) == profiles
        suite_wire = workloads_to_wire(spec2000_like_suite()[:2])
        assert all(isinstance(item, str) for item in suite_wire)

    def test_daemon_rejects_unknown_with_available_list(self):
        runner = ExperimentRunner(TINY_CONFIG)
        service = CampaignService(runner, workers=0)
        daemon = ServiceDaemon(service, address="127.0.0.1:0").start()
        try:
            client = ServiceClient(daemon.address)
            with pytest.raises(UnknownWorkloadError) as excinfo:
                client.request(
                    "submit",
                    spec={"environments": ["TS"], "workloads": ["nonesuch"]},
                )
            assert excinfo.value.missing == ["nonesuch"]
            assert "gzip*" in excinfo.value.available
        finally:
            daemon.stop()

    def test_fleet_worker_runs_generated_profile_bit_identical(self, metrics):
        profile = family_by_name("bursty").generate(size=1, seed=42)[0]
        spec = RunSpec(
            environments=(TS,),
            modes=(AdaptationMode.EXH_DYN,),
            workloads=(profile,),
        )
        runner = ExperimentRunner(TINY_CONFIG)
        settings = Settings(heartbeat_interval=0.5, lease_timeout=60.0)
        service = CampaignService(runner, settings=settings, workers=0)
        daemon = ServiceDaemon(service, address="127.0.0.1:0").start()
        try:
            worker = FleetWorker(
                daemon.address, poll_interval=0.05, max_idle=60.0
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            client = ServiceClient(daemon.address)
            response = client.result(client.submit(spec), timeout=300)
            cells = summaries_from_wire(response["cells"])
            worker.stop()
            thread.join(timeout=30.0)
        finally:
            daemon.stop()
        direct = ExperimentRunner(TINY_CONFIG).run(spec)
        key = ("TS", "Exh-Dyn")
        assert cells[key] == direct.summaries[key]

    def test_submit_wire_spec_with_inline_doc(self):
        profile = family_by_name("memory_bound").generate(size=1, seed=8)[0]
        spec = spec_from_wire({
            "environments": ["TS"],
            "modes": ["Exh-Dyn"],
            "workloads": ["gzip*", profile.to_wire()],
        })
        assert spec.workloads[0].name == "gzip*"
        assert spec.workloads[1] == profile


# ----------------------------------------------------------------------
# The DSE axis.
# ----------------------------------------------------------------------
class TestDseFamilyAxis:
    def test_axis_expands_to_family_members(self):
        sweep = SweepSpec(
            axes=(
                Axis.of("environment", ["TS"]),
                Axis.of("workload_family", ["bursty:2:42"]),
            )
        )
        (point,) = sweep.expand()
        runspec = _point_runspec(point)
        expected = family_by_name("bursty").generate(size=2, seed=42)
        assert runspec.workloads == expected

    def test_axis_canonicalises_refs(self):
        axis = Axis.of("workload_family", ["bursty"])
        assert axis.values == ("bursty:4:0",)
        with pytest.raises(ValueError, match="workload_family"):
            Axis.of("workload_family", ["nonesuch:2:1"])

    def test_family_conflicts_with_workloads(self):
        with pytest.raises(ValueError, match="not both"):
            SweepSpec(
                axes=(
                    Axis.of("environment", ["TS"]),
                    Axis.of("workload_family", ["bursty"]),
                ),
                base={"workloads": ["gzip*"]},
            )


# ----------------------------------------------------------------------
# CLI.
# ----------------------------------------------------------------------
class TestWorkloadsCli:
    def test_generate_writes_profiles(self, tmp_path, capsys):
        out = tmp_path / "family.json"
        assert workloads_main(["generate", "bursty:2:42", "--out", str(out)]) == 0
        profiles = load_profiles(str(out))
        assert profiles == family_by_name("bursty").generate(size=2, seed=42)
        assert "bursty-42-000" in capsys.readouterr().out

    def test_ingest_cli(self, tmp_path, int_workload, capsys):
        trace = generate_trace(int_workload, 2000, seed=4)
        path = tmp_path / "web.jsonl"
        write_jsonl_trace(trace_records(trace), str(path))
        out = tmp_path / "profiles.json"
        assert workloads_main(["ingest", str(path), "--out", str(out)]) == 0
        (profile,) = load_profiles(str(out))
        assert profile.name == "web"
        assert "web" in capsys.readouterr().out

    def test_ingest_missing_file_fails(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert workloads_main(["ingest", str(missing)]) == 1
        assert "cannot ingest" in capsys.readouterr().err

    def test_generate_unknown_family_fails(self, capsys):
        assert workloads_main(["generate", "nonesuch"]) == 2
        assert "nonesuch" in capsys.readouterr().err
