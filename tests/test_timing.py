"""VATS timing-error model and timing speculation (Eqs 4-5)."""

import numpy as np
import pytest

from repro.timing import (
    CheckerConfig,
    PerfParams,
    StageModifiers,
    effective_cpi,
    error_free_frequency,
    frequency_at_stage_budget,
    max_frequency_under_budget,
    miss_penalty_cycles,
    optimal_on_curve,
    performance,
    processor_error_rate,
    stage_delays,
    stage_error_rates,
)


@pytest.fixture(scope="module")
def delays(core):
    n = core.n_subsystems
    return stage_delays(
        core, np.full(n, 1.0), np.zeros(n), core.calib.t_design
    )


@pytest.fixture(scope="module")
def rho(core):
    return core.rho_ref


class TestNormSf:
    """The erfc-based survival function used by stage_error_rates."""

    def test_bit_identical_to_scipy_over_optimizer_range(self):
        from scipy.stats import norm

        from repro.numerics import norm_sf

        # The optimizer probes z from deep error-free (~ +40) to heavy
        # overclocking (~ -10); bit-identity keeps every cached summary
        # and golden table stable across the swap.
        z = np.linspace(-12.0, 40.0, 20001)
        assert np.array_equal(norm_sf(z), norm.sf(z))
        assert norm_sf(0.0) == norm.sf(0.0)

    def test_scalar_and_array_shapes(self):
        from repro.numerics import norm_sf

        assert np.isscalar(float(norm_sf(1.5)))
        assert norm_sf(np.zeros((3, 2))).shape == (3, 2)

    def test_tail_values(self):
        from repro.numerics import norm_sf

        assert norm_sf(40.0) == 0.0  # underflow, like scipy
        assert norm_sf(-40.0) == 1.0


class TestStageDelays:
    def test_positive_and_ordered(self, delays):
        assert np.all(delays.mean > 0)
        assert np.all(delays.sigma > 0)
        assert np.all(delays.error_free_period() > delays.mean)

    def test_memory_has_sharper_onset_than_logic(self, core, delays):
        kinds = core.kinds
        mem_ratio = [
            delays.sigma[i] / delays.mean[i]
            for i in range(len(kinds))
            if kinds[i] == "memory"
        ]
        logic_ratio = [
            delays.sigma[i] / delays.mean[i]
            for i in range(len(kinds))
            if kinds[i] == "logic"
        ]
        assert max(mem_ratio) < min(logic_ratio)

    def test_asv_speeds_stages_up(self, core):
        n = core.n_subsystems
        slow = stage_delays(core, np.full(n, 0.9), np.zeros(n), 350.0)
        fast = stage_delays(core, np.full(n, 1.2), np.zeros(n), 350.0)
        assert np.all(fast.mean < slow.mean)

    def test_modifiers_shift(self, core, delays):
        n = core.n_subsystems
        mods = StageModifiers(
            delay_scale=np.full(n, 0.9), sigma_scale=np.ones(n)
        )
        shifted = stage_delays(
            core, np.full(n, 1.0), np.zeros(n), core.calib.t_design, mods
        )
        assert np.allclose(shifted.mean, delays.mean * 0.9)
        assert np.allclose(shifted.sigma, delays.sigma * 0.9)

    def test_modifiers_tilt_preserves_error_free_point(self, core, delays):
        n = core.n_subsystems
        mods = StageModifiers(
            delay_scale=np.ones(n), sigma_scale=np.full(n, 1.5)
        )
        tilted = stage_delays(
            core, np.full(n, 1.0), np.zeros(n), core.calib.t_design, mods
        )
        assert np.allclose(
            tilted.error_free_period(), delays.error_free_period()
        )
        assert np.all(tilted.sigma > delays.sigma)

    def test_modifier_validation(self):
        with pytest.raises(ValueError):
            StageModifiers(delay_scale=np.ones(3), sigma_scale=np.zeros(3))


class TestErrorRates:
    def test_zero_below_error_free_frequency(self, delays, rho):
        f_var = error_free_frequency(delays)
        pe = processor_error_rate(f_var * 0.9, delays, rho)
        assert pe < 1e-9

    def test_monotone_in_frequency(self, delays, rho):
        freqs = np.linspace(3e9, 6e9, 40)
        pe = processor_error_rate(freqs[:, None], delays, rho)
        assert np.all(np.diff(pe) >= -1e-18)

    def test_stage_rates_sum_to_processor_rate(self, delays, rho):
        f = 4.5e9
        per_stage = stage_error_rates(f, delays, rho)
        assert processor_error_rate(f, delays, rho) == pytest.approx(
            per_stage.sum()
        )

    def test_rejects_nonpositive_frequency(self, delays, rho):
        with pytest.raises(ValueError):
            stage_error_rates(0.0, delays, rho)

    def test_budget_frequency_above_error_free(self, delays, rho):
        f_var = error_free_frequency(delays)
        f_budget = max_frequency_under_budget(delays, rho, 1e-4 / 15)
        assert f_budget > f_var

    def test_budget_frequency_meets_budget(self, delays, rho):
        budget = 1e-4 / 15
        f = frequency_at_stage_budget(delays, rho, budget)
        pe = stage_error_rates(f.min(), delays, rho)
        assert np.all(pe <= budget * (1 + 1e-6))

    def test_tighter_budget_means_lower_frequency(self, delays, rho):
        loose = max_frequency_under_budget(delays, rho, 1e-3)
        tight = max_frequency_under_budget(delays, rho, 1e-7)
        assert tight < loose

    def test_pe_cliff_is_steep(self, delays, rho):
        # Section 4.1: f range between PE=1e-4 and PE=1e-1 is minuscule.
        f4 = max_frequency_under_budget(delays, rho, 1e-4 / 15)
        f1 = max_frequency_under_budget(delays, rho, 1e-1 / 15)
        assert (f1 - f4) / f4 < 0.12

    def test_budget_rejects_nonpositive(self, delays, rho):
        with pytest.raises(ValueError):
            frequency_at_stage_budget(delays, rho, 0.0)


class TestPerformanceModel:
    def make_params(self, cpi=0.8, mr=0.003):
        return PerfParams.from_calibration(cpi, mr)

    def test_miss_penalty_grows_with_frequency(self):
        params = self.make_params()
        assert miss_penalty_cycles(5e9, params) > miss_penalty_cycles(4e9, params)

    def test_effective_cpi_components(self):
        params = self.make_params(cpi=1.0, mr=0.0)
        assert effective_cpi(4e9, 0.0, params) == pytest.approx(1.0)
        with_errors = effective_cpi(4e9, 0.01, params)
        assert with_errors == pytest.approx(
            1.0 + 0.01 * params.recovery_penalty
        )

    def test_performance_peaks_then_falls(self, delays, rho):
        params = self.make_params()
        freqs = np.linspace(3e9, 6e9, 120)
        pe = processor_error_rate(freqs[:, None], delays, rho)
        perfs = performance(freqs, pe, params)
        best = int(np.argmax(perfs))
        assert 0 < best < len(freqs) - 1  # interior peak
        assert perfs[-1] < perfs[best] * 0.9  # clear plunge

    def test_optimal_on_curve_matches_argmax(self, delays, rho):
        params = self.make_params()
        freqs = np.linspace(3e9, 6e9, 60)
        pe = processor_error_rate(freqs[:, None], delays, rho)
        f_opt, perf_opt = optimal_on_curve(freqs, pe, params)
        assert perf_opt == pytest.approx(performance(freqs, pe, params).max())

    def test_memory_bound_gains_less_from_frequency(self):
        compute = self.make_params(cpi=0.8, mr=0.0)
        memory = self.make_params(cpi=0.8, mr=0.03)
        gain_compute = performance(5e9, 0.0, compute) / performance(
            4e9, 0.0, compute
        )
        gain_memory = performance(5e9, 0.0, memory) / performance(
            4e9, 0.0, memory
        )
        assert gain_compute > gain_memory

    def test_rejects_negative_error_rate(self):
        with pytest.raises(ValueError):
            effective_cpi(4e9, -0.1, self.make_params())

    def test_params_validation(self):
        with pytest.raises(ValueError):
            PerfParams(cpi_comp=0.0, l2_miss_rate=0.0, recovery_penalty=14,
                       memory_latency_s=52e-9)
        with pytest.raises(ValueError):
            PerfParams(cpi_comp=1.0, l2_miss_rate=0.0, recovery_penalty=14,
                       memory_latency_s=52e-9, overlap_factor=1.5)

    def test_checker_config(self):
        checker = CheckerConfig()
        assert checker.frequency == pytest.approx(3.5e9)  # Figure 7(c)
        assert checker.area_fraction == pytest.approx(0.07)
        with pytest.raises(ValueError):
            CheckerConfig(frequency=0.0)
