"""The repro.serve campaign service: coalescing, supervision, wire protocol."""

import threading
import time

import pytest

from repro.core import BASELINE, NOVAR, TS, TS_ASV, AdaptationMode
from repro.exps import ExperimentRunner, RunnerConfig, RunSpec
from repro.microarch import spec2000_like_suite
from repro.serve import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    CampaignService,
    CellScheduler,
    Client,
    JobCancelledError,
    JobFailedError,
    ProtocolError,
    ProtocolVersionError,
    RetryPolicy,
    ServiceBusyError,
    ServiceClient,
    ServiceDaemon,
    UnknownJobError,
    check_version,
    build_cell,
    parse_address,
    run_ladder_remote,
    spec_from_wire,
    spec_to_wire,
    summaries_from_wire,
    summaries_to_wire,
)
from repro.serve.coalesce import NOVAR_CHIP
from repro.serve.protocol import decode_line, encode_line

#: Same tiny-but-multi-chip scale as test_engine.py: two chips exercise
#: unit decomposition and reassembly order.
SERVE_CONFIG = RunnerConfig(
    n_chips=2,
    cores_per_chip=1,
    n_instructions=3000,
    fuzzy_examples=300,
    fuzzy_epochs=1,
)


@pytest.fixture()
def runner():
    return ExperimentRunner(SERVE_CONFIG)


@pytest.fixture()
def two_workloads():
    return tuple(spec2000_like_suite()[:2])


def counting_run_unit(runner):
    """Instrument a runner instance; returns the call log."""
    calls = []
    original = runner.run_unit

    def counted(env, mode, chip_index, core_index, *args, **kwargs):
        calls.append((env.name, mode.value, chip_index, core_index))
        return original(env, mode, chip_index, core_index, *args, **kwargs)

    runner.run_unit = counted
    return calls


class TestCoalescing:
    def test_overlapping_jobs_compute_each_cell_once(self, runner, two_workloads):
        calls = counting_run_unit(runner)
        # Hold the workers at the first unit until both jobs are in, so
        # the overlap is guaranteed rather than a race.
        gate = threading.Event()
        counted = runner.run_unit

        def gated(*args, **kwargs):
            gate.wait(30)
            return counted(*args, **kwargs)

        runner.run_unit = gated
        spec = RunSpec(
            environments=(BASELINE, TS),
            modes=(AdaptationMode.EXH_DYN,),
            workloads=two_workloads,
        )
        with CampaignService(runner, workers=2) as service:
            client = Client(service)
            first = client.submit(spec)
            second = client.submit(spec)
            gate.set()
            r1 = client.result(first, timeout=300)
            r2 = client.result(second, timeout=300)
        # 2 cells x 2 chips = 4 units total, not 8: the second job
        # followed the first's in-flight cells.
        assert len(calls) == 4
        assert len(set(calls)) == 4
        assert r1.summaries == r2.summaries
        assert client.status(second)["cells"]["coalesced"] == 2

    def test_results_bit_identical_to_direct_run(self, runner, two_workloads):
        spec = RunSpec(
            environments=(BASELINE, TS, NOVAR),
            modes=(AdaptationMode.EXH_DYN,),
            workloads=two_workloads,
        )
        with CampaignService(runner, workers=2) as service:
            job = Client(service).submit(spec)
            served = service.result(job, timeout=300)
        direct = ExperimentRunner(SERVE_CONFIG).run(spec)
        assert set(served.summaries) == set(direct.summaries)
        for cell, summary in direct.summaries.items():
            assert served.summaries[cell] == summary, cell

    def test_second_submission_served_from_cache(
        self, runner, two_workloads, tmp_path
    ):
        from repro.exps.cache import ExperimentCache

        calls = counting_run_unit(runner)
        spec = RunSpec(
            environments=(TS,),
            modes=(AdaptationMode.EXH_DYN,),
            workloads=two_workloads,
        )
        cache = ExperimentCache(tmp_path)
        with CampaignService(runner, workers=2, cache=cache) as service:
            client = Client(service)
            client.result(client.submit(spec), timeout=300)
            computed = len(calls)
            job = client.submit(spec)
            # No new units: the summary came straight off disk.
            assert client.status(job)["state"] == "done"
            assert client.status(job)["cells"]["cached"] == 1
            assert len(calls) == computed

    def test_novar_cell_is_one_pseudo_unit(self, runner, two_workloads):
        cell = build_cell("k", NOVAR, AdaptationMode.EXH_DYN, two_workloads, 4, 2)
        assert len(cell.units) == 1
        assert cell.units[0].chip_index == NOVAR_CHIP
        grid = build_cell("k", TS, AdaptationMode.EXH_DYN, two_workloads, 4, 2)
        assert len(grid.units) == 8


class TestFaultTolerance:
    def test_flaky_unit_is_retried_to_success(self, runner, two_workloads):
        original = runner.run_unit
        failures = {"left": 2}

        def flaky(env, mode, chip_index, core_index, *args, **kwargs):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("transient fault")
            return original(env, mode, chip_index, core_index, *args, **kwargs)

        runner.run_unit = flaky
        policy = RetryPolicy(retries=3, backoff=0.0)
        spec = RunSpec(
            environments=(TS,),
            modes=(AdaptationMode.EXH_DYN,),
            workloads=two_workloads,
        )
        with CampaignService(runner, workers=1, policy=policy) as service:
            job = service.submit(spec)
            result = service.result(job, timeout=300)
        assert failures["left"] == 0
        assert (TS.name, "Exh-Dyn") in result.summaries

    def test_poisoned_cell_fails_only_its_job(self, runner, two_workloads):
        original = runner.run_unit

        def poisoned(env, mode, chip_index, core_index, *args, **kwargs):
            if env.name == TS_ASV.name and chip_index == 1:
                raise RuntimeError("bad chip")
            return original(env, mode, chip_index, core_index, *args, **kwargs)

        runner.run_unit = poisoned
        policy = RetryPolicy(retries=1, backoff=0.0)
        with CampaignService(runner, workers=2, policy=policy) as service:
            doomed = service.submit(RunSpec(
                environments=(TS_ASV,),
                modes=(AdaptationMode.EXH_DYN,),
                workloads=two_workloads,
            ))
            healthy = service.submit(RunSpec(
                environments=(TS,),
                modes=(AdaptationMode.EXH_DYN,),
                workloads=two_workloads,
            ))
            with pytest.raises(JobFailedError) as excinfo:
                service.result(doomed, timeout=300)
            # The structured report carries the poisoned unit's identity
            # and the attempt count that exhausted the budget.
            (failure,) = excinfo.value.failures
            assert failure.environment == TS_ASV.name
            assert failure.mode == "Exh-Dyn"
            assert failure.chip_index == 1
            assert failure.attempts == 2
            assert "bad chip" in failure.error
            # The service stays up: the other job and a post-failure
            # submission both complete normally.
            assert (TS.name, "Exh-Dyn") in service.result(
                healthy, timeout=300
            ).summaries
            retry = service.submit(RunSpec(
                environments=(TS,),
                modes=(AdaptationMode.EXH_DYN,),
                workloads=two_workloads,
            ))
            assert service.result(retry, timeout=300) is not None

    def test_timeout_counts_as_failure(self, runner, two_workloads):
        def sluggish(env, mode, chip_index, core_index, *args, **kwargs):
            time.sleep(0.05)
            raise AssertionError("result must be discarded, not returned")

        runner.run_unit = sluggish
        policy = RetryPolicy(retries=0, backoff=0.0, timeout=0.5)
        with CampaignService(runner, workers=1, policy=policy) as service:
            job = service.submit(RunSpec(
                environments=(TS,),
                modes=(AdaptationMode.EXH_DYN,),
                workloads=two_workloads,
            ))
            with pytest.raises(JobFailedError):
                service.result(job, timeout=60)

    def test_over_budget_success_is_discarded(self, runner, two_workloads):
        def slow_ok(env, mode, chip_index, core_index, *args, **kwargs):
            time.sleep(0.05)
            return []

        runner.run_unit = slow_ok
        policy = RetryPolicy(retries=0, backoff=0.0, timeout=0.001)
        with CampaignService(runner, workers=1, policy=policy) as service:
            job = service.submit(RunSpec(
                environments=(TS,),
                modes=(AdaptationMode.EXH_DYN,),
                workloads=two_workloads,
            ))
            with pytest.raises(JobFailedError) as excinfo:
                service.result(job, timeout=60)
        assert "budget" in excinfo.value.failures[0].error

    def test_cancel(self, runner, two_workloads):
        gate = threading.Event()

        def blocked(env, mode, chip_index, core_index, *args, **kwargs):
            gate.wait(30)
            raise RuntimeError("cancelled units never deliver")

        runner.run_unit = blocked
        policy = RetryPolicy(retries=0, backoff=0.0)
        with CampaignService(runner, workers=1, policy=policy) as service:
            client = Client(service)
            job = client.submit(RunSpec(
                environments=(TS,),
                modes=(AdaptationMode.EXH_DYN,),
                workloads=two_workloads,
            ))
            assert client.cancel(job) is True
            assert client.cancel(job) is False  # already finished
            gate.set()
            with pytest.raises(JobCancelledError):
                client.result(job, timeout=60)

    def test_admission_control(self, runner, two_workloads):
        from repro.config import Settings

        gate = threading.Event()

        def blocked(env, mode, chip_index, core_index, *args, **kwargs):
            gate.wait(30)
            return []

        runner.run_unit = blocked
        settings = Settings(service_max_jobs=1)
        service = CampaignService(runner, settings=settings, workers=1)
        try:
            service.submit(RunSpec(
                environments=(TS,),
                modes=(AdaptationMode.EXH_DYN,),
                workloads=two_workloads,
            ))
            with pytest.raises(ServiceBusyError):
                service.submit(RunSpec(
                    environments=(BASELINE,),
                    modes=(AdaptationMode.EXH_DYN,),
                    workloads=two_workloads,
                ))
        finally:
            gate.set()
            service.close()

    def test_unknown_job(self, runner):
        with CampaignService(runner, workers=1) as service:
            with pytest.raises(UnknownJobError):
                service.status("job-999")


class TestScheduler:
    def test_priority_order(self):
        done = []
        scheduler = CellScheduler(
            lambda item: item,
            workers=1,
            policy=RetryPolicy(retries=0),
            on_done=lambda item, result, attempts: done.append(item),
            on_failed=lambda item, error, attempts: None,
        )
        # Enqueue before starting so ordering is priority, not timing.
        scheduler.submit(0, "low")
        scheduler.submit(5, "high")
        scheduler.submit(5, "high-2")
        scheduler.start()
        deadline = time.monotonic() + 10
        while len(done) < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        scheduler.stop()
        assert done == ["high", "high-2", "low"]

    def test_retry_budget_exhaustion(self):
        attempts_seen = []
        failed = []

        def always_fails(item):
            attempts_seen.append(item)
            raise RuntimeError("boom")

        scheduler = CellScheduler(
            always_fails,
            workers=1,
            policy=RetryPolicy(retries=2, backoff=0.0),
            on_done=lambda *a: None,
            on_failed=lambda item, error, attempts: failed.append(
                (item, attempts)
            ),
        )
        scheduler.start()
        scheduler.submit(0, "unit")
        deadline = time.monotonic() + 10
        while not failed and time.monotonic() < deadline:
            time.sleep(0.01)
        scheduler.stop()
        assert failed == [("unit", 3)]  # 1 try + 2 retries
        assert len(attempts_seen) == 3

    def test_warmup_runs_once_per_worker_before_tasks(self):
        order = []
        scheduler = CellScheduler(
            lambda item: order.append(("task", item)),
            workers=2,
            policy=RetryPolicy(retries=0),
            on_done=lambda *a: None,
            on_failed=lambda *a: None,
            warmup=lambda: order.append(("warmup", None)),
        )
        scheduler.start()
        scheduler.submit(0, "unit")
        deadline = time.monotonic() + 10
        while ("task", "unit") not in order and time.monotonic() < deadline:
            time.sleep(0.01)
        scheduler.stop()
        warmups = [entry for entry in order if entry[0] == "warmup"]
        assert len(warmups) == 2  # one per worker thread
        assert order.index(("warmup", None)) < order.index(("task", "unit"))

    def test_warmup_failure_does_not_kill_worker(self):
        done = []

        def broken_warmup():
            raise RuntimeError("cold start failed")

        scheduler = CellScheduler(
            lambda item: item,
            workers=1,
            policy=RetryPolicy(retries=0),
            on_done=lambda item, result, attempts: done.append(item),
            on_failed=lambda *a: None,
            warmup=broken_warmup,
        )
        scheduler.start()
        scheduler.submit(0, "unit")
        deadline = time.monotonic() + 10
        while not done and time.monotonic() < deadline:
            time.sleep(0.01)
        scheduler.stop()
        assert done == ["unit"]

    def test_claim_predicate_drops_items(self):
        done = []
        scheduler = CellScheduler(
            lambda item: item,
            workers=1,
            policy=RetryPolicy(retries=0),
            on_done=lambda item, result, attempts: done.append(item),
            on_failed=lambda *a: None,
            claim=lambda item: item != "dead",
        )
        scheduler.start()
        scheduler.submit(0, "dead")
        scheduler.submit(0, "alive")
        deadline = time.monotonic() + 10
        while "alive" not in done and time.monotonic() < deadline:
            time.sleep(0.01)
        scheduler.stop()
        assert done == ["alive"]


class TestProtocol:
    def test_spec_roundtrip(self, two_workloads):
        spec = RunSpec(
            environments=(TS, BASELINE),
            modes=(AdaptationMode.STATIC, AdaptationMode.EXH_DYN),
            workloads=two_workloads,
        )
        rebuilt = spec_from_wire(spec_to_wire(spec))
        assert [e.name for e in rebuilt.environments] == ["TS", "Baseline"]
        assert rebuilt.modes == spec.modes
        assert [w.name for w in rebuilt.workloads] == [
            w.name for w in two_workloads
        ]

    def test_spec_defaults_and_errors(self):
        spec = spec_from_wire({"environments": ["TS"]})
        assert spec.modes == (AdaptationMode.EXH_DYN,)
        assert spec.workloads is None
        with pytest.raises(ProtocolError):
            spec_from_wire({"environments": ["NoSuchEnv"]})
        with pytest.raises(ProtocolError):
            spec_from_wire({"environments": ["TS"], "modes": ["NoSuchMode"]})
        with pytest.raises(ProtocolError):
            spec_from_wire({"environments": ["TS"], "workloads": ["nope"]})

    def test_summaries_roundtrip(self):
        from repro.exps.runner import SuiteSummary

        summaries = {
            ("TS", "Exh-Dyn"): SuiteSummary(
                f_rel=0.9031234567891234, perf_rel=0.92, power=24.0
            ),
        }
        rebuilt = summaries_from_wire(summaries_to_wire(summaries))
        assert rebuilt[("TS", "Exh-Dyn")].f_rel == 0.9031234567891234

    def test_framing(self):
        assert decode_line(encode_line({"op": "ping"})) == {"op": "ping"}
        with pytest.raises(ProtocolError):
            decode_line(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2]\n")

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7571") == ("127.0.0.1", 7571)
        with pytest.raises(ValueError):
            parse_address("no-port")


class TestProtocolVersion:
    def test_check_version_accepts_supported_majors(self):
        assert check_version({"op": "ping"}) == 1  # pre-handshake client
        assert check_version({"op": "ping", "v": 1}) == 1
        assert check_version({"op": "ping", "v": 2}) == 2
        assert check_version({"op": "ping", "v": PROTOCOL_VERSION}) == 3
        assert PROTOCOL_VERSION in SUPPORTED_PROTOCOL_VERSIONS

    @pytest.mark.parametrize("bad", [99, 0, -1, "2", 2.0, True, None])
    def test_check_version_rejects_unknown_majors(self, bad):
        with pytest.raises(ProtocolVersionError) as excinfo:
            check_version({"op": "ping", "v": bad})
        assert excinfo.value.requested == bad

    def test_daemon_rejects_unknown_major_structurally(self, runner):
        service = CampaignService(runner, workers=1)
        with ServiceDaemon(service, address="127.0.0.1:0") as daemon:
            response = daemon.dispatch({"op": "ping", "v": 99})
            assert response["ok"] is False
            assert response["kind"] == "version"
            assert response["requested"] == 99
            assert response["supported"] == list(SUPPORTED_PROTOCOL_VERSIONS)
            # A v1 (no "v") request still dispatches normally.
            assert daemon.dispatch({"op": "ping"})["ok"] is True

    def test_responses_are_stamped(self, runner):
        service = CampaignService(runner, workers=1)
        with ServiceDaemon(service, address="127.0.0.1:0") as daemon:
            assert daemon.dispatch({"op": "ping"})["v"] == PROTOCOL_VERSION
            error = daemon.dispatch({"op": "ping", "v": 99})
            assert error["v"] == PROTOCOL_VERSION


class TestDaemon:
    @pytest.fixture()
    def daemon(self, runner):
        service = CampaignService(runner, workers=2)
        with ServiceDaemon(service, address="127.0.0.1:0") as daemon:
            yield daemon

    def test_end_to_end_over_socket(self, daemon, two_workloads):
        import repro

        client = ServiceClient(daemon.address)
        ping = client.ping()
        assert ping["v"] == PROTOCOL_VERSION
        assert ping["__version__"] == repro.__version__
        spec = RunSpec(
            environments=(BASELINE,),
            modes=(AdaptationMode.EXH_DYN,),
            workloads=two_workloads,
        )
        job = client.submit(spec)
        payload = client.result(job, timeout=300)
        summaries = summaries_from_wire(payload["cells"])
        direct = ExperimentRunner(SERVE_CONFIG).run(spec)
        assert summaries[("Baseline", "Exh-Dyn")] == direct.summary(BASELINE)
        assert client.status(job)["state"] == "done"
        assert "counters" in client.metrics()

    def test_error_envelopes_cross_the_wire(self, daemon):
        client = ServiceClient(daemon.address)
        with pytest.raises(UnknownJobError):
            client.status("job-999")

    def test_unknown_op_is_a_protocol_error(self, daemon):
        with pytest.raises(ProtocolError):
            daemon.dispatch({"op": "nope"})
        with pytest.raises(ProtocolError):
            daemon.dispatch({"op": "status"})  # missing job_id

    def test_remote_failure_report(self, daemon, two_workloads):
        service = daemon.service

        def broken(env, mode, chip_index, core_index, *args, **kwargs):
            raise RuntimeError("remote boom")

        service.runner.run_unit = broken
        client = ServiceClient(daemon.address)
        job = client.submit(RunSpec(
            environments=(TS,),
            modes=(AdaptationMode.EXH_DYN,),
            workloads=two_workloads,
        ))
        with pytest.raises(JobFailedError) as excinfo:
            client.result(job, timeout=60)
        assert excinfo.value.failures[0].environment == "TS"
        assert "remote boom" in excinfo.value.failures[0].error

    def test_run_ladder_remote(self, daemon, two_workloads):
        ladder = run_ladder_remote(
            daemon.address,
            environments=[TS],
            modes=(AdaptationMode.EXH_DYN,),
        )
        assert (TS.name, "Exh-Dyn") in ladder.entries
        assert ladder.novar.f_rel == pytest.approx(1.0)
