"""Property-based tests on the Freq/Power optimisation layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import DEFAULT_CALIBRATION
from repro.core import OptimizationSpec, SubsystemArrays, budget_z, freq_algorithm
from repro.circuits import DEFAULT_KNOB_RANGES


def make_batch(vt0, leff, alpha, rho, tail):
    """One-subsystem batch with mixed-stage shape parameters."""
    calib = DEFAULT_CALIBRATION
    sigma = calib.stage_sigma["mixed"]
    mean = calib.stage_mean("mixed") + tail
    return SubsystemArrays(
        vt0_timing=np.array([vt0]),
        leff_timing=np.array([leff]),
        vt0_leak=np.array([vt0 - 0.02]),
        rth=np.array([2.0]),
        kdyn=np.array([3e-10]),
        ksta=np.array([2e-4]),
        alpha=np.array([alpha]),
        rho=np.array([rho]),
        stage_mean_rel=np.array([mean]),
        stage_sigma_rel=np.array([sigma]),
        power_factor=np.array([1.0]),
        calib=calib,
    )


def make_spec(pe_budget=DEFAULT_CALIBRATION.pe_max / 15, asv=True):
    calib = DEFAULT_CALIBRATION
    kr = DEFAULT_KNOB_RANGES
    return OptimizationSpec(
        vdd_levels=kr.vdd_levels() if asv else np.array([1.0]),
        vbb_levels=np.array([0.0]),
        pe_budget=pe_budget,
        t_max=calib.t_max,
        t_heatsink=calib.t_heatsink_max,
    )


subsystem_params = dict(
    vt0=st.floats(min_value=0.08, max_value=0.25),
    leff=st.floats(min_value=0.9, max_value=1.12),
    alpha=st.floats(min_value=0.05, max_value=1.2),
    rho=st.floats(min_value=0.05, max_value=1.5),
    tail=st.floats(min_value=0.0, max_value=0.12),
)


@settings(max_examples=20, deadline=None)
@given(**subsystem_params)
def test_fmax_within_knob_range(vt0, leff, alpha, rho, tail):
    batch = make_batch(vt0, leff, alpha, rho, tail)
    result = freq_algorithm(batch, make_spec())
    kr = DEFAULT_KNOB_RANGES
    assert kr.f_min - 1e-6 <= result.f_max[0] <= kr.f_max + 1e-6


@settings(max_examples=20, deadline=None)
@given(**subsystem_params)
def test_asv_never_hurts_fmax(vt0, leff, alpha, rho, tail):
    batch = make_batch(vt0, leff, alpha, rho, tail)
    with_asv = freq_algorithm(batch, make_spec(asv=True))
    without = freq_algorithm(batch, make_spec(asv=False))
    assert with_asv.f_max[0] >= without.f_max[0] - 1e-6


@settings(max_examples=20, deadline=None)
@given(**subsystem_params)
def test_looser_pe_budget_never_hurts(vt0, leff, alpha, rho, tail):
    batch = make_batch(vt0, leff, alpha, rho, tail)
    tight = freq_algorithm(batch, make_spec(pe_budget=1e-7))
    loose = freq_algorithm(batch, make_spec(pe_budget=1e-3))
    assert loose.f_max[0] >= tight.f_max[0] - 1e-6


@settings(max_examples=20, deadline=None)
@given(**subsystem_params)
def test_longer_tail_never_raises_fmax(vt0, leff, alpha, rho, tail):
    batch_short = make_batch(vt0, leff, alpha, rho, tail)
    batch_long = make_batch(vt0, leff, alpha, rho, tail + 0.05)
    spec = make_spec()
    f_short = freq_algorithm(batch_short, spec).f_max[0]
    f_long = freq_algorithm(batch_long, spec).f_max[0]
    assert f_long <= f_short + 1e-6


@settings(max_examples=20, deadline=None)
@given(
    rho=st.floats(min_value=1e-3, max_value=2.0),
    budget=st.floats(min_value=1e-8, max_value=1e-2),
)
def test_budget_z_inverts_gaussian_tail(rho, budget):
    from scipy.stats import norm

    batch = make_batch(0.15, 1.0, 0.5, rho, 0.05)
    z = budget_z(batch, budget)[0]
    calib = DEFAULT_CALIBRATION
    if 0.0 < z < calib.z_free:
        # Interior solution: Q(z) * rho == budget.
        assert rho * norm.sf(z) == pytest.approx(budget, rel=1e-6)
    else:
        assert z in (0.0, calib.z_free) or 0.0 <= z <= calib.z_free
