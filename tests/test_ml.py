"""Fuzzy controllers: inference (Eqs 10-12), training (Eq 13), banks."""

import numpy as np
import pytest

from repro.ml import (
    FuzzyController,
    generate_training_data,
    sample_inputs,
    train_fuzzy_controller,
)
from repro.ml.dataset import (
    TrainingRequest,
    demand_feature,
    generate_training_datasets,
    _batch_arrays,
)


def _simple_fc():
    return FuzzyController(
        mu=np.array([[0.0, 0.0], [1.0, 1.0]]),
        sigma=np.full((2, 2), 0.5),
        y=np.array([0.0, 10.0]),
        input_mean=np.zeros(2),
        input_std=np.ones(2),
    )


class TestFuzzyInference:
    def test_output_at_rule_centre(self):
        fc = _simple_fc()
        assert fc.predict(np.array([0.0, 0.0])) == pytest.approx(0.0, abs=0.01)
        assert fc.predict(np.array([1.0, 1.0])) == pytest.approx(10.0, abs=0.01)

    def test_interpolates_between_rules(self):
        fc = _simple_fc()
        mid = fc.predict(np.array([0.5, 0.5]))
        assert 4.0 < mid < 6.0

    def test_far_input_falls_back_to_nearest_rule(self):
        fc = _simple_fc()
        assert fc.predict(np.array([100.0, 100.0])) == pytest.approx(10.0)

    def test_batch_matches_scalar(self, rng):
        fc = _simple_fc()
        xs = rng.normal(0.5, 0.4, size=(20, 2))
        batch = fc.predict_batch(xs)
        scalar = np.array([fc.predict(x) for x in xs])
        assert np.allclose(batch, scalar)

    def test_output_bounded_by_rule_outputs(self, rng):
        # Eq 12 is a convex combination: the output cannot exceed the
        # rule outputs' range.
        fc = _simple_fc()
        xs = rng.normal(0.5, 1.0, size=(100, 2))
        out = fc.predict_batch(xs)
        assert out.min() >= -1e-9 and out.max() <= 10.0 + 1e-9

    def test_shape_validation(self):
        fc = _simple_fc()
        with pytest.raises(ValueError):
            fc.predict(np.zeros(3))
        with pytest.raises(ValueError):
            fc.predict_batch(np.zeros((4, 3)))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FuzzyController(
                mu=np.zeros((2, 2)),
                sigma=np.zeros((2, 2)),  # non-positive widths
                y=np.zeros(2),
                input_mean=np.zeros(2),
                input_std=np.ones(2),
            )


class TestTraining:
    def test_learns_linear_function(self, rng):
        X = rng.uniform(-1, 1, size=(2000, 3))
        y = 2.0 * X[:, 0] - X[:, 1]
        fc, report = train_fuzzy_controller(X, y, epochs=2, seed=0)
        assert report.final_rmse < 0.3 * y.std()

    def test_learns_nonlinear_function(self, rng):
        X = rng.uniform(-1, 1, size=(4000, 2))
        y = np.sin(2 * X[:, 0]) + X[:, 1] ** 2
        fc, report = train_fuzzy_controller(X, y, epochs=3, seed=0)
        assert report.final_rmse < 0.35 * y.std()

    def test_more_epochs_do_not_hurt(self, rng):
        X = rng.uniform(-1, 1, size=(3000, 2))
        y = X[:, 0] * X[:, 1]
        _, r1 = train_fuzzy_controller(X, y, epochs=1, seed=0)
        _, r3 = train_fuzzy_controller(X, y, epochs=4, seed=0)
        assert r3.final_rmse <= r1.final_rmse * 1.05

    def test_rule_count_respected(self, rng):
        X = rng.uniform(-1, 1, size=(500, 2))
        fc, _ = train_fuzzy_controller(X, X[:, 0], n_rules=10, seed=0)
        assert fc.n_rules == 10

    def test_requires_enough_examples(self, rng):
        X = rng.uniform(-1, 1, size=(10, 2))
        with pytest.raises(ValueError):
            train_fuzzy_controller(X, X[:, 0], n_rules=25)

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            train_fuzzy_controller(np.zeros((50, 2)), np.zeros(40))

    def test_training_is_deterministic(self, rng):
        X = rng.uniform(-1, 1, size=(600, 2))
        y = X[:, 0]
        a, _ = train_fuzzy_controller(X, y, seed=7)
        b, _ = train_fuzzy_controller(X, y, seed=7)
        assert np.array_equal(a.mu, b.mu)
        assert np.array_equal(a.y, b.y)


class TestDataset:
    def test_sampled_inputs_in_physical_ranges(self, core, rng):
        samples = sample_inputs(core, 0, 500, rng)
        assert np.all(samples.vt0_timing > 0.0)
        assert np.all(samples.alpha > 0.0)
        assert np.all(samples.tail >= 0.0)
        assert np.all(samples.th <= core.calib.t_heatsink_max)

    def test_generated_targets_within_knob_range(self, core, asv_spec):
        fx, fy, px, vdd, vbb = generate_training_data(
            core, 0, asv_spec, n_examples=300, seed=1
        )
        kr = asv_spec.knob_ranges
        assert np.all(fy * 1e9 >= kr.f_min - 1e-6)
        assert np.all(fy * 1e9 <= kr.f_max + 1e-6)
        assert set(np.round(vdd, 4)) <= set(np.round(asv_spec.vdd_levels, 4))
        assert np.all(vbb == 0.0)  # no ABB in this spec

    def test_longer_channels_get_lower_fmax(self, core, asv_spec, rng):
        # Leff affects only delay (not leakage), so unlike Vt — where low
        # thresholds are fast but leaky-hot — its effect on fmax is
        # unambiguous: longer channels are slower.
        samples = sample_inputs(core, 0, 400, rng)
        batch = _batch_arrays(core, 0, samples)
        from repro.core.optimizer import freq_algorithm

        result = freq_algorithm(batch, asv_spec)
        order = np.argsort(samples.leff)
        short_mean = result.f_max[order[:100]].mean()
        long_mean = result.f_max[order[-100:]].mean()
        assert short_mean > long_mean

    def test_demand_feature_increases_with_f_core(self, core, asv_spec, rng):
        samples = sample_inputs(core, 0, 50, rng)
        batch = _batch_arrays(core, 0, samples)
        low = demand_feature(batch, 3e9, samples.th, asv_spec.pe_budget)
        high = demand_feature(batch, 4.5e9, samples.th, asv_spec.pe_budget)
        assert np.all(high > low)

    def test_multi_request_labeling_matches_single(self, core, asv_spec):
        requests = [
            TrainingRequest(index=0, seed=7, n_examples=300),
            TrainingRequest(index=2, seed=8, n_examples=450, delay_scale=0.9),
            TrainingRequest(index=0, seed=9, n_examples=300, power_factor=1.3),
        ]
        joint = generate_training_datasets(
            core, asv_spec, requests, chunk=200
        )
        assert len(joint) == len(requests)
        for request, got in zip(requests, joint):
            want = generate_training_data(
                core,
                request.index,
                asv_spec,
                n_examples=request.n_examples,
                seed=request.seed,
                delay_scale=request.delay_scale,
                sigma_scale=request.sigma_scale,
                power_factor=request.power_factor,
                chunk=200,
            )
            assert len(got) == len(want) == 5
            for got_part, want_part in zip(got, want):
                assert np.array_equal(got_part, want_part)

    def test_labeling_invariant_to_request_grouping(self, core, asv_spec):
        # Batching lanes across *requests* must not perturb any request's
        # RNG stream or labels: a request labelled alongside others is
        # bit-identical to the same request labelled alone.
        requests = [
            TrainingRequest(index=1, seed=3, n_examples=240),
            TrainingRequest(index=4, seed=5, n_examples=240),
        ]
        joint = generate_training_datasets(core, asv_spec, requests, chunk=120)
        for request, got in zip(requests, joint):
            alone = generate_training_datasets(
                core, asv_spec, [request], chunk=120
            )[0]
            for got_part, want_part in zip(got, alone):
                assert np.array_equal(got_part, want_part)


class TestBank:
    def test_bank_contains_variant_fcs(self, tiny_bank, core):
        fp = core.floorplan
        assert (fp.index_of("IntQ"), "full") in tiny_bank.freq_fcs
        assert (fp.index_of("IntQ"), "resized") in tiny_bank.freq_fcs
        assert (fp.index_of("IntALU"), "lowslope") in tiny_bank.freq_fcs
        assert (fp.index_of("Dcache"), "base") in tiny_bank.freq_fcs

    def test_predictions_within_ranges(self, tiny_bank, core):
        spec = tiny_bank.spec
        f = tiny_bank.predict_fmax(core, 0, "base", spec.t_heatsink, 0.5, 0.5)
        assert spec.knob_ranges.f_min <= f <= spec.knob_ranges.f_max
        vdd, vbb = tiny_bank.predict_voltages(
            core, 0, "base", spec.t_heatsink, 0.5, 0.5, 3.6e9
        )
        assert np.min(np.abs(spec.vdd_levels - vdd)) < 1e-9
        assert vbb == 0.0

    def test_freq_prediction_tracks_exhaustive(self, tiny_bank, core, other_core):
        """Even a tiny bank should rank a slow chip below a fast one."""
        from repro.core.optimizer import core_subsystem_arrays, freq_algorithm

        spec = tiny_bank.spec
        diffs = []
        for c in (core, other_core):
            subs = core_subsystem_arrays(c, c.alpha_ref, c.rho_ref)
            exact = freq_algorithm(subs, spec)
            for i in range(c.n_subsystems):
                variant = tiny_bank.variants_for(c, i)[0]
                predicted = tiny_bank.predict_fmax(
                    c, i, variant, spec.t_heatsink,
                    float(c.alpha_ref[i]), float(c.rho_ref[i]),
                )
                diffs.append(abs(predicted - exact.f_max[i]))
        # Tiny training set: generous bound (the real bank is ~4x better).
        assert np.mean(diffs) < 0.5e9

    def test_higher_demand_needs_higher_vdd(self, tiny_bank, core):
        spec = tiny_bank.spec
        low_vdd, _ = tiny_bank.predict_voltages(
            core, 0, "base", spec.t_heatsink, 0.5, 0.5, 2.6e9
        )
        high_vdd, _ = tiny_bank.predict_voltages(
            core, 0, "base", spec.t_heatsink, 0.5, 0.5, 4.8e9
        )
        assert high_vdd >= low_vdd
