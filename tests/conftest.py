"""Shared fixtures: small, session-scoped model objects.

Everything expensive (chip populations, cores, measurements, fuzzy banks)
is built once per session at a deliberately small scale; tests assert
behaviour and invariants, not absolute performance numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import DEFAULT_CALIBRATION
from repro.chip import build_core, build_novar_core
from repro.core import TS, TS_ASV, AdaptationMode
from repro.exps.engine import RunSpec
from repro.exps.runner import ExperimentRunner, RunnerConfig


from repro.microarch import (
    DEFAULT_CORE_CONFIG,
    generate_trace,
    measure_workload,
    spec2000_like_suite,
)
from repro.ml import train_controller_bank
from repro.variation import DieGrid, VariationModel


def run_env(runner, env, mode=AdaptationMode.EXH_DYN, workloads=None):
    """One-cell shorthand over ``runner.run`` (the pre-1.6
    ``run_environment`` shim, now test-local)."""
    spec = RunSpec(environments=(env,), modes=(mode,), workloads=workloads)
    return runner.run(spec).summary(env, mode)


@pytest.fixture(scope="session")
def calib():
    """The default calibration constants."""
    return DEFAULT_CALIBRATION


@pytest.fixture(scope="session")
def variation_model():
    """A coarse-grid variation model (fast Cholesky)."""
    return VariationModel(grid=DieGrid(nx=24, ny=24))


@pytest.fixture(scope="session")
def population(variation_model):
    """Six sample chips."""
    return variation_model.population(6, seed=42)


@pytest.fixture(scope="session")
def core(population):
    """One variation-afflicted core."""
    return build_core(population[0], 0)


@pytest.fixture(scope="session")
def other_core(population):
    """A second, different core (for cross-chip comparisons)."""
    return build_core(population[3], 1)


@pytest.fixture(scope="session")
def novar_core():
    """The idealised no-variation core."""
    return build_novar_core()


@pytest.fixture(scope="session")
def suite():
    """The SPEC-2000-like workload suite."""
    return spec2000_like_suite()


@pytest.fixture(scope="session")
def int_workload(suite):
    """An integer workload (gzip-like)."""
    return suite[0]


@pytest.fixture(scope="session")
def fp_workload(suite):
    """An FP workload (swim-like)."""
    return suite[5]


@pytest.fixture(scope="session")
def int_measurement(int_workload):
    """Measured Eq 5 inputs for the integer workload."""
    return measure_workload(int_workload, DEFAULT_CORE_CONFIG, 8000, seed=0)


@pytest.fixture(scope="session")
def fp_measurement(fp_workload):
    """Measured Eq 5 inputs for the FP workload."""
    return measure_workload(fp_workload, DEFAULT_CORE_CONFIG, 8000, seed=0)


@pytest.fixture(scope="session")
def small_trace(int_workload):
    """A short reproducible trace."""
    return generate_trace(int_workload, 3000, seed=1)


@pytest.fixture(scope="session")
def ts_spec(core):
    """Optimisation spec for the TS environment."""
    return TS.optimization_spec(core.n_subsystems, core.calib)


@pytest.fixture(scope="session")
def asv_spec(core):
    """Optimisation spec for the TS+ASV environment."""
    return TS_ASV.optimization_spec(core.n_subsystems, core.calib)


@pytest.fixture(scope="session")
def tiny_bank(core, asv_spec):
    """A small trained fuzzy-controller bank (TS+ASV knobs)."""
    return train_controller_bank(
        core, asv_spec, n_examples=600, epochs=1, seed=0
    )


@pytest.fixture(scope="session")
def tiny_runner():
    """A two-chip experiment runner for integration tests."""
    return ExperimentRunner(
        RunnerConfig(
            n_chips=2,
            cores_per_chip=1,
            n_instructions=5000,
            fuzzy_examples=600,
            fuzzy_epochs=1,
        )
    )


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
