"""The EVAL curve-transform framework (Figure 2 algebra)."""

import numpy as np
import pytest

from repro.core import reshape, shift, tilt, tolerate
from repro.timing import (
    PerfParams,
    processor_error_rate,
    stage_delays,
)


@pytest.fixture(scope="module")
def delays(core):
    n = core.n_subsystems
    return stage_delays(core, np.full(n, 1.0), np.zeros(n), core.calib.t_design)


@pytest.fixture(scope="module")
def rho(core):
    return core.rho_ref


@pytest.fixture(scope="module")
def freqs(core):
    return np.linspace(0.7, 1.3, 120) * core.calib.f_nominal


class TestTilt:
    def test_preserves_error_free_point(self, delays):
        tilted = tilt(delays, 1.5)
        assert np.allclose(
            tilted.error_free_period(), delays.error_free_period()
        )

    def test_lowers_pe_above_f_var(self, delays, rho, freqs):
        tilted = tilt(delays, 1.5)
        pe_before = processor_error_rate(freqs[:, None], delays, rho)
        pe_after = processor_error_rate(freqs[:, None], tilted, rho)
        riding = pe_before > 1e-8
        assert np.all(pe_after[riding] <= pe_before[riding])

    def test_mask_limits_effect(self, delays):
        mask = np.zeros_like(delays.sigma, dtype=bool)
        mask[0] = True
        tilted = tilt(delays, 2.0, which=mask)
        assert tilted.sigma[0] == pytest.approx(2.0 * delays.sigma[0])
        assert np.allclose(tilted.sigma[1:], delays.sigma[1:])

    def test_rejects_nonpositive_factor(self, delays):
        with pytest.raises(ValueError):
            tilt(delays, 0.0)


class TestShift:
    def test_moves_error_free_point(self, delays):
        shifted = shift(delays, 0.9)
        assert np.allclose(
            shifted.error_free_period(), 0.9 * delays.error_free_period()
        )

    def test_lowers_pe_everywhere(self, delays, rho, freqs):
        shifted = shift(delays, 0.92)
        pe_before = processor_error_rate(freqs[:, None], delays, rho)
        pe_after = processor_error_rate(freqs[:, None], shifted, rho)
        assert np.all(pe_after <= pe_before + 1e-30)

    def test_rejects_nonpositive_factor(self, delays):
        with pytest.raises(ValueError):
            shift(delays, -1.0)


class TestReshape:
    def test_compresses_the_spread_of_stage_speeds(self, delays):
        reshaped = reshape(delays, slow_factor=0.92, fast_factor=1.06)
        before = delays.error_free_frequency()
        after = reshaped.error_free_frequency()
        assert after.min() > before.min()  # slow stages sped up
        assert after.max() < before.max()  # fast stages relaxed

    def test_raises_the_processor_error_free_frequency(self, delays):
        reshaped = reshape(delays, 0.92, 1.05)
        assert (
            reshaped.error_free_frequency().min()
            > delays.error_free_frequency().min()
        )


class TestTolerate:
    def test_optimal_beyond_f_var(self, delays, rho, freqs):
        params = PerfParams.from_calibration(0.9, 0.002)
        curve = tolerate(delays, rho, params, freqs)
        assert curve.f_opt > curve.f_var

    def test_curve_shapes(self, delays, rho, freqs):
        params = PerfParams.from_calibration(0.9, 0.002)
        curve = tolerate(delays, rho, params, freqs)
        assert curve.perfs.shape == freqs.shape
        assert curve.error_rates.shape == freqs.shape
        assert curve.perf_opt == pytest.approx(curve.perfs.max())
