"""Micro-architecture substrate: traces, pipeline, measurements, activity."""

import numpy as np
import pytest

from repro.microarch import (
    DEFAULT_CORE_CONFIG,
    CoreConfig,
    Uop,
    accesses_per_instruction,
    activity_factors,
    by_name,
    generate_trace,
    measure_workload,
    queue_of,
    rho_vector,
    simulate,
    spec2000_like_suite,
)
from repro.chip import default_floorplan
from repro.microarch.workloads import PhaseSpec, WorkloadProfile


class TestWorkloads:
    def test_suite_has_int_and_fp(self, suite):
        domains = {w.domain for w in suite}
        assert domains == {"int", "fp"}
        assert len(suite) == 10

    def test_mixes_sum_to_one(self, suite):
        for w in suite:
            assert sum(w.mix.values()) == pytest.approx(1.0)

    def test_by_name(self):
        assert by_name("mcf*").l1d_miss_rate > by_name("crafty*").l1d_miss_rate
        with pytest.raises(KeyError):
            by_name("doom*")

    def test_phase_profile_scales_l2(self, suite):
        gcc = by_name("gcc*")
        emit = next(p for p in gcc.phases if p.name == "emit")
        scaled = gcc.phase_profile(emit)
        assert scaled.l2_miss_rate == pytest.approx(
            min(1.0, gcc.l2_miss_rate * emit.l2_scale)
        )

    def test_phase_weights_sum_to_one(self, suite):
        for w in suite:
            assert sum(p.weight for p in w.phases) == pytest.approx(1.0)

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError, match="sums"):
            WorkloadProfile(
                "bad", "int", {Uop.INT_ALU: 0.5}, 3.0, 0.05, 0.02, 0.1
            )

    def test_invalid_phase_weight_rejected(self):
        with pytest.raises(ValueError):
            PhaseSpec("p", 0.0)

    def test_validation_errors_name_the_profile(self):
        with pytest.raises(ValueError, match="'bad'"):
            WorkloadProfile(
                "bad", "int", {Uop.INT_ALU: 0.5}, 3.0, 0.05, 0.02, 0.1
            )
        with pytest.raises(ValueError, match="'rates'"):
            WorkloadProfile(
                "rates", "int", {Uop.INT_ALU: 1.0}, 3.0, 1.5, 0.02, 0.1
            )
        with pytest.raises(ValueError, match="'deps'"):
            WorkloadProfile(
                "deps", "int", {Uop.INT_ALU: 1.0}, 0.5, 0.05, 0.02, 0.1
            )
        with pytest.raises(ValueError, match="'weights'"):
            WorkloadProfile(
                "weights", "int", {Uop.INT_ALU: 1.0}, 3.0, 0.05, 0.02, 0.1,
                phases=(PhaseSpec("a", 0.5), PhaseSpec("b", 0.2)),
            )

    def test_mix_tolerance_is_tight(self):
        # Inside 1e-6 passes; outside fails.
        WorkloadProfile(
            "ok", "int", {Uop.INT_ALU: 1.0 + 5e-7}, 3.0, 0.05, 0.02, 0.1
        )
        with pytest.raises(ValueError, match="sums"):
            WorkloadProfile(
                "no", "int", {Uop.INT_ALU: 1.0 + 5e-6}, 3.0, 0.05, 0.02, 0.1
            )


class TestPhaseSpecEdgeCases:
    def test_zero_scales_clamp_rates_and_deps(self):
        base = by_name("gcc*")
        phase = PhaseSpec("idle", 1.0, l2_scale=0.0, ilp_scale=0.0)
        scaled = base.phase_profile(phase)
        assert scaled.l2_miss_rate == 0.0
        assert scaled.dep_mean_distance == 1.0  # clamped to the floor

    def test_extreme_scales_stay_in_domain(self):
        base = by_name("gcc*")
        phase = PhaseSpec(
            "storm", 1.0, l2_scale=1e6, branch_scale=1e6, ilp_scale=1e6
        )
        scaled = base.phase_profile(phase)
        assert scaled.l2_miss_rate == 1.0
        assert scaled.branch_misp_rate == 1.0
        assert scaled.dep_mean_distance == base.dep_mean_distance * 1e6

    def test_negative_or_nonfinite_scales_rejected(self):
        with pytest.raises(ValueError, match="l2_scale"):
            PhaseSpec("p", 1.0, l2_scale=-0.1)
        with pytest.raises(ValueError, match="ilp_scale"):
            PhaseSpec("p", 1.0, ilp_scale=float("nan"))
        with pytest.raises(ValueError, match="branch_scale"):
            PhaseSpec("p", 1.0, branch_scale=float("inf"))

    def test_single_phase_profile_is_trivial(self):
        single = WorkloadProfile(
            "solo", "int", {Uop.INT_ALU: 1.0}, 3.0, 0.05, 0.02, 0.1
        )
        assert len(single.phases) == 1
        scaled = single.phase_profile(single.phases[0])
        assert scaled == single

    def test_phase_profile_is_idempotent(self, suite):
        for profile in suite:
            for phase in profile.phases:
                scaled = profile.phase_profile(phase)
                (trivial,) = scaled.phases
                assert trivial.weight == 1.0
                assert scaled.phase_profile(trivial) == scaled


class TestTrace:
    def test_reproducible(self, int_workload):
        a = generate_trace(int_workload, 2000, seed=3)
        b = generate_trace(int_workload, 2000, seed=3)
        assert np.array_equal(a.kinds, b.kinds)
        assert np.array_equal(a.l2_miss, b.l2_miss)

    def test_seeds_differ(self, int_workload):
        a = generate_trace(int_workload, 2000, seed=3)
        b = generate_trace(int_workload, 2000, seed=4)
        assert not np.array_equal(a.kinds, b.kinds)

    def test_mix_statistics(self, int_workload):
        trace = generate_trace(int_workload, 30000, seed=0)
        for kind, frac in int_workload.mix.items():
            assert trace.kind_fraction(kind) == pytest.approx(frac, abs=0.02)

    def test_l2_implies_l1(self, small_trace):
        assert np.all(~small_trace.l2_miss | small_trace.l1_miss)

    def test_misses_only_on_memory_ops(self, small_trace):
        is_mem = np.isin(small_trace.kinds, [int(Uop.LOAD), int(Uop.STORE)])
        assert np.all(~small_trace.l1_miss | is_mem)

    def test_mispredicts_only_on_branches(self, small_trace):
        is_branch = small_trace.kinds == int(Uop.BRANCH)
        assert np.all(~small_trace.branch_mispredict | is_branch)

    def test_dependence_distances_within_trace(self, small_trace):
        index = np.arange(len(small_trace))
        assert np.all(small_trace.dep1 <= index)
        assert np.all(small_trace.dep2 <= index)

    def test_dependence_mean_tracks_profile(self, suite):
        high_ilp = by_name("mgrid*")
        trace = generate_trace(high_ilp, 20000, seed=0)
        observed = trace.dep1[trace.dep1 > 0].mean()
        assert observed == pytest.approx(high_ilp.dep_mean_distance, rel=0.15)

    def test_rejects_empty(self, int_workload):
        with pytest.raises(ValueError):
            generate_trace(int_workload, 0)


class TestPipeline:
    def test_cpi_at_least_issue_bound(self, small_trace):
        result = simulate(small_trace)
        assert result.cpi >= 1.0 / DEFAULT_CORE_CONFIG.issue_width

    def test_memory_bound_app_has_high_cpi(self):
        mcf = generate_trace(by_name("mcf*"), 6000, seed=0)
        crafty = generate_trace(by_name("crafty*"), 6000, seed=0)
        assert simulate(mcf).cpi > 2 * simulate(crafty).cpi

    def test_suppress_l2_lowers_cpi(self, small_trace):
        full = simulate(small_trace)
        comp = simulate(small_trace, suppress_l2_misses=True)
        assert comp.cpi <= full.cpi
        assert comp.l2_misses == 0

    def test_narrower_issue_hurts(self, small_trace):
        import dataclasses

        narrow = dataclasses.replace(
            DEFAULT_CORE_CONFIG, issue_width=1, fetch_width=1, retire_width=1
        )
        assert simulate(small_trace, narrow).cpi > simulate(small_trace).cpi

    def test_smaller_queue_never_helps(self, small_trace):
        full = simulate(small_trace)
        resized = simulate(
            small_trace, DEFAULT_CORE_CONFIG.with_resized_queue("int", 0.5)
        )
        assert resized.cpi >= full.cpi - 1e-9

    def test_extra_exec_stage_costs_on_branchy_code(self):
        twolf = generate_trace(by_name("twolf*"), 8000, seed=0)
        base = simulate(twolf)
        extra = simulate(twolf, DEFAULT_CORE_CONFIG.with_fu_replication())
        assert extra.cpi > base.cpi

    def test_longer_memory_latency_hurts_memory_bound(self):
        import dataclasses

        art = generate_trace(by_name("art*"), 6000, seed=0)
        slow_mem = dataclasses.replace(DEFAULT_CORE_CONFIG, mem_latency=400)
        assert simulate(art, slow_mem).cpi > simulate(art).cpi * 1.3

    def test_kind_counts_total(self, small_trace):
        result = simulate(small_trace)
        assert sum(result.kind_counts.values()) == len(small_trace)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(issue_width=0)
        with pytest.raises(ValueError):
            DEFAULT_CORE_CONFIG.with_resized_queue("int", 0.0)
        with pytest.raises(ValueError):
            DEFAULT_CORE_CONFIG.with_resized_queue("vector")

    def test_resized_queue_sizes(self):
        cfg = DEFAULT_CORE_CONFIG.with_resized_queue("int")
        assert cfg.int_queue_size == int(DEFAULT_CORE_CONFIG.int_queue_size * 0.75)
        cfg_fp = DEFAULT_CORE_CONFIG.with_resized_queue("fp")
        assert cfg_fp.fp_queue_size == int(DEFAULT_CORE_CONFIG.fp_queue_size * 0.75)

    def test_queue_of(self):
        assert queue_of(Uop.INT_ALU) == "int"
        assert queue_of(Uop.FP_MUL) == "fp"
        assert queue_of(Uop.LOAD) == "mem"


class TestMeasurement:
    def test_cached(self, int_workload):
        a = measure_workload(int_workload, DEFAULT_CORE_CONFIG, 5000, seed=0)
        b = measure_workload(int_workload, DEFAULT_CORE_CONFIG, 5000, seed=0)
        assert a is b

    def test_cpi_comp_below_total(self, fp_measurement):
        assert fp_measurement.cpi_comp <= fp_measurement.cpi_total

    def test_overlap_in_unit_range(self, fp_measurement, int_measurement):
        for m in (fp_measurement, int_measurement):
            assert 0.05 <= m.overlap_factor <= 1.0

    def test_activity_vector_length(self, int_measurement):
        assert int_measurement.activity.shape == (15,)
        assert np.all(int_measurement.activity >= 0.0)

    def test_fp_app_stresses_fp_cluster(self, fp_measurement, int_measurement):
        fp_idx = default_floorplan().index_of("FPUnit")
        assert fp_measurement.activity[fp_idx] > int_measurement.activity[fp_idx]

    def test_int_app_has_no_fp_activity(self, int_measurement):
        idx = default_floorplan().index_of("FPQ")
        assert int_measurement.activity[idx] == pytest.approx(0.0, abs=1e-9)


class TestActivity:
    def test_rho_fetch_structures_once_per_instruction(self, small_trace):
        rho = accesses_per_instruction(small_trace)
        # Icache sees every fetch plus the (rare) line refills.
        assert rho["Icache"] == pytest.approx(1.0, abs=0.02)
        assert rho["Icache"] >= 1.0
        assert rho["Decode"] == pytest.approx(1.0)

    def test_alpha_is_rho_times_ipc(self, small_trace):
        result = simulate(small_trace)
        fp = default_floorplan()
        alpha = activity_factors(small_trace, result, fp)
        rho = rho_vector(small_trace, fp)
        assert np.allclose(alpha, rho * result.ipc)


class TestICacheMisses:
    def test_icache_misses_present_for_icache_bound_app(self):
        gcc = generate_trace(by_name("gcc*"), 20000, seed=0)
        rate = np.count_nonzero(gcc.icache_miss) / len(gcc)
        assert rate == pytest.approx(by_name("gcc*").icache_miss_rate, rel=0.3)

    def test_icache_misses_slow_fetch(self):
        gcc = by_name("gcc*")
        import dataclasses

        no_miss = dataclasses.replace(gcc, icache_miss_rate=0.0)
        with_trace = generate_trace(gcc, 8000, seed=1)
        without_trace = generate_trace(no_miss, 8000, seed=1)
        assert simulate(with_trace).cpi > simulate(without_trace).cpi

    def test_rate_validation(self):
        import dataclasses

        with pytest.raises(ValueError, match="icache"):
            dataclasses.replace(by_name("gcc*"), icache_miss_rate=1.5)


class TestPrefetcher:
    def test_prefetching_helps_memory_bound_code(self):
        import dataclasses

        art = generate_trace(by_name("art*"), 6000, seed=0)
        base = simulate(art)
        prefetched = simulate(
            art, dataclasses.replace(DEFAULT_CORE_CONFIG, prefetch_accuracy=0.6)
        )
        assert prefetched.cpi < base.cpi
        assert prefetched.l2_misses < base.l2_misses

    def test_perfect_prefetcher_removes_all_l2_misses(self):
        import dataclasses

        art = generate_trace(by_name("art*"), 4000, seed=0)
        perfect = simulate(
            art, dataclasses.replace(DEFAULT_CORE_CONFIG, prefetch_accuracy=1.0)
        )
        assert perfect.l2_misses == 0

    def test_accuracy_validation(self):
        import dataclasses

        with pytest.raises(ValueError, match="prefetch"):
            dataclasses.replace(DEFAULT_CORE_CONFIG, prefetch_accuracy=1.5)
