"""Unit-conversion helpers."""

import pytest

from repro.units import (
    Q_OVER_K,
    celsius_to_kelvin,
    ghz,
    kelvin_to_celsius,
    mhz,
    millivolts,
)


def test_celsius_kelvin_round_trip():
    assert kelvin_to_celsius(celsius_to_kelvin(85.0)) == pytest.approx(85.0)


def test_celsius_to_kelvin_known_points():
    assert celsius_to_kelvin(0.0) == pytest.approx(273.15)
    assert celsius_to_kelvin(100.0) == pytest.approx(373.15)


def test_frequency_helpers():
    assert ghz(4.0) == pytest.approx(4e9)
    assert mhz(100) == pytest.approx(1e8)
    assert ghz(1.0) == mhz(1000)


def test_millivolts():
    assert millivolts(150) == pytest.approx(0.150)
    assert millivolts(-500) == pytest.approx(-0.5)


def test_q_over_k_magnitude():
    # q/k = 11604.5 K/V is a physical constant; a typo here would skew
    # every leakage number in the library.
    assert Q_OVER_K == pytest.approx(11604.5, rel=1e-4)
