"""Device-level models: delay (Eq 1), leakage (Eq 2/8), power (Eq 3/7),
and the threshold-voltage law (Eq 9)."""

import numpy as np
import pytest

from repro.circuits import (
    DEFAULT_KNOB_RANGES,
    DEFAULT_VT_SENSITIVITIES,
    KnobRanges,
    OperatingPoint,
    VtSensitivities,
    delay_factor,
    delay_vt_sensitivity,
    dynamic_power,
    gate_delay,
    static_power,
    threshold_voltage,
    vt0_from_leakage,
)


class TestGateDelay:
    def test_higher_vt_is_slower(self):
        assert gate_delay(1.0, 0.25, 1.0, 350.0) > gate_delay(1.0, 0.15, 1.0, 350.0)

    def test_higher_vdd_is_faster(self):
        assert gate_delay(1.2, 0.18, 1.0, 350.0) < gate_delay(1.0, 0.18, 1.0, 350.0)

    def test_longer_channel_is_slower(self):
        assert gate_delay(1.0, 0.18, 1.1, 350.0) > gate_delay(1.0, 0.18, 1.0, 350.0)

    def test_hotter_is_slower(self):
        # Mobility degradation dominates at fixed Vt.
        assert gate_delay(1.0, 0.18, 1.0, 380.0) > gate_delay(1.0, 0.18, 1.0, 340.0)

    def test_rejects_subthreshold_operation(self):
        with pytest.raises(ValueError, match="Vdd > Vt"):
            gate_delay(0.5, 0.6, 1.0, 350.0)

    def test_vectorised(self):
        vt = np.array([0.1, 0.15, 0.2])
        delays = gate_delay(1.0, vt, 1.0, 350.0)
        assert delays.shape == (3,)
        assert np.all(np.diff(delays) > 0)

    def test_delay_factor_is_one_at_nominal(self):
        factor = delay_factor(
            1.0, 0.18, 1.0, 350.0, vdd_nom=1.0, vt_nom=0.18, temp_nom=350.0
        )
        assert factor == pytest.approx(1.0)

    def test_vt_sensitivity_positive_and_grows_near_threshold(self):
        low = delay_vt_sensitivity(1.0, 0.1)
        high = delay_vt_sensitivity(1.0, 0.5)
        assert 0 < low < high

    def test_vt_sensitivity_rejects_invalid(self):
        with pytest.raises(ValueError):
            delay_vt_sensitivity(0.5, 0.6)


class TestLeakage:
    def test_exponential_in_vt(self):
        leaky = static_power(1.0, 1.0, 350.0, 0.10)
        tight = static_power(1.0, 1.0, 350.0, 0.20)
        assert leaky / tight > 5.0

    def test_increases_with_temperature(self):
        assert static_power(1.0, 1.0, 380.0, 0.15) > static_power(
            1.0, 1.0, 340.0, 0.15
        )

    def test_increases_with_vdd(self):
        assert static_power(1.0, 1.2, 350.0, 0.15) > static_power(
            1.0, 1.0, 350.0, 0.15
        )

    def test_vt0_from_leakage_round_trip(self):
        power = float(static_power(2.0, 1.0, 360.0, 0.17))
        recovered = vt0_from_leakage(power, 2.0, 1.0, 360.0)
        assert recovered == pytest.approx(0.17, abs=1e-9)

    def test_vt0_from_leakage_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            vt0_from_leakage(0.0, 1.0, 1.0, 350.0)

    def test_vt0_from_leakage_rejects_excessive_power(self):
        with pytest.raises(ValueError, match="bound"):
            vt0_from_leakage(1e12, 1.0, 1.0, 350.0)


class TestDynamicPower:
    def test_linear_in_frequency_and_activity(self):
        base = dynamic_power(1e-10, 0.5, 1.0, 4e9)
        assert dynamic_power(1e-10, 1.0, 1.0, 4e9) == pytest.approx(2 * base)
        assert dynamic_power(1e-10, 0.5, 1.0, 8e9) == pytest.approx(2 * base)

    def test_quadratic_in_vdd(self):
        base = dynamic_power(1e-10, 0.5, 1.0, 4e9)
        assert dynamic_power(1e-10, 0.5, 2.0, 4e9) == pytest.approx(4 * base)

    def test_rejects_negative_activity(self):
        with pytest.raises(ValueError):
            dynamic_power(1e-10, -0.1, 1.0, 4e9)


class TestThresholdVoltage:
    def test_reference_point_identity(self):
        sens = DEFAULT_VT_SENSITIVITIES
        vt = threshold_voltage(0.15, sens.t_ref, sens.vdd_ref, 0.0, sens)
        assert vt == pytest.approx(0.15)

    def test_temperature_lowers_vt(self):
        sens = DEFAULT_VT_SENSITIVITIES
        hot = threshold_voltage(0.15, sens.t_ref + 30, 1.0)
        cold = threshold_voltage(0.15, sens.t_ref - 30, 1.0)
        assert hot < cold

    def test_dibl_lowers_vt_with_vdd(self):
        sens = DEFAULT_VT_SENSITIVITIES
        assert threshold_voltage(0.15, sens.t_ref, 1.2) < threshold_voltage(
            0.15, sens.t_ref, 1.0
        )

    def test_forward_body_bias_lowers_vt(self):
        sens = DEFAULT_VT_SENSITIVITIES
        fbb = threshold_voltage(0.15, sens.t_ref, 1.0, 0.4)
        rbb = threshold_voltage(0.15, sens.t_ref, 1.0, -0.4)
        assert fbb < 0.15 < rbb


class TestKnobRanges:
    def test_frequency_grid_covers_paper_range(self):
        freqs = DEFAULT_KNOB_RANGES.frequencies()
        assert freqs[0] == pytest.approx(2.4e9)
        assert np.allclose(np.diff(freqs), 1e8)  # 100 MHz steps

    def test_vdd_grid_matches_figure_7a(self):
        vdd = DEFAULT_KNOB_RANGES.vdd_levels()
        assert vdd[0] == pytest.approx(0.8)
        assert vdd[-1] == pytest.approx(1.2)
        assert len(vdd) == 9  # 50 mV steps

    def test_vbb_grid_matches_figure_7a(self):
        vbb = DEFAULT_KNOB_RANGES.vbb_levels()
        assert vbb[0] == pytest.approx(-0.5)
        assert vbb[-1] == pytest.approx(0.5)
        assert len(vbb) == 21

    def test_clamp_frequency_snaps_down(self):
        kr = DEFAULT_KNOB_RANGES
        assert kr.clamp_frequency(4.06e9) == pytest.approx(4.0e9)
        assert kr.clamp_frequency(1e9) == pytest.approx(kr.f_min)
        assert kr.clamp_frequency(1e12) == pytest.approx(kr.f_max)

    def test_clamp_frequency_keeps_exact_steps(self):
        kr = DEFAULT_KNOB_RANGES
        assert kr.clamp_frequency(3.3e9) == pytest.approx(3.3e9)

    def test_clamp_frequencies_matches_scalar(self):
        kr = DEFAULT_KNOB_RANGES
        freqs = np.array([1e9, kr.f_min, 3.3e9, 4.06e9, 1e12, kr.f_max])
        vectorised = kr.clamp_frequencies(freqs)
        assert vectorised.shape == freqs.shape
        for got, f in zip(vectorised, freqs):
            assert got == kr.clamp_frequency(float(f))

    def test_operating_point_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint(vdd=0.0)

    def test_custom_ranges(self):
        kr = KnobRanges(f_min=1e9, f_max=2e9, f_step=5e8)
        assert len(kr.frequencies()) == 3
