"""Fused physics kernels (DESIGN.md §15): golden parity and plumbing.

The contract under test is *bit*-identity: every registered
implementation of every kernel — the hand-fused numpy one, and the
numba one when numba is installed — must produce results bitwise equal
to the ``reference`` composition of the seed leaf functions, at the
kernel level, the solver level, and the full ``run_unit`` row level.
Plus the satellite coverage: the workspace pool, the per-kernel
counters, the backend error paths, thermal-runaway lane isolation, and
the all-scalar fast paths in the leaf functions themselves.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import kernels, obs
from repro.backend import (
    available_backends,
    get_backend,
    reset_backend,
    set_backend,
)
from repro.chip.chip import CoreLanes
from repro.circuits.knobs import DEFAULT_VT_SENSITIVITIES, threshold_voltage
from repro.circuits.leakage import IDEALITY_FACTOR, static_power
from repro.core import (
    TS_ASV,
    AdaptationMode,
    core_subsystem_arrays,
    freq_algorithm,
    power_algorithm,
)
from repro.exps.runner import ExperimentRunner, RunnerConfig
from repro.kernels import NUMBA_AVAILABLE, WorkspacePool, workspace_pool
from repro.obs import MetricsRegistry
from repro.thermal import solve_temperatures, solve_temperatures_lanes
from repro.thermal.solver import T_RUNAWAY
from repro.units import Q_OVER_K

SENS = DEFAULT_VT_SENSITIVITIES

#: Implementations that must match ``reference`` bit for bit.
FUSED_IMPLS = ["numpy"] + (["numba"] if NUMBA_AVAILABLE else [])


@pytest.fixture(autouse=True)
def _clean_kernel_state():
    """Each test starts and ends with env-driven kernel selection."""
    kernels.reset()
    yield
    kernels.reset()
    reset_backend()


def _grid_operands(seed=0, n_lanes=6, n=15, n_vdd=9, n_vbb=5):
    """Random operands shaped like the optimiser's (V, Vb, B, n) sweep."""
    rng = np.random.default_rng(seed)
    return {
        "vt0": rng.uniform(0.10, 0.20, (n_lanes, n)),
        "ksta": rng.uniform(0.5, 2.0, (n_lanes, n)),
        "rth": rng.uniform(0.5, 2.5, (n_lanes, n)),
        "power_factor": rng.uniform(1.0, 1.4, (n_lanes, n)),
        "vdd": np.linspace(0.8, 1.2, n_vdd)[:, None, None, None],
        "vbb": np.linspace(-0.5, 0.5, n_vbb)[None, :, None, None],
        "temp": rng.uniform(330.0, 420.0, (n_vdd, n_vbb, n_lanes, n)),
        "p_dyn": rng.uniform(0.1, 3.0, (n_vdd, n_vbb, n_lanes, n)),
    }


def _run_impl(impl, name, *args, **kwargs):
    with kernels.use_impl(impl):
        return get_backend().kernel(name)(*args, **kwargs)


def _assert_bitwise(a, b):
    a = np.asarray(a)
    b = np.asarray(b)
    assert a.shape == b.shape
    assert (a == b).all()


# ----------------------------------------------------------------------
# Workspace pool.
# ----------------------------------------------------------------------
class TestWorkspacePool:
    def test_borrow_yields_distinct_buffers(self):
        pool = WorkspacePool()
        with pool.borrow((4, 3), 3) as buffers:
            assert len(buffers) == 3
            assert len({id(b) for b in buffers}) == 3
            for buffer in buffers:
                assert buffer.shape == (4, 3)
                assert buffer.dtype == np.float64

    def test_buffers_are_reused_across_borrows(self):
        pool = WorkspacePool()
        with pool.borrow((8,)) as (first,):
            first_id = id(first)
        with pool.borrow((8,)) as (again,):
            assert id(again) == first_id

    def test_keyed_on_shape_and_dtype(self):
        pool = WorkspacePool()
        with pool.borrow((8,)) as (a,):
            pass
        with pool.borrow((9,)) as (b,):
            assert id(b) != id(a)
        with pool.borrow((8,), dtype=np.float32) as (c,):
            assert id(c) != id(a)
            assert c.dtype == np.float32

    def test_free_list_is_bounded(self):
        pool = WorkspacePool(max_per_key=2)
        with pool.borrow((16,), 5):
            pass
        assert pool.cached_bytes() == 2 * 16 * 8

    def test_nested_borrows_do_not_alias(self):
        pool = WorkspacePool()
        with pool.borrow((8,)) as (outer,):
            with pool.borrow((8,)) as (inner,):
                assert id(inner) != id(outer)

    def test_pool_is_thread_local(self):
        pool = WorkspacePool()
        with pool.borrow((8,)) as (mine,):
            pass
        seen = {}

        def worker():
            with pool.borrow((8,)) as (theirs,):
                seen["id"] = id(theirs)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["id"] != id(mine)

    def test_clear_drops_cached_buffers(self):
        pool = WorkspacePool()
        with pool.borrow((8,)):
            pass
        assert pool.cached_bytes() > 0
        pool.clear()
        assert pool.cached_bytes() == 0

    def test_module_pool_is_shared(self):
        assert workspace_pool() is workspace_pool()


# ----------------------------------------------------------------------
# Registry, selection and error paths.
# ----------------------------------------------------------------------
class TestKernelRegistry:
    def test_all_kernels_registered(self):
        assert set(kernels.available_kernels()) >= {
            "vt_and_static_power",
            "thermal_step",
            "timing_error_cdf",
        }
        for name in kernels.available_kernels():
            impls = set(kernels.available_impls(name))
            assert {"reference", "numpy"} <= impls
            assert ("numba" in impls) == NUMBA_AVAILABLE

    def test_auto_prefers_numba_then_numpy(self):
        expected = "numba" if NUMBA_AVAILABLE else "numpy"
        assert kernels.active_impl("thermal_step") == expected

    def test_non_numpy_backends_fall_back_to_reference(self):
        assert kernels.active_impl("thermal_step", backend="cupy") == "reference"

    def test_use_impl_forces_and_restores(self):
        with kernels.use_impl("reference"):
            assert kernels.active_impl("thermal_step") == "reference"
            fn = get_backend().kernel("thermal_step")
            assert fn.impl_name == "reference"
        assert kernels.active_impl("thermal_step") != "reference"

    def test_env_var_selects_impl(self, monkeypatch):
        monkeypatch.setenv("EVAL_REPRO_KERNELS", "reference")
        kernels.reset()
        assert get_backend().kernel("timing_error_cdf").impl_name == "reference"

    def test_reset_backend_rereads_kernel_env(self, monkeypatch):
        monkeypatch.setenv("EVAL_REPRO_KERNELS", "reference")
        reset_backend()
        assert kernels.active_impl("thermal_step") == "reference"
        monkeypatch.delenv("EVAL_REPRO_KERNELS")
        reset_backend()
        assert kernels.active_impl("thermal_step") != "reference"

    def test_resolution_is_cached(self):
        assert get_backend().kernel("thermal_step") is get_backend().kernel(
            "thermal_step"
        )

    def test_unknown_kernel_is_an_error(self):
        with pytest.raises(ValueError, match="thermal_step"):
            get_backend().kernel("warp_drive")

    def test_unknown_impl_is_an_error(self, monkeypatch):
        monkeypatch.setenv("EVAL_REPRO_KERNELS", "fortran")
        kernels.reset()
        with pytest.raises(ValueError, match="reference"):
            get_backend().kernel("thermal_step")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed here")
    def test_numba_without_numba_is_a_runtime_error(self, monkeypatch):
        monkeypatch.setenv("EVAL_REPRO_KERNELS", "numba")
        kernels.reset()
        with pytest.raises(RuntimeError, match="numba is not installed"):
            get_backend().kernel("thermal_step")


class TestBackendErrorPaths:
    """Satellite: the documented backend failure modes."""

    def test_missing_cupy_raises_the_documented_runtime_error(self):
        if _importable("cupy"):
            pytest.skip("cupy is installed here")
        with pytest.raises(RuntimeError, match="cupy is not installed"):
            set_backend("cupy")

    def test_missing_jax_raises_the_documented_runtime_error(self):
        if _importable("jax"):
            pytest.skip("jax is installed here")
        with pytest.raises(RuntimeError, match="jax is not installed"):
            set_backend("jax")

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError) as excinfo:
            set_backend("tpu9000")
        message = str(excinfo.value)
        for name in available_backends():
            assert name in message

    def test_reset_backend_rereads_the_env(self, monkeypatch):
        monkeypatch.setenv("EVAL_REPRO_BACKEND", "numpy")
        reset_backend()
        assert get_backend().name == "numpy"
        monkeypatch.setenv("EVAL_REPRO_BACKEND", "tpu9000")
        reset_backend()
        with pytest.raises(ValueError):
            get_backend()
        monkeypatch.delenv("EVAL_REPRO_BACKEND")
        reset_backend()
        assert get_backend().name == "numpy"


def _importable(module: str) -> bool:
    import importlib.util

    return importlib.util.find_spec(module) is not None


# ----------------------------------------------------------------------
# Kernel-level golden parity: fused == reference, bit for bit.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("impl", FUSED_IMPLS)
class TestKernelParity:
    def test_vt_and_static_power(self, impl):
        ops = _grid_operands()
        args = (ops["vt0"], ops["vdd"], ops["vbb"], ops["temp"], ops["ksta"], SENS)
        ref_vt, ref_p = _run_impl("reference", "vt_and_static_power", *args)
        vt, p_sta = _run_impl(impl, "vt_and_static_power", *args)
        _assert_bitwise(ref_vt, vt)
        _assert_bitwise(ref_p, p_sta)

    def test_vt_and_static_power_with_power_factor(self, impl):
        ops = _grid_operands(seed=1)
        args = (ops["vt0"], ops["vdd"], ops["vbb"], ops["temp"], ops["ksta"], SENS)
        kwargs = {"power_factor": ops["power_factor"]}
        ref = _run_impl("reference", "vt_and_static_power", *args, **kwargs)
        out = _run_impl(impl, "vt_and_static_power", *args, **kwargs)
        _assert_bitwise(ref[1], out[1])

    def test_vt_and_static_power_scalar_temperature(self, impl):
        # The optimiser's loop-invariant p_static(vdd, vbb, t_max) shape.
        ops = _grid_operands(seed=2)
        args = (ops["vt0"], ops["vdd"], ops["vbb"], 373.15, ops["ksta"], SENS)
        ref = _run_impl("reference", "vt_and_static_power", *args)
        out = _run_impl(impl, "vt_and_static_power", *args)
        _assert_bitwise(ref[0], out[0])
        _assert_bitwise(ref[1], out[1])

    def test_thermal_step(self, impl):
        ops = _grid_operands(seed=3)
        args = (
            ops["vt0"], ops["vdd"], ops["vbb"], ops["temp"], ops["ksta"],
            ops["rth"], ops["p_dyn"], 318.0, SENS,
        )
        ref_t, ref_d = _run_impl(
            "reference", "thermal_step", *args, compute_delta=True
        )
        new_t, delta = _run_impl(impl, "thermal_step", *args, compute_delta=True)
        _assert_bitwise(ref_t, new_t)
        _assert_bitwise(ref_d, delta)

    def test_thermal_step_with_power_factor_and_out(self, impl):
        ops = _grid_operands(seed=4)
        args = (
            ops["vt0"], ops["vdd"], ops["vbb"], ops["temp"], ops["ksta"],
            ops["rth"], ops["p_dyn"], 318.0, SENS,
        )
        kwargs = {"power_factor": ops["power_factor"], "t_runaway": 500.0}
        ref_t, _ = _run_impl("reference", "thermal_step", *args, **kwargs)
        out = np.empty(ops["temp"].shape)
        new_t, _ = _run_impl(impl, "thermal_step", *args, out=out, **kwargs)
        assert new_t is out  # the ping-pong contract
        _assert_bitwise(ref_t, new_t)

    def test_thermal_step_clamps_at_runaway(self, impl):
        ops = _grid_operands(seed=5)
        args = (
            ops["vt0"], ops["vdd"], ops["vbb"], ops["temp"], ops["ksta"],
            ops["rth"], ops["p_dyn"] * 1e4, 318.0, SENS,
        )
        ref_t, _ = _run_impl("reference", "thermal_step", *args)
        new_t, _ = _run_impl(impl, "thermal_step", *args)
        assert new_t.max() == T_RUNAWAY
        _assert_bitwise(ref_t, new_t)

    def test_thermal_step_rejects_misshapen_out(self, impl):
        ops = _grid_operands(seed=6)
        with pytest.raises(ValueError, match="out buffer"):
            _run_impl(
                impl, "thermal_step",
                ops["vt0"], ops["vdd"], ops["vbb"], ops["temp"], ops["ksta"],
                ops["rth"], ops["p_dyn"], 318.0, SENS,
                out=np.empty((2, 2)),
            )

    def test_timing_error_cdf(self, impl):
        rng = np.random.default_rng(7)
        freq = rng.uniform(2.0e9, 5.0e9, (6, 1))
        mean = rng.uniform(1.8e-10, 2.4e-10, (6, 15))
        sigma = rng.uniform(1e-12, 8e-12, (6, 15))
        rho = rng.uniform(0.0, 1.0, (6, 15))
        ref = _run_impl("reference", "timing_error_cdf", freq, mean, sigma, rho)
        out = _run_impl(impl, "timing_error_cdf", freq, mean, sigma, rho)
        _assert_bitwise(ref, out)

    def test_timing_error_cdf_deep_tail(self, impl):
        # Far below the error-free frequency Q(z) underflows to 0.0;
        # both paths must agree there too.
        freq = np.array([1.0e9])
        mean = np.full((1, 15), 2.0e-10)
        sigma = np.full((1, 15), 5.0e-12)
        rho = np.full((1, 15), 0.5)
        ref = _run_impl("reference", "timing_error_cdf", freq, mean, sigma, rho)
        out = _run_impl(impl, "timing_error_cdf", freq, mean, sigma, rho)
        assert (ref == 0.0).all()
        _assert_bitwise(ref, out)


# ----------------------------------------------------------------------
# Per-kernel observability.
# ----------------------------------------------------------------------
class TestKernelInstrumentation:
    def test_calls_and_ns_counters(self):
        ops = _grid_operands(seed=8)
        registry = MetricsRegistry()
        with obs.scoped(registry):
            get_backend().kernel("vt_and_static_power")(
                ops["vt0"], ops["vdd"], ops["vbb"], ops["temp"], ops["ksta"], SENS
            )
        counters = registry.to_dict()["counters"]
        assert counters["kernel.vt_and_static_power.calls"] == 1
        assert counters["kernel.vt_and_static_power.ns"] > 0

    def test_disabled_metrics_record_nothing(self):
        ops = _grid_operands(seed=9)
        registry = MetricsRegistry()
        with obs.scoped(registry):
            obs.disable()
            try:
                get_backend().kernel("vt_and_static_power")(
                    ops["vt0"], ops["vdd"], ops["vbb"], ops["temp"],
                    ops["ksta"], SENS,
                )
            finally:
                obs.enable()
        assert registry.to_dict()["counters"] == {}

    def test_solver_records_the_fixed_point_span(self, core):
        registry = MetricsRegistry()
        n = core.n_subsystems
        with obs.scoped(registry):
            solve_temperatures(
                core, np.full(n, 1.0), np.zeros(n), 4.0e9, core.alpha_ref,
                343.15,
            )
        document = registry.to_dict()
        assert "span.kernel.thermal_fixed_point_seconds" in document["histograms"]
        assert document["counters"]["kernel.thermal_step.calls"] >= 1


# ----------------------------------------------------------------------
# Solver- and optimiser-level golden parity.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("impl", FUSED_IMPLS)
class TestSolverParity:
    def _solve(self, core, impl):
        n = core.n_subsystems
        with kernels.use_impl(impl):
            return solve_temperatures(
                core, np.full(n, 1.1), np.full(n, 0.1), 4.4e9,
                core.alpha_ref, 343.15,
            )

    def test_solve_temperatures(self, core, impl):
        ref = self._solve(core, "reference")
        out = self._solve(core, impl)
        _assert_bitwise(ref.temperature, out.temperature)
        _assert_bitwise(ref.p_static, out.p_static)
        _assert_bitwise(ref.p_dynamic, out.p_dynamic)
        _assert_bitwise(ref.converged, out.converged)

    def test_solve_temperatures_lanes(self, core, other_core, impl):
        lanes = CoreLanes.stack([core, other_core])
        n = core.n_subsystems
        vdd = np.stack([np.full(n, 1.0), np.full(n, 1.2)])
        vbb = np.stack([np.zeros(n), np.full(n, -0.2)])
        activity = np.stack([core.alpha_ref, other_core.alpha_ref * 0.1])

        def solve(with_impl):
            with kernels.use_impl(with_impl):
                return solve_temperatures_lanes(
                    lanes, vdd, vbb, 4.0e9, activity, 343.15
                )

        ref = solve("reference")
        out = solve(impl)
        _assert_bitwise(ref.temperature, out.temperature)
        _assert_bitwise(ref.p_static, out.p_static)
        _assert_bitwise(ref.converged, out.converged)

    def test_freq_and_power_algorithms(self, core, int_measurement, impl):
        subs = core_subsystem_arrays(
            core, int_measurement.activity, int_measurement.rho
        )
        spec = TS_ASV.optimization_spec(core.n_subsystems, core.calib)

        def run(with_impl):
            with kernels.use_impl(with_impl):
                freq = freq_algorithm(subs, spec)
                power = power_algorithm(subs, freq.core_frequency(), spec)
            return freq, power

        ref_freq, ref_power = run("reference")
        freq, power = run(impl)
        _assert_bitwise(ref_freq.f_max, freq.f_max)
        _assert_bitwise(ref_freq.vdd, freq.vdd)
        _assert_bitwise(ref_freq.vbb, freq.vbb)
        _assert_bitwise(ref_power.vdd, power.vdd)
        _assert_bitwise(ref_power.vbb, power.vbb)
        _assert_bitwise(ref_power.temperature, power.temperature)
        _assert_bitwise(ref_power.p_dynamic, power.p_dynamic)
        _assert_bitwise(ref_power.p_static, power.p_static)


# ----------------------------------------------------------------------
# run_unit-level golden parity: whole pipeline rows, bit for bit.
# ----------------------------------------------------------------------
class TestRunUnitParity:
    CONFIG = RunnerConfig(
        n_chips=2,
        cores_per_chip=1,
        n_instructions=4000,
        fuzzy_examples=200,
        fuzzy_epochs=1,
    )

    @pytest.mark.parametrize("impl", FUSED_IMPLS)
    def test_rows_bit_identical_to_reference(self, suite, impl):
        def rows(with_impl):
            runner = ExperimentRunner(self.CONFIG, workloads=list(suite[:2]))
            with kernels.use_impl(with_impl):
                return [
                    runner.run_unit(TS_ASV, AdaptationMode.EXH_DYN, chip, 0)
                    for chip in range(self.CONFIG.n_chips)
                ]

        assert rows(impl) == rows("reference")


# ----------------------------------------------------------------------
# Satellite: thermal runaway stays lane-local.
# ----------------------------------------------------------------------
class TestThermalRunaway:
    #: Activity large enough to push every subsystem past the cap.
    BLOWUP = 1e4

    def test_scalar_runaway_reports_not_converged(self, core):
        n = core.n_subsystems
        solution = solve_temperatures(
            core, np.full(n, 1.2), np.zeros(n), 5.0e9,
            core.alpha_ref * self.BLOWUP, 343.15,
        )
        assert not solution.converged.any()
        assert (solution.temperature == T_RUNAWAY).all()

    def test_runaway_subsystem_does_not_poison_neighbors(self, core):
        n = core.n_subsystems
        activity = core.alpha_ref.copy()
        activity[0] *= self.BLOWUP
        mixed = solve_temperatures(
            core, np.full(n, 1.0), np.zeros(n), 4.0e9, activity, 343.15
        )
        assert not mixed.converged[0]
        assert mixed.temperature[0] == T_RUNAWAY
        assert mixed.converged[1:].all()
        # The healthy subsystems' fixed points are untouched: each node
        # couples to the heat sink only (diagonal Rth), so their
        # temperatures match a solve without the runaway neighbour.
        healthy = solve_temperatures(
            core, np.full(n, 1.0), np.zeros(n), 4.0e9, core.alpha_ref, 343.15
        )
        assert (mixed.temperature[1:] == healthy.temperature[1:]).all()

    @pytest.mark.parametrize("batched_core", ["single", "lanes"])
    def test_lane_runaway_stays_lane_local(self, core, other_core, batched_core):
        n = core.n_subsystems
        if batched_core == "lanes":
            node = CoreLanes.stack([core, other_core])
            alpha = [core.alpha_ref, other_core.alpha_ref]
        else:
            node = core
            alpha = [core.alpha_ref, core.alpha_ref]
        vdd = np.stack([np.full(n, 1.0)] * 2)
        vbb = np.zeros((2, n))
        activity = np.stack([alpha[0], alpha[1] * self.BLOWUP])

        batched = solve_temperatures_lanes(
            node, vdd, vbb, 4.0e9, activity, 343.15
        )
        assert batched.converged[0].all()
        assert not batched.converged[1].any()
        assert (batched.temperature[1] == T_RUNAWAY).all()

        # Lane 0 is bit-identical to solving it alone — the runaway
        # neighbour never leaks into its iterate sequence.
        lane_core = core
        alone = solve_temperatures(
            lane_core, vdd[0], vbb[0], 4.0e9, alpha[0], 343.15
        )
        _assert_bitwise(alone.temperature, batched.temperature[0])
        _assert_bitwise(alone.p_static, batched.p_static[0])


# ----------------------------------------------------------------------
# Satellite: all-scalar fast paths in the leaf functions.
# ----------------------------------------------------------------------
class TestScalarFastPaths:
    KSTA, VDD, TEMP, VT = 1.7, 1.05, 381.5, 0.143
    VT0, VBB = 0.158, -0.25

    def test_static_power_scalar_matches_array_path(self):
        fast = static_power(self.KSTA, self.VDD, self.TEMP, self.VT)
        # 0-d ndarray operands force the asarray path (they are not
        # instances of float); numpy reduces them back to a np.float64.
        slow = static_power(
            self.KSTA, np.asarray(self.VDD)[...], np.asarray(self.TEMP)[...],
            np.full((1,), self.VT),
        )
        assert isinstance(fast, float)
        assert float(fast) == float(slow[0])

    def test_static_power_scalar_matches_manual_composition(self):
        fast = static_power(self.KSTA, self.VDD, self.TEMP, self.VT)
        exponent = -Q_OVER_K * np.asarray(self.VT) / (
            IDEALITY_FACTOR * np.asarray(self.TEMP)
        )
        expected = (
            self.KSTA * np.asarray(self.VDD) * np.asarray(self.TEMP) ** 2
            * np.exp(exponent)
        )
        assert float(fast) == float(expected)

    def test_static_power_numpy_scalars_take_the_fast_path(self):
        fast = static_power(
            np.float64(self.KSTA), np.float64(self.VDD),
            np.float64(self.TEMP), np.float64(self.VT),
        )
        assert isinstance(fast, float)
        assert float(fast) == float(
            static_power(self.KSTA, self.VDD, self.TEMP, self.VT)
        )

    def test_static_power_arrays_still_return_arrays(self):
        result = static_power(
            np.full(3, self.KSTA), np.full(3, self.VDD),
            np.full(3, self.TEMP), np.full(3, self.VT),
        )
        assert isinstance(result, np.ndarray)
        assert result.shape == (3,)
        assert (result == static_power(self.KSTA, self.VDD, self.TEMP, self.VT)).all()

    def test_threshold_voltage_scalar_matches_array_path(self):
        fast = threshold_voltage(self.VT0, self.TEMP, self.VDD, self.VBB)
        slow = threshold_voltage(
            np.full((1,), self.VT0), np.asarray(self.TEMP),
            np.asarray(self.VDD), np.asarray(self.VBB),
        )
        assert isinstance(fast, float)
        assert float(fast) == float(slow[0])

    def test_threshold_voltage_arrays_still_return_arrays(self):
        result = threshold_voltage(
            np.full(3, self.VT0), np.full(3, self.TEMP),
            np.full(3, self.VDD), np.full(3, self.VBB),
        )
        assert isinstance(result, np.ndarray)
        assert (
            result == threshold_voltage(self.VT0, self.TEMP, self.VDD, self.VBB)
        ).all()

    def test_int_arguments_use_the_array_path(self):
        # Ints are not floats: they fall through to the asarray path —
        # the fast path never changes behaviour for the seed's int calls.
        result = threshold_voltage(self.VT0, 373, 1, 0)
        expected = threshold_voltage(self.VT0, 373.0, 1.0, 0.0)
        assert float(result) == float(expected)
