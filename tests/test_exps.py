"""Experiment harness: runner, ladder, figure modules (small scale)."""

import numpy as np
import pytest

from repro.core import BASELINE, NOVAR, TS, TS_ASV, AdaptationMode
from repro.exps import (
    area_rows,
    format_series,
    format_table,
    run_area_table,
    run_fig1,
    run_fig2,
    run_fig8,
    run_fig9,
    run_ladder,
)
from repro.exps.runner import ExperimentRunner, RunnerConfig

from tests.conftest import run_env


class TestRunner:
    def test_baseline_below_novar(self, tiny_runner):
        base = run_env(tiny_runner, BASELINE)
        assert 0.6 < base.f_rel < 0.95
        assert base.perf_rel < 1.0

    def test_novar_is_unity(self, tiny_runner):
        novar = run_env(tiny_runner, NOVAR)
        assert novar.f_rel == pytest.approx(1.0)
        assert novar.perf_rel == pytest.approx(1.0)

    def test_ts_improves_on_baseline(self, tiny_runner):
        base = run_env(tiny_runner, BASELINE)
        ts = run_env(tiny_runner, TS)
        assert ts.f_rel > base.f_rel
        assert ts.perf_rel > base.perf_rel

    def test_static_below_dynamic(self, tiny_runner):
        static = run_env(tiny_runner, TS_ASV, AdaptationMode.STATIC)
        dynamic = run_env(tiny_runner, TS_ASV, AdaptationMode.EXH_DYN)
        assert static.f_rel <= dynamic.f_rel + 1e-9

    def test_results_carry_metadata(self, tiny_runner):
        summary = run_env(tiny_runner, TS)
        r = summary.results[0]
        assert r.environment == "TS"
        assert r.workload.endswith("*")
        assert r.power > 0

    def test_phase_weights_normalised(self, tiny_runner):
        summary = run_env(tiny_runner, TS)
        # Summary f_rel must lie within the per-result range.
        values = [r.f_rel for r in summary.results]
        assert min(values) <= summary.f_rel <= max(values)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RunnerConfig(n_chips=0)
        with pytest.raises(ValueError):
            RunnerConfig(cores_per_chip=5)

    def test_core_cache(self, tiny_runner):
        assert tiny_runner.core(0, 0) is tiny_runner.core(0, 0)

    def test_batched_unit_matches_serial(self, tiny_runner):
        serial = tiny_runner.run_unit(
            TS_ASV, AdaptationMode.EXH_DYN, 0, 0, batch_phases=False
        )
        batched = tiny_runner.run_unit(
            TS_ASV, AdaptationMode.EXH_DYN, 0, 0, batch_phases=True
        )
        assert batched == serial

    def test_batch_phases_is_runner_strategy_not_config(self, tiny_runner):
        # Execution strategy must not leak into the hashed RunnerConfig.
        assert tiny_runner.batch_phases
        assert not hasattr(RunnerConfig(), "batch_phases")
        runner = ExperimentRunner(
            RunnerConfig(
                n_chips=1, cores_per_chip=1, n_instructions=2000,
                fuzzy_examples=300, fuzzy_epochs=1,
            ),
            batch_phases=False,
        )
        assert not runner.batch_phases


class TestLadder:
    def test_small_ladder(self, tiny_runner):
        result = run_ladder(
            tiny_runner,
            environments=[TS, TS_ASV],
            modes=[AdaptationMode.EXH_DYN],
        )
        ts = result.summary(TS, AdaptationMode.EXH_DYN)
        asv = result.summary(TS_ASV, AdaptationMode.EXH_DYN)
        assert asv.f_rel >= ts.f_rel
        assert result.baseline.f_rel < ts.f_rel

    def test_row_rendering(self, tiny_runner):
        result = run_ladder(
            tiny_runner,
            environments=[TS],
            modes=[AdaptationMode.EXH_DYN],
        )
        # Rendering expects all three modes; restrict to what we ran.
        rows = [
            [TS.name, f"{result.summary(TS, AdaptationMode.EXH_DYN).f_rel:.3f}"]
        ]
        table = format_table("Fig 10 (subset)", ["Env", "Exh-Dyn"], rows)
        assert "TS" in table


class TestFigureModules:
    def test_fig1_variation_slows_the_stage(self):
        result = run_fig1()
        assert result.t_varied > result.t_nominal * 0.95
        assert result.pe_pipeline[-1] > result.pe_pipeline[0]
        # Eq 4: pipeline curve dominates any single stage's curve.
        assert np.all(result.pe_pipeline >= result.pe_stage - 1e-30)

    def test_fig2_transforms_behave(self):
        result = run_fig2()
        f_opt = result.tolerance.f_opt
        idx = int(np.argmin(np.abs(result.freqs - f_opt)))
        assert result.pe_tilt[idx] <= result.pe_before[idx]
        assert result.pe_shift[idx] <= result.pe_before[idx]
        assert result.tolerance.f_opt > result.tolerance.f_var

    def test_fig2_phases_have_distinct_curves(self):
        result = run_fig2()
        assert len(result.pe_phases) >= 2
        curves = list(result.pe_phases.values())
        assert not np.allclose(curves[0], curves[1])

    def test_fig8_panel_relationships(self):
        result = run_fig8(n_freqs=20)
        f_ts, perf_ts = result.optimum("ts")
        f_re, perf_re = result.optimum("reshaped")
        # Reshaping moves the peak right and up (paper point A).
        assert f_re >= f_ts
        assert perf_re >= perf_ts
        assert result.baseline_f_rel() < f_ts

    def test_fig8_memory_onset_sharper_than_logic(self):
        result = run_fig8(n_freqs=20)
        kinds = np.array(result.subsystem_kinds)
        # Frequency span between PE=1e-8 and PE=1e-2 per subsystem.
        spans = {}
        for kind in ("memory", "logic"):
            widths = []
            for i in np.flatnonzero(kinds == kind):
                curve = result.pe_ts[:, i]
                if curve[-1] < 1e-2:
                    continue
                lo = np.searchsorted(curve, 1e-8)
                hi = np.searchsorted(curve, 1e-2)
                widths.append(result.freqs_rel[min(hi, len(curve) - 1)]
                              - result.freqs_rel[min(lo, len(curve) - 1)])
            spans[kind] = np.mean(widths) if widths else np.nan
        if not np.isnan(spans["memory"]) and not np.isnan(spans["logic"]):
            assert spans["memory"] <= spans["logic"] + 1e-9

    def test_fig9_surface_monotonicity(self):
        result = run_fig9(n_power=8, n_freq=12)
        # More power budget can only lower the achievable PE.
        assert np.all(np.diff(result.min_pe, axis=0) <= 1e-18)
        # Higher frequency at fixed budget can only raise it.
        assert np.all(np.diff(result.min_pe, axis=1) >= -1e-18)

    def test_area_table_matches_paper(self):
        rows = area_rows(run_area_table())
        table = dict((name, value) for name, value in rows)
        assert table["Total"] == "10.6"
        assert table["Checker"] == "7.0"


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5

    def test_format_series_subsamples(self):
        xs = np.linspace(0, 1, 100)
        text = format_series("S", xs, xs**2, max_points=5)
        assert len(text.splitlines()) <= 13


class TestAsciiChart:
    def test_renders_series(self):
        from repro.exps import ascii_chart

        xs = np.linspace(0, 1, 50)
        text = ascii_chart("T", xs, xs**2)
        assert text.startswith("T")
        assert "*" in text

    def test_log_mode_drops_nonpositive(self):
        from repro.exps import ascii_chart

        text = ascii_chart("T", [1, 2, 3], [0.0, 1e-5, 1e-2], log_y=True)
        assert "log10" in text

    def test_all_nonpositive_is_graceful(self):
        from repro.exps import ascii_chart

        text = ascii_chart("T", [1, 2], [0.0, 0.0], log_y=True)
        assert "no positive data" in text
