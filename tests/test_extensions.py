"""Extension features: bank persistence, CMP scheduling, path sampling,
checker throughput, variation-severity sensitivity."""

import numpy as np
import pytest

from repro.chip import CMP, schedule_applications
from repro.core import TS_ASV, optimize_phase
from repro.exps import run_sensitivity
from repro.microarch import DEFAULT_CORE_CONFIG, measure_workload
from repro.ml import load_bank, save_bank
from repro.timing import (
    CheckerConfig,
    fit_stage_model,
    stage_error_rates,
    wall_ensemble,
)
from repro.variation import DieGrid


class TestBankPersistence:
    def test_round_trip_preserves_predictions(self, tiny_bank, core, tmp_path):
        path = tmp_path / "bank.npz"
        save_bank(tiny_bank, path)
        loaded = load_bank(path)
        spec = tiny_bank.spec
        for index in (0, 5, 7):
            variant = tiny_bank.variants_for(core, index)[0]
            original = tiny_bank.predict_fmax(
                core, index, variant, spec.t_heatsink, 0.5, 0.5
            )
            restored = loaded.predict_fmax(
                core, index, variant, spec.t_heatsink, 0.5, 0.5
            )
            assert restored == pytest.approx(original)

    def test_round_trip_preserves_voltages(self, tiny_bank, core, tmp_path):
        path = tmp_path / "bank.npz"
        save_bank(tiny_bank, path)
        loaded = load_bank(path)
        spec = tiny_bank.spec
        a = tiny_bank.predict_voltages(
            core, 3, "base", spec.t_heatsink, 0.4, 0.5, 3.5e9
        )
        b = loaded.predict_voltages(
            core, 3, "base", spec.t_heatsink, 0.4, 0.5, 3.5e9
        )
        assert a == b

    def test_metadata_survives(self, tiny_bank, tmp_path):
        path = tmp_path / "bank.npz"
        save_bank(tiny_bank, path)
        loaded = load_bank(path)
        assert loaded.optimism == tiny_bank.optimism
        assert np.allclose(loaded.spec.vdd_levels, tiny_bank.spec.vdd_levels)
        assert loaded.spec.pe_budget == pytest.approx(tiny_bank.spec.pe_budget)
        assert loaded.freq_rmse == pytest.approx(tiny_bank.freq_rmse)


class TestCMPScheduling:
    @pytest.fixture(scope="class")
    def cmp_chip(self, population):
        return CMP.from_chip(population[0])

    def test_four_cores(self, cmp_chip):
        assert len(cmp_chip) == 4
        # Cores sample different quadrants: variation differs.
        assert not np.allclose(
            cmp_chip.cores[0].vt0_timing, cmp_chip.cores[1].vt0_timing
        )

    def test_schedule_beats_or_matches_naive(self, cmp_chip, suite):
        measurements = [
            measure_workload(w, DEFAULT_CORE_CONFIG, 5000) for w in suite[:4]
        ]

        def evaluate(core, app):
            return optimize_phase(core, TS_ASV, measurements[app]).performance_ips

        result = schedule_applications(cmp_chip, evaluate)
        assert result.throughput >= result.naive_throughput - 1e-9
        assert result.gain >= 0.0
        assert sorted(result.assignment) == [0, 1, 2, 3]

    def test_schedule_with_fewer_apps(self, cmp_chip):
        perf_matrix = {(0, c): 1.0 + 0.1 * c for c in range(4)}

        def evaluate(core, app):
            return perf_matrix[(app, core.core_index)]

        result = schedule_applications(cmp_chip, evaluate, n_apps=1)
        assert result.assignment == (3,)  # the fastest core

    def test_rejects_too_many_apps(self, cmp_chip):
        with pytest.raises(ValueError):
            schedule_applications(cmp_chip, lambda c, a: 1.0, n_apps=5)


class TestPathSampling:
    def test_ensemble_validation(self):
        with pytest.raises(ValueError):
            wall_ensemble(250e-12, n_paths=10, exercise_count=12).__class__(
                nominal_delays=np.array([-1.0]), random_sigma=0.0
            )

    def test_static_delays_frozen(self):
        ensemble = wall_ensemble(250e-12, seed=4)
        assert np.array_equal(ensemble.static_delays(), ensemble.static_delays())

    def test_empirical_error_rate_monotone(self):
        ensemble = wall_ensemble(250e-12, seed=4)
        slow = ensemble.empirical_error_rate(3.0e9)
        fast = ensemble.empirical_error_rate(4.6e9)
        assert slow <= fast

    def test_error_free_below_all_paths(self):
        ensemble = wall_ensemble(250e-12, seed=4)
        slowest = ensemble.static_delays().max()
        assert ensemble.empirical_error_rate(0.9 / slowest) == 0.0

    def test_analytic_fit_matches_monte_carlo(self):
        """The normal VATS abstraction tracks the microscopic ensemble in
        the PE regime that matters (1e-3..0.5 per access)."""
        ensemble = wall_ensemble(250e-12, seed=7)
        model = fit_stage_model(ensemble, z_free=6.5)
        rho = np.array([1.0])
        for freq in (4.1e9, 4.3e9, 4.5e9):
            empirical = ensemble.empirical_error_rate(freq, n_accesses=60000)
            analytic = float(stage_error_rates(freq, model, rho)[0])
            if empirical > 1e-3:
                assert analytic == pytest.approx(empirical, rel=0.6, abs=2e-3)

    def test_empirical_error_rate_accepts_frequency_arrays(self):
        ensemble = wall_ensemble(250e-12, seed=4)
        freqs = np.linspace(3.0e9, 4.8e9, 7)
        vector = ensemble.empirical_error_rate(freqs)
        assert vector.shape == freqs.shape
        # One shared Monte-Carlo draw: each point equals the scalar call.
        for i, freq in enumerate(freqs):
            assert vector[i] == ensemble.empirical_error_rate(float(freq))

    def test_empirical_error_rate_scalar_returns_float(self):
        ensemble = wall_ensemble(250e-12, seed=4)
        assert isinstance(ensemble.empirical_error_rate(4.0e9), float)

    def test_empirical_error_rate_rejects_nonpositive_array(self):
        ensemble = wall_ensemble(250e-12, seed=4)
        with pytest.raises(ValueError):
            ensemble.empirical_error_rate(np.array([4.0e9, 0.0]))

    def test_wall_shape(self):
        ensemble = wall_ensemble(250e-12, wall_fraction=0.4, seed=1)
        delays = ensemble.nominal_delays
        near_wall = np.mean(delays > 0.95 * 250e-12)
        assert near_wall >= 0.35  # the critical-path wall exists


class TestCheckerThroughput:
    def test_wide_checker_rarely_binds(self):
        checker = CheckerConfig()
        # A 3-issue core at 5 GHz peaks at 15 G-instr/s; the checker
        # verifies 14 G/s — close, but real IPC keeps perf far below.
        assert checker.max_throughput == pytest.approx(14e9)
        assert checker.cap_performance(4e9) == pytest.approx(4e9)

    def test_narrow_checker_caps(self):
        checker = CheckerConfig(verify_width=1)
        assert checker.cap_performance(1e10) == pytest.approx(3.5e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckerConfig(verify_width=0)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_sensitivity(
            sigma_levels=(0.045, 0.135),
            n_chips=2,
            grid=DieGrid(nx=16, ny=16),
        )

    def test_more_variation_hurts_baseline(self, sweep):
        points = sweep.points
        assert points[0].baseline_f_rel > points[1].baseline_f_rel

    def test_eval_always_above_baseline(self, sweep):
        for p in sweep.points:
            assert p.eval_f_rel > p.baseline_f_rel

    def test_recovery_fraction_meaningful(self, sweep):
        for p in sweep.points:
            assert 0.0 <= p.recovered_fraction <= 1.0
        # At 1.5x the paper's severity the knobs saturate, but EVAL still
        # recovers a substantial share of the variation loss.
        assert sweep.points[1].recovered_fraction > 0.3

    def test_rows_render(self, sweep):
        rows = sweep.rows()
        assert len(rows) == 2 and len(rows[0]) == 5


class TestRetiming:
    @pytest.fixture(scope="class")
    def delays(self, core):
        from repro.timing import stage_delays

        n = core.n_subsystems
        return stage_delays(
            core, np.full(n, 1.0), np.zeros(n), core.calib.t_design
        )

    def test_retiming_never_slower_than_rigid(self, core, delays):
        from repro.mitigation import retime

        result = retime(core, delays)
        assert result.f_retimed >= result.f_baseline

    def test_retiming_bounded_by_loop_average(self, core, delays):
        from repro.mitigation import retime

        result = retime(core, delays)
        periods = delays.error_free_period()
        # Cannot beat the global average stage delay.
        assert result.f_retimed <= 1.0 / periods.mean() + 1e-9

    def test_limiting_loop_reported(self, core, delays):
        from repro.mitigation import DEFAULT_LOOPS, retime

        result = retime(core, delays)
        known = set(DEFAULT_LOOPS) | {
            (name,) for name in core.names
        }
        assert result.limiting_loop in known

    def test_uncovered_stage_keeps_own_period(self, core, delays):
        from repro.mitigation import retime

        # Restrict loops so Dcache has no donors.
        result = retime(core, delays, loops=(("Icache", "ITLB"),))
        idx = core.floorplan.index_of("Dcache")
        period = float(delays.error_free_period()[idx])
        assert result.loop_periods[("Dcache",)] == pytest.approx(period)

    def test_comparison_orders_schemes(self):
        from repro.exps import run_retiming_comparison
        from repro.variation import DieGrid

        result = run_retiming_comparison(n_chips=2)
        assert (
            result.baseline_f_rel
            <= result.retimed_f_rel
            <= result.eval_f_rel + 0.05
        )
