"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.circuits import gate_delay, static_power, threshold_voltage
from repro.microarch.phases import N_BUCKETS, PhaseDetector
from repro.ml.fuzzy import FuzzyController
from repro.timing.paths import StageDelays
from repro.timing.errors import processor_error_rate, stage_error_rates
from repro.timing.speculation import PerfParams, effective_cpi
from repro.variation import spherical_correlation

voltages = st.floats(min_value=0.8, max_value=1.3)
thresholds = st.floats(min_value=0.05, max_value=0.4)
temps = st.floats(min_value=300.0, max_value=400.0)
frequencies = st.floats(min_value=1e9, max_value=6e9)


@given(vdd=voltages, vt=thresholds, temp=temps)
def test_gate_delay_always_positive(vdd, vt, temp):
    assert gate_delay(vdd, vt, 1.0, temp) > 0.0


@given(vdd=voltages, vt=thresholds, temp=temps)
def test_delay_decreases_with_overdrive(vdd, vt, temp):
    faster = gate_delay(vdd + 0.05, vt, 1.0, temp)
    slower = gate_delay(vdd, vt, 1.0, temp)
    assert faster < slower


@given(vdd=voltages, vt=thresholds, temp=temps)
def test_leakage_positive_and_monotone_in_vt(vdd, vt, temp):
    high_vt = static_power(1.0, vdd, temp, vt + 0.02)
    low_vt = static_power(1.0, vdd, temp, vt)
    assert 0.0 < high_vt < low_vt


@given(
    vt0=thresholds,
    temp=temps,
    vdd=voltages,
    vbb=st.floats(min_value=-0.5, max_value=0.5),
)
def test_vt_law_is_affine_in_vbb(vt0, temp, vdd, vbb):
    base = threshold_voltage(vt0, temp, vdd, 0.0)
    shifted = threshold_voltage(vt0, temp, vdd, vbb)
    again = threshold_voltage(vt0, temp, vdd, 2 * vbb)
    assert np.isclose(again - shifted, shifted - base, atol=1e-12)


@given(r=st.floats(min_value=0.0, max_value=5.0), phi=st.floats(min_value=0.05, max_value=2.0))
def test_spherical_correlation_in_unit_interval(r, phi):
    rho = float(spherical_correlation(r, phi))
    assert 0.0 <= rho <= 1.0


@given(
    mean=st.floats(min_value=1e-10, max_value=5e-10),
    sigma=st.floats(min_value=1e-12, max_value=5e-11),
    rho=st.floats(min_value=0.01, max_value=2.0),
    f1=frequencies,
    f2=frequencies,
)
def test_error_rate_monotone_in_frequency(mean, sigma, rho, f1, f2):
    delays = StageDelays(
        mean=np.array([mean]), sigma=np.array([sigma]), z_free=6.5
    )
    lo, hi = min(f1, f2), max(f1, f2)
    pe_lo = processor_error_rate(lo, delays, np.array([rho]))
    pe_hi = processor_error_rate(hi, delays, np.array([rho]))
    assert pe_lo <= pe_hi + 1e-30


@given(
    mean=st.floats(min_value=1e-10, max_value=5e-10),
    sigma=st.floats(min_value=1e-12, max_value=5e-11),
    freq=frequencies,
)
def test_stage_error_rate_bounded_by_rho(mean, sigma, freq):
    delays = StageDelays(
        mean=np.array([mean]), sigma=np.array([sigma]), z_free=6.5
    )
    rho = np.array([0.7])
    pe = stage_error_rates(freq, delays, rho)
    assert 0.0 <= pe[0] <= rho[0]


@given(
    cpi=st.floats(min_value=0.3, max_value=8.0),
    mr=st.floats(min_value=0.0, max_value=0.05),
    pe=st.floats(min_value=0.0, max_value=0.1),
    freq=frequencies,
)
def test_effective_cpi_at_least_compute_cpi(cpi, mr, pe, freq):
    params = PerfParams.from_calibration(cpi, mr)
    assert effective_cpi(freq, pe, params) >= cpi


@settings(max_examples=25)
@given(
    data=arrays(
        np.float64,
        (8, 3),
        elements=st.floats(min_value=-2.0, max_value=2.0),
    ),
    x=arrays(
        np.float64, (3,), elements=st.floats(min_value=-3.0, max_value=3.0)
    ),
)
def test_fuzzy_output_within_rule_output_range(data, x):
    fc = FuzzyController(
        mu=data,
        sigma=np.full((8, 3), 0.5),
        y=np.linspace(-1.0, 1.0, 8),
        input_mean=np.zeros(3),
        input_std=np.ones(3),
    )
    out = fc.predict(x)
    assert -1.0 - 1e-9 <= out <= 1.0 + 1e-9


@settings(max_examples=25)
@given(
    bbv=arrays(
        np.int64,
        (N_BUCKETS,),
        elements=st.integers(min_value=0, max_value=63),
    )
)
def test_phase_detector_distance_is_symmetric(bbv):
    other = np.roll(bbv, 3)
    assert PhaseDetector.distance(bbv, other) == PhaseDetector.distance(
        other, bbv
    )


@settings(max_examples=25)
@given(
    bbv=arrays(
        np.int64,
        (N_BUCKETS,),
        elements=st.integers(min_value=0, max_value=63),
    )
)
def test_phase_detector_self_distance_zero(bbv):
    assert PhaseDetector.distance(bbv, bbv) == 0.0
