"""Thermal solver (Eqs 6-9) and sensor models."""

import numpy as np
import pytest

from repro import obs
from repro.obs import MetricsRegistry
from repro.thermal import (
    SensorSpec,
    SensorSuite,
    solve_temperatures,
    solve_temperatures_lanes,
)


class TestSolver:
    def solve(self, core, vdd=1.0, freq=4e9, th=343.15, activity=None):
        n = core.n_subsystems
        return solve_temperatures(
            core,
            np.full(n, vdd),
            np.zeros(n),
            freq,
            core.alpha_ref if activity is None else activity,
            th,
        )

    def test_temperatures_above_heatsink(self, core):
        sol = self.solve(core)
        assert np.all(sol.temperature > 343.15)
        assert sol.converged.all()

    def test_higher_frequency_is_hotter(self, core):
        cold = self.solve(core, freq=2.4e9)
        hot = self.solve(core, freq=4.8e9)
        assert np.all(hot.temperature >= cold.temperature)
        assert hot.core_power() > cold.core_power()

    def test_higher_vdd_is_hotter(self, core):
        low = self.solve(core, vdd=0.9)
        high = self.solve(core, vdd=1.2)
        assert high.max_temperature() > low.max_temperature()

    def test_zero_activity_leaves_only_leakage(self, core):
        sol = self.solve(core, activity=np.zeros(core.n_subsystems))
        assert np.all(sol.p_dynamic == 0.0)
        assert np.all(sol.p_static > 0.0)

    def test_heatsink_temperature_shifts_solution(self, core):
        cool = self.solve(core, th=330.0)
        warm = self.solve(core, th=345.0)
        # Warmer sink -> hotter silicon -> strictly more leakage.
        assert warm.max_temperature() > cool.max_temperature()
        assert warm.p_static.sum() > cool.p_static.sum()

    def test_fixed_point_consistency(self, core):
        # At convergence, T == TH + Rth * P must hold.
        sol = self.solve(core)
        reconstructed = 343.15 + core.rth * sol.p_total
        assert np.allclose(sol.temperature, reconstructed, atol=0.01)

    def test_total_power_is_sum(self, core):
        sol = self.solve(core)
        assert sol.core_power() == pytest.approx(
            float(sol.p_dynamic.sum() + sol.p_static.sum())
        )

    def test_broadcast_over_knob_grid(self, core):
        n = core.n_subsystems
        vdd = np.array([0.9, 1.0, 1.1])[:, None]
        sol = solve_temperatures(
            core, vdd, np.zeros(n), 4e9, core.alpha_ref, 343.15
        )
        assert sol.temperature.shape == (3, n)
        assert np.all(np.diff(sol.temperature, axis=0) > 0)


class TestLaneSolver:
    def lane_inputs(self, core):
        """Three lanes with distinct voltages, frequencies and activity."""
        n = core.n_subsystems
        vdd = np.stack([np.full(n, 0.9), np.full(n, 1.0), np.full(n, 1.15)])
        vbb = np.stack([np.zeros(n), np.full(n, 0.2), np.full(n, -0.3)])
        freq = np.array([2.4e9, 4.0e9, 4.8e9])[:, None]
        activity = np.stack(
            [core.alpha_ref * 0.05, core.alpha_ref, core.alpha_ref * 2.0]
        )
        return vdd, vbb, freq, activity

    def test_matches_serial_per_lane(self, core):
        vdd, vbb, freq, activity = self.lane_inputs(core)
        batched = solve_temperatures_lanes(
            core, vdd, vbb, freq, activity, 343.15
        )
        for lane in range(3):
            serial = solve_temperatures(
                core,
                vdd[lane],
                vbb[lane],
                float(freq[lane, 0]),
                activity[lane],
                343.15,
            )
            assert np.array_equal(
                batched.temperature[lane], serial.temperature
            )
            assert np.array_equal(batched.p_dynamic[lane], serial.p_dynamic)
            assert np.array_equal(batched.p_static[lane], serial.p_static)
            assert np.array_equal(batched.converged[lane], serial.converged)

    def test_metrics_match_serial_per_lane(self, core):
        vdd, vbb, freq, activity = self.lane_inputs(core)

        def iteration_values(run):
            with obs.scoped(MetricsRegistry()) as registry:
                run()
                doc = registry.to_dict()
            return (
                doc["counters"]["thermal.solves"],
                doc["histograms"]["thermal.iterations"]["values"],
            )

        serial_values = []
        for lane in range(3):
            solves, values = iteration_values(
                lambda lane=lane: solve_temperatures(
                    core,
                    vdd[lane],
                    vbb[lane],
                    float(freq[lane, 0]),
                    activity[lane],
                    343.15,
                )
            )
            assert solves == 1
            serial_values.extend(values)
        solves, batched_values = iteration_values(
            lambda: solve_temperatures_lanes(
                core, vdd, vbb, freq, activity, 343.15
            )
        )
        assert solves == 3
        assert batched_values == serial_values


class TestSensors:
    def test_ideal_sensors_pass_through(self):
        suite = SensorSuite.ideal()
        assert suite.read_heatsink(343.15) == pytest.approx(343.15)
        assert suite.read_power(25.0) == pytest.approx(25.0)

    def test_quantisation(self):
        spec = SensorSpec(quantum=0.5)
        assert spec.read(343.26) == pytest.approx(343.5)

    def test_noise_requires_rng(self):
        spec = SensorSpec(noise_sigma=1.0)
        with pytest.raises(ValueError):
            spec.read(300.0)

    def test_noisy_sensor_is_reproducible_per_seed(self):
        a = SensorSuite.realistic(seed=5)
        b = SensorSuite.realistic(seed=5)
        assert a.read_thermal(np.full(4, 350.0)) == pytest.approx(
            b.read_thermal(np.full(4, 350.0))
        )

    def test_realistic_noise_is_bounded(self, rng):
        suite = SensorSuite.realistic(seed=1)
        readings = np.array([suite.read_heatsink(343.15) for _ in range(200)])
        assert abs(readings.mean() - 343.15) < 0.5
        assert readings.std() < 2.0

    def test_activity_reading_never_negative(self):
        suite = SensorSuite.realistic(seed=2)
        values = suite.read_activity(np.full(100, 0.005))
        assert np.all(values >= 0.0)
