"""Chip layer: floorplan (Fig 7(b)), subsystem specs, core construction."""

import numpy as np
import pytest

from repro.chip import (
    FP_DOMAIN,
    INT_DOMAIN,
    LOGIC,
    MEMORY,
    MIXED,
    Rect,
    SubsystemSpec,
    build_core,
    build_novar_core,
    default_floorplan,
)
from repro.chip.chip import CORE_QUADRANTS


class TestRect:
    def test_area(self):
        assert Rect(0.0, 0.0, 0.5, 0.4).area == pytest.approx(0.2)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Rect(0.5, 0.0, 0.4, 1.0)

    def test_rejects_out_of_bounds(self):
        with pytest.raises(ValueError):
            Rect(0.0, 0.0, 1.2, 1.0)


class TestSubsystemSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SubsystemSpec("X", "weird", Rect(0, 0, 0.1, 0.1), 0.01, 1.0, 1.0, 1.0)

    def test_rejects_bad_criticality(self):
        with pytest.raises(ValueError, match="criticality"):
            SubsystemSpec(
                "X", MEMORY, Rect(0, 0, 0.1, 0.1), 0.01, 1.0, 1.0, 1.0,
                criticality=1.2,
            )

    def test_rejects_bad_rth_factor(self):
        with pytest.raises(ValueError, match="rth_factor"):
            SubsystemSpec(
                "X", MEMORY, Rect(0, 0, 0.1, 0.1), 0.01, 1.0, 1.0, 1.0,
                rth_factor=0.0,
            )


class TestFloorplan:
    def test_fifteen_subsystems(self):
        assert len(default_floorplan()) == 15

    def test_figure_7b_names_present(self):
        names = set(default_floorplan().names)
        expected = {
            "Dcache", "DTLB", "FPQ", "FPReg", "LdStQ", "FPUnit", "FPMap",
            "IntALU", "IntReg", "IntQ", "IntMap", "ITLB", "Icache",
            "BranchPred", "Decode",
        }
        assert names == expected

    def test_figure_7b_kinds(self):
        fp = default_floorplan()
        assert fp.by_name("Dcache").kind == MEMORY
        assert fp.by_name("IntALU").kind == LOGIC
        assert fp.by_name("FPUnit").kind == LOGIC
        assert fp.by_name("Decode").kind == LOGIC
        assert fp.by_name("IntQ").kind == MIXED
        assert fp.by_name("LdStQ").kind == MIXED
        assert fp.by_name("BranchPred").kind == MIXED
        kinds = [s.kind for s in fp.subsystems]
        assert kinds.count(MEMORY) == 9

    def test_published_areas(self):
        fp = default_floorplan()
        # Figure 7(a): IntALU 0.55%, FP adder+multiplier 1.90%.
        assert fp.by_name("IntALU").area_frac == pytest.approx(0.0055)
        assert fp.by_name("FPUnit").area_frac == pytest.approx(0.019)

    def test_resizable_and_replicable_flags(self):
        fp = default_floorplan()
        assert fp.by_name("IntQ").resizable and fp.by_name("FPQ").resizable
        assert fp.by_name("IntALU").replicable and fp.by_name("FPUnit").replicable
        assert not fp.by_name("Dcache").resizable

    def test_domains(self):
        fp = default_floorplan()
        groups = fp.indices_by_domain()
        assert fp.index_of("IntALU") in groups[INT_DOMAIN]
        assert fp.index_of("FPQ") in groups[FP_DOMAIN]
        assert len(groups[INT_DOMAIN]) == 4
        assert len(groups[FP_DOMAIN]) == 4

    def test_index_lookup_error(self):
        with pytest.raises(KeyError):
            default_floorplan().index_of("L4cache")

    def test_queues_and_fus_define_the_clock(self):
        fp = default_floorplan()
        for name in ("IntQ", "FPQ", "IntALU", "FPUnit"):
            assert fp.by_name(name).criticality == pytest.approx(1.0)
        for spec in fp.subsystems:
            if not (spec.resizable or spec.replicable):
                assert spec.criticality < 1.0


class TestCoreConstruction:
    def test_arrays_have_subsystem_length(self, core):
        n = core.n_subsystems
        assert n == 15
        for arr in (core.vt0_timing, core.rth, core.kdyn, core.ksta,
                    core.tail_rel, core.stage_sigma_rel):
            assert arr.shape == (n,)

    def test_rejects_bad_core_index(self, population):
        with pytest.raises(ValueError):
            build_core(population[0], 7)

    def test_four_quadrants(self):
        assert len(CORE_QUADRANTS) == 4

    def test_cores_of_same_chip_differ(self, population):
        a = build_core(population[0], 0)
        b = build_core(population[0], 3)
        assert not np.allclose(a.vt0_timing, b.vt0_timing)

    def test_deterministic_rebuild(self, population):
        a = build_core(population[1], 2)
        b = build_core(population[1], 2)
        assert np.array_equal(a.vt0_timing, b.vt0_timing)
        assert np.array_equal(a.tail_rel, b.tail_rel)

    def test_leak_vt0_is_below_region_mean(self, population):
        # By Jensen's inequality the leakage-effective Vt0 (log-mean-exp
        # of the cell values) cannot exceed the region's arithmetic mean.
        chip = population[0]
        core = build_core(chip, 0)
        gain = core.calib.systematic_delay_gain
        for i, spec in enumerate(core.floorplan.subsystems):
            rect = spec.rect
            cells = chip.grid.cells_in_rect(
                rect.x0 * 0.5, rect.y0 * 0.5, rect.x1 * 0.5, rect.y1 * 0.5
            )
            mean_vt = chip.params.vt_mean + gain * chip.vt_sys[cells].mean()
            assert core.vt0_leak[i] <= mean_vt + 1e-9

    def test_delay_factor_nominal_near_one(self, novar_core):
        d = novar_core.delay_factor(1.0, 0.0, novar_core.calib.t_design)
        assert np.allclose(d, 1.0)

    def test_delay_factor_responds_to_asv(self, core):
        d_low = core.delay_factor(0.9, 0.0, 350.0)
        d_high = core.delay_factor(1.2, 0.0, 350.0)
        assert np.all(d_high < d_low)

    def test_delay_factor_responds_to_abb(self, core):
        fbb = core.delay_factor(1.0, 0.4, 350.0)
        rbb = core.delay_factor(1.0, -0.4, 350.0)
        assert np.all(fbb < rbb)

    def test_static_power_positive_and_temp_sensitive(self, core):
        cold = core.subsystem_static_power(1.0, 0.0, 330.0)
        hot = core.subsystem_static_power(1.0, 0.0, 370.0)
        assert np.all(cold > 0)
        assert np.all(hot > cold)

    def test_dynamic_power_scales_with_budgets(self, core):
        power = core.subsystem_dynamic_power(1.0, core.calib.f_nominal, core.alpha_ref)
        total = power.sum()
        expected = (
            core.calib.core_dynamic_power_nominal
            - core.floorplan.l2.pdyn_budget
        )
        assert total == pytest.approx(expected, rel=1e-6)

    def test_l2_power_positive_and_grows_with_f(self, core):
        assert 0 < core.l2_power(2e9) < core.l2_power(4e9)

    def test_novar_core_has_no_tails(self, novar_core):
        assert np.all(novar_core.tail_rel == 0.0)

    def test_novar_core_meets_nominal_frequency_exactly(self, novar_core):
        calib = novar_core.calib
        d = novar_core.delay_factor(1.0, 0.0, calib.t_design)
        period_rel = d * (
            novar_core.stage_mean_rel
            + novar_core.tail_rel
            + calib.z_free * novar_core.stage_sigma_rel
        )
        assert period_rel.max() == pytest.approx(1.0, abs=1e-9)

    def test_rth_reflects_area_and_cooling_factor(self, core):
        fp = core.floorplan
        # Small blocks have higher Rth than the big caches.
        assert (
            core.rth[fp.index_of("IntALU")] > core.rth[fp.index_of("Dcache")]
        )

    def test_memory_repair_softens_worst_cell(self, population):
        # With repair (quantile < 1), the timing Vt0 of a big SRAM should
        # not be the absolute maximum of its footprint.
        chip = population[0]
        core = build_core(chip, 0)
        idx = core.floorplan.index_of("Icache")
        rect = core.floorplan.subsystems[idx].rect
        cells = chip.grid.cells_in_rect(
            rect.x0 * 0.5, rect.y0 * 0.5, rect.x1 * 0.5, rect.y1 * 0.5
        )
        gain = core.calib.systematic_delay_gain
        vt_cells = chip.params.vt_mean + gain * chip.vt_sys[cells]
        assert core.vt0_timing[idx] <= vt_cells.max() + 1e-12
