"""repro.exps.dse: sweep expansion, Pareto analytics, service-driven runs."""

import json

import pytest

from repro.config import Settings
from repro.exps.dse import (
    Axis,
    Objective,
    RemoteSweepError,
    SweepSpec,
    ZipAxes,
    dedupe_points,
    error_fraction,
    load_results,
    pareto_front,
    run_sweep,
    sensitivity,
    write_artifacts,
)

#: Tiny runner-tier binding shared by the execution tests.
TINY = {"chips": 1, "n_instructions": 1500, "fc_examples": 300}


class TestExpansion:
    def test_product_order_and_count(self):
        spec = SweepSpec(axes=(
            Axis.of("environment", ["TS", "TS+ASV"]),
            Axis.of("mode", ["Static", "Exh-Dyn"]),
        ))
        points = spec.expand()
        assert len(points) == spec.n_points() == 4
        # Last group varies fastest; indexes are the expansion order.
        assert [p.params["environment"] for p in points] == [
            "TS", "TS", "TS+ASV", "TS+ASV",
        ]
        assert [p.params["mode"] for p in points] == [
            "Static", "Exh-Dyn", "Static", "Exh-Dyn",
        ]
        assert [p.index for p in points] == [0, 1, 2, 3]

    def test_point_ids_are_stable_and_content_addressed(self):
        a = SweepSpec(axes=(
            Axis.of("environment", ["TS", "TS+ASV"]),
            Axis.of("phi", [0.25, 0.5]),
        ))
        b = SweepSpec(axes=(
            Axis.of("phi", [0.5, 0.25]),
            Axis.of("environment", ["TS+ASV", "TS"]),
        ))
        # Same bindings, different declaration order: same id *set*.
        assert {p.point_id for p in a.expand()} == {
            p.point_id for p in b.expand()
        }
        # And re-expansion is deterministic.
        assert [p.point_id for p in a.expand()] == [
            p.point_id for p in a.expand()
        ]

    def test_single_point_sweep(self):
        spec = SweepSpec(base={"environment": "TS"})
        points = spec.expand()
        assert len(points) == 1
        assert points[0].params["mode"] == "Exh-Dyn"  # defaulted

    def test_zip_and_product_compose(self):
        spec = SweepSpec(
            axes=(
                Axis.of("environment", ["TS", "TS+ASV"]),
                ZipAxes((
                    Axis.of("chips", [2, 4]),
                    Axis.of("cores", [1, 2]),
                )),
            ),
        )
        points = spec.expand()
        assert len(points) == 4
        # Zip rows stay paired: (2,1) and (4,2), never (2,2).
        pairs = {(p.params["chips"], p.params["cores"]) for p in points}
        assert pairs == {(2, 1), (4, 2)}

    def test_product_of_zips(self):
        spec = SweepSpec(
            base={"environment": "TS"},
            axes=(
                ZipAxes((
                    Axis.of("chips", [2, 4]),
                    Axis.of("cores", [1, 2]),
                )),
                ZipAxes((
                    Axis.of("phi", [0.25, 0.5]),
                    Axis.of("pe_max", [1e-4, 1e-3]),
                )),
            ),
        )
        points = spec.expand()
        assert len(points) == 4
        assert {(p.params["chips"], p.params["phi"]) for p in points} == {
            (2, 0.25), (2, 0.5), (4, 0.25), (4, 0.5),
        }

    def test_range_and_logrange(self):
        assert Axis.range("chips", 2, 8, 2).values == (2, 4, 6, 8)
        log = Axis.logrange("phi", 0.25, 1.0, 3).values
        assert log[0] == pytest.approx(0.25)
        assert log[1] == pytest.approx(0.5)
        assert log[2] == pytest.approx(1.0)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            Axis.of("phi", [])  # empty axis
        with pytest.raises(ValueError):
            Axis.of("nonsense", [1])  # unknown param
        with pytest.raises(KeyError):
            Axis.of("environment", ["NoSuchEnv"])
        with pytest.raises(ValueError):
            Axis.of("mode", ["NoSuchMode"])
        with pytest.raises(ValueError):
            Axis.of("phi", [-0.5])
        with pytest.raises(ValueError):
            Axis.of("chips", [2.5])
        with pytest.raises(ValueError):
            ZipAxes((Axis.of("chips", [1, 2]), Axis.of("cores", [1])))
        with pytest.raises(ValueError):
            SweepSpec(axes=(Axis.of("phi", [0.5]),))  # no environment
        with pytest.raises(ValueError):
            SweepSpec(
                base={"environment": "TS"},
                axes=(Axis.of("environment", ["TS"]),),  # bound twice
            )

    def test_wire_roundtrip(self):
        spec = SweepSpec(
            base={"mode": "Static", "workloads": ["gzip*", "swim*"]},
            axes=(
                Axis.of("environment", ["TS"]),
                ZipAxes((
                    Axis.of("chips", [2, 4]),
                    Axis.of("seed", [1, 2]),
                )),
            ),
        )
        rebuilt = SweepSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert [p.point_id for p in rebuilt.expand()] == [
            p.point_id for p in spec.expand()
        ]

    def test_wire_sugar_forms(self):
        spec = SweepSpec.from_wire({
            "base": {"environment": "TS"},
            "axes": [
                {"param": "chips", "range": {"start": 2, "stop": 6, "step": 2}},
                {"param": "phi", "logrange": {"start": 0.25, "stop": 1.0, "num": 3}},
            ],
        })
        assert spec.n_points() == 9
        with pytest.raises(ValueError):
            SweepSpec.from_wire({"axes": [{"param": "chips"}]})
        with pytest.raises(ValueError):
            SweepSpec.from_wire({
                "axes": [{"param": "chips", "values": [1], "range": {}}],
            })

    def test_duplicate_points_dedupe(self):
        spec = SweepSpec(axes=(Axis.of("environment", ["TS", "TS"]),))
        points = spec.expand()
        assert len(points) == 2
        unique = dedupe_points(points)
        assert len(unique) == 1
        assert unique[0].index == 0


FIXTURE_ROWS = [
    # Hand-computed 3-objective fixture (perf max, power min, err min):
    # a dominates b (better everywhere) but is itself dominated by d
    # (equal perf/power, strictly lower error); c trades power for perf,
    # e is dominated by c, f ties c's objectives exactly.
    {"point": "a", "perf_rel": 1.00, "power": 20.0, "error_frac": 0.010},
    {"point": "b", "perf_rel": 0.90, "power": 25.0, "error_frac": 0.020},
    {"point": "c", "perf_rel": 1.20, "power": 28.0, "error_frac": 0.010},
    {"point": "d", "perf_rel": 1.00, "power": 20.0, "error_frac": 0.005},
    {"point": "e", "perf_rel": 1.10, "power": 28.0, "error_frac": 0.015},
    {"point": "f", "perf_rel": 1.20, "power": 28.0, "error_frac": 0.010},
]

OBJECTIVES = (
    Objective("perf_rel", "max"),
    Objective("power", "min"),
    Objective("error_frac", "min"),
)


class TestPareto:
    def test_hand_computed_front(self):
        front = pareto_front(FIXTURE_ROWS, OBJECTIVES)
        assert [row["point"] for row in front] == ["c", "f", "d"]

    def test_front_is_input_order_independent(self):
        front = pareto_front(list(reversed(FIXTURE_ROWS)), OBJECTIVES)
        assert [row["point"] for row in front] == ["c", "f", "d"]

    def test_single_objective_reduces_to_argmax(self):
        front = pareto_front(FIXTURE_ROWS, [Objective("perf_rel", "max")])
        assert {row["point"] for row in front} == {"c", "f"}

    def test_direction_matters(self):
        worst = pareto_front(FIXTURE_ROWS, [Objective("perf_rel", "min")])
        assert [row["point"] for row in worst] == ["b"]

    def test_objective_parsing(self):
        assert Objective.parse("power:min") == Objective("power", "min")
        assert Objective.parse("f_rel") == Objective("f_rel", "max")
        with pytest.raises(ValueError):
            Objective.parse(":max")
        with pytest.raises(ValueError):
            Objective("x", "sideways")

    def test_missing_column_is_loud(self):
        with pytest.raises(KeyError):
            pareto_front(FIXTURE_ROWS, [Objective("nope", "max")])

    def test_sensitivity_main_effects(self):
        rows = [
            {"point": "1", "phi": 0.25, "mode": "Exh-Dyn", "perf_rel": 1.0},
            {"point": "2", "phi": 0.25, "mode": "Exh-Dyn", "perf_rel": 1.2},
            {"point": "3", "phi": 1.0, "mode": "Exh-Dyn", "perf_rel": 0.6},
            {"point": "4", "phi": 1.0, "mode": "Exh-Dyn", "perf_rel": 0.8},
        ]
        report = sensitivity(rows, ["phi"], [Objective("perf_rel", "max")])
        assert report["phi"]["spread"]["perf_rel"] == pytest.approx(0.4)
        # A fixed column produces no entry.
        assert sensitivity(rows, ["mode"], [Objective("perf_rel")]) == {}


@pytest.fixture(scope="module")
def sweep_cache(tmp_path_factory):
    return str(tmp_path_factory.mktemp("dse-cache"))


@pytest.fixture(scope="module")
def tiny_sweep_result(sweep_cache):
    spec = SweepSpec(
        axes=(
            Axis.of("environment", ["TS", "TS+ASV"]),
            Axis.of("mode", ["Static", "Exh-Dyn"]),
        ),
        base=TINY,
    )
    settings = Settings(cache_dir=sweep_cache)
    return spec, settings, run_sweep(spec, settings)


class TestRunSweep:
    def test_rows_in_expansion_order_with_metrics(self, tiny_sweep_result):
        spec, _settings, result = tiny_sweep_result
        assert [row["point"] for row in result.rows] == [
            p.point_id for p in result.points
        ]
        assert result.stats["cells_total"] == 4
        assert result.stats["cells_computed"] == 4
        for row in result.rows:
            assert row["f_rel"] > 0
            assert row["power"] > 0
            assert 0.0 <= row["error_frac"] <= 1.0
            assert row["source"] == "computed"
        # Exh-Dyn dominates Static per environment on frequency.
        by = {(r["environment"], r["mode"]): r for r in result.rows}
        assert by[("TS", "Exh-Dyn")]["f_rel"] >= by[("TS", "Static")]["f_rel"]

    def test_warm_rerun_is_fully_cache_served(self, tiny_sweep_result):
        spec, settings, cold = tiny_sweep_result
        warm = run_sweep(spec, settings)
        assert warm.stats["cells_deduped"] == warm.stats["cells_total"] == 4
        assert warm.stats["cells_computed"] == 0
        assert all(row["source"] == "cache" for row in warm.rows)
        # Bit-identical table (modulo provenance).
        strip = lambda rows: [
            {k: v for k, v in row.items() if k != "source"} for row in rows
        ]
        assert strip(warm.rows) == strip(cold.rows)

    def test_duplicate_points_share_cells(self, sweep_cache):
        # Fresh settings but same cache: the duplicated TS cell must be
        # submitted once; the sweep itself reports the dedup.
        spec = SweepSpec(
            axes=(Axis.of("environment", ["TS", "TS"]),),
            base={**TINY, "mode": "Exh-Dyn"},
        )
        result = run_sweep(spec, Settings(cache_dir=sweep_cache))
        assert result.stats["points"] == 2
        assert result.stats["points_unique"] == 1
        assert result.stats["points_deduped"] == 1
        assert len(result.rows) == 1

    def test_pareto_identical_across_jobs(self, sweep_cache):
        # Worker-thread width must not change the table or the frontier.
        spec = SweepSpec(
            axes=(Axis.of("environment", ["TS", "TS+ASV"]),),
            base={**TINY, "mode": "Exh-Dyn"},
        )
        serial = run_sweep(spec, Settings(cache_enabled=False, jobs=1))
        threaded = run_sweep(spec, Settings(cache_enabled=False, jobs=2))
        assert serial.rows == threaded.rows
        assert serial.pareto() == threaded.pareto()

    def test_remote_sweep_rejects_runner_tier_axes(self):
        spec = SweepSpec(
            axes=(Axis.of("environment", ["TS"]),),
            base={"chips": 2},
        )
        with pytest.raises(RemoteSweepError) as excinfo:
            # Checked before any connection is attempted.
            run_sweep(spec, service="127.0.0.1:1")
        assert "chips" in excinfo.value.params

    def test_error_fraction_weighting(self, tiny_sweep_result):
        _spec, _settings, result = tiny_sweep_result
        summary = result.summaries[result.points[0].point_id]
        assert error_fraction(summary) == pytest.approx(
            sum(r.weight for r in summary.results if r.outcome == "Error")
            / sum(r.weight for r in summary.results)
        )


class TestArtifacts:
    def test_write_and_reload(self, tiny_sweep_result, tmp_path):
        _spec, _settings, result = tiny_sweep_result
        paths = write_artifacts(result, tmp_path, OBJECTIVES)
        assert all(p.exists() for p in paths.values())
        spec, rows, stats = load_results(tmp_path)
        assert spec == result.spec
        assert rows == result.rows
        assert stats == result.stats
        report = json.loads(paths["report_json"].read_text())
        front = pareto_front(result.rows, OBJECTIVES)
        assert report["pareto"]["points"] == [r["point"] for r in front]
        header = paths["results_csv"].read_text().splitlines()[0]
        assert header.startswith("point,index,")
        assert header.endswith("f_rel,perf_rel,power,error_frac,source")
        # results.csv has one line per point plus the header.
        assert len(paths["results_csv"].read_text().splitlines()) == 1 + len(
            result.rows
        )
