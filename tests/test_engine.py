"""The parallel experiment engine, its cache, and the run() API redesign."""

import numpy as np
import pytest

from repro.calibration import DEFAULT_CALIBRATION, Calibration
from repro.core import NOVAR, TS, TS_ASV, AdaptationMode
from repro.exps import ExperimentRunner, RunnerConfig, RunSpec
from repro.exps.cache import (
    ExperimentCache,
    bank_key,
    measurement_key,
    stable_hash,
    summary_key,
)
from repro.microarch import DEFAULT_CORE_CONFIG, spec2000_like_suite

#: Small but multi-chip scale: enough to exercise sharding boundaries.
ENGINE_CONFIG = RunnerConfig(
    n_chips=2,
    cores_per_chip=1,
    n_instructions=3000,
    fuzzy_examples=300,
    fuzzy_epochs=1,
)


@pytest.fixture(scope="module")
def two_workloads():
    return tuple(spec2000_like_suite()[:2])


class TestRunAPI:
    def test_shims_removed(self):
        """The pre-engine per-cell entry points are gone in 1.6."""
        runner = ExperimentRunner(ENGINE_CONFIG)
        for name in ("run_environment", "baseline_summary", "_run_novar"):
            assert not hasattr(runner, name)

    def test_novar_under_any_mode(self):
        runner = ExperimentRunner(ENGINE_CONFIG)
        result = runner.run(RunSpec(
            environments=(NOVAR,),
            modes=(AdaptationMode.STATIC, AdaptationMode.EXH_DYN),
        ))
        static = result.summary(NOVAR, AdaptationMode.STATIC)
        dyn = result.summary(NOVAR, AdaptationMode.EXH_DYN)
        assert static.f_rel == pytest.approx(1.0)
        assert static.results == dyn.results

    def test_single_mode_lookup_needs_no_mode(self, two_workloads):
        runner = ExperimentRunner(ENGINE_CONFIG)
        result = runner.run(RunSpec(environments=(TS,), workloads=two_workloads))
        assert result.summary(TS) is result.summary("TS", "Exh-Dyn")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            RunSpec(environments=())
        with pytest.raises(ValueError):
            RunSpec(environments=(TS,), parallelism=0)

    def test_novar_still_reachable_through_run(self):
        runner = ExperimentRunner(ENGINE_CONFIG)
        summary = runner.run(RunSpec(environments=(NOVAR,))).summary(NOVAR)
        assert summary.f_rel == pytest.approx(1.0)


class TestFromSettings:
    """The sanctioned Settings -> spec/config/runner mappings (1.6)."""

    def test_runspec_from_settings(self):
        from repro.config import Settings

        settings = Settings(jobs=3, cache_dir="/tmp/x", shared_mem=False)
        spec = RunSpec.from_settings(settings, environments=(TS,))
        assert spec.parallelism == 3
        assert spec.cache_dir == "/tmp/x"
        assert spec.use_cache
        assert not spec.shared_mem
        # cache_enabled=False zeroes the effective cache directory.
        spec = RunSpec.from_settings(
            settings.replace(cache_enabled=False), environments=(TS,)
        )
        assert spec.cache_dir is None
        assert not spec.use_cache

    def test_runspec_from_settings_overrides_win(self):
        from repro.config import Settings

        spec = RunSpec.from_settings(
            Settings(jobs=3), environments=(TS,), parallelism=7
        )
        assert spec.parallelism == 7

    def test_runner_config_from_settings(self):
        from repro.config import Settings

        settings = Settings(chips=5, cores=2, fc_examples=123, seed=99)
        config = RunnerConfig.from_settings(settings, n_instructions=4000)
        assert config.n_chips == 5
        assert config.cores_per_chip == 2
        assert config.fuzzy_examples == 123
        assert config.seed == 99
        assert config.n_instructions == 4000

    def test_runner_from_settings(self, tmp_path):
        from repro.config import Settings

        settings = Settings(
            chips=2, cache_dir=str(tmp_path), batch_phases=False
        )
        runner = ExperimentRunner.from_settings(settings)
        assert runner.config.n_chips == 2
        assert runner.cache is not None
        assert not runner.batch_phases
        override = RunnerConfig(n_chips=1)
        runner = ExperimentRunner.from_settings(settings, config=override)
        assert runner.config is override

    def test_phi_changes_population_and_cache_key(self):
        base = RunnerConfig(n_chips=1)
        swept = RunnerConfig(n_chips=1, phi=0.25)
        assert summary_key(
            DEFAULT_CALIBRATION, base, DEFAULT_CORE_CONFIG, TS,
            AdaptationMode.EXH_DYN, [],
        ) != summary_key(
            DEFAULT_CALIBRATION, swept, DEFAULT_CORE_CONFIG, TS,
            AdaptationMode.EXH_DYN, [],
        )
        chips_base = ExperimentRunner(base).population
        chips_swept = ExperimentRunner(swept).population
        assert chips_swept[0].params.phi == 0.25
        assert not np.array_equal(chips_base[0].vt_sys, chips_swept[0].vt_sys)
        with pytest.raises(ValueError):
            RunnerConfig(phi=-1.0)


class TestParallelDeterminism:
    def test_parallel_matches_serial_exactly(self, two_workloads):
        """RunSpec(parallelism=N) is bit-identical to the serial run."""
        spec = RunSpec(
            environments=(TS,),
            modes=(AdaptationMode.EXH_DYN,),
            workloads=two_workloads,
        )
        serial = ExperimentRunner(ENGINE_CONFIG).run(spec).summary(TS)
        parallel = (
            ExperimentRunner(ENGINE_CONFIG)
            .run(RunSpec(
                environments=(TS,),
                modes=(AdaptationMode.EXH_DYN,),
                workloads=two_workloads,
                parallelism=2,
            ))
            .summary(TS)
        )
        assert serial.results == parallel.results  # frozen-dataclass equality
        assert serial.f_rel == parallel.f_rel
        assert serial.perf_rel == parallel.perf_rel
        assert serial.power == parallel.power

    def test_parallel_fuzzy_matches_serial(self, two_workloads):
        """Banks shipped to workers via the npz cache change nothing."""
        spec_args = dict(
            environments=(TS_ASV,),
            modes=(AdaptationMode.FUZZY_DYN,),
            workloads=two_workloads,
        )
        serial = ExperimentRunner(ENGINE_CONFIG).run(
            RunSpec(**spec_args)
        ).summary(TS_ASV)
        parallel = ExperimentRunner(ENGINE_CONFIG).run(
            RunSpec(parallelism=2, **spec_args)
        ).summary(TS_ASV)
        assert serial.results == parallel.results


class TestSharedMemoryTransport:
    def test_shm_rows_byte_identical_to_rebuild(self, two_workloads):
        """--shared-mem changes transport, never physics: identical rows."""
        from repro import obs

        spec_args = dict(
            environments=(TS,),
            modes=(AdaptationMode.EXH_DYN,),
            workloads=two_workloads,
            parallelism=2,
        )
        scope = obs.MetricsRegistry()
        with obs.scoped(scope):
            shm = ExperimentRunner(ENGINE_CONFIG).run(
                RunSpec(shared_mem=True, **spec_args)
            ).summary(TS)
        rebuild = ExperimentRunner(ENGINE_CONFIG).run(
            RunSpec(shared_mem=False, **spec_args)
        ).summary(TS)
        assert shm.results == rebuild.results  # frozen-dataclass equality
        assert shm.f_rel == rebuild.f_rel
        assert shm.perf_rel == rebuild.perf_rel
        assert shm.power == rebuild.power
        assert scope.to_dict()["gauges"]["engine.shm_bytes"] > 0.0

    def test_shm_off_publishes_nothing(self, two_workloads):
        from repro import obs

        scope = obs.MetricsRegistry()
        with obs.scoped(scope):
            ExperimentRunner(ENGINE_CONFIG).run(RunSpec(
                environments=(TS,),
                modes=(AdaptationMode.EXH_DYN,),
                workloads=two_workloads,
                parallelism=2,
                shared_mem=False,
            ))
        assert scope.to_dict()["gauges"]["engine.shm_bytes"] == 0.0

    def test_publish_attach_roundtrip(self):
        from repro.exps.shm import SharedPopulation, attach
        from repro.variation import DieGrid, VariationModel, get_factor

        model = VariationModel(grid=DieGrid(nx=8, ny=8))
        population = model.population(3, seed=5)
        factor = get_factor(model.grid, model.params.phi)
        shared = SharedPopulation.publish(population, factor)
        try:
            chips, shared_factor, segment = attach(shared.handle)
            assert len(chips) == len(population)
            for ours, theirs in zip(population, chips):
                assert np.array_equal(ours.vt_sys, theirs.vt_sys)
                assert np.array_equal(ours.leff_sys, theirs.leff_sys)
                assert ours.chip_id == theirs.chip_id
                assert not theirs.vt_sys.flags.writeable
            assert np.array_equal(shared_factor, factor)
            del chips, shared_factor
            segment.close()
        finally:
            shared.close()
            shared.unlink()

    def test_publish_without_factor(self):
        from repro.exps.shm import SharedPopulation, attach
        from repro.variation import DieGrid, VariationModel

        model = VariationModel(grid=DieGrid(nx=6, ny=6))
        population = model.population(2, seed=0)
        shared = SharedPopulation.publish(population)
        try:
            chips, factor, segment = attach(shared.handle)
            assert factor is None
            assert np.array_equal(chips[1].vt_sys, population[1].vt_sys)
            del chips
            segment.close()
        finally:
            shared.close()
            shared.unlink()

    def test_publish_rejects_empty_population(self):
        from repro.exps.shm import SharedPopulation

        with pytest.raises(ValueError):
            SharedPopulation.publish([])

    def test_runner_accepts_injected_population(self):
        from repro.variation import VariationModel

        population = VariationModel().population(
            ENGINE_CONFIG.n_chips, seed=ENGINE_CONFIG.seed
        )
        runner = ExperimentRunner(ENGINE_CONFIG, population=population)
        # The chips themselves are shared, not re-sampled.
        assert all(a is b for a, b in zip(runner.population, population))

    def test_runner_rejects_population_of_wrong_size(self):
        from repro.variation import VariationModel

        wrong = VariationModel().population(
            ENGINE_CONFIG.n_chips + 1, seed=ENGINE_CONFIG.seed
        )
        with pytest.raises(ValueError):
            ExperimentRunner(ENGINE_CONFIG, population=wrong)


class TestCache:
    def test_summary_cache_hit_and_miss(self, tmp_path, two_workloads):
        spec = RunSpec(
            environments=(TS,),
            workloads=two_workloads,
            cache_dir=str(tmp_path),
        )
        cold_runner = ExperimentRunner(ENGINE_CONFIG)
        cold = cold_runner.run(spec).summary(TS)
        warm_runner = ExperimentRunner(ENGINE_CONFIG, cache=ExperimentCache(tmp_path))
        warm = warm_runner.run(RunSpec(environments=(TS,), workloads=two_workloads))
        assert warm_runner.cache.stats.hits["summary"] == 1
        assert warm_runner.cache.stats.misses["summary"] == 0
        assert warm.summary(TS).results == cold.results

    def test_no_cache_flag_bypasses_disk(self, tmp_path, two_workloads):
        cache = ExperimentCache(tmp_path)
        runner = ExperimentRunner(ENGINE_CONFIG, cache=cache)
        runner.run(RunSpec(environments=(TS,), workloads=two_workloads,
                           use_cache=False))
        assert not list((tmp_path / "summaries").iterdir())

    def test_calibration_change_invalidates(self, tmp_path, two_workloads):
        """A recalibrated constant must miss every cache key."""
        recalibrated = Calibration(systematic_delay_gain=3.1)
        spec = RunSpec(environments=(TS,), workloads=two_workloads,
                       cache_dir=str(tmp_path))
        ExperimentRunner(ENGINE_CONFIG).run(spec)
        runner = ExperimentRunner(ENGINE_CONFIG, calib=recalibrated,
                                  cache=ExperimentCache(tmp_path))
        runner.run(RunSpec(environments=(TS,), workloads=two_workloads))
        assert runner.cache.stats.hits["summary"] == 0
        assert runner.cache.stats.misses["summary"] == 1

    def test_key_functions_are_sensitive(self, two_workloads):
        profile = two_workloads[0]
        base = measurement_key(DEFAULT_CALIBRATION, profile,
                               DEFAULT_CORE_CONFIG, 3000, 7)
        assert base == measurement_key(DEFAULT_CALIBRATION, profile,
                                       DEFAULT_CORE_CONFIG, 3000, 7)
        assert base != measurement_key(DEFAULT_CALIBRATION, profile,
                                       DEFAULT_CORE_CONFIG, 3000, 8)
        assert base != measurement_key(Calibration(z_free=6.0), profile,
                                       DEFAULT_CORE_CONFIG, 3000, 7)
        env_a = summary_key(DEFAULT_CALIBRATION, ENGINE_CONFIG,
                            DEFAULT_CORE_CONFIG, TS,
                            AdaptationMode.EXH_DYN, two_workloads)
        env_b = summary_key(DEFAULT_CALIBRATION, ENGINE_CONFIG,
                            DEFAULT_CORE_CONFIG, TS_ASV,
                            AdaptationMode.EXH_DYN, two_workloads)
        assert env_a != env_b

    def test_stable_hash_ignores_container_type(self):
        assert stable_hash([1, 2]) == stable_hash((1, 2))
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_measurement_roundtrip(self, tmp_path, int_measurement):
        cache = ExperimentCache(tmp_path)
        cache.save_measurement("k", int_measurement)
        loaded = cache.load_measurement("k")
        assert loaded.cpi_comp == int_measurement.cpi_comp
        assert loaded.overlap_factor == int_measurement.overlap_factor
        assert np.array_equal(loaded.activity, int_measurement.activity)
        assert np.array_equal(loaded.rho, int_measurement.rho)
        assert cache.load_measurement("absent") is None

    def test_bank_roundtrip_through_cache(self, tmp_path, tiny_bank):
        """ControllerBank persistence through the engine's cache path."""
        cache = ExperimentCache(tmp_path)
        cache.save_bank("k", tiny_bank)
        loaded = cache.load_bank("k")
        assert set(loaded.freq_fcs) == set(tiny_bank.freq_fcs)
        for key, fc in tiny_bank.freq_fcs.items():
            assert np.array_equal(loaded.freq_fcs[key].mu, fc.mu)
            assert np.array_equal(loaded.freq_fcs[key].y, fc.y)
        assert loaded.freq_rmse == tiny_bank.freq_rmse
        assert loaded.optimism == tiny_bank.optimism
        assert np.array_equal(loaded.spec.vdd_levels, tiny_bank.spec.vdd_levels)
        assert cache.load_bank("absent") is None

    def test_bank_key_tracks_training_knobs(self, asv_spec):
        base = bank_key(DEFAULT_CALIBRATION, asv_spec, 300, 1, 7)
        assert base == bank_key(DEFAULT_CALIBRATION, asv_spec, 300, 1, 7)
        assert base != bank_key(DEFAULT_CALIBRATION, asv_spec, 600, 1, 7)
        assert base != bank_key(Calibration(z_free=6.0), asv_spec, 300, 1, 7)


class TestWireFormat:
    def test_suite_summary_json_roundtrip(self, two_workloads):
        runner = ExperimentRunner(ENGINE_CONFIG)
        summary = runner.run(
            RunSpec(environments=(TS,), workloads=two_workloads)
        ).summary(TS)
        restored = type(summary).from_json(summary.to_json())
        assert restored.f_rel == summary.f_rel
        assert restored.perf_rel == summary.perf_rel
        assert restored.power == summary.power
        assert restored.results == summary.results  # floats bit-identical

    def test_phase_result_record_roundtrip(self, two_workloads):
        runner = ExperimentRunner(ENGINE_CONFIG)
        row = runner.run(
            RunSpec(environments=(TS,), workloads=two_workloads)
        ).summary(TS).results[0]
        assert type(row).from_dict(row.to_dict()) == row

    def test_results_table_renders_records(self, two_workloads):
        from repro.exps import results_table

        runner = ExperimentRunner(ENGINE_CONFIG)
        summary = runner.run(
            RunSpec(environments=(TS,), workloads=two_workloads)
        ).summary(TS)
        text = results_table(summary, max_rows=2)
        assert "workload" in text and "f_rel" in text
        assert "..." in text  # truncated


class TestStaticMemoisation:
    def test_measurements_memoised_per_env_knobs(self, two_workloads):
        """Static mode must not re-enter the simulator path (satellite fix)."""
        import repro.exps.runner as runner_mod

        runner = ExperimentRunner(ENGINE_CONFIG, workloads=two_workloads)
        calls = []
        original = runner_mod.measure_suite_batched

        def counting(requests, *args, **kwargs):
            calls.extend(profile.name for profile, _ in requests)
            return original(requests, *args, **kwargs)

        runner_mod.measure_suite_batched = counting
        try:
            runner.run(RunSpec(environments=(TS,),
                               modes=(AdaptationMode.STATIC,),
                               workloads=two_workloads, use_cache=False))
            n_phase_profiles = sum(len(w.phases) for w in two_workloads)
            # One simulator entry per phase profile, despite the Static
            # aggregation pass also needing every measurement per core.
            assert len(calls) == n_phase_profiles
        finally:
            runner_mod.measure_suite_batched = original

    def test_memo_key_includes_seed(self, two_workloads):
        """Two seeds must never share a memo entry (regression).

        The memo key once omitted the seed, so a runner whose config was
        swapped out — the supported reuse pattern across sweeps — served
        seed A's measurements to seed B.
        """
        import dataclasses

        import repro.exps.runner as runner_mod

        runner = ExperimentRunner(ENGINE_CONFIG, workloads=two_workloads)
        profile = next(runner.phase_profiles(two_workloads[0]))[0]
        calls = []
        original = runner_mod.measure_suite_batched

        def counting(*args, **kwargs):
            calls.append(kwargs.get("seed", args[2] if len(args) > 2 else None))
            return original(*args, **kwargs)

        runner_mod.measure_suite_batched = counting
        try:
            runner.measurements(profile, TS)
            runner.measurements(profile, TS)  # memoised: no new call
            assert len(calls) == 1
            runner.config = dataclasses.replace(
                runner.config, seed=ENGINE_CONFIG.seed + 1
            )
            runner.measurements(profile, TS)  # new seed: must re-measure
            assert len(calls) == 2
            assert calls[0] != calls[1]
        finally:
            runner_mod.measure_suite_batched = original


class TestCorruptArtifacts:
    def test_truncated_npz_is_a_miss_and_is_deleted(
        self, tmp_path, int_measurement
    ):
        from repro import obs

        cache = ExperimentCache(tmp_path)
        cache.save_measurement("k", int_measurement)
        path = tmp_path / "measurements" / "k.npz"
        path.write_bytes(path.read_bytes()[:40])  # torn copy
        scope = obs.MetricsRegistry()
        with obs.scoped(scope):
            assert cache.load_measurement("k") is None
        assert not path.exists()
        assert scope.to_dict()["counters"]["cache.corrupt"] == 1.0
        assert cache.stats.misses["measurement"] == 1
        # A clean rewrite is served normally again.
        cache.save_measurement("k", int_measurement)
        loaded = cache.load_measurement("k")
        np.testing.assert_array_equal(loaded.activity, int_measurement.activity)

    def test_garbage_summary_json_is_a_miss_and_is_deleted(self, tmp_path):
        from repro import obs

        cache = ExperimentCache(tmp_path)
        path = tmp_path / "summaries" / "k.json"
        path.write_text("{not json at all")
        scope = obs.MetricsRegistry()
        with obs.scoped(scope):
            assert cache.load_summary("k") is None
        assert not path.exists()
        assert scope.to_dict()["counters"]["cache.corrupt"] == 1.0

    def test_corrupt_bank_is_a_miss_and_is_deleted(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        path = tmp_path / "banks" / "k.npz"
        path.write_bytes(b"PK\x03\x04 definitely not a bank")
        assert cache.load_bank("k") is None
        assert not path.exists()

    def test_missing_artifact_is_a_plain_miss(self, tmp_path):
        from repro import obs

        cache = ExperimentCache(tmp_path)
        scope = obs.MetricsRegistry()
        with obs.scoped(scope):
            assert cache.load_summary("absent") is None
        assert "cache.corrupt" not in scope.to_dict()["counters"]


class TestUnitExecutionError:
    def test_wraps_worker_failure_with_unit_identity(self, two_workloads):
        from repro.exps.engine import UnitExecutionError, run_unit_guarded

        runner = ExperimentRunner(ENGINE_CONFIG, workloads=two_workloads)

        def broken(*args, **kwargs):
            raise ValueError("thermal solver diverged")

        runner.run_unit = broken
        with pytest.raises(UnitExecutionError) as excinfo:
            run_unit_guarded(
                runner, TS, AdaptationMode.EXH_DYN, 1, 0, two_workloads
            )
        message = str(excinfo.value)
        assert "env=TS" in message and "mode=Exh-Dyn" in message
        assert "chip=1" in message and "core=0" in message
        assert "thermal solver diverged" in message
        assert excinfo.value.unit == ("TS", "Exh-Dyn", 1, 0)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_does_not_double_wrap(self, two_workloads):
        from repro.exps.engine import UnitExecutionError, run_unit_guarded

        runner = ExperimentRunner(ENGINE_CONFIG, workloads=two_workloads)
        inner = UnitExecutionError("TS", "Exh-Dyn", 0, 0)

        def raising(*args, **kwargs):
            raise inner

        runner.run_unit = raising
        with pytest.raises(UnitExecutionError) as excinfo:
            run_unit_guarded(
                runner, TS, AdaptationMode.EXH_DYN, 0, 0, two_workloads
            )
        assert excinfo.value is inner

    def test_iter_units_order(self):
        from repro.exps.engine import iter_units

        cells = [(TS, AdaptationMode.EXH_DYN), (TS_ASV, AdaptationMode.STATIC)]
        units = list(iter_units(cells, n_chips=2, cores_per_chip=2))
        assert units[0] == (TS, AdaptationMode.EXH_DYN, 0, 0)
        assert units[3] == (TS, AdaptationMode.EXH_DYN, 1, 1)
        assert units[4] == (TS_ASV, AdaptationMode.STATIC, 0, 0)
        assert len(units) == 8

    def test_unit_key_derivation(self):
        from repro.exps.cache import unit_key

        assert unit_key("abc", 3, 1) == "abc-3-1"
        assert unit_key("abc", 3, 1) != unit_key("abc", 1, 3)
