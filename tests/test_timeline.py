"""The Figure 6 runtime: phase-driven adaptation with config reuse."""

import pytest

from repro.core import TS, TS_ASV, run_timeline
from repro.core.timeline import TimelineCosts
from repro.microarch import generate_phase_stream


@pytest.fixture(scope="module")
def stream(fp_workload):
    return generate_phase_stream(fp_workload, total_ms=1200, seed=5)


@pytest.fixture(scope="module")
def timeline(core, stream):
    return run_timeline(core, TS_ASV, stream)


class TestTimeline:
    def test_one_event_per_phase(self, timeline, stream):
        assert len(timeline.events) == len(stream)

    def test_recurring_phases_reuse_configs(self, timeline, stream):
        distinct = len({p.spec.name for p in stream})
        assert timeline.controller_runs == distinct
        assert timeline.reuse_fraction > 0.4

    def test_overhead_is_negligible(self, timeline):
        # Paper: adapting at ~120 ms phase boundaries has minimal overhead.
        assert timeline.mean_overhead_fraction < 1e-3

    def test_frequencies_within_legal_range(self, timeline, core):
        for event in timeline.events:
            assert 2.4e9 <= event.f_rel * core.calib.f_nominal <= 5.6e9

    def test_same_phase_gets_same_frequency(self, timeline):
        by_phase = {}
        for event in timeline.events:
            by_phase.setdefault(event.phase_name, set()).add(event.f_rel)
        assert all(len(fs) == 1 for fs in by_phase.values())

    def test_perf_accounting_positive(self, timeline):
        assert timeline.mean_perf_rel() > 0.0

    def test_ts_runs_slower_than_ts_asv(self, core, stream, timeline):
        ts_result = run_timeline(core, TS, stream)
        mean_ts = sum(e.f_rel for e in ts_result.events) / len(ts_result.events)
        mean_asv = sum(e.f_rel for e in timeline.events) / len(timeline.events)
        assert mean_ts < mean_asv

    def test_costs_scale_overhead(self, core, stream):
        slow = run_timeline(
            core,
            TS,
            stream,
            costs=TimelineCosts(
                activity_measurement=2e-3, controller_run=2e-3, transition=2e-3
            ),
        )
        fast = run_timeline(core, TS, stream)
        assert slow.mean_overhead_fraction > fast.mean_overhead_fraction
