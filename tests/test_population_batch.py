"""Golden parity for population-tier batching (PR: one tensor program
per (chip, core) population).

Every batched tier must be bit-identical to its serial counterpart:

* ``simulate_batch`` / ``measure_suite_batched`` vs per-call simulation,
* ``retune_batched`` vs per-core ``retune``,
* ``run_timelines_batched`` vs per-core ``run_timeline`` (RNG streams
  included),
* ``ExperimentRunner.run_units_batched`` vs per-unit ``run_unit`` rows
  across (environment x mode x workload) combinations,

plus the strategy knob (``--serial-units`` / ``EVAL_REPRO_SERIAL_UNITS``),
the backend shim, the measurement LRU, and the content-hash cache key.
"""

from __future__ import annotations

import argparse

import numpy as np
import pytest

from repro import obs
from repro.backend import available_backends, get_backend, set_backend
from repro.obs import MetricsRegistry
from repro.chip.chip import CoreLanes, build_core, build_novar_core
from repro.config import Settings
from repro.core import TS, TS_ASV, TS_ASV_Q_FU, AdaptationMode
from repro.core.retuning import retune, retune_batched
from repro.core.state import Configuration
from repro.core.timeline import run_timeline, run_timelines_batched
from repro.exps.runner import ExperimentRunner, RunnerConfig
from repro.microarch.phases import generate_phase_stream
from repro.microarch.pipeline import (
    DEFAULT_CORE_CONFIG,
    simulate,
    simulate_batch,
)
from repro.microarch.simulator import (
    clear_measurement_cache,
    measure_suite_batched,
    measure_workload,
    measurement_cache_len,
    set_measurement_cache_capacity,
)
from repro.microarch.workloads import WorkloadProfile
from repro.mitigation.base import TechniqueState

UNIT_CONFIG = RunnerConfig(
    n_chips=3,
    cores_per_chip=1,
    n_instructions=5000,
    fuzzy_examples=300,
    fuzzy_epochs=1,
)


def _runner(batch_units, workloads):
    return ExperimentRunner(
        UNIT_CONFIG, workloads=list(workloads), batch_units=batch_units
    )


# ----------------------------------------------------------------------
# Tentpole: batched unit execution == serial unit execution, bit for bit.
# ----------------------------------------------------------------------
class TestRunUnitsBatchedParity:
    @pytest.mark.parametrize(
        "env, mode, first, last",
        [
            (TS, AdaptationMode.EXH_DYN, 0, 2),
            (TS_ASV_Q_FU, AdaptationMode.EXH_DYN, 2, 4),
            (TS_ASV, AdaptationMode.FUZZY_DYN, 4, 6),
        ],
        ids=["TS-exh", "TS+ASV+Q+FU-exh", "TS+ASV-fuzzy"],
    )
    def test_rows_bit_identical(self, suite, env, mode, first, last):
        """Batched == serial rows across env x mode x workload combos."""
        workloads = suite[first:last]
        units = [(chip, 0) for chip in range(UNIT_CONFIG.n_chips)]
        batched = _runner(True, workloads).run_units_batched(env, mode, units)
        serial_runner = _runner(False, workloads)
        serial = [
            serial_runner.run_unit(env, mode, chip, core)
            for chip, core in units
        ]
        assert batched == serial

    def test_static_mode_falls_back_to_serial(self, suite):
        """Static has a per-chip aggregation step: always per-unit."""
        workloads = suite[:2]
        units = [(chip, 0) for chip in range(UNIT_CONFIG.n_chips)]
        batched = _runner(True, workloads).run_units_batched(
            TS, AdaptationMode.STATIC, units
        )
        serial_runner = _runner(False, workloads)
        serial = [
            serial_runner.run_unit(TS, AdaptationMode.STATIC, chip, core)
            for chip, core in units
        ]
        assert batched == serial

    def test_opt_out_knob_routes_serially(self, suite, monkeypatch):
        """``batch_units=False`` must not enter the batched kernels."""
        import repro.exps.runner as runner_mod

        def forbidden(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("batched kernel entered with knob off")

        monkeypatch.setattr(runner_mod, "optimize_units_batched", forbidden)
        runner = _runner(False, suite[:1])
        units = [(chip, 0) for chip in range(UNIT_CONFIG.n_chips)]
        rows = runner.run_units_batched(TS, AdaptationMode.EXH_DYN, units)
        assert len(rows) == len(units)

    def test_single_unit_block_matches_run_unit(self, suite):
        """A 1-unit block stays on the batched path (uniform metric
        structure regardless of chunking) and still matches run_unit."""
        runner = _runner(True, suite[:1])
        [rows] = runner.run_units_batched(
            TS, AdaptationMode.EXH_DYN, [(0, 0)]
        )
        assert rows == runner.run_unit(TS, AdaptationMode.EXH_DYN, 0, 0)


class TestBatchUnitsKnobPlumbing:
    def test_env_opt_out(self):
        assert Settings.from_env({}).batch_units is True
        assert (
            Settings.from_env({"EVAL_REPRO_SERIAL_UNITS": "1"}).batch_units
            is False
        )

    def test_cli_opt_out(self):
        parser = argparse.ArgumentParser()
        Settings.add_cli_arguments(parser, Settings.from_env({}))
        args = parser.parse_args(["--serial-units"])
        assert Settings.from_args(args, Settings.from_env({})).batch_units \
            is False
        args = parser.parse_args([])
        assert Settings.from_args(args, Settings.from_env({})).batch_units \
            is True

    def test_from_settings_reaches_the_runner(self):
        runner = ExperimentRunner.from_settings(
            Settings(chips=2, batch_units=False),
            config=RunnerConfig(n_chips=2),
        )
        assert runner.batch_units is False
        assert ExperimentRunner.from_settings(
            Settings(chips=2), config=RunnerConfig(n_chips=2)
        ).batch_units is True

    def test_not_in_hashed_runner_config(self):
        """Strategy, not physics: must stay out of the cache-key config."""
        assert "batch_units" not in {
            f.name for f in RunnerConfig.__dataclass_fields__.values()
        }


# ----------------------------------------------------------------------
# Lane-masked adaptation tiers.
# ----------------------------------------------------------------------
class TestRetuneBatchedParity:
    @staticmethod
    def _assert_same(one, many):
        """RetuningResults hold arrays, so compare field by field."""
        assert one.outcome == many.outcome
        assert one.initial_violation == many.initial_violation
        assert one.f_initial == many.f_initial
        assert one.steps == many.steps
        assert one.config.f_core == many.config.f_core
        assert np.array_equal(one.config.vdd, many.config.vdd)
        assert np.array_equal(one.config.vbb, many.config.vbb)
        assert one.state.total_power == many.state.total_power
        assert np.array_equal(
            one.state.pe_per_subsystem, many.state.pe_per_subsystem
        )
        assert np.array_equal(one.state.temperature, many.state.temperature)

    def _entry(self, core, meas):
        spec = TS.optimization_spec(core.n_subsystems, core.calib)
        n = core.n_subsystems
        technique = TechniqueState(domain=meas.domain)
        return Configuration(
            f_core=core.calib.f_nominal * 0.9,
            vdd=np.full(n, core.calib.vdd_nominal),
            vbb=np.zeros(n),
            technique=technique,
        ), spec

    def test_many_cores_one_call(self, population, int_measurement,
                                 fp_measurement):
        cores = [build_core(chip, 0) for chip in population[:4]]
        measurements = [int_measurement, fp_measurement] * 2
        configs, specs = [], []
        for core, meas in zip(cores, measurements):
            config, spec = self._entry(core, meas)
            configs.append(config)
            specs.append(spec)
        pe_max = cores[0].calib.pe_max
        serial = [
            retune(
                core, config, meas.activity, meas.rho,
                pe_max=pe_max, checker=True,
            )
            for core, config, meas in zip(cores, configs, measurements)
        ]
        batched = retune_batched(
            cores, configs,
            [m.activity for m in measurements],
            [m.rho for m in measurements],
            pe_max=pe_max, checker=True,
        )
        for one, many in zip(serial, batched):
            self._assert_same(one, many)

    def test_shared_core_fast_path(self, core, int_measurement):
        config, spec = self._entry(core, int_measurement)
        pe_max = core.calib.pe_max
        serial = retune(
            core, config, int_measurement.activity, int_measurement.rho,
            pe_max=pe_max, checker=True,
        )
        batched = retune_batched(
            [core] * 3, [config] * 3,
            [int_measurement.activity] * 3, [int_measurement.rho] * 3,
            pe_max=pe_max, checker=True,
        )
        for many in batched:
            self._assert_same(serial, many)


class TestTimelineBatchedParity:
    def test_lockstep_rng_streams(self, population, suite):
        cores = [build_core(chip, 0) for chip in population[:3]]
        stream = generate_phase_stream(suite[0], total_ms=700.0, seed=11)
        serial = [
            run_timeline(core, TS_ASV_Q_FU, stream,
                         mode=AdaptationMode.EXH_DYN, seed=5)
            for core in cores
        ]
        batched = run_timelines_batched(
            cores, TS_ASV_Q_FU, stream,
            mode=AdaptationMode.EXH_DYN, seed=5,
        )
        for one, many in zip(serial, batched):
            assert one.events == many.events

    def test_per_lane_seeds(self, population, suite):
        cores = [build_core(chip, 0) for chip in population[:2]]
        stream = generate_phase_stream(suite[1], total_ms=500.0, seed=3)
        serial = [
            run_timeline(core, TS, stream, mode=AdaptationMode.EXH_DYN,
                         seed=seed)
            for core, seed in zip(cores, (5, 9))
        ]
        batched = run_timelines_batched(
            cores, TS, stream, mode=AdaptationMode.EXH_DYN, seed=[5, 9],
        )
        for one, many in zip(serial, batched):
            assert one.events == many.events


# ----------------------------------------------------------------------
# Microarch tier: batched trace walks.
# ----------------------------------------------------------------------
class TestSimulateBatchParity:
    def test_variants_match_serial_simulate(self, small_trace):
        resized = DEFAULT_CORE_CONFIG.with_resized_queue("int")
        variants = [
            (DEFAULT_CORE_CONFIG, False),
            (DEFAULT_CORE_CONFIG, True),
            (resized, False),
            (resized, True),
        ]
        batched = simulate_batch(small_trace, variants)
        for (config, suppress), result in zip(variants, batched):
            assert result == simulate(
                small_trace, config, suppress_l2_misses=suppress
            )

    def test_measure_suite_batched_matches_serial(self, suite):
        clear_measurement_cache()
        resized = DEFAULT_CORE_CONFIG.with_resized_queue("fp")
        requests = [
            (suite[0], DEFAULT_CORE_CONFIG),
            (suite[0], resized),
            (suite[3], DEFAULT_CORE_CONFIG),
        ]
        batched = measure_suite_batched(requests, 4000, seed=2)
        clear_measurement_cache()
        serial = [
            measure_workload(profile, config, 4000, seed=2)
            for profile, config in requests
        ]
        clear_measurement_cache()
        for one, many in zip(serial, batched):
            assert one.cpi_comp == many.cpi_comp
            assert one.cpi_total == many.cpi_total
            assert one.overlap_factor == many.overlap_factor
            assert np.array_equal(one.activity, many.activity)
            assert np.array_equal(one.rho, many.rho)


# ----------------------------------------------------------------------
# Satellite: bounded LRU + content-hash keys.
# ----------------------------------------------------------------------
class TestMeasurementCacheLRU:
    def test_eviction_keeps_capacity_and_counts(self, suite):
        clear_measurement_cache()
        previous = set_measurement_cache_capacity(2)
        try:
            with obs.scoped(MetricsRegistry()) as registry:
                for profile in suite[:3]:
                    measure_workload(
                        profile, DEFAULT_CORE_CONFIG, 3000, seed=4
                    )
                assert measurement_cache_len() == 2
                counters = registry.to_dict()["counters"]
                assert counters["microarch.cache.misses"] == 3.0
                assert counters["microarch.cache.evictions"] == 1.0
                # The most recent entry still hits.
                measure_workload(suite[2], DEFAULT_CORE_CONFIG, 3000, seed=4)
                counters = registry.to_dict()["counters"]
                assert counters["microarch.cache.hits"] == 1.0
        finally:
            set_measurement_cache_capacity(previous)
            clear_measurement_cache()

    def test_content_hash_aliases_equal_profiles(self, suite):
        """A structurally identical rebuild shares the cache entry."""
        clear_measurement_cache()
        original = suite[0]
        rebuilt = WorkloadProfile(**{
            name: getattr(original, name)
            for name in original.__dataclass_fields__
        })
        assert rebuilt is not original
        assert rebuilt.content_hash() == original.content_hash()
        first = measure_workload(original, DEFAULT_CORE_CONFIG, 3000, seed=6)
        before = measurement_cache_len()
        second = measure_workload(rebuilt, DEFAULT_CORE_CONFIG, 3000, seed=6)
        assert measurement_cache_len() == before
        assert second is first
        clear_measurement_cache()


# ----------------------------------------------------------------------
# Satellite: the array-backend shim.
# ----------------------------------------------------------------------
class TestBackendShim:
    def test_numpy_is_the_default_and_selectable(self):
        backend = get_backend()
        assert backend.name == "numpy"
        assert set_backend("numpy").xp is np
        assert "numpy" in available_backends()

    def test_unknown_backend_is_an_error(self):
        with pytest.raises(ValueError):
            set_backend("tpu9000")

    def test_explicit_numpy_backend_passes_the_parity_suite(self, suite):
        """The acceptance check: same rows with the backend pinned."""
        set_backend("numpy")
        units = [(chip, 0) for chip in range(UNIT_CONFIG.n_chips)]
        batched = _runner(True, suite[:1]).run_units_batched(
            TS_ASV, AdaptationMode.EXH_DYN, units
        )
        serial_runner = _runner(False, suite[:1])
        serial = [
            serial_runner.run_unit(TS_ASV, AdaptationMode.EXH_DYN, chip, core)
            for chip, core in units
        ]
        assert batched == serial


# ----------------------------------------------------------------------
# Vectorised lane assembly == per-lane assembly, bit for bit.
# ----------------------------------------------------------------------
class TestStackedPhaseArrays:
    def test_matches_per_lane_stack(self, population, int_measurement,
                                    fp_measurement):
        from repro.core.adaptation import _phase_arrays, _stacked_phase_arrays
        from repro.core.optimizer import _ARRAY_FIELDS, SubsystemArrays

        cores = [build_core(chip, 0) for chip in population[:3]]
        lane_cores = [core for core in cores for _ in range(2)]
        measurements = [int_measurement, fp_measurement] * 3
        techniques = [
            TechniqueState(queue_full=bool(lane % 2), lowslope=lane % 3 == 0,
                           domain=meas.domain)
            for lane, meas in enumerate(measurements)
        ]
        reference = SubsystemArrays.stack([
            _phase_arrays(core, technique, meas)
            for core, technique, meas in zip(
                lane_cores, techniques, measurements
            )
        ])
        fast = _stacked_phase_arrays(lane_cores, techniques, measurements)
        for name in _ARRAY_FIELDS:
            assert np.array_equal(
                getattr(fast, name), getattr(reference, name)
            ), name

    def test_refuses_mixed_calibrations(self, core, novar_core,
                                        int_measurement):
        from repro.core.adaptation import _stacked_phase_arrays

        technique = TechniqueState(domain=int_measurement.domain)
        with pytest.raises(ValueError):
            _stacked_phase_arrays(
                [core, novar_core],
                [technique, technique],
                [int_measurement, int_measurement],
            )


# ----------------------------------------------------------------------
# CoreLanes: the stacked population view itself.
# ----------------------------------------------------------------------
class TestCoreLanes:
    def test_stack_matches_per_core_physics(self, population):
        cores = [build_core(chip, 0) for chip in population[:3]]
        lanes = CoreLanes.stack(cores)
        assert lanes.batch_size == 3
        vdd = np.full((3, lanes.n_subsystems), 1.0)
        temp = np.full((3, lanes.n_subsystems), 345.0)
        vbb = np.zeros((3, lanes.n_subsystems))
        stacked_vt = lanes.effective_vt(vdd, vbb, temp)
        stacked_sta = lanes.subsystem_static_power(vdd, vbb, temp)
        for lane, core in enumerate(cores):
            assert np.array_equal(
                stacked_vt[lane],
                core.effective_vt(vdd[lane], vbb[lane], temp[lane]),
            )
            assert np.array_equal(
                stacked_sta[lane],
                core.subsystem_static_power(vdd[lane], vbb[lane], temp[lane]),
            )
            assert lanes.l2_power(3.2e9)[lane] == core.l2_power(3.2e9)

    def test_lane_subset_preserves_lanes(self, population):
        cores = [build_core(chip, 0) for chip in population[:4]]
        lanes = CoreLanes.stack(cores)
        subset = lanes.lane_subset(np.array([2, 0]))
        assert subset.batch_size == 2
        assert np.array_equal(subset.vt0_timing[0], lanes.vt0_timing[2])
        assert np.array_equal(subset.vt0_timing[1], lanes.vt0_timing[0])

    def test_novar_core_refuses_to_stack_with_variation(self, population):
        cores = [build_core(population[0], 0), build_novar_core()]
        with pytest.raises(ValueError):
            CoreLanes.stack(cores)
