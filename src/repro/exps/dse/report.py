"""Sweep artifacts: tidy CSV/JSON tables, Pareto CSV, report document.

One sweep writes four files under its output directory::

    results.csv    the tidy per-point table (spreadsheet-ready)
    results.json   the same rows plus the sweep spec and dedup stats
                   (the machine-readable source of truth; ``dse report``
                   re-analyses from this file alone)
    pareto.csv     the Pareto-optimal subset under the chosen objectives
    report.json    objectives, frontier ids, per-axis sensitivity

Rows are written in expansion order and all analytics are deterministic
(see :mod:`repro.exps.dse.pareto`), so two runs of the same sweep—at any
parallelism—produce byte-identical artifacts.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from .pareto import DEFAULT_OBJECTIVES, Objective, pareto_front, sensitivity
from .spec import SweepSpec

#: Non-parameter columns, in output order (parameters sit between).
_LEADING = ("point", "index")
_METRICS = ("f_rel", "perf_rel", "power", "error_frac", "source")


def _columns(rows: Sequence[Mapping[str, Any]]) -> List[str]:
    """Stable column order: ids, parameters (first-seen), metrics."""
    params: List[str] = []
    for row in rows:
        for name in row:
            if name not in _LEADING and name not in _METRICS and name not in params:
                params.append(name)
    return list(_LEADING) + params + list(_METRICS)


def swept_columns(rows: Sequence[Mapping[str, Any]]) -> List[str]:
    """Parameter columns that take more than one value across ``rows``."""
    names = [
        name for name in _columns(rows)
        if name not in _LEADING and name not in _METRICS
    ]
    return [
        name for name in names
        if len({str(row.get(name)) for row in rows}) > 1
    ]


def _write_csv(
    path: Path, rows: Sequence[Mapping[str, Any]], columns: Sequence[str]
) -> None:
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(
            handle, fieldnames=list(columns), extrasaction="ignore"
        )
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in columns})


def _dump_json(path: Path, document: Any) -> None:
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_artifacts(
    result,
    out_dir: Union[str, Path],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> Dict[str, Path]:
    """Write the four artifact files for a :class:`~.drive.SweepResult`.

    Returns the path of each artifact keyed by its short name.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    columns = _columns(result.rows)
    paths = {
        "results_csv": out / "results.csv",
        "results_json": out / "results.json",
        "pareto_csv": out / "pareto.csv",
        "report_json": out / "report.json",
    }
    _write_csv(paths["results_csv"], result.rows, columns)
    _dump_json(
        paths["results_json"],
        {
            "spec": result.spec.to_wire(),
            "stats": result.stats,
            "rows": result.rows,
        },
    )
    front = pareto_front(result.rows, objectives)
    _write_csv(paths["pareto_csv"], front, columns)
    _dump_json(
        paths["report_json"],
        analysis_document(result.rows, objectives, result.swept_params(),
                          stats=result.stats),
    )
    return paths


def analysis_document(
    rows: Sequence[Mapping[str, Any]],
    objectives: Sequence[Objective],
    swept_params: Sequence[str],
    stats: Mapping[str, Any] = (),
) -> Dict[str, Any]:
    """The ``report.json`` document: frontier + sensitivity + stats."""
    front = pareto_front(rows, objectives)
    return {
        "objectives": [f"{o.key}:{o.goal}" for o in objectives],
        "stats": dict(stats),
        "pareto": {
            "size": len(front),
            "points": [row["point"] for row in front],
            "rows": front,
        },
        "sensitivity": sensitivity(rows, swept_params, objectives),
    }


def load_results(
    path: Union[str, Path],
) -> Tuple[SweepSpec, List[Dict[str, Any]], Dict[str, Any]]:
    """Read a ``results.json`` back: (spec, rows, stats).

    Accepts either the file itself or the sweep output directory.
    """
    path = Path(path)
    if path.is_dir():
        path = path / "results.json"
    with path.open("r", encoding="utf-8") as handle:
        document = json.load(handle)
    return (
        SweepSpec.from_wire(document["spec"]),
        list(document["rows"]),
        dict(document.get("stats", {})),
    )
