"""Declarative sweep specifications for design-space exploration.

A :class:`SweepSpec` names the axes of a campaign — which knobs vary and
over which grids — instead of the runs themselves.  Expansion turns it
into an ordered stream of :class:`SweepPoint` bindings with stable,
content-addressed ``point_id``\\ s, which the driver (:mod:`repro.exps.
dse.drive`) maps onto :class:`~repro.exps.engine.RunSpec` submissions.

Axes come in three value forms (explicit list, inclusive arithmetic
range, geometric/log grid) and two compositions:

* the spec's top-level groups combine by **product** (the full grid);
* a :class:`ZipAxes` group varies several axes **together** (paired
  values, like ``zip()``), and participates in the product as one group.

Parameters split into two tiers, mirroring what the campaign service can
content-address remotely:

* **cell tier** (``environment``, ``mode``, ``workloads``,
  ``workload_family``) — dimensions of one runner's (environment, mode)
  grid; these cross the JSON-lines wire (suite workloads by name,
  generated family members inline) and coalesce/dedupe through
  :func:`~repro.exps.cache.summary_key`.  A ``workload_family`` value is
  a ``name[:size[:seed]]`` reference (see :mod:`repro.workloads.
  families`) expanded to its deterministic members at drive time; it is
  mutually exclusive with ``workloads``.
* **runner tier** (``chips``, ``cores``, ``seed``, ``n_instructions``,
  ``fc_examples``, ``phi``, ``pe_max``) — knobs baked into a
  :class:`~repro.exps.runner.RunnerConfig` or
  :class:`~repro.calibration.Calibration`; sweeping them locally spins
  up one runner per binding, and they cannot be submitted to a remote
  daemon (whose runner is fixed server-side).

Wire format (``to_wire`` / ``from_wire`` / ``from_json``)::

    {
      "base": {"mode": "Exh-Dyn"},
      "axes": [
        {"param": "environment", "values": ["TS", "TS+ASV", "ALL"]},
        {"param": "phi", "logrange": {"start": 0.25, "stop": 1.0, "num": 3}},
        {"zip": [{"param": "chips", "values": [4, 8]},
                 {"param": "cores", "values": [1, 2]}]}
      ]
    }

Range sugar (``range`` / ``logrange``) is normalised to explicit values
at parse time, so ``from_wire(spec.to_wire())`` always round-trips.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ...core.environments import AdaptationMode, by_name
from ..cache import stable_hash

#: Parameters resolved per (environment, mode) cell — submittable to a
#: remote campaign daemon (suite workloads by name; a ``workload_family``
#: expands to generated profiles that cross the wire inline).
CELL_PARAMS = ("environment", "mode", "workloads", "workload_family")

#: Parameters baked into the runner (scale, seed, variation severity) or
#: the calibration (error-rate budget) — local sweeps only.
RUNNER_PARAMS = (
    "chips", "cores", "seed", "n_instructions", "fc_examples", "phi", "pe_max",
)

KNOWN_PARAMS = CELL_PARAMS + RUNNER_PARAMS


def _check_param(param: str) -> str:
    if param not in KNOWN_PARAMS:
        raise ValueError(
            f"unknown sweep parameter {param!r} "
            f"(cell tier: {list(CELL_PARAMS)}, "
            f"runner tier: {list(RUNNER_PARAMS)})"
        )
    return param


def _normalise_value(param: str, value: Any) -> Any:
    """Light per-parameter validation/coercion of one axis value."""
    if param == "environment":
        by_name(str(value))  # raises KeyError on unknown names
        return str(value)
    if param == "mode":
        return AdaptationMode(str(value)).value
    if param == "workloads":
        if isinstance(value, str):
            value = [value]
        if not isinstance(value, (list, tuple)) or not all(
            isinstance(name, str) for name in value
        ):
            raise ValueError(
                f"workloads axis values must be lists of names, got {value!r}"
            )
        return tuple(value)
    if param == "workload_family":
        if not isinstance(value, str):
            raise ValueError(
                f"workload_family axis values must be "
                f"'name[:size[:seed]]' references, got {value!r}"
            )
        # Canonicalise (fill in default size/seed) so equal families get
        # equal point ids; raises on unknown names / malformed refs.
        from ...workloads.families import canonical_family_ref

        try:
            return canonical_family_ref(value)
        except (KeyError, ValueError) as exc:
            raise ValueError(f"bad workload_family value {value!r}: {exc}")
    if param in ("chips", "cores", "seed", "n_instructions", "fc_examples"):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"{param} values must be integers, got {value!r}")
        return int(value)
    # phi / pe_max: positive reals.
    number = float(value)
    if number <= 0.0:
        raise ValueError(f"{param} values must be positive, got {value!r}")
    return number


@dataclass(frozen=True)
class Axis:
    """One swept parameter and its ordered values."""

    param: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        _check_param(self.param)
        values = tuple(
            _normalise_value(self.param, value) for value in self.values
        )
        if not values:
            raise ValueError(f"axis {self.param!r} has no values")
        object.__setattr__(self, "values", values)

    # -- constructors ----------------------------------------------------
    @classmethod
    def of(cls, param: str, values: Iterable[Any]) -> "Axis":
        """An explicit-list axis."""
        return cls(param, tuple(values))

    @classmethod
    def range(
        cls, param: str, start: float, stop: float, step: float = 1
    ) -> "Axis":
        """An inclusive arithmetic grid: ``start, start+step, ... <= stop``."""
        if step <= 0:
            raise ValueError("range step must be positive")
        values: List[Any] = []
        value = start
        # Half-step tolerance keeps float grids inclusive of their stop.
        while value <= stop + step * 1e-9:
            values.append(value)
            value = value + step
        return cls(param, tuple(values))

    @classmethod
    def logrange(cls, param: str, start: float, stop: float, num: int) -> "Axis":
        """A geometric grid of ``num`` points from ``start`` to ``stop``."""
        if num < 1:
            raise ValueError("logrange needs num >= 1")
        if start <= 0 or stop <= 0:
            raise ValueError("logrange endpoints must be positive")
        if num == 1:
            return cls(param, (start,))
        ratio = (stop / start) ** (1.0 / (num - 1))
        return cls(
            param, tuple(start * ratio ** i for i in range(num))
        )

    # -- composition -----------------------------------------------------
    @property
    def params(self) -> Tuple[str, ...]:
        return (self.param,)

    def bindings(self) -> List[Dict[str, Any]]:
        """The per-value parameter bindings this axis contributes."""
        return [{self.param: value} for value in self.values]

    # -- wire ------------------------------------------------------------
    def to_wire(self) -> Dict[str, Any]:
        return {
            "param": self.param,
            "values": [
                list(v) if isinstance(v, tuple) else v for v in self.values
            ],
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "Axis":
        """Parse one axis document (explicit, ``range`` or ``logrange``)."""
        try:
            param = doc["param"]
        except KeyError as exc:
            raise ValueError(f"axis document missing 'param': {doc!r}") from exc
        forms = [key for key in ("values", "range", "logrange") if key in doc]
        if len(forms) != 1:
            raise ValueError(
                f"axis {param!r} needs exactly one of "
                f"values/range/logrange, got {forms or 'none'}"
            )
        if "values" in doc:
            return cls.of(param, doc["values"])
        if "range" in doc:
            spec = doc["range"]
            return cls.range(
                param, spec["start"], spec["stop"], spec.get("step", 1)
            )
        spec = doc["logrange"]
        return cls.logrange(param, spec["start"], spec["stop"], spec["num"])


@dataclass(frozen=True)
class ZipAxes:
    """Several equal-length axes varied together (paired values)."""

    axes: Tuple[Axis, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        if len(self.axes) < 2:
            raise ValueError("zip group needs at least two axes")
        lengths = {len(axis.values) for axis in self.axes}
        if len(lengths) != 1:
            raise ValueError(
                "zip group axes must have equal lengths, got "
                + ", ".join(
                    f"{axis.param}={len(axis.values)}" for axis in self.axes
                )
            )
        params = [axis.param for axis in self.axes]
        if len(set(params)) != len(params):
            raise ValueError(f"zip group repeats parameters: {params}")

    @property
    def params(self) -> Tuple[str, ...]:
        return tuple(axis.param for axis in self.axes)

    def bindings(self) -> List[Dict[str, Any]]:
        length = len(self.axes[0].values)
        return [
            {axis.param: axis.values[i] for axis in self.axes}
            for i in range(length)
        ]

    def to_wire(self) -> Dict[str, Any]:
        return {"zip": [axis.to_wire() for axis in self.axes]}

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "ZipAxes":
        return cls(tuple(Axis.from_wire(inner) for inner in doc["zip"]))


AxisGroup = Union[Axis, ZipAxes]


@dataclass(frozen=True)
class SweepPoint:
    """One expanded binding of every swept + fixed parameter.

    ``point_id`` is a content hash of the parameter binding — stable
    across re-expansions, re-orderings of equal specs, and processes —
    so resuming a sweep or joining result tables never depends on the
    expansion index.
    """

    index: int
    point_id: str
    params: Mapping[str, Any]

    def cell_params(self) -> Dict[str, Any]:
        return {k: v for k, v in self.params.items() if k in CELL_PARAMS}

    def runner_params(self) -> Dict[str, Any]:
        return {k: v for k, v in self.params.items() if k in RUNNER_PARAMS}


def point_id_for(params: Mapping[str, Any]) -> str:
    """The stable content-addressed id of one parameter binding."""
    return stable_hash({"kind": "dse-point", "params": dict(params)})[:16]


@dataclass(frozen=True)
class SweepSpec:
    """A declarative DSE campaign: fixed ``base`` params × product of axes.

    ``axes`` groups combine by product in listed order (the last group
    varies fastest); ``base`` holds parameters fixed across every point
    (an axis may not rebind a base parameter).  ``expand()`` returns the
    ordered points.
    """

    axes: Tuple[AxisGroup, ...] = ()
    base: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        base = {
            _check_param(str(key)): _normalise_value(str(key), value)
            for key, value in dict(self.base).items()
        }
        object.__setattr__(self, "base", base)
        seen = set(base)
        for group in self.axes:
            if not isinstance(group, (Axis, ZipAxes)):
                raise ValueError(f"not an axis or zip group: {group!r}")
            for param in group.params:
                if param in seen:
                    raise ValueError(f"parameter {param!r} bound twice")
                seen.add(param)
        if "environment" not in seen:
            raise ValueError("sweep binds no 'environment' (axis or base)")
        if "workloads" in seen and "workload_family" in seen:
            raise ValueError(
                "bind either 'workloads' or 'workload_family', not both"
            )

    # -- expansion -------------------------------------------------------
    def param_names(self) -> List[str]:
        """Every bound parameter, base first, then axes in spec order."""
        names = list(self.base)
        for group in self.axes:
            names.extend(group.params)
        return names

    def n_points(self) -> int:
        count = 1
        for group in self.axes:
            count *= len(group.bindings())
        return count

    def expand(self) -> List[SweepPoint]:
        """The ordered point stream (product over groups, last fastest)."""
        points: List[SweepPoint] = []
        defaults = {"mode": AdaptationMode.EXH_DYN.value}
        stack: List[List[Dict[str, Any]]] = [
            group.bindings() for group in self.axes
        ]

        def rec(depth: int, bound: Dict[str, Any]) -> None:
            if depth == len(stack):
                params = {**defaults, **bound}
                points.append(
                    SweepPoint(
                        index=len(points),
                        point_id=point_id_for(params),
                        params=params,
                    )
                )
                return
            for binding in stack[depth]:
                rec(depth + 1, {**bound, **binding})

        rec(0, dict(self.base))
        return points

    # -- wire ------------------------------------------------------------
    def to_wire(self) -> Dict[str, Any]:
        base = {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in self.base.items()
        }
        return {
            "base": base,
            "axes": [group.to_wire() for group in self.axes],
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "SweepSpec":
        if not isinstance(doc, Mapping):
            raise ValueError(f"sweep document must be an object, got {doc!r}")
        groups: List[AxisGroup] = []
        for axis_doc in doc.get("axes", []):
            if "zip" in axis_doc:
                groups.append(ZipAxes.from_wire(axis_doc))
            else:
                groups.append(Axis.from_wire(axis_doc))
        return cls(axes=tuple(groups), base=dict(doc.get("base", {})))

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_wire(json.loads(text))

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_wire(), indent=indent, sort_keys=True)


def dedupe_points(points: Sequence[SweepPoint]) -> List[SweepPoint]:
    """Drop points whose parameter binding repeats an earlier one.

    Composed specs can legitimately revisit a binding (e.g. a zip group
    whose rows collide with a base override); executing it twice would
    only re-serve the same content-addressed cells, so the driver
    submits each distinct binding once.
    """
    seen: set = set()
    unique: List[SweepPoint] = []
    for point in points:
        if point.point_id in seen:
            continue
        seen.add(point.point_id)
        unique.append(point)
    return unique
