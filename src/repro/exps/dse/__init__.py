"""``repro.exps.dse`` — design-space-exploration campaigns.

Declare a sweep (:class:`SweepSpec`), drive it through the campaign
service (:func:`run_sweep` — coalescing and the content-addressed cache
make overlapping and re-run sweeps near-free), then reduce the tidy
results table to Pareto frontiers and per-axis sensitivities
(:func:`pareto_front`, :func:`sensitivity`).

Quickstart::

    from repro import Settings, SweepSpec, pareto_front, run_sweep
    from repro.exps.dse import Axis

    spec = SweepSpec(
        axes=(
            Axis.of("environment", ["TS", "TS+ASV", "TS+ASV+ABB"]),
            Axis.of("mode", ["Static", "Exh-Dyn"]),
            Axis.logrange("phi", 0.25, 1.0, 3),
        ),
    )
    result = run_sweep(spec, Settings(cache_dir="~/.cache/eval-repro"))
    for row in pareto_front(result.rows):
        print(row["point"], row["perf_rel"], row["power"])

Command line: ``python -m repro.exps dse expand|run|report`` (see
:mod:`repro.exps.dse.cli`).
"""

from .drive import RemoteSweepError, SweepResult, error_fraction, run_sweep
from .pareto import DEFAULT_OBJECTIVES, Objective, pareto_front, sensitivity
from .report import load_results, write_artifacts
from .spec import (
    CELL_PARAMS,
    RUNNER_PARAMS,
    Axis,
    SweepPoint,
    SweepSpec,
    ZipAxes,
    dedupe_points,
)

__all__ = [
    "Axis",
    "CELL_PARAMS",
    "DEFAULT_OBJECTIVES",
    "Objective",
    "RUNNER_PARAMS",
    "RemoteSweepError",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "ZipAxes",
    "dedupe_points",
    "error_fraction",
    "load_results",
    "pareto_front",
    "run_sweep",
    "sensitivity",
    "write_artifacts",
]
