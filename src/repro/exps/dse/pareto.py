"""Exact Pareto-frontier and sensitivity analytics over sweep rows.

Operates on the tidy row dicts produced by :mod:`repro.exps.dse.drive`
(one row per sweep point, metric columns ``f_rel`` / ``perf_rel`` /
``power`` / ``error_frac`` plus the parameter columns), but is generic:
any list of dicts with numeric objective columns works.

The frontier is exact (O(n²) pairwise dominance — sweep tables are
thousands of points at most) and deterministic: the output order and
tie-breaking depend only on the objective values and the stable
``point`` ids, never on input order or parallelism, so a ``--jobs 8``
sweep yields a bit-identical frontier to ``--jobs 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

#: Default objective set: the paper's Figure 10-12 trade-off (performance
#: up, power down) plus the error-rate dimension EVAL trades against.
DEFAULT_OBJECTIVES: Tuple["Objective", ...]


@dataclass(frozen=True)
class Objective:
    """One objective column and its direction."""

    key: str
    goal: str = "max"

    def __post_init__(self) -> None:
        if self.goal not in ("max", "min"):
            raise ValueError(f"objective goal must be max|min, got {self.goal!r}")

    @classmethod
    def parse(cls, text: str) -> "Objective":
        """Parse ``key:max`` / ``key:min`` (bare ``key`` means max)."""
        key, sep, goal = text.partition(":")
        if not key:
            raise ValueError(f"empty objective in {text!r}")
        return cls(key, goal if sep else "max")

    def value(self, row: Mapping[str, Any]) -> float:
        try:
            return float(row[self.key])
        except KeyError as exc:
            raise KeyError(
                f"row has no objective column {self.key!r} "
                f"(columns: {sorted(row)})"
            ) from exc

    def ascending(self, row: Mapping[str, Any]) -> float:
        """The value oriented so that *smaller is better* (sort key)."""
        value = self.value(row)
        return value if self.goal == "min" else -value


DEFAULT_OBJECTIVES = (
    Objective("perf_rel", "max"),
    Objective("power", "min"),
    Objective("error_frac", "min"),
)


def _dominates(
    a: Sequence[float], b: Sequence[float]
) -> bool:
    """True if ascending-oriented vector ``a`` dominates ``b``."""
    no_worse = all(x <= y for x, y in zip(a, b))
    return no_worse and any(x < y for x, y in zip(a, b))


def pareto_front(
    rows: Sequence[Mapping[str, Any]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
    id_key: str = "point",
) -> List[Dict[str, Any]]:
    """The exact k-objective Pareto-optimal subset of ``rows``.

    A row survives unless some other row is at least as good on every
    objective and strictly better on one.  Rows with identical objective
    vectors all survive together (neither dominates).  The result is
    sorted by the ascending-oriented objective tuple, ties broken by the
    row's stable id column, so the frontier is reproducible regardless
    of input order.
    """
    objectives = tuple(objectives)
    if not objectives:
        raise ValueError("pareto_front needs at least one objective")
    vectors = [
        tuple(objective.ascending(row) for objective in objectives)
        for row in rows
    ]
    front = [
        dict(row)
        for row, vector in zip(rows, vectors)
        if not any(
            _dominates(other, vector) for other in vectors if other != vector
        )
    ]
    front.sort(
        key=lambda row: (
            tuple(objective.ascending(row) for objective in objectives),
            str(row.get(id_key, "")),
        )
    )
    return front


def sensitivity(
    rows: Sequence[Mapping[str, Any]],
    params: Sequence[str],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> Dict[str, Dict[str, Any]]:
    """Per-axis one-at-a-time sensitivity of each objective.

    For each swept parameter: group the rows by that parameter's value,
    average every objective within each group, and report the spread
    (max - min of the group means).  A large spread means the objective
    responds strongly to that axis *marginalised over all the others* —
    the standard main-effect reading of a full-factorial sweep.
    """
    report: Dict[str, Dict[str, Any]] = {}
    for param in params:
        groups: Dict[str, List[Mapping[str, Any]]] = {}
        for row in rows:
            if param not in row:
                continue
            groups.setdefault(str(row[param]), []).append(row)
        if len(groups) < 2:
            continue  # fixed or missing: no marginal effect to measure
        means = {
            value: {
                objective.key: sum(objective.value(r) for r in group)
                / len(group)
                for objective in objectives
            }
            for value, group in sorted(groups.items())
        }
        report[param] = {
            "values": means,
            "spread": {
                objective.key: (
                    max(m[objective.key] for m in means.values())
                    - min(m[objective.key] for m in means.values())
                )
                for objective in objectives
            },
        }
    return report
