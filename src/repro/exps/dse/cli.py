"""``python -m repro.exps dse`` — run/inspect DSE campaigns.

Subcommands::

    dse expand --spec sweep.json            # preview the point stream
    dse run    --spec sweep.json --out DIR  # execute + write artifacts
    dse report --results DIR                # re-analyse results.json

``run`` shares the engine/service flags of the main exps CLI (``--jobs``,
``--cache-dir``, ``--service HOST:PORT``, ``--chips`` ... — flag beats
``EVAL_REPRO_*`` beats default) and writes ``results.csv`` /
``results.json`` / ``pareto.csv`` / ``report.json`` under ``--out``.
Objectives are ``column:max`` / ``column:min`` (repeatable;
default ``perf_rel:max power:min error_frac:min``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ... import obs
from ...config import Settings
from ..reporting import format_table
from .pareto import DEFAULT_OBJECTIVES, Objective, pareto_front, sensitivity
from .report import analysis_document, load_results, swept_columns, write_artifacts
from .spec import SweepSpec


def _load_spec(path: str) -> SweepSpec:
    with open(path, "r", encoding="utf-8") as handle:
        return SweepSpec.from_wire(json.load(handle))


def _objectives(args, parser: argparse.ArgumentParser) -> List[Objective]:
    if not args.objective:
        return list(DEFAULT_OBJECTIVES)
    try:
        return [Objective.parse(text) for text in args.objective]
    except ValueError as exc:
        parser.error(str(exc))


def _print_rows(title: str, rows: Sequence[dict], columns: Sequence[str]) -> None:
    body = [
        [
            f"{row[c]:.4f}" if isinstance(row.get(c), float) else str(row.get(c, ""))
            for c in columns
        ]
        for row in rows
    ]
    print(format_table(title, list(columns), body))


def _print_analysis(rows, objectives) -> None:
    front = pareto_front(rows, objectives)
    params = swept_columns(rows)
    columns = ["point"] + params + [o.key for o in objectives]
    _print_rows(
        f"Pareto frontier ({len(front)}/{len(rows)} points, "
        + " ".join(f"{o.key}:{o.goal}" for o in objectives) + ")",
        front, columns,
    )
    report = sensitivity(rows, params, objectives)
    if report:
        body = [
            [param] + [f"{report[param]['spread'][o.key]:.4f}" for o in objectives]
            for param in sorted(
                report,
                key=lambda p: -report[p]["spread"][objectives[0].key],
            )
        ]
        print(format_table(
            "axis sensitivity (spread of per-value means)",
            ["axis"] + [o.key for o in objectives], body,
        ))


def main(argv: Optional[Sequence[str]] = None) -> int:
    env_defaults = Settings.from_env()
    parser = argparse.ArgumentParser(
        prog="python -m repro.exps dse",
        description="Design-space-exploration sweeps through the "
                    "campaign service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    expand = sub.add_parser("expand", help="preview a sweep's point stream")
    expand.add_argument("--spec", required=True, help="SweepSpec JSON file")
    expand.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the expanded points as JSON lines")

    run = sub.add_parser("run", help="execute a sweep and write artifacts")
    run.add_argument("--spec", required=True, help="SweepSpec JSON file")
    run.add_argument("--out", required=True, help="artifact directory")
    run.add_argument("--objective", action="append", metavar="COL:max|min",
                     help="objective column and direction (repeatable)")
    run.add_argument(
        "--service", default=env_defaults.service_addr, metavar="HOST:PORT",
        help="submit to a running campaign daemon instead of an "
             "ephemeral in-process service (cell-tier sweeps only; "
             "default: $EVAL_REPRO_SERVICE)",
    )
    run.add_argument("--chips", type=int, default=env_defaults.chips)
    run.add_argument("--cores", type=int, default=env_defaults.cores)
    run.add_argument("--fc-examples", type=int,
                     default=env_defaults.fc_examples)
    run.add_argument("--seed", type=int, default=env_defaults.seed)
    Settings.add_cli_arguments(run, env_defaults)
    Settings.add_service_arguments(run, env_defaults)

    report = sub.add_parser(
        "report", help="re-analyse a sweep's results.json"
    )
    report.add_argument("--results", required=True,
                        help="results.json (or the sweep output directory)")
    report.add_argument("--objective", action="append",
                        metavar="COL:max|min")
    report.add_argument("--out", default=None,
                        help="rewrite pareto.csv/report.json here")

    args = parser.parse_args(argv)

    if args.command == "expand":
        spec = _load_spec(args.spec)
        points = spec.expand()
        if args.as_json:
            for point in points:
                print(json.dumps(
                    {"index": point.index, "point": point.point_id,
                     "params": {
                         k: list(v) if isinstance(v, tuple) else v
                         for k, v in point.params.items()
                     }},
                    sort_keys=True,
                ))
        else:
            names = spec.param_names()
            names += [n for n in points[0].params if n not in names]
            body = [
                [str(p.index), p.point_id] + [
                    "+".join(p.params[n]) if isinstance(p.params.get(n), tuple)
                    else str(p.params.get(n, ""))
                    for n in names
                ]
                for p in points
            ]
            print(format_table(
                f"{len(points)} points", ["#", "point"] + names, body,
            ))
        return 0

    if args.command == "run":
        try:
            settings = Settings.from_args(args, base=env_defaults)
        except ValueError as exc:
            parser.error(str(exc))
        settings.configure()
        spec = _load_spec(args.spec)
        objectives = _objectives(args, parser)
        from .drive import run_sweep

        result = run_sweep(spec, settings, service=args.service)
        paths = write_artifacts(result, args.out, objectives)
        stats = result.stats
        print(
            f"{stats['points_unique']} points "
            f"({stats['points_deduped']} duplicate), "
            f"{stats['cells_total']} cells: "
            f"{stats['cells_computed']} computed, "
            f"{stats['cells_deduped']} deduped (cache+coalesce)"
        )
        _print_analysis(result.rows, objectives)
        print("artifacts: " + ", ".join(str(p) for p in paths.values()))
        if settings.metrics_out:
            document = obs.metrics_registry().to_dict()
            with open(settings.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"metrics written to {settings.metrics_out}")
        return 0

    # report
    _spec, rows, stats = load_results(args.results)
    objectives = _objectives(args, parser)
    _print_analysis(rows, objectives)
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        document = analysis_document(
            rows, objectives, swept_columns(rows), stats=stats
        )
        with (out / "report.json").open("w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {out / 'report.json'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
