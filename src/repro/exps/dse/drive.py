"""Sweep execution: expand a :class:`SweepSpec` and drive it through the
campaign service.

Every point — locally or against a remote daemon — is submitted as a
one-cell :class:`~repro.exps.engine.RunSpec` to a
:class:`~repro.serve.service.CampaignService`, never run directly, so
the service's content-addressed machinery does the heavy lifting:

* points sharing an (environment, mode, workloads) cell under the same
  runner are **coalesced** (computed exactly once, delivered to every
  requesting point);
* cells already in the artifact cache are **served from disk**, which is
  also what makes sweeps resumable — re-running an interrupted or
  partially-overlapping sweep only computes the missing cells;
* submission is **windowed** to the service's admission limit
  (``service_max_jobs``), draining the oldest outstanding job before
  submitting past the window.

Runner-tier axes (``chips``/``cores``/``seed``/``n_instructions``/
``fc_examples``/``phi``/``pe_max``) group the points; each distinct
binding gets its own runner behind an ephemeral in-process service.
Those axes cannot cross the wire — a remote daemon's runner is fixed
server-side policy — so a remote sweep containing them is rejected with
:class:`RemoteSweepError` before anything is submitted.

Observability: the sweep publishes ``dse.points`` / ``dse.points_unique``
/ ``dse.cells_total`` / ``dse.cells_deduped`` / ``dse.cells_computed``
counters and one ``dse.point`` event per completed point.
"""

from __future__ import annotations

import dataclasses
import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ... import obs
from ...calibration import DEFAULT_CALIBRATION
from ...config import Settings
from ...core.environments import AdaptationMode, by_name
from ...microarch.workloads import spec2000_like_suite
from ..engine import RunSpec
from ..runner import ExperimentRunner, RunnerConfig, SuiteSummary
from .pareto import DEFAULT_OBJECTIVES, Objective, pareto_front, sensitivity
from .spec import SweepPoint, SweepSpec, dedupe_points

log = logging.getLogger("repro.exps.dse")

#: RunnerConfig field behind each runner-tier sweep parameter.
_CONFIG_FIELDS = {
    "chips": "n_chips",
    "cores": "cores_per_chip",
    "seed": "seed",
    "n_instructions": "n_instructions",
    "fc_examples": "fuzzy_examples",
    "phi": "phi",
}


class RemoteSweepError(ValueError):
    """A sweep with runner-tier axes was aimed at a remote daemon."""

    def __init__(self, params: Sequence[str]):
        self.params = list(params)
        super().__init__(
            f"runner-tier parameters {self.params} cannot be swept through "
            f"a remote campaign daemon: its population scale, seed and "
            f"calibration are fixed server-side policy.  Run the sweep "
            f"locally (drop --service) or restrict the spec to the cell "
            f"tier (environment/mode/workloads/workload_family)."
        )


def error_fraction(summary: SuiteSummary) -> float:
    """Phase-weighted fraction of observations that ended in ``Error``.

    The paper's timing-speculation recovery keeps the architectural
    error rate below ``PE_MAX``; this is the summary-level view of how
    often a phase's chosen operating point still crossed into the error
    regime (Figure 13's ``Error`` outcome).
    """
    total = sum(r.weight for r in summary.results)
    if total <= 0.0:
        return 0.0
    errored = sum(r.weight for r in summary.results if r.outcome == "Error")
    return errored / total


@dataclass
class SweepResult:
    """Everything one sweep produced, in expansion order.

    ``rows`` is the tidy results table: one dict per unique point with
    its parameter columns followed by the metric columns (``f_rel``,
    ``perf_rel``, ``power``, ``error_frac``) and provenance (``source``:
    ``computed`` / ``cache`` / ``coalesced``).
    """

    spec: SweepSpec
    points: List[SweepPoint]
    rows: List[Dict[str, Any]]
    summaries: Dict[str, SuiteSummary] = field(repr=False)
    stats: Dict[str, int] = field(default_factory=dict)

    def pareto(
        self, objectives: Sequence[Objective] = DEFAULT_OBJECTIVES
    ) -> List[Dict[str, Any]]:
        """The Pareto-optimal rows (see :func:`~.pareto.pareto_front`)."""
        return pareto_front(self.rows, objectives)

    def swept_params(self) -> List[str]:
        """Parameter columns that actually take more than one value."""
        from .report import swept_columns

        return swept_columns(self.rows)

    def sensitivity(
        self, objectives: Sequence[Objective] = DEFAULT_OBJECTIVES
    ) -> Dict[str, Dict[str, Any]]:
        """Per-axis main effects (see :func:`~.pareto.sensitivity`)."""
        return sensitivity(self.rows, self.swept_params(), objectives)


# ----------------------------------------------------------------------
# Point -> RunSpec translation.
# ----------------------------------------------------------------------
def _point_runspec(point: SweepPoint) -> RunSpec:
    params = point.params
    env = by_name(params["environment"])
    mode = AdaptationMode(params["mode"])
    workloads = None
    names = params.get("workloads")
    if names is not None:
        pool = {w.name: w for w in spec2000_like_suite()}
        missing = [n for n in names if n not in pool]
        if missing:
            raise ValueError(
                f"unknown workloads {missing} (suite: {sorted(pool)})"
            )
        workloads = tuple(pool[n] for n in names)
    family_ref = params.get("workload_family")
    if family_ref is not None:
        if workloads is not None:
            raise ValueError(
                f"point {point.point_id} binds both 'workloads' and "
                f"'workload_family'"
            )
        # Deferred: repro.workloads imports this module for its
        # error-fraction objective.
        from ...workloads.families import generate_family_ref

        workloads = generate_family_ref(family_ref)
    return RunSpec(environments=(env,), modes=(mode,), workloads=workloads)


def _build_runner(
    settings: Settings, runner_params: Mapping[str, Any]
) -> ExperimentRunner:
    """One runner for a runner-tier binding (scale/seed/phi/pe_max)."""
    overrides = {
        _CONFIG_FIELDS[name]: value
        for name, value in runner_params.items()
        if name in _CONFIG_FIELDS
    }
    calib = DEFAULT_CALIBRATION
    if "pe_max" in runner_params:
        calib = dataclasses.replace(calib, pe_max=runner_params["pe_max"])
    return ExperimentRunner.from_settings(
        settings,
        config=RunnerConfig.from_settings(settings, **overrides),
        calib=calib,
    )


# ----------------------------------------------------------------------
# Windowed submission.
# ----------------------------------------------------------------------
def _run_points(
    client,
    points: Sequence[SweepPoint],
    window: int,
    collect: Callable[[SweepPoint, str], None],
) -> None:
    """Submit points through one client, at most ``window`` outstanding.

    Jobs are drained oldest-first, and an admission rejection (another
    tenant filled the daemon) degrades to waiting on our own oldest job
    — the sweep makes progress as long as the service does.
    """
    from ...serve.service import ServiceBusyError

    outstanding: List[Tuple[SweepPoint, str]] = []

    def drain_one() -> None:
        point, job_id = outstanding.pop(0)
        collect(point, job_id)

    for point in points:
        spec = _point_runspec(point)
        while True:
            if len(outstanding) >= window:
                drain_one()
            try:
                job_id = client.submit(spec)
                break
            except ServiceBusyError:
                if not outstanding:
                    raise
                drain_one()
        outstanding.append((point, job_id))
    while outstanding:
        drain_one()


# ----------------------------------------------------------------------
# The sweep driver.
# ----------------------------------------------------------------------
def run_sweep(
    spec: SweepSpec,
    settings: Optional[Settings] = None,
    *,
    service: Optional[str] = None,
) -> SweepResult:
    """Expand and execute a sweep; returns the tidy :class:`SweepResult`.

    Args:
        spec: The declarative sweep.
        settings: Engine/cache/service knobs (default:
            ``Settings()``).  Local sweeps build their runners and
            ephemeral services from it; a persistent ``cache_dir`` is
            what makes warm re-runs near-free.
        service: ``host:port`` of a running campaign daemon.  ``None``
            runs locally.  Remote sweeps must stay on the cell tier
            (:class:`RemoteSweepError` otherwise).
    """
    settings = settings if settings is not None else Settings()
    points = spec.expand()
    unique = dedupe_points(points)
    obs.inc("dse.points", len(points))
    obs.inc("dse.points_unique", len(unique))
    obs.inc("dse.points_deduped", len(points) - len(unique))

    summaries: Dict[str, SuiteSummary] = {}
    rows_by_id: Dict[str, Dict[str, Any]] = {}
    snapshots: Dict[str, Dict[str, Any]] = {}
    window = max(1, settings.service_max_jobs)

    def make_collector(client, remote: bool):
        def collect(point: SweepPoint, job_id: str) -> None:
            if remote:
                from ...serve.protocol import summaries_from_wire

                payload = client.result(job_id)
                cell_map = summaries_from_wire(payload["cells"])
            else:
                cell_map = client.result(job_id).summaries
            snapshot = client.status(job_id)
            cell = (point.params["environment"], point.params["mode"])
            summary = cell_map[cell]
            summaries[point.point_id] = summary
            snapshots[point.point_id] = snapshot
            rows_by_id[point.point_id] = _make_row(spec, point, summary, snapshot)
            row = rows_by_id[point.point_id]
            obs.emit_event(
                "dse.point",
                point=point.point_id,
                index=point.index,
                environment=cell[0],
                mode=cell[1],
                source=row["source"],
                f_rel=row["f_rel"],
                perf_rel=row["perf_rel"],
                power=row["power"],
                error_frac=row["error_frac"],
            )
            log.info(
                "dse point %s (%d/%d) %s via %s",
                point.point_id, len(rows_by_id), len(unique),
                cell, row["source"],
            )

        return collect

    with obs.span("dse.sweep", points=len(unique)):
        if service:
            runner_axes = sorted(
                {name for point in unique for name in point.runner_params()}
            )
            if runner_axes:
                raise RemoteSweepError(runner_axes)
            from ...serve.daemon import ServiceClient

            client = ServiceClient(service)
            _run_points(client, unique, window, make_collector(client, True))
        else:
            from ...serve.client import Client
            from ...serve.service import CampaignService

            groups: Dict[Tuple, List[SweepPoint]] = {}
            for point in unique:
                key = tuple(sorted(point.runner_params().items()))
                groups.setdefault(key, []).append(point)
            for key, group_points in groups.items():
                runner = _build_runner(settings, dict(key))
                log.info(
                    "dse runner group %s: %d points",
                    dict(key) or "(default)", len(group_points),
                )
                with CampaignService(runner, settings=settings) as svc:
                    client = Client(svc)
                    _run_points(
                        client, group_points, window,
                        make_collector(client, False),
                    )

    cells_total = sum(s["cells"]["total"] for s in snapshots.values())
    cells_deduped = sum(
        s["cells"]["cached"] + s["cells"]["coalesced"]
        for s in snapshots.values()
    )
    stats = {
        "points": len(points),
        "points_unique": len(unique),
        "points_deduped": len(points) - len(unique),
        "cells_total": cells_total,
        "cells_deduped": cells_deduped,
        "cells_computed": cells_total - cells_deduped,
    }
    obs.inc("dse.cells_total", cells_total)
    obs.inc("dse.cells_deduped", cells_deduped)
    obs.inc("dse.cells_computed", cells_total - cells_deduped)
    return SweepResult(
        spec=spec,
        points=unique,
        rows=[rows_by_id[point.point_id] for point in unique],
        summaries=summaries,
        stats=stats,
    )


def _make_row(
    spec: SweepSpec,
    point: SweepPoint,
    summary: SuiteSummary,
    snapshot: Mapping[str, Any],
) -> Dict[str, Any]:
    """One tidy results-table row for a completed point."""
    row: Dict[str, Any] = {"point": point.point_id, "index": point.index}
    names = spec.param_names()
    names += [name for name in point.params if name not in names]
    for name in names:
        if name not in point.params:
            continue
        value = point.params[name]
        row[name] = "+".join(value) if isinstance(value, tuple) else value
    cells = snapshot["cells"]
    if cells["cached"]:
        source = "cache"
    elif cells["coalesced"]:
        source = "coalesced"
    else:
        source = "computed"
    row.update(
        f_rel=summary.f_rel,
        perf_rel=summary.perf_rel,
        power=summary.power,
        error_frac=error_fraction(summary),
        source=source,
    )
    return row
