"""Figure 8: error rate, power, and frequency are tradeable (swim, 1 chip).

(a) per-subsystem PE-vs-f curves under TS (memory = sharp onset, logic =
    gradual, mixed = between);
(b) processor Perf(f): optimal below NoVar (fR ~ 0.9x);
(c) the same curves under TS+ASV+ABB with Exhaustive-chosen per-subsystem
    voltages at each frequency — curves converge at PE ~ PEMAX;
(d) the resulting Perf(f): the peak moves right and up (point A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..calibration import DEFAULT_CALIBRATION
from ..chip.chip import build_core
from ..core.adaptation import perf_params_from_measurement
from ..core.environments import TS, TS_ASV_ABB
from ..core.optimizer import core_subsystem_arrays, power_algorithm
from ..microarch.pipeline import DEFAULT_CORE_CONFIG
from ..microarch.simulator import measure_workload
from ..microarch.workloads import by_name
from ..thermal.solver import solve_temperatures
from ..timing.errors import stage_error_rates
from ..timing.paths import stage_delays
from ..timing.speculation import performance
from ..variation.population import VariationModel


@dataclass(frozen=True)
class Fig8Result:
    """All four Figure 8 panels for one chip + workload."""

    freqs_rel: np.ndarray  # relative to the 4 GHz NoVar clock
    subsystem_names: List[str]
    subsystem_kinds: List[str]
    pe_ts: np.ndarray  # (n_freq, n_sub), panel (a)
    perf_ts: np.ndarray  # relative to NoVar, panel (b)
    pe_reshaped: np.ndarray  # panel (c)
    perf_reshaped: np.ndarray  # panel (d)

    def optimum(self, which: str = "reshaped") -> "tuple[float, float]":
        """Return (f_rel, perf_rel) at the Perf peak of a panel."""
        perfs = self.perf_reshaped if which == "reshaped" else self.perf_ts
        best = int(np.argmax(perfs))
        return float(self.freqs_rel[best]), float(perfs[best])

    def baseline_f_rel(self) -> float:
        """Where the leftmost PE curve leaves the x-axis (Baseline f)."""
        onset = self.pe_ts > 1e-12
        first = np.argmax(onset.any(axis=1))
        return float(self.freqs_rel[first])


def _representative_chip(seed: int, calib, target: float = 0.82):
    """Pick the chip whose Baseline frequency is closest to ``target``.

    The paper's Figure 8 uses one sample chip with Baseline fR ~ 0.84;
    scanning a small population avoids accidentally picking an unusually
    good or bad die.
    """
    from ..timing.errors import error_free_frequency

    chips = VariationModel().population(12, seed=seed)
    best, best_gap = None, np.inf
    for chip in chips:
        core = build_core(chip, 0, calib=calib)
        n = core.n_subsystems
        delays = stage_delays(
            core, np.full(n, calib.vdd_nominal), np.zeros(n), calib.t_design
        )
        f_rel = error_free_frequency(delays) / calib.f_nominal
        if abs(f_rel - target) < best_gap:
            best, best_gap = core, abs(f_rel - target)
    return best


def run_fig8(
    workload: str = "swim*", chip_seed: int = 42, n_freqs: int = 36
) -> Fig8Result:
    """Compute Figure 8 for one sample chip running one application."""
    calib = DEFAULT_CALIBRATION
    core = _representative_chip(chip_seed, calib)
    meas = measure_workload(by_name(workload), DEFAULT_CORE_CONFIG)
    params = perf_params_from_measurement(meas, core)

    n = core.n_subsystems
    freqs = np.linspace(0.7, 1.25, n_freqs) * calib.f_nominal
    vdd_nom = np.full(n, calib.vdd_nominal)
    vbb_nom = np.zeros(n)

    # Panel (a)/(b): fixed nominal voltages (the TS environment).
    thermal = solve_temperatures(
        core, vdd_nom, vbb_nom, calib.f_nominal, meas.activity, calib.t_heatsink_max
    )
    delays = stage_delays(core, vdd_nom, vbb_nom, thermal.temperature)
    pe_ts = stage_error_rates(freqs[:, None], delays, meas.rho)
    perf_ts = performance(freqs, pe_ts.sum(axis=1), params)

    # Panel (c)/(d): per-frequency Exhaustive reshaping (TS+ASV+ABB).
    spec = TS_ASV_ABB.optimization_spec(n, calib)
    subs = core_subsystem_arrays(core, meas.activity, meas.rho)
    pe_reshaped = np.empty((len(freqs), n))
    last_vdd, last_vbb = vdd_nom, vbb_nom
    for i, f in enumerate(freqs):
        result = power_algorithm(subs, float(f), spec)
        vdd_f, vbb_f = result.vdd, result.vbb
        settled = solve_temperatures(
            core, vdd_f, vbb_f, float(f), meas.activity, calib.t_heatsink_max
        )
        total_power = float(
            (settled.p_dynamic + settled.p_static).sum()
        ) + core.l2_power(float(f))
        if total_power > calib.p_max or not result.feasible.all():
            # The power budget is exhausted: no further ASV/ABB can be
            # applied, so the settings freeze and the PE curves of the
            # slow subsystems escape upward (paper Fig 8(c), point A on).
            vdd_f, vbb_f = last_vdd, last_vbb
            settled = solve_temperatures(
                core, vdd_f, vbb_f, float(f), meas.activity,
                calib.t_heatsink_max,
            )
        else:
            last_vdd, last_vbb = vdd_f, vbb_f
        d = stage_delays(core, vdd_f, vbb_f, settled.temperature)
        pe_reshaped[i] = stage_error_rates(float(f), d, meas.rho)
    perf_reshaped = performance(freqs, pe_reshaped.sum(axis=1), params)

    perf_novar = float(performance(calib.f_nominal, 0.0, params))
    return Fig8Result(
        freqs_rel=freqs / calib.f_nominal,
        subsystem_names=core.names,
        subsystem_kinds=core.kinds,
        pe_ts=pe_ts,
        perf_ts=np.asarray(perf_ts) / perf_novar,
        pe_reshaped=pe_reshaped,
        perf_reshaped=np.asarray(perf_reshaped) / perf_novar,
    )
