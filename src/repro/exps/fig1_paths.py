"""Figure 1: how variation turns path-delay spread into timing errors.

(a) dynamic path-delay distribution of a stage without variation,
(b) the same stage on a variation-afflicted chip (spread out, slower),
(c) the stage's PE-vs-frequency curve, and
(d) the error rate of a small multi-stage pipeline (Eq 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..calibration import DEFAULT_CALIBRATION
from ..chip.chip import build_core, build_novar_core
from ..timing.errors import processor_error_rate, stage_error_rates
from ..timing.paths import stage_delays
from ..variation.population import VariationModel


@dataclass(frozen=True)
class Fig1Result:
    """Delay histograms and PE curves for one sample stage/chip."""

    delay_grid: np.ndarray  # seconds
    pdf_nominal: np.ndarray  # Fig 1(a)
    pdf_varied: np.ndarray  # Fig 1(b)
    t_nominal: float  # T_nom (cycle at 4 GHz)
    t_varied: float  # T_var (error-free period under variation)
    freqs: np.ndarray  # hertz
    pe_stage: np.ndarray  # Fig 1(c): single stage
    pe_pipeline: np.ndarray  # Fig 1(d): all stages (Eq 4)


def run_fig1(
    subsystem: str = "IntQ", chip_seed: int = 42, chip_index: int = 0
) -> Fig1Result:
    """Build the Figure 1 curves for one subsystem of one sample chip."""
    calib = DEFAULT_CALIBRATION
    novar = build_novar_core(calib=calib)
    chip = VariationModel().population(chip_index + 1, seed=chip_seed)[chip_index]
    varied = build_core(chip, 0, calib=calib)

    index = novar.floorplan.index_of(subsystem)
    n = novar.n_subsystems
    vdd = np.full(n, calib.vdd_nominal)
    vbb = np.zeros(n)
    delays_nominal = stage_delays(novar, vdd, vbb, calib.t_design)
    delays_varied = stage_delays(varied, vdd, vbb, calib.t_design)

    t_cycle = 1.0 / calib.f_nominal
    grid = np.linspace(0.3 * t_cycle, 1.6 * t_cycle, 400)

    def normal_pdf(mean, sigma):
        return np.exp(-0.5 * ((grid - mean) / sigma) ** 2) / (
            sigma * np.sqrt(2 * np.pi)
        )

    freqs = np.linspace(0.6 * calib.f_nominal, 1.4 * calib.f_nominal, 200)
    rho = varied.rho_ref
    pe_stage = stage_error_rates(freqs[:, None], delays_varied, rho)[:, index]
    pe_pipeline = processor_error_rate(freqs[:, None], delays_varied, rho)

    return Fig1Result(
        delay_grid=grid,
        pdf_nominal=normal_pdf(
            float(delays_nominal.mean[index]), float(delays_nominal.sigma[index])
        ),
        pdf_varied=normal_pdf(
            float(delays_varied.mean[index]), float(delays_varied.sigma[index])
        ),
        t_nominal=float(delays_nominal.error_free_period()[index]),
        t_varied=float(delays_varied.error_free_period()[index]),
        freqs=freqs,
        pe_stage=pe_stage,
        pe_pipeline=pe_pipeline,
    )
