"""Figure 13: outcomes of the fuzzy-controller system.

For each knob environment (TS, TS+ABB, TS+ASV, TS+ABB+ASV) and each
micro-architectural technique availability (No opt / FU / Queue /
FU+Queue), classify every fuzzy-controller invocation into NoChange,
LowFreq, Error, Temp or Power — the five retuning outcomes of
Section 4.3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import Settings
from ..core.environments import (
    CONTROLLER_STUDY_ENVIRONMENTS,
    AdaptationMode,
    Environment,
)
from ..core.retuning import Outcome
from .engine import RunSpec
from .runner import ExperimentRunner, RunnerConfig

#: Technique-availability columns of Figure 13.
OPT_CONFIGS: Tuple[Tuple[str, bool, bool], ...] = (
    ("No opt", False, False),
    ("FU opt", False, True),
    ("Queue opt", True, False),
    ("FU+Queue opt", True, True),
)

OUTCOME_ORDER = [o.value for o in Outcome]


@dataclass
class Fig13Result:
    """Outcome fractions per (environment, technique availability)."""

    fractions: Dict[Tuple[str, str], Dict[str, float]]

    def rows(self) -> List[List[str]]:
        """Figure 13 as table rows: one per (opt config, environment)."""
        rows = []
        for (opt, env), frac in sorted(self.fractions.items()):
            rows.append(
                [opt, env]
                + [f"{100 * frac.get(name, 0.0):.0f}%" for name in OUTCOME_ORDER]
            )
        return rows

    def no_change_or_low_freq(self, opt: str, env: str) -> float:
        """The fraction of 'good controller output' cases."""
        frac = self.fractions[(opt, env)]
        return frac.get(Outcome.NO_CHANGE.value, 0.0) + frac.get(
            Outcome.LOW_FREQ.value, 0.0
        )


def run_fig13(
    runner: Optional[ExperimentRunner] = None,
    environments: Optional[List[Environment]] = None,
    parallelism: int = 1,
    settings: Optional[Settings] = None,
) -> Fig13Result:
    """Run the Figure 13 outcome study under Fuzzy-Dyn.

    ``settings`` (a :class:`repro.config.Settings` bundle) overrides
    ``parallelism`` and supplies the artifact-cache configuration.
    """
    if settings is None:
        settings = Settings(jobs=parallelism)
    runner = runner or ExperimentRunner(RunnerConfig(n_chips=8))
    environments = environments or CONTROLLER_STUDY_ENVIRONMENTS

    cells = [
        (opt_name, base_env.name, dc_replace(
            base_env, name=f"{base_env.name}/{opt_name}", queue=queue, fu=fu
        ))
        for base_env in environments
        for opt_name, queue, fu in OPT_CONFIGS
    ]
    # One campaign for the whole grid: the engine shards every
    # (environment, chip, core) unit across the worker pool at once.
    run = runner.run(RunSpec.from_settings(
        settings,
        environments=tuple(env for _, _, env in cells),
        modes=(AdaptationMode.FUZZY_DYN,),
    ))

    fractions: Dict[Tuple[str, str], Dict[str, float]] = {}
    for opt_name, base_name, env in cells:
        summary = run.summary(env, AdaptationMode.FUZZY_DYN)
        outcomes = [r.outcome for r in summary.results]
        weights = np.array([r.weight for r in summary.results])
        weights = weights / weights.sum()
        frac = {
            name: float(weights[[o == name for o in outcomes]].sum())
            for name in OUTCOME_ORDER
        }
        fractions[(opt_name, base_name)] = frac
    return Fig13Result(fractions=fractions)
