"""Monte-Carlo experiment driver (paper Section 5 methodology).

Each experiment runs a suite of SPEC-2000-like workloads on every core of
a population of chips with independently drawn variation maps, for every
(environment, adaptation-mode) pair.  Results are phase-weighted per
workload, then averaged — mirroring the paper's "each application is run
on each of the 4 cores of each of 100 chips" and Figure 10-12 reporting.

The single entry point is :meth:`ExperimentRunner.run`, which takes a
:class:`~repro.exps.engine.RunSpec` describing the (environment, mode)
grid, the parallelism, and the on-disk artifact cache, and returns a
:class:`~repro.exps.engine.RunResult` of :class:`SuiteSummary` cells.
(The pre-engine ``run_environment`` / ``baseline_summary`` shims, long
deprecated, were removed in 1.6.0.)

Scale knobs: the paper uses 100 chips x 4 cores.  That is available
(``RunnerConfig(n_chips=100, cores_per_chip=4)``), but the default is a
smaller population that reproduces the same means within the Monte-Carlo
noise (the paper itself notes more than 100 samples changes nothing).
Paper-scale runs are sharded across worker processes with
``RunSpec(parallelism=N)``; see :mod:`repro.exps.engine`.
"""

from __future__ import annotations

import dataclasses
import json
import logging
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..calibration import DEFAULT_CALIBRATION, Calibration
from ..chip.chip import Core, build_core, build_novar_core
from ..core.adaptation import (
    AdaptationResult,
    aggregate_static_measurement,
    evaluate_at_fixed_config,
    optimize_phase,
    optimize_phases_batched,
    optimize_units_batched,
)
from ..core.environments import (
    NOVAR,
    AdaptationMode,
    Environment,
)
from ..core.state import Configuration, evaluate_configuration
from ..core.adaptation import perf_params_from_measurement
from ..microarch.pipeline import DEFAULT_CORE_CONFIG, CoreConfig
from ..microarch.simulator import (
    WorkloadMeasurement,
    _profile_key,
    measure_suite_batched,
)
from ..microarch.workloads import WorkloadProfile, spec2000_like_suite
from ..mitigation.base import TechniqueState
from ..ml.bank import ControllerBank, get_bank
from ..timing.speculation import performance
from .. import variation
from ..variation.maps import ChipSample
from ..variation.population import VariationModel
from .cache import ExperimentCache, FactorStore, bank_key, measurement_key

log = logging.getLogger("repro.exps.runner")


@dataclass(frozen=True)
class RunnerConfig:
    """Scale and reproducibility knobs for an experiment run.

    Every field here is *physics-relevant* and therefore hashed into the
    content-addressed cache keys (:func:`repro.exps.cache.summary_key`):
    changing any of them can change results, so it must change the key.
    Pure execution strategy (``batch_phases``, parallelism, transport)
    lives on :class:`ExperimentRunner` / :class:`~repro.exps.engine.
    RunSpec` instead.
    """

    n_chips: int = 20
    cores_per_chip: int = 1
    n_instructions: int = 12000
    seed: int = 7
    fuzzy_examples: int = 4000  # per-FC training examples (paper: 10,000)
    fuzzy_epochs: int = 2
    #: Correlation range of the systematic variation surfaces, in
    #: die-width units (``None``: the paper's phi = 0.5 via
    #: :data:`~repro.variation.maps.DEFAULT_VARIATION_PARAMS`).  A DSE
    #: sweep axis — part of the hashed config so summaries drawn at
    #: different phi never collide in the cache.
    phi: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_chips < 1 or not 1 <= self.cores_per_chip <= 4:
            raise ValueError("need >=1 chip and 1..4 cores per chip")
        if self.phi is not None and self.phi <= 0.0:
            raise ValueError("phi must be positive")

    @classmethod
    def from_settings(cls, settings, **overrides) -> "RunnerConfig":
        """Scale knobs from a :class:`repro.config.Settings` bundle.

        Maps ``chips``/``cores``/``fc_examples``/``seed`` onto the
        dataclass fields; anything else (``n_instructions``, ``phi``,
        ``fuzzy_epochs``) rides in through ``overrides``.
        """
        fields = dict(
            n_chips=settings.chips,
            cores_per_chip=settings.cores,
            fuzzy_examples=settings.fc_examples,
            seed=settings.seed,
        )
        fields.update(overrides)
        return cls(**fields)


@dataclass(frozen=True)
class PhaseResult:
    """One (chip, core, workload, phase) observation.

    This is the wire format shared by the engine workers, the on-disk
    summary cache, and :mod:`repro.exps.reporting`: :meth:`to_dict`
    produces a flat JSON-safe record and :meth:`from_dict` reverses it
    exactly (all floats round-trip bit-identically through ``repr``).
    """

    chip_id: int
    core_index: int
    workload: str
    phase: str
    weight: float
    environment: str
    mode: str
    f_rel: float  # relative to the 4 GHz no-variation frequency
    perf_rel: float  # relative to NoVar running the same phase
    power: float  # watts (core + L1 + L2 + checker)
    outcome: str
    queue_full: bool
    lowslope: bool

    def to_dict(self) -> Dict:
        """Flat JSON-safe record of this observation."""
        return {
            "chip_id": self.chip_id,
            "core_index": self.core_index,
            "workload": self.workload,
            "phase": self.phase,
            "weight": self.weight,
            "environment": self.environment,
            "mode": self.mode,
            "f_rel": self.f_rel,
            "perf_rel": self.perf_rel,
            "power": self.power,
            "outcome": self.outcome,
            "queue_full": self.queue_full,
            "lowslope": self.lowslope,
        }

    @classmethod
    def from_dict(cls, record: Dict) -> "PhaseResult":
        """Rebuild an observation from :meth:`to_dict` output."""
        return cls(**record)


@dataclass
class SuiteSummary:
    """Phase-weighted means over a whole run.

    ``metrics`` is the observability block: the fleet-wide campaign
    metrics snapshot (see :mod:`repro.obs`) attached by the engine to
    every summary it computes.  It is excluded from equality so
    serial/parallel determinism checks keep comparing physics, not
    wall-clock timings.
    """

    f_rel: float
    perf_rel: float
    power: float
    results: List[PhaseResult] = field(repr=False, default_factory=list)
    metrics: Optional[Dict[str, Any]] = field(
        repr=False, compare=False, default=None
    )

    def to_json(self) -> str:
        """Serialise to the shared wire format (see :class:`PhaseResult`)."""
        document = {
            "f_rel": self.f_rel,
            "perf_rel": self.perf_rel,
            "power": self.power,
            "results": [r.to_dict() for r in self.results],
        }
        if self.metrics is not None:
            document["metrics"] = self.metrics
        return json.dumps(document)

    @classmethod
    def from_json(cls, text: str) -> "SuiteSummary":
        """Rebuild a summary from :meth:`to_json` output."""
        document = json.loads(text)
        return cls(
            f_rel=document["f_rel"],
            perf_rel=document["perf_rel"],
            power=document["power"],
            results=[
                PhaseResult.from_dict(record) for record in document["results"]
            ],
            metrics=document.get("metrics"),
        )


class ExperimentRunner:
    """Caches chips, cores, measurements and FC banks across experiments."""

    def __init__(
        self,
        config: RunnerConfig = RunnerConfig(),
        calib: Calibration = DEFAULT_CALIBRATION,
        workloads: Optional[Sequence[WorkloadProfile]] = None,
        core_config: CoreConfig = DEFAULT_CORE_CONFIG,
        *,
        cache: Optional[ExperimentCache] = None,
        batch_phases: bool = True,
        batch_units: bool = True,
        population: Optional[Sequence[ChipSample]] = None,
    ):
        self.config = config
        self.calib = calib
        self.workloads = list(workloads) if workloads is not None else spec2000_like_suite()
        self.core_config = core_config
        self.cache = cache
        # Execution strategy, not physics: routing Exh-Dyn phase loops
        # through the batched optimizer kernels is bit-identical to the
        # per-phase loop, so it deliberately lives outside RunnerConfig
        # (whose fields are hashed into summary cache keys).
        self.batch_phases = bool(batch_phases)
        # Same contract, one tier up: whole (chip, core) unit blocks run
        # as one tensor program (``run_units_batched``), bit-identical to
        # the per-unit loop.
        self.batch_units = bool(batch_units)
        if cache is not None:
            # Give the process-wide factor memo durable storage, so a
            # cold process (or pool worker) loads the Cholesky factor
            # from disk instead of re-factorising.
            variation.set_store(FactorStore(cache))
        if population is not None:
            # Pre-sampled chips, e.g. attached from a shared-memory
            # segment published by the engine's parent process.  The
            # transport is an optimisation, not physics: the arrays are
            # exactly what the deterministic rebuild below would draw.
            population = list(population)
            if len(population) != config.n_chips:
                raise ValueError(
                    f"injected population has {len(population)} chips, "
                    f"config expects {config.n_chips}"
                )
            self._population = population
        else:
            model = VariationModel()
            if config.phi is not None:
                model = VariationModel(
                    params=dataclasses.replace(model.params, phi=config.phi)
                )
            self._population = model.population(
                config.n_chips, seed=config.seed
            )
        self._cores: Dict[Tuple[int, int], Core] = {}
        self._novar = build_novar_core(calib=calib)
        self._banks: Dict[str, ControllerBank] = {}
        self._measurements: Dict[
            Tuple, Tuple[WorkloadMeasurement, Optional[WorkloadMeasurement]]
        ] = {}

    @classmethod
    def from_settings(cls, settings, **overrides) -> "ExperimentRunner":
        """Build a runner whose knobs come from a ``Settings`` bundle.

        The one sanctioned ``Settings`` → runner mapping (scale knobs via
        :meth:`RunnerConfig.from_settings`, ``cache`` via
        :meth:`~repro.config.Settings.build_cache`, ``batch_phases``),
        shared by the exps CLI, the service daemon, the DSE sweep driver
        and the benchmark harness.  ``overrides`` are passed through to
        the constructor (``config=``, ``calib=``, ``workloads=``, ...).
        """
        fields = dict(
            config=RunnerConfig.from_settings(settings),
            cache=settings.build_cache(),
            batch_phases=settings.batch_phases,
            batch_units=settings.batch_units,
        )
        fields.update(overrides)
        return cls(**fields)

    # ------------------------------------------------------------------
    # Cached building blocks.
    # ------------------------------------------------------------------
    @property
    def population(self) -> List[ChipSample]:
        """The sampled chip population (shared read-only with the engine)."""
        return self._population

    def core(self, chip_index: int, core_index: int) -> Core:
        """Return (and cache) one core model."""
        key = (chip_index, core_index)
        if key not in self._cores:
            self._cores[key] = build_core(
                self._population[chip_index], core_index, calib=self.calib
            )
        return self._cores[key]

    def cores(self):
        """Iterate over all (chip, core) pairs in the run."""
        for chip_index in range(self.config.n_chips):
            for core_index in range(self.config.cores_per_chip):
                yield self.core(chip_index, core_index)

    def phase_profiles(self, workload: WorkloadProfile):
        """Yield (phase-specialised profile, weight) pairs."""
        for phase in workload.phases:
            yield workload.phase_profile(phase), phase.weight

    def measurements(
        self, profile: WorkloadProfile, env: Environment
    ) -> Tuple[WorkloadMeasurement, Optional[WorkloadMeasurement]]:
        """Measure a phase profile under an environment's pipeline configs.

        Memoised on the (profile fingerprint, environment knobs, seed,
        trace length) tuple, so repeated callers — the main loop and the
        Static-mode aggregation — share one measurement instead of
        re-entering the simulator path.  The seed and instruction count
        are part of the key even though they are fixed per config: a
        runner whose config is swapped out (tests, reuse across sweeps)
        must never serve one seed's measurement to another.
        """
        memo_key = (
            _profile_key(profile),
            env.fu,
            env.queue,
            self.config.seed,
            self.config.n_instructions,
        )
        cached = self._measurements.get(memo_key)
        # Touch both counters so they exist in every metrics document —
        # serial and parallel runs must stay structurally identical even
        # when one of them never hits (or never misses) the memo.
        obs.inc("runner.measure_memo_hits", 1.0 if cached is not None else 0.0)
        obs.inc("runner.measure_memo_misses", 0.0 if cached is not None else 1.0)
        if cached is not None:
            return cached
        technique = TechniqueState(domain=profile.domain)
        base = technique.core_config(self.core_config, replication_built=env.fu)
        requests = [(profile, base)]
        if env.queue:
            requests.append((profile, base.with_resized_queue(profile.domain)))
        measured = self._measure_batch(requests)
        full = measured[0]
        resized = measured[1] if env.queue else None
        self._measurements[memo_key] = (full, resized)
        return full, resized

    def _measure_batch(
        self, requests: Sequence[Tuple[WorkloadProfile, CoreConfig]]
    ) -> List[WorkloadMeasurement]:
        """Measure many (profile, config) pairs, through the disk cache.

        Disk hits are served per request; the misses go through one
        :func:`~repro.microarch.simulator.measure_suite_batched` call —
        one trace walk per distinct profile, all of its configuration
        variants advancing together — and are written back.  Results are
        bit-identical to measuring each request on its own.
        """
        out: List[Optional[WorkloadMeasurement]] = [None] * len(requests)
        missing: List[int] = []
        keys: Dict[int, str] = {}
        for index, (profile, config) in enumerate(requests):
            if self.cache is not None:
                key = measurement_key(
                    self.calib,
                    profile,
                    config,
                    self.config.n_instructions,
                    self.config.seed,
                )
                keys[index] = key
                hit = self.cache.load_measurement(key)
                if hit is not None:
                    out[index] = hit
                    continue
            missing.append(index)
        if missing:
            measured = measure_suite_batched(
                [requests[index] for index in missing],
                self.config.n_instructions,
                self.config.seed,
            )
            for index, meas in zip(missing, measured):
                out[index] = meas
                if self.cache is not None:
                    self.cache.save_measurement(keys[index], meas)
        return out

    def _measure(
        self, profile: WorkloadProfile, config: CoreConfig
    ) -> WorkloadMeasurement:
        """One measurement, through the disk cache when configured."""
        return self._measure_batch([(profile, config)])[0]

    def bank_for(
        self, env: Environment, cache: Optional[ExperimentCache] = None
    ) -> ControllerBank:
        """Return (training once) the fuzzy-controller bank for an env.

        Banks are memoised in-process and, when a cache is configured (or
        passed explicitly by the engine), persisted through the
        :mod:`repro.ml.persistence` ``.npz`` round trip so the expensive
        manufacturer-site training is reused across sessions and workers.
        """
        cache = cache if cache is not None else self.cache
        spec = env.optimization_spec(self._novar.n_subsystems, self.calib)
        key = bank_key(
            self.calib,
            spec,
            self.config.fuzzy_examples,
            self.config.fuzzy_epochs,
            self.config.seed,
        )
        bank = self._banks.get(key)
        if bank is not None:
            return bank
        if cache is not None:
            bank = cache.load_bank(key)
        if bank is None:
            log.info("training fuzzy bank for %s", env.name)
            with obs.span("ml.bank_training", env=env.name):
                bank = get_bank(
                    self.core(0, 0),
                    spec,
                    n_examples=self.config.fuzzy_examples,
                    epochs=self.config.fuzzy_epochs,
                    seed=self.config.seed,
                )
            if cache is not None:
                cache.save_bank(key, bank)
        self._banks[key] = bank
        return bank

    # ------------------------------------------------------------------
    # Reference points.
    # ------------------------------------------------------------------
    def novar_performance(self, meas: WorkloadMeasurement) -> float:
        """NoVar instructions/second for a phase (4 GHz, error-free)."""
        params = perf_params_from_measurement(meas, self._novar)
        return float(performance(self.calib.f_nominal, 0.0, params))

    def novar_power(self, meas: WorkloadMeasurement) -> float:
        """NoVar power for a phase, in watts."""
        n = self._novar.n_subsystems
        config = Configuration(
            f_core=self.calib.f_nominal,
            vdd=np.full(n, self.calib.vdd_nominal),
            vbb=np.zeros(n),
            technique=TechniqueState(domain=meas.domain),
        )
        state = evaluate_configuration(
            self._novar, config, meas.activity, meas.rho, checker=False
        )
        return state.total_power

    # ------------------------------------------------------------------
    # Main entry point.
    # ------------------------------------------------------------------
    def run(self, spec: "RunSpec") -> "RunResult":
        """Run a whole campaign (see :class:`repro.exps.engine.RunSpec`).

        Subsumes the old per-environment entry points: the grid of
        (environment, mode) cells is optionally sharded over worker
        processes (``spec.parallelism``) and served from / stored into the
        content-addressed disk cache (``spec.cache_dir`` or the runner's
        own).  A parallel run returns results bit-identical to the serial
        run at the same seed.
        """
        from .engine import execute

        return execute(self, spec)

    def run_unit(
        self,
        env: Environment,
        mode: AdaptationMode,
        chip_index: int,
        core_index: int,
        workloads: Optional[Sequence[WorkloadProfile]] = None,
        bank: Optional[ControllerBank] = None,
        *,
        batch_phases: Optional[bool] = None,
    ) -> List[PhaseResult]:
        """Run one (environment, mode, chip, core) unit of work.

        This is the engine's shard: both the serial loop and the pool
        workers call exactly this function, which is what makes parallel
        runs bit-identical to serial ones.  Exh-Dyn units route every
        phase of the suite through one stack of batched optimizer kernels
        (:func:`~repro.core.adaptation.optimize_phases_batched`) unless
        ``batch_phases`` (default: the runner's setting) disables it; the
        two paths produce bit-identical :class:`PhaseResult` rows.
        """
        workloads = list(workloads) if workloads is not None else self.workloads
        use_batch = (
            self.batch_phases if batch_phases is None else bool(batch_phases)
        )
        with obs.span("engine.unit", env=env.name, mode=mode.value,
                      chip=chip_index, core=core_index):
            core = self.core(chip_index, core_index)
            if mode is AdaptationMode.FUZZY_DYN and bank is None:
                bank = self.bank_for(env)
            static_config = (
                self._static_configuration(core, env, workloads)
                if mode is AdaptationMode.STATIC
                else None
            )
            if mode is AdaptationMode.EXH_DYN and use_batch:
                return self._run_unit_batched(core, env, mode, workloads, bank)
            results: List[PhaseResult] = []
            for workload in workloads:
                for profile, weight in self.phase_profiles(workload):
                    with obs.span("runner.phase", workload=workload.name,
                                  env=env.name):
                        meas_full, meas_resized = self.measurements(
                            profile, env
                        )
                        if mode is AdaptationMode.STATIC:
                            result = evaluate_at_fixed_config(
                                core, env, static_config, meas_full
                            )
                        else:
                            result = optimize_phase(
                                core,
                                env,
                                meas_full,
                                meas_resized,
                                mode=mode,
                                bank=bank,
                            )
                    results.append(
                        self._to_phase_result(
                            core, env, mode, workload, profile, weight, result
                        )
                    )
        return results

    def _run_unit_batched(
        self,
        core: Core,
        env: Environment,
        mode: AdaptationMode,
        workloads: Sequence[WorkloadProfile],
        bank: Optional[ControllerBank],
    ) -> List[PhaseResult]:
        """One unit's whole phase matrix through the batched kernels.

        Measurements are gathered in exactly the serial iteration order
        (preserving the memoisation/caching behaviour), then every phase
        is adapted by one :func:`optimize_phases_batched` call.
        """
        entries = []
        for workload in workloads:
            for profile, weight in self.phase_profiles(workload):
                meas_full, meas_resized = self.measurements(profile, env)
                entries.append(
                    (workload, profile, weight, meas_full, meas_resized)
                )
        with obs.span("runner.phases_batched", env=env.name,
                      lanes=len(entries)):
            adapted = optimize_phases_batched(
                core,
                env,
                [(full, resized) for _, _, _, full, resized in entries],
                mode=mode,
                bank=bank,
            )
        return [
            self._to_phase_result(
                core, env, mode, workload, profile, weight, result
            )
            for (workload, profile, weight, _, _), result in zip(
                entries, adapted
            )
        ]

    def run_units_batched(
        self,
        env: Environment,
        mode: AdaptationMode,
        units: Sequence[Tuple[int, int]],
        workloads: Optional[Sequence[WorkloadProfile]] = None,
        bank: Optional[ControllerBank] = None,
        *,
        batch_units: Optional[bool] = None,
    ) -> List[List[PhaseResult]]:
        """Run a block of same-cell ``(chip, core)`` units as one program.

        The population tier of the lane-axis idiom: every unit of the
        block contributes its phase lanes to a single stack, and one
        :func:`~repro.core.adaptation.optimize_units_batched` call
        adapts all of them — the retuning rounds, thermal solves and
        error-rate evaluations of the whole population amortise into a
        handful of array ops.  Per-unit rows come back in unit order and
        are bit-identical to calling :meth:`run_unit` per unit.

        ``batch_units`` (default: the runner's setting, i.e. the
        ``--serial-units`` / ``EVAL_REPRO_SERIAL_UNITS`` opt-out) routes
        through the per-unit loop instead; so does Static mode, which
        has nothing to batch.  Single-unit blocks stay on the batched
        path on purpose: the metric structure a run emits must depend
        on the strategy knob, never on how the engine happened to chunk
        units across workers (``tests/test_obs.py`` pins serial ==
        parallel structure).
        """
        units = [(int(chip), int(core)) for chip, core in units]
        workloads = list(workloads) if workloads is not None else self.workloads
        use_batch = (
            self.batch_units if batch_units is None else bool(batch_units)
        )
        if (
            not use_batch
            or not units
            or mode not in (AdaptationMode.EXH_DYN, AdaptationMode.FUZZY_DYN)
        ):
            return [
                self.run_unit(env, mode, chip, core, workloads, bank=bank)
                for chip, core in units
            ]
        with obs.span("engine.units_batched", env=env.name, mode=mode.value,
                      units=len(units)):
            obs.inc("engine.batched_units", float(len(units)))
            cores = [self.core(chip, core) for chip, core in units]
            if mode is AdaptationMode.FUZZY_DYN and bank is None:
                bank = self.bank_for(env)
            entries = []
            for workload in workloads:
                for profile, weight in self.phase_profiles(workload):
                    meas_full, meas_resized = self.measurements(profile, env)
                    entries.append(
                        (workload, profile, weight, meas_full, meas_resized)
                    )
            pairs = [(full, resized) for _, _, _, full, resized in entries]
            adapted = optimize_units_batched(
                [(core, pairs) for core in cores], env, mode=mode, bank=bank
            )
        return [
            [
                self._to_phase_result(
                    core, env, mode, workload, profile, weight, result
                )
                for (workload, profile, weight, _, _), result in zip(
                    entries, unit_results
                )
            ]
            for core, unit_results in zip(cores, adapted)
        ]

    def novar_summary(
        self, workloads: Optional[Sequence[WorkloadProfile]] = None
    ) -> SuiteSummary:
        """The NoVar reference environment (per-phase perf_rel is 1)."""
        workloads = list(workloads) if workloads is not None else self.workloads
        results = []
        with obs.span("runner.novar"):
            for workload in workloads:
                for profile, weight in self.phase_profiles(workload):
                    meas, _ = self.measurements(profile, NOVAR)
                    results.append(
                        PhaseResult(
                            chip_id=-1,
                            core_index=0,
                            workload=workload.name,
                            phase=profile.phases[0].name,
                            weight=weight,
                            environment=NOVAR.name,
                            mode=AdaptationMode.STATIC.value,
                            f_rel=1.0,
                            perf_rel=1.0,
                            power=self.novar_power(meas),
                            outcome="NoChange",
                            queue_full=True,
                            lowslope=False,
                        )
                    )
        return summarise(results)

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _static_configuration(
        self,
        core: Core,
        env: Environment,
        workloads: Sequence[WorkloadProfile],
    ) -> Configuration:
        """One conservative per-chip configuration (the Static bars)."""
        with obs.span("runner.static_config", env=env.name):
            measurements = []
            for workload in workloads:
                for profile, _ in self.phase_profiles(workload):
                    meas_full, _ = self.measurements(profile, env)
                    measurements.append(meas_full)
            worst = aggregate_static_measurement(measurements)
            result = optimize_phase(
                core,
                env,
                worst,
                worst if env.queue else None,
                mode=AdaptationMode.EXH_DYN,
            )
            return result.config

    def _to_phase_result(
        self,
        core: Core,
        env: Environment,
        mode: AdaptationMode,
        workload: WorkloadProfile,
        profile: WorkloadProfile,
        weight: float,
        result: AdaptationResult,
    ) -> PhaseResult:
        novar_perf = self.novar_performance(result.measurement)
        return PhaseResult(
            chip_id=core.chip_id,
            core_index=core.core_index,
            workload=workload.name,
            phase=profile.phases[0].name,
            weight=weight,
            environment=env.name,
            mode=mode.value,
            f_rel=result.f_core / self.calib.f_nominal,
            perf_rel=result.performance_ips / novar_perf,
            power=result.state.total_power,
            outcome=result.outcome.value,
            queue_full=result.config.technique.queue_full,
            lowslope=result.config.technique.lowslope,
        )


def summarise(results: List[PhaseResult]) -> SuiteSummary:
    """Phase-weighted means over a list of observations."""
    weights = np.array([r.weight for r in results])
    weights = weights / weights.sum()
    return SuiteSummary(
        f_rel=float(np.dot(weights, [r.f_rel for r in results])),
        perf_rel=float(np.dot(weights, [r.perf_rel for r in results])),
        power=float(np.dot(weights, [r.power for r in results])),
        results=results,
    )


#: Backwards-compatible alias (pre-engine name).
_summarise = summarise
