"""Monte-Carlo experiment driver (paper Section 5 methodology).

Each experiment runs a suite of SPEC-2000-like workloads on every core of
a population of chips with independently drawn variation maps, for every
(environment, adaptation-mode) pair.  Results are phase-weighted per
workload, then averaged — mirroring the paper's "each application is run
on each of the 4 cores of each of 100 chips" and Figure 10-12 reporting.

Scale knobs: the paper uses 100 chips x 4 cores.  That is available
(``RunnerConfig(n_chips=100, cores_per_chip=4)``), but the default is a
smaller population that reproduces the same means within the Monte-Carlo
noise (the paper itself notes more than 100 samples changes nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..calibration import DEFAULT_CALIBRATION, Calibration
from ..chip.chip import Core, build_core, build_novar_core
from ..core.adaptation import (
    AdaptationResult,
    aggregate_static_measurement,
    evaluate_at_fixed_config,
    optimize_phase,
)
from ..core.environments import (
    BASELINE,
    NOVAR,
    AdaptationMode,
    Environment,
)
from ..core.state import Configuration, evaluate_configuration
from ..core.adaptation import perf_params_from_measurement
from ..microarch.pipeline import DEFAULT_CORE_CONFIG, CoreConfig
from ..microarch.simulator import WorkloadMeasurement, measure_workload
from ..microarch.workloads import WorkloadProfile, spec2000_like_suite
from ..mitigation.base import TechniqueState
from ..ml.bank import ControllerBank, get_bank
from ..timing.speculation import performance
from ..variation.population import VariationModel


@dataclass(frozen=True)
class RunnerConfig:
    """Scale and reproducibility knobs for an experiment run."""

    n_chips: int = 20
    cores_per_chip: int = 1
    n_instructions: int = 12000
    seed: int = 7
    fuzzy_examples: int = 4000  # per-FC training examples (paper: 10,000)
    fuzzy_epochs: int = 2

    def __post_init__(self) -> None:
        if self.n_chips < 1 or not 1 <= self.cores_per_chip <= 4:
            raise ValueError("need >=1 chip and 1..4 cores per chip")


@dataclass(frozen=True)
class PhaseResult:
    """One (chip, core, workload, phase) observation."""

    chip_id: int
    core_index: int
    workload: str
    phase: str
    weight: float
    environment: str
    mode: str
    f_rel: float  # relative to the 4 GHz no-variation frequency
    perf_rel: float  # relative to NoVar running the same phase
    power: float  # watts (core + L1 + L2 + checker)
    outcome: str
    queue_full: bool
    lowslope: bool


@dataclass
class SuiteSummary:
    """Phase-weighted means over a whole run."""

    f_rel: float
    perf_rel: float
    power: float
    results: List[PhaseResult] = field(repr=False, default_factory=list)


class ExperimentRunner:
    """Caches chips, cores, measurements and FC banks across experiments."""

    def __init__(
        self,
        config: RunnerConfig = RunnerConfig(),
        calib: Calibration = DEFAULT_CALIBRATION,
        workloads: Optional[Sequence[WorkloadProfile]] = None,
        core_config: CoreConfig = DEFAULT_CORE_CONFIG,
    ):
        self.config = config
        self.calib = calib
        self.workloads = list(workloads) if workloads is not None else spec2000_like_suite()
        self.core_config = core_config
        self._population = VariationModel().population(
            config.n_chips, seed=config.seed
        )
        self._cores: Dict[Tuple[int, int], Core] = {}
        self._novar = build_novar_core(calib=calib)
        self._banks: Dict[Tuple, ControllerBank] = {}

    # ------------------------------------------------------------------
    # Cached building blocks.
    # ------------------------------------------------------------------
    def core(self, chip_index: int, core_index: int) -> Core:
        """Return (and cache) one core model."""
        key = (chip_index, core_index)
        if key not in self._cores:
            self._cores[key] = build_core(
                self._population[chip_index], core_index, calib=self.calib
            )
        return self._cores[key]

    def cores(self):
        """Iterate over all (chip, core) pairs in the run."""
        for chip_index in range(self.config.n_chips):
            for core_index in range(self.config.cores_per_chip):
                yield self.core(chip_index, core_index)

    def phase_profiles(self, workload: WorkloadProfile):
        """Yield (phase-specialised profile, weight) pairs."""
        for phase in workload.phases:
            yield workload.phase_profile(phase), phase.weight

    def measurements(
        self, profile: WorkloadProfile, env: Environment
    ) -> Tuple[WorkloadMeasurement, Optional[WorkloadMeasurement]]:
        """Measure a phase profile under an environment's pipeline configs."""
        technique = TechniqueState(domain=profile.domain)
        base = technique.core_config(self.core_config, replication_built=env.fu)
        full = measure_workload(
            profile, base, self.config.n_instructions, self.config.seed
        )
        resized = None
        if env.queue:
            resized_cfg = base.with_resized_queue(profile.domain)
            resized = measure_workload(
                profile, resized_cfg, self.config.n_instructions, self.config.seed
            )
        return full, resized

    def bank_for(self, env: Environment) -> ControllerBank:
        """Return (training once) the fuzzy-controller bank for an env."""
        spec = env.optimization_spec(self._novar.n_subsystems, self.calib)
        template = self.core(0, 0)
        return get_bank(
            template,
            spec,
            n_examples=self.config.fuzzy_examples,
            epochs=self.config.fuzzy_epochs,
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------
    # Reference points.
    # ------------------------------------------------------------------
    def novar_performance(self, meas: WorkloadMeasurement) -> float:
        """NoVar instructions/second for a phase (4 GHz, error-free)."""
        params = perf_params_from_measurement(meas, self._novar)
        return float(performance(self.calib.f_nominal, 0.0, params))

    def novar_power(self, meas: WorkloadMeasurement) -> float:
        """NoVar power for a phase, in watts."""
        n = self._novar.n_subsystems
        config = Configuration(
            f_core=self.calib.f_nominal,
            vdd=np.full(n, self.calib.vdd_nominal),
            vbb=np.zeros(n),
            technique=TechniqueState(domain=meas.domain),
        )
        state = evaluate_configuration(
            self._novar, config, meas.activity, meas.rho, checker=False
        )
        return state.total_power

    # ------------------------------------------------------------------
    # Main entry points.
    # ------------------------------------------------------------------
    def run_environment(
        self,
        env: Environment,
        mode: AdaptationMode = AdaptationMode.EXH_DYN,
        workloads: Optional[Sequence[WorkloadProfile]] = None,
    ) -> SuiteSummary:
        """Run one environment/mode over the population and suite."""
        if not env.variation:
            return self._run_novar(workloads)
        workloads = list(workloads) if workloads is not None else self.workloads
        bank = self.bank_for(env) if mode is AdaptationMode.FUZZY_DYN else None

        results: List[PhaseResult] = []
        for core in self.cores():
            static_config = (
                self._static_configuration(core, env, workloads)
                if mode is AdaptationMode.STATIC
                else None
            )
            for workload in workloads:
                for profile, weight in self.phase_profiles(workload):
                    meas_full, meas_resized = self.measurements(profile, env)
                    if mode is AdaptationMode.STATIC:
                        result = evaluate_at_fixed_config(
                            core, env, static_config, meas_full
                        )
                    else:
                        result = optimize_phase(
                            core,
                            env,
                            meas_full,
                            meas_resized,
                            mode=mode,
                            bank=bank,
                        )
                    results.append(
                        self._to_phase_result(
                            core, env, mode, workload, profile, weight, result
                        )
                    )
        return _summarise(results)

    def _run_novar(self, workloads=None) -> SuiteSummary:
        """The NoVar reference environment (per-phase perf_rel is 1)."""
        workloads = list(workloads) if workloads is not None else self.workloads
        results = []
        for workload in workloads:
            for profile, weight in self.phase_profiles(workload):
                meas, _ = self.measurements(profile, NOVAR)
                results.append(
                    PhaseResult(
                        chip_id=-1,
                        core_index=0,
                        workload=workload.name,
                        phase=profile.phases[0].name,
                        weight=weight,
                        environment=NOVAR.name,
                        mode=AdaptationMode.STATIC.value,
                        f_rel=1.0,
                        perf_rel=1.0,
                        power=self.novar_power(meas),
                        outcome="NoChange",
                        queue_full=True,
                        lowslope=False,
                    )
                )
        return _summarise(results)

    def _static_configuration(
        self,
        core: Core,
        env: Environment,
        workloads: Sequence[WorkloadProfile],
    ) -> Configuration:
        """One conservative per-chip configuration (the Static bars)."""
        measurements = []
        for workload in workloads:
            for profile, _ in self.phase_profiles(workload):
                meas_full, _ = self.measurements(profile, env)
                measurements.append(meas_full)
        worst = aggregate_static_measurement(measurements)
        result = optimize_phase(
            core,
            env,
            worst,
            worst if env.queue else None,
            mode=AdaptationMode.EXH_DYN,
        )
        return result.config

    def _to_phase_result(
        self,
        core: Core,
        env: Environment,
        mode: AdaptationMode,
        workload: WorkloadProfile,
        profile: WorkloadProfile,
        weight: float,
        result: AdaptationResult,
    ) -> PhaseResult:
        novar_perf = self.novar_performance(result.measurement)
        return PhaseResult(
            chip_id=core.chip_id,
            core_index=core.core_index,
            workload=workload.name,
            phase=profile.phases[0].name,
            weight=weight,
            environment=env.name,
            mode=mode.value,
            f_rel=result.f_core / self.calib.f_nominal,
            perf_rel=result.performance_ips / novar_perf,
            power=result.state.total_power,
            outcome=result.outcome.value,
            queue_full=result.config.technique.queue_full,
            lowslope=result.config.technique.lowslope,
        )

    def baseline_summary(self) -> SuiteSummary:
        """Convenience: the Baseline environment (no checker, Static)."""
        return self.run_environment(BASELINE, AdaptationMode.EXH_DYN)


def _summarise(results: List[PhaseResult]) -> SuiteSummary:
    weights = np.array([r.weight for r in results])
    weights = weights / weights.sum()
    return SuiteSummary(
        f_rel=float(np.dot(weights, [r.f_rel for r in results])),
        perf_rel=float(np.dot(weights, [r.perf_rel for r in results])),
        power=float(np.dot(weights, [r.power for r in results])),
        results=results,
    )
