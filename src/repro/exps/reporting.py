"""Plain-text rendering of every experiment's rows/series.

The benchmark harness prints the same rows the paper's tables and figure
captions report; these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Render a fixed-width text table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = [title]
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


#: Columns of :func:`results_table`, in display order.  These are keys of
#: the :meth:`repro.exps.runner.PhaseResult.to_dict` wire format — the
#: same records the engine workers return and the summary cache stores.
RESULT_COLUMNS = (
    "chip_id", "core_index", "workload", "phase", "environment", "mode",
    "f_rel", "perf_rel", "power", "outcome",
)

_RESULT_FORMATS = {"f_rel": "{:.3f}", "perf_rel": "{:.3f}", "power": "{:.1f}"}


def results_table(summary, title: str = "phase results",
                  max_rows: int = 24) -> str:
    """Render a :class:`~repro.exps.runner.SuiteSummary`'s observations.

    Rows come straight from the :meth:`PhaseResult.to_dict` records, so
    what is printed is exactly what crosses process boundaries and what
    the cache persists.  Long runs are truncated with an ellipsis row.
    When the summary carries a campaign metrics snapshot
    (``summary.metrics``), a counters/timings footer is appended.
    """
    records = [r.to_dict() for r in summary.results]
    rows = [
        [
            _RESULT_FORMATS.get(col, "{}").format(record[col])
            for col in RESULT_COLUMNS
        ]
        for record in records[:max_rows]
    ]
    if len(records) > max_rows:
        rows.append(["..."] * len(RESULT_COLUMNS))
    header = (f"{title}  (f_rel {summary.f_rel:.3f}, "
              f"perf_rel {summary.perf_rel:.3f}, power {summary.power:.1f} W)")
    table = format_table(header, list(RESULT_COLUMNS), rows)
    footer = metrics_footer(getattr(summary, "metrics", None))
    return table + ("\n" + footer if footer else "")


def metrics_footer(metrics) -> str:
    """A compact one-line-per-kind rendering of a metrics snapshot.

    Accepts the ``MetricsRegistry.to_dict()`` document attached to
    computed summaries (``SuiteSummary.metrics``); returns ``""`` for
    ``None`` or an empty snapshot.
    """
    if not metrics:
        return ""
    lines = []
    counters = metrics.get("counters", {})
    if counters:
        rendered = ", ".join(
            f"{name}={value:g}" for name, value in sorted(counters.items())
        )
        lines.append(f"counters: {rendered}")
    gauges = metrics.get("gauges", {})
    if gauges:
        rendered = ", ".join(
            f"{name}={value:g}" for name, value in sorted(gauges.items())
        )
        lines.append(f"gauges: {rendered}")
    histograms = metrics.get("histograms", {})
    if histograms:
        rendered = ", ".join(
            f"{name} p50={doc['p50']:.4g} p99={doc['p99']:.4g} (n={doc['count']})"
            for name, doc in sorted(histograms.items())
        )
        lines.append(f"timings: {rendered}")
    return "\n".join(lines)


def format_series(title: str, xs, ys, x_name: str = "x", y_name: str = "y",
                  max_points: int = 12) -> str:
    """Render an (x, y) series, subsampled for readability."""
    n = len(xs)
    step = max(1, n // max_points)
    rows = [[f"{xs[i]:.4g}", f"{ys[i]:.4g}"] for i in range(0, n, step)]
    return format_table(title, [x_name, y_name], rows)


def ascii_chart(
    title: str,
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 14,
    log_y: bool = False,
) -> str:
    """Render an (x, y) series as an ASCII scatter/line chart.

    No plotting dependency is available offline, so figures are emitted as
    terminal graphics: good enough to see onsets, cliffs and crossovers.
    ``log_y`` plots log10(y) (useful for PE curves); non-positive values
    are dropped in that mode.
    """
    import math

    points = [
        (float(x), float(y))
        for x, y in zip(xs, ys)
        if not log_y or y > 0.0
    ]
    if not points:
        return f"{title}\n(no positive data to plot)"
    values = [(x, math.log10(y) if log_y else y) for x, y in points]
    x_lo = min(v[0] for v in values)
    x_hi = max(v[0] for v in values)
    y_lo = min(v[1] for v in values)
    y_hi = max(v[1] for v in values)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    cells = [[" "] * width for _ in range(height)]
    for x, y in values:
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((y_hi - y) / y_span * (height - 1)))
        cells[row][col] = "*"

    y_top = f"{y_hi:.3g}" + (" (log10)" if log_y else "")
    y_bot = f"{y_lo:.3g}"
    lines = [title, f"  y: {y_bot} .. {y_top}"]
    for row in cells:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    lines.append(f"   x: {x_lo:.4g} .. {x_hi:.4g}")
    return "\n".join(lines)
