"""Figure 2: the EVAL curve-transform taxonomy, demonstrated numerically.

(a) tolerating errors: Perf(f) peaks past f_var;
(b) Tilt: slope falls, f_var unchanged;
(c) Shift: the whole curve moves right;
(d) Reshape: slow stages right, fast stages left;
(e) Adapt: the curve moves between phases, so f_opt must follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..calibration import DEFAULT_CALIBRATION
from ..chip.chip import build_core
from ..core.framework import ToleranceCurve, reshape, shift, tilt, tolerate
from ..microarch.pipeline import DEFAULT_CORE_CONFIG
from ..microarch.simulator import measure_workload
from ..microarch.workloads import by_name
from ..timing.errors import processor_error_rate
from ..timing.paths import stage_delays
from ..timing.speculation import PerfParams
from ..variation.population import VariationModel


@dataclass(frozen=True)
class Fig2Result:
    """PE(f) curves before/after each transform, plus the Perf(f) curve."""

    freqs: np.ndarray
    tolerance: ToleranceCurve  # Fig 2(a)
    pe_before: np.ndarray
    pe_tilt: np.ndarray  # Fig 2(b)
    pe_shift: np.ndarray  # Fig 2(c)
    pe_reshape: np.ndarray  # Fig 2(d)
    pe_phases: Dict[str, np.ndarray]  # Fig 2(e): PE curve per phase

    def f_var(self) -> float:
        """Frequency where the untransformed curve leaves zero."""
        index = int(np.argmax(self.pe_before > 1e-12))
        return float(self.freqs[index])


def run_fig2(chip_seed: int = 42, workload: str = "gcc*") -> Fig2Result:
    """Compute every Figure 2 panel on one sample chip."""
    calib = DEFAULT_CALIBRATION
    chip = VariationModel().population(1, seed=chip_seed)[0]
    core = build_core(chip, 0, calib=calib)
    profile = by_name(workload)
    meas = measure_workload(profile, DEFAULT_CORE_CONFIG)

    n = core.n_subsystems
    vdd = np.full(n, calib.vdd_nominal)
    vbb = np.zeros(n)
    delays = stage_delays(core, vdd, vbb, calib.t_design)
    freqs = np.linspace(0.6 * calib.f_nominal, 1.3 * calib.f_nominal, 240)
    rho = meas.rho

    def pe(d):
        return processor_error_rate(freqs[:, None], d, rho)

    params = PerfParams.from_calibration(meas.cpi_comp, meas.l2_miss_rate, calib)
    phases = {}
    for phase in profile.phases:
        phase_meas = measure_workload(
            profile.phase_profile(phase), DEFAULT_CORE_CONFIG
        )
        phases[phase.name] = processor_error_rate(
            freqs[:, None], delays, phase_meas.rho
        )

    return Fig2Result(
        freqs=freqs,
        tolerance=tolerate(delays, rho, params, freqs),
        pe_before=pe(delays),
        pe_tilt=pe(tilt(delays, 1.6)),
        pe_shift=pe(shift(delays, 0.93)),
        pe_reshape=pe(reshape(delays, slow_factor=0.93, fast_factor=1.05)),
        pe_phases=phases,
    )
