"""Experiment harness: one module per paper table/figure (see DESIGN.md).

The Monte-Carlo driver is exposed through one entry point:
``ExperimentRunner.run(RunSpec(...))`` — see :mod:`repro.exps.engine` for
the parallel sharding and :mod:`repro.exps.cache` for the on-disk
artifact cache.
"""

from .area_table import area_rows, run_area_table
from .cache import ExperimentCache
from .dse import (
    Axis,
    Objective,
    SweepPoint,
    SweepResult,
    SweepSpec,
    ZipAxes,
    pareto_front,
    run_sweep,
)
from .engine import RunResult, RunSpec
from .fig1_paths import Fig1Result, run_fig1
from .fig2_taxonomy import Fig2Result, run_fig2
from .fig8_tradeoff import Fig8Result, run_fig8
from .fig9_surfaces import Fig9Result, run_fig9
from .fig13_outcomes import OPT_CONFIGS, Fig13Result, run_fig13
from .ladder import MODES, LadderResult, run_ladder
from .reporting import ascii_chart, format_series, format_table, results_table
from .retiming_comparison import RetimingComparison, run_retiming_comparison
from .sensitivity import SensitivityPoint, SensitivityResult, run_sensitivity
from .runner import (
    ExperimentRunner,
    PhaseResult,
    RunnerConfig,
    SuiteSummary,
)
from .table2_accuracy import Table2Result, run_table2

__all__ = [
    "Axis",
    "ExperimentCache",
    "ExperimentRunner",
    "Objective",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "ZipAxes",
    "pareto_front",
    "run_sweep",
    "Fig13Result",
    "Fig1Result",
    "Fig2Result",
    "Fig8Result",
    "Fig9Result",
    "LadderResult",
    "MODES",
    "OPT_CONFIGS",
    "PhaseResult",
    "RunResult",
    "RunSpec",
    "RunnerConfig",
    "RetimingComparison",
    "SensitivityPoint",
    "SensitivityResult",
    "SuiteSummary",
    "Table2Result",
    "area_rows",
    "ascii_chart",
    "format_series",
    "format_table",
    "results_table",
    "run_area_table",
    "run_fig1",
    "run_fig13",
    "run_fig2",
    "run_fig8",
    "run_fig9",
    "run_ladder",
    "run_retiming_comparison",
    "run_sensitivity",
    "run_table2",
]
