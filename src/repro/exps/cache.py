"""Content-addressed on-disk cache for hot Monte-Carlo artifacts.

The experiment engine reuses three expensive artifact classes across runs
and across worker processes:

* **Workload measurements** — the Eq 5 inputs produced by the trace-driven
  pipeline model, identical for every chip in the population.
* **Trained fuzzy-controller banks** — the manufacturer-site training of
  Appendix A, identical for every chip sharing a knob environment (stored
  through the :mod:`repro.ml.persistence` ``.npz`` round trip).
* **Suite summaries** — whole (environment, mode) cells of Figures 10-12,
  stored in the :meth:`repro.exps.runner.SuiteSummary.to_json` wire format.
* **Correlation factors** — the O(n^3) Cholesky factor of the VARIUS
  within-die correlation matrix, identical for every campaign sharing a
  die grid and ``phi`` (served into the process-wide memo of
  :mod:`repro.variation.factors` through :class:`FactorStore`).

Every artifact is addressed by a SHA-256 of its *inputs*: the calibration
constants, the runner scale knobs, the workload/phase fingerprint, and the
environment's capability set.  Changing any of them (e.g. a recalibrated
``systematic_delay_gain``) changes the key, so stale entries are never
served — invalidation is free and the cache directory can be shared by
concurrent processes (writes go through a temp file + atomic rename).

Storage is pluggable: :class:`ExperimentCache` serialises artifacts and
delegates the byte-level ``get``/``put``/``exists``/``delete`` to an
:class:`ArtifactStore` backend.  :class:`LocalDirStore` keeps the
original single-host directory layout; :class:`SharedDirStore` adds
advisory locks and completed-write markers so one directory can be
mounted by a whole fleet of worker processes/hosts (see
:mod:`repro.serve.fleet`).

Layout under a directory-backed store's root::

    measurements/<key>.npz   arrays + JSON metadata
    banks/<key>.npz          repro.ml.persistence archives
    summaries/<key>.json     SuiteSummary wire format
    factors/<key>.npz        correlation factors (single array)
"""

from __future__ import annotations

import abc
import contextlib
import dataclasses
import hashlib
import io
import json
import logging
import os
import tempfile
import warnings
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Sequence, Union

import numpy as np

try:  # advisory file locks: POSIX only, and optional even there
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from .. import obs
from ..calibration import Calibration
from ..core.environments import AdaptationMode, Environment
from ..core.optimizer import OptimizationSpec
from ..microarch.pipeline import CoreConfig
from ..microarch.simulator import WorkloadMeasurement
from ..microarch.workloads import WorkloadProfile
from ..ml.bank import ControllerBank
from ..ml.persistence import load_bank, save_bank

#: Bump when the stored artifact layout changes; keys include it, so old
#: cache directories keep working (their entries just stop being hit).
CACHE_FORMAT_VERSION = 1

log = logging.getLogger("repro.exps.cache")

_MEAS_META_FIELDS = (
    "name", "phase", "domain", "cpi_comp", "cpi_total",
    "l2_miss_rate", "overlap_factor", "ipc",
)


# ----------------------------------------------------------------------
# Stable fingerprinting.
# ----------------------------------------------------------------------
def jsonable(obj: Any) -> Any:
    """Convert nested dataclasses / enums / numpy values to JSON types.

    Dict keys are stringified (enum keys by their ``.name``) and sorted by
    :func:`json.dumps`, so equal objects always produce equal documents.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Enum):
        return obj.name
    if isinstance(obj, np.ndarray):
        return [jsonable(v) for v in obj.tolist()]
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, dict):
        return {
            (key.name if isinstance(key, Enum) else str(key)): jsonable(value)
            for key, value in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    return obj


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of an object's canonical JSON form."""
    document = json.dumps(jsonable(obj), sort_keys=True)
    return hashlib.sha256(document.encode()).hexdigest()


def measurement_key(
    calib: Calibration,
    profile: WorkloadProfile,
    config: CoreConfig,
    n_instructions: int,
    seed: int,
) -> str:
    """Cache key for one (workload-phase, pipeline-config) measurement."""
    return stable_hash({
        "version": CACHE_FORMAT_VERSION,
        "kind": "measurement",
        "calib": calib,
        "profile": profile,
        "config": config,
        "n_instructions": n_instructions,
        "seed": seed,
    })


def bank_key(
    calib: Calibration,
    spec: OptimizationSpec,
    n_examples: int,
    epochs: int,
    seed: int,
) -> str:
    """Cache key for one environment's trained controller bank."""
    return stable_hash({
        "version": CACHE_FORMAT_VERSION,
        "kind": "bank",
        "calib": calib,
        "spec": spec,
        "n_examples": n_examples,
        "epochs": epochs,
        "seed": seed,
    })


def factor_key(key_data: Sequence[Any]) -> str:
    """Cache key for one correlation factor.

    ``key_data`` is the tuple produced by
    :func:`repro.variation.factors.factor_key_data` — the grid geometry
    plus ``phi`` and the diagonal jitter, i.e. everything the factor
    depends on.
    """
    return stable_hash({
        "version": CACHE_FORMAT_VERSION,
        "kind": "factor",
        "key_data": list(key_data),
    })


def unit_key(cell_key: str, chip_index: int, core_index: int) -> str:
    """Derive one (chip, core) unit's coalescing key from its cell's key.

    The campaign service decomposes a :class:`~repro.exps.engine.RunSpec`
    into (environment, mode, chip, core) units; two jobs whose cells share
    a :func:`summary_key` therefore share every unit key, which is what
    lets the in-flight registry compute each unit exactly once across
    concurrent submissions.
    """
    return f"{cell_key}-{chip_index}-{core_index}"


def summary_key(
    calib: Calibration,
    runner_config: Any,
    core_config: CoreConfig,
    env: Environment,
    mode: AdaptationMode,
    workloads: Sequence[WorkloadProfile],
) -> str:
    """Cache key for a whole (environment, mode) suite summary."""
    return stable_hash({
        "version": CACHE_FORMAT_VERSION,
        "kind": "summary",
        "calib": calib,
        "runner_config": runner_config,
        "core_config": core_config,
        "env": env,
        "mode": mode,
        "workloads": list(workloads),
    })


# ----------------------------------------------------------------------
# Storage backends: the ArtifactStore API.
# ----------------------------------------------------------------------
class ArtifactStore(abc.ABC):
    """Byte-level artifact storage behind :class:`ExperimentCache`.

    The contract (see DESIGN.md §12 for the fleet-facing guarantees):

    * Artifacts are addressed by ``(kind, key, suffix)`` — ``kind`` is a
      short category name (``"summaries"``, ``"banks"``, ...), ``key`` a
      content-addressed hex digest, ``suffix`` the format extension.
      Keys are content-addressed, so a ``put`` for an existing address
      always carries semantically identical bytes: last-writer-wins is a
      safe conflict rule.
    * ``put`` must be *atomic and complete*: a concurrent ``get`` sees
      either nothing or the full new payload, never a torn write.
    * ``get`` returns ``None`` for anything that is not a completed
      artifact (absent, or still being written by another process).
    * ``is_complete`` reports whether a present artifact's write has
      finished; :meth:`ExperimentCache._load_guarded` only deletes a
      corrupt artifact when its write is complete, so two processes
      sharing a store never clobber each other mid-write.
    * ``delete`` is idempotent and returns whether anything was removed.
    """

    @abc.abstractmethod
    def get(self, kind: str, key: str, suffix: str) -> Optional[bytes]:
        """The artifact's bytes, or ``None`` if absent/incomplete."""

    @abc.abstractmethod
    def put(self, kind: str, key: str, suffix: str, data: bytes) -> None:
        """Store ``data`` atomically under ``(kind, key, suffix)``."""

    @abc.abstractmethod
    def exists(self, kind: str, key: str, suffix: str) -> bool:
        """Whether any artifact (even an in-flight one) is present."""

    @abc.abstractmethod
    def delete(self, kind: str, key: str, suffix: str) -> bool:
        """Remove the artifact; ``False`` if nothing was there."""

    def is_complete(self, kind: str, key: str, suffix: str) -> bool:
        """Whether the artifact's write has finished.

        Backends whose writes are atomic-by-construction (a visible file
        is always a finished file) inherit this default: present means
        complete.
        """
        return self.exists(kind, key, suffix)


class LocalDirStore(ArtifactStore):
    """The original single-host directory layout.

    Writes go through a sibling temp file and ``os.replace``, so
    concurrent *processes on one host* can share the directory: a reader
    sees either the old bytes or the new ones.  Every visible file is a
    completed write, which is why :meth:`is_complete` stays the default.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        for sub in ("measurements", "banks", "summaries", "factors"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({str(self.root)!r})"

    def path_for(self, kind: str, key: str, suffix: str) -> Path:
        """Where ``(kind, key, suffix)`` lives on disk."""
        return self.root / kind / f"{key}{suffix}"

    def get(self, kind: str, key: str, suffix: str) -> Optional[bytes]:
        try:
            return self.path_for(kind, key, suffix).read_bytes()
        except (FileNotFoundError, IsADirectoryError):
            return None

    def put(self, kind: str, key: str, suffix: str, data: bytes) -> None:
        final = self.path_for(kind, key, suffix)
        final.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(final.parent), prefix=".tmp-", suffix=suffix
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def exists(self, kind: str, key: str, suffix: str) -> bool:
        return self.path_for(kind, key, suffix).exists()

    def delete(self, kind: str, key: str, suffix: str) -> bool:
        try:
            self.path_for(kind, key, suffix).unlink()
            return True
        except OSError:
            return False


class SharedDirStore(LocalDirStore):
    """A directory store safe for multi-host (NFS-style) shared mounts.

    Two additions over :class:`LocalDirStore`:

    * **Completed-write markers** — after the data file is renamed into
      place, an empty ``<name>.done`` marker is created.  ``get`` only
      serves marked artifacts, and ``is_complete`` reports the marker,
      so a reader on another host never consumes (or deletes) a write
      that has not finished — rename atomicity and visibility ordering
      are weaker across network mounts than on a local disk.
    * **Advisory locks** — ``put`` and ``delete`` for one address are
      serialised through a ``flock`` on a sibling ``.lock`` file (a
      no-op where ``fcntl`` is unavailable), so a delete can never
      interleave with a half-finished rewrite of the same artifact.

    A crash between the data rename and the marker leaves an unmarked
    file: invisible to readers, and simply overwritten (marker included)
    by the next writer of that key — content addressing makes the retry
    byte-identical.
    """

    _MARKER = ".done"
    _LOCK = ".lock"

    @contextlib.contextmanager
    def _locked(self, final: Path) -> Iterator[None]:
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = final.with_name(final.name + self._LOCK)
        with open(lock_path, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _marker_for(self, final: Path) -> Path:
        return final.with_name(final.name + self._MARKER)

    def get(self, kind: str, key: str, suffix: str) -> Optional[bytes]:
        final = self.path_for(kind, key, suffix)
        if not self._marker_for(final).exists():
            return None
        return super().get(kind, key, suffix)

    def put(self, kind: str, key: str, suffix: str, data: bytes) -> None:
        final = self.path_for(kind, key, suffix)
        final.parent.mkdir(parents=True, exist_ok=True)
        with self._locked(final):
            super().put(kind, key, suffix, data)
            self._marker_for(final).touch()

    def is_complete(self, kind: str, key: str, suffix: str) -> bool:
        return self._marker_for(self.path_for(kind, key, suffix)).exists()

    def delete(self, kind: str, key: str, suffix: str) -> bool:
        final = self.path_for(kind, key, suffix)
        with self._locked(final):
            # Marker first: the artifact disappears for readers before
            # the data file does, never the other way around.
            try:
                self._marker_for(final).unlink()
            except OSError:
                pass
            return super().delete(kind, key, suffix)


def build_store(root: Union[str, Path], backend: str = "local") -> ArtifactStore:
    """Construct a directory-backed store by backend name.

    ``"local"`` is the single-host layout; ``"shared"`` adds the
    marker/lock discipline for fleet-shared mounts.  This is the factory
    behind ``Settings.store_backend``.
    """
    backends = {"local": LocalDirStore, "shared": SharedDirStore}
    try:
        cls = backends[backend]
    except KeyError:
        raise ValueError(
            f"unknown store backend {backend!r} "
            f"(choose from {sorted(backends)})"
        ) from None
    return cls(root)


# ----------------------------------------------------------------------
# The cache itself.
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters, per artifact kind."""

    hits: Dict[str, int] = dataclasses.field(
        default_factory=lambda: {
            "measurement": 0, "bank": 0, "summary": 0, "factor": 0,
        }
    )
    misses: Dict[str, int] = dataclasses.field(
        default_factory=lambda: {
            "measurement": 0, "bank": 0, "summary": 0, "factor": 0,
        }
    )

    def record(self, kind: str, hit: bool) -> None:
        (self.hits if hit else self.misses)[kind] += 1
        # Touch both counters (one with 0) so every run that accesses a
        # cache kind reports the same metric names — serial and parallel
        # runs must stay structurally identical even when one of them
        # never hits (or never misses).
        obs.inc(f"cache.{kind}.hits", 1.0 if hit else 0.0)
        obs.inc(f"cache.{kind}.misses", 0.0 if hit else 1.0)


#: stat kind -> (store kind, format suffix)
_ARTIFACT_KINDS = {
    "measurement": ("measurements", ".npz"),
    "bank": ("banks", ".npz"),
    "summary": ("summaries", ".json"),
    "factor": ("factors", ".npz"),
}


class ExperimentCache:
    """Artifact cache for measurements, banks, summaries and factors.

    Serialisation lives here; byte storage is delegated to an
    :class:`ArtifactStore` backend.  ``ExperimentCache(root)`` keeps the
    historical single-argument form (a :class:`LocalDirStore` at that
    directory); pass ``store=`` for any other backend.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        *,
        store: Optional[ArtifactStore] = None,
    ):
        if (root is None) == (store is None):
            raise ValueError("pass exactly one of root or store")
        self.store = store if store is not None else LocalDirStore(root)
        #: Directory root for dir-backed stores (``None`` otherwise);
        #: kept for callers that co-locate reports next to the cache.
        self.root = getattr(self.store, "root", None)
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExperimentCache({self.store!r})"

    # -- paths ----------------------------------------------------------
    def _path(self, kind: str, key: str, suffix: str) -> Path:
        """Deprecated: artifacts are not guaranteed to live on a path.

        Kept as a shim for one release so external callers keep working
        against directory-backed stores; anything else has no paths to
        give out.  Go through the :class:`ArtifactStore` API instead.
        """
        warnings.warn(
            "ExperimentCache._path is deprecated; use the ArtifactStore "
            "get/put/exists/delete API",
            DeprecationWarning,
            stacklevel=2,
        )
        path_for = getattr(self.store, "path_for", None)
        if path_for is None:
            raise TypeError(
                f"{type(self.store).__name__} is not directory-backed; "
                "there is no filesystem path for artifacts"
            )
        return path_for(kind, key, suffix)

    # -- plumbing --------------------------------------------------------
    def _note_write(self, kind: str, nbytes: int, existed: bool) -> None:
        """Account one artifact write (bytes; overwrites = invalidations)."""
        obs.inc("cache.invalidations", 1.0 if existed else 0.0)
        obs.inc("cache.bytes_written", float(nbytes))
        log.debug("wrote %s artifact (%d bytes)", kind, nbytes)

    def _save(self, kind: str, key: str, data: bytes) -> None:
        store_kind, suffix = _ARTIFACT_KINDS[kind]
        existed = self.store.exists(store_kind, key, suffix)
        self.store.put(store_kind, key, suffix, data)
        self._note_write(kind, len(data), existed)

    def _load_guarded(self, kind: str, key: str, parse):
        """Load one artifact; corrupt *completed* artifacts are dropped.

        Any parse failure is a miss, but deletion is conditional on the
        store's completed-write marker: a torn/garbage artifact whose
        write *finished* (disks fill, copies truncate, formats drift) is
        deleted and counted in ``cache.corrupt`` so the slot heals,
        while an artifact still being written by another worker sharing
        the store is left alone (counted in ``cache.pending_writes``) —
        deleting it would clobber the concurrent writer and lose its
        compute.
        """
        store_kind, suffix = _ARTIFACT_KINDS[kind]
        data = self.store.get(store_kind, key, suffix)
        if data is None:
            if self.store.exists(store_kind, key, suffix):
                # Present but not yet complete: another worker is mid-put.
                obs.inc("cache.pending_writes")
            self.stats.record(kind, hit=False)
            return None
        try:
            value = parse(data)
        except Exception as exc:
            if self.store.is_complete(store_kind, key, suffix):
                log.warning(
                    "corrupt %s artifact %s (%s); dropping it and recomputing",
                    kind, key, exc,
                )
                obs.inc("cache.corrupt")
                self.store.delete(store_kind, key, suffix)
            else:
                log.debug(
                    "%s artifact %s unreadable but write still in flight; "
                    "leaving it (%s)", kind, key, exc,
                )
                obs.inc("cache.pending_writes")
            self.stats.record(kind, hit=False)
            return None
        self.stats.record(kind, hit=True)
        return value

    # -- measurements ---------------------------------------------------
    def load_measurement(self, key: str) -> Optional[WorkloadMeasurement]:
        """Return a cached measurement, or ``None`` on a miss."""

        def parse(data: bytes) -> WorkloadMeasurement:
            with np.load(io.BytesIO(data)) as archive:
                meta = json.loads(bytes(archive["__meta__"]).decode())
                return WorkloadMeasurement(
                    activity=archive["activity"],
                    rho=archive["rho"],
                    **meta,
                )

        return self._load_guarded("measurement", key, parse)

    def save_measurement(self, key: str, meas: WorkloadMeasurement) -> None:
        """Store one measurement (arrays binary, scalars as JSON)."""
        meta = {name: getattr(meas, name) for name in _MEAS_META_FIELDS}
        buffer = io.BytesIO()
        np.savez(
            buffer,
            activity=meas.activity,
            rho=meas.rho,
            __meta__=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        self._save("measurement", key, buffer.getvalue())

    # -- controller banks -----------------------------------------------
    def load_bank(self, key: str) -> Optional[ControllerBank]:
        """Return a cached trained bank, or ``None`` on a miss."""
        return self._load_guarded(
            "bank", key, lambda data: load_bank(io.BytesIO(data))
        )

    def save_bank(self, key: str, bank: ControllerBank) -> None:
        """Store one trained bank through :mod:`repro.ml.persistence`."""
        buffer = io.BytesIO()
        save_bank(bank, buffer)
        self._save("bank", key, buffer.getvalue())

    # -- correlation factors ---------------------------------------------
    def load_factor(self, key: str) -> Optional[np.ndarray]:
        """Return a cached correlation factor, or ``None`` on a miss."""

        def parse(data: bytes) -> np.ndarray:
            with np.load(io.BytesIO(data)) as archive:
                return archive["factor"]

        return self._load_guarded("factor", key, parse)

    def save_factor(self, key: str, factor: np.ndarray) -> None:
        """Store one correlation factor as a single-array archive."""
        buffer = io.BytesIO()
        np.savez(buffer, factor=np.asarray(factor))
        self._save("factor", key, buffer.getvalue())

    # -- suite summaries -------------------------------------------------
    def load_summary(self, key: str):
        """Return a cached :class:`SuiteSummary`, or ``None`` on a miss."""
        from .runner import SuiteSummary  # runner imports this module

        return self._load_guarded(
            "summary", key, lambda data: SuiteSummary.from_json(data.decode())
        )

    def save_summary(self, key: str, summary) -> None:
        """Store one suite summary in the shared JSON wire format."""
        self._save("summary", key, summary.to_json().encode())


class FactorStore:
    """Adapter giving :mod:`repro.variation.factors` durable storage.

    The variation layer sits below the engine, so it cannot import this
    module; instead it accepts any object with ``load(key_data)`` /
    ``save(key_data, factor)``.  This adapter closes the loop: it turns
    the physics-level key tuple into a content-addressed cache key and
    delegates to an :class:`ExperimentCache` — or, given a bare
    :class:`ArtifactStore`, routes through the same backend API the rest
    of the cache uses (fleet workers hand their shared store straight
    in).  Install it with::

        from repro import variation
        variation.set_store(FactorStore(cache))
    """

    def __init__(self, cache: Union[ExperimentCache, ArtifactStore]):
        if isinstance(cache, ArtifactStore):
            cache = ExperimentCache(store=cache)
        self.cache = cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FactorStore({self.cache!r})"

    def load(self, key_data: Sequence[Any]) -> Optional[np.ndarray]:
        """Return the stored factor for ``key_data``, or ``None``."""
        return self.cache.load_factor(factor_key(key_data))

    def save(self, key_data: Sequence[Any], factor: np.ndarray) -> None:
        """Persist ``factor`` under ``key_data``."""
        self.cache.save_factor(factor_key(key_data), factor)
