"""Content-addressed on-disk cache for hot Monte-Carlo artifacts.

The experiment engine reuses three expensive artifact classes across runs
and across worker processes:

* **Workload measurements** — the Eq 5 inputs produced by the trace-driven
  pipeline model, identical for every chip in the population.
* **Trained fuzzy-controller banks** — the manufacturer-site training of
  Appendix A, identical for every chip sharing a knob environment (stored
  through the :mod:`repro.ml.persistence` ``.npz`` round trip).
* **Suite summaries** — whole (environment, mode) cells of Figures 10-12,
  stored in the :meth:`repro.exps.runner.SuiteSummary.to_json` wire format.
* **Correlation factors** — the O(n^3) Cholesky factor of the VARIUS
  within-die correlation matrix, identical for every campaign sharing a
  die grid and ``phi`` (served into the process-wide memo of
  :mod:`repro.variation.factors` through :class:`FactorStore`).

Every artifact is addressed by a SHA-256 of its *inputs*: the calibration
constants, the runner scale knobs, the workload/phase fingerprint, and the
environment's capability set.  Changing any of them (e.g. a recalibrated
``systematic_delay_gain``) changes the key, so stale entries are never
served — invalidation is free and the cache directory can be shared by
concurrent processes (writes go through a temp file + atomic rename).

Layout under the cache root::

    measurements/<key>.npz   arrays + JSON metadata
    banks/<key>.npz          repro.ml.persistence archives
    summaries/<key>.json     SuiteSummary wire format
    factors/<key>.npz        correlation factors (single array)
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import tempfile
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

import numpy as np

from .. import obs
from ..calibration import Calibration
from ..core.environments import AdaptationMode, Environment
from ..core.optimizer import OptimizationSpec
from ..microarch.pipeline import CoreConfig
from ..microarch.simulator import WorkloadMeasurement
from ..microarch.workloads import WorkloadProfile
from ..ml.bank import ControllerBank
from ..ml.persistence import load_bank, save_bank

#: Bump when the stored artifact layout changes; keys include it, so old
#: cache directories keep working (their entries just stop being hit).
CACHE_FORMAT_VERSION = 1

log = logging.getLogger("repro.exps.cache")

_MEAS_META_FIELDS = (
    "name", "phase", "domain", "cpi_comp", "cpi_total",
    "l2_miss_rate", "overlap_factor", "ipc",
)


# ----------------------------------------------------------------------
# Stable fingerprinting.
# ----------------------------------------------------------------------
def jsonable(obj: Any) -> Any:
    """Convert nested dataclasses / enums / numpy values to JSON types.

    Dict keys are stringified (enum keys by their ``.name``) and sorted by
    :func:`json.dumps`, so equal objects always produce equal documents.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Enum):
        return obj.name
    if isinstance(obj, np.ndarray):
        return [jsonable(v) for v in obj.tolist()]
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, dict):
        return {
            (key.name if isinstance(key, Enum) else str(key)): jsonable(value)
            for key, value in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    return obj


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of an object's canonical JSON form."""
    document = json.dumps(jsonable(obj), sort_keys=True)
    return hashlib.sha256(document.encode()).hexdigest()


def measurement_key(
    calib: Calibration,
    profile: WorkloadProfile,
    config: CoreConfig,
    n_instructions: int,
    seed: int,
) -> str:
    """Cache key for one (workload-phase, pipeline-config) measurement."""
    return stable_hash({
        "version": CACHE_FORMAT_VERSION,
        "kind": "measurement",
        "calib": calib,
        "profile": profile,
        "config": config,
        "n_instructions": n_instructions,
        "seed": seed,
    })


def bank_key(
    calib: Calibration,
    spec: OptimizationSpec,
    n_examples: int,
    epochs: int,
    seed: int,
) -> str:
    """Cache key for one environment's trained controller bank."""
    return stable_hash({
        "version": CACHE_FORMAT_VERSION,
        "kind": "bank",
        "calib": calib,
        "spec": spec,
        "n_examples": n_examples,
        "epochs": epochs,
        "seed": seed,
    })


def factor_key(key_data: Sequence[Any]) -> str:
    """Cache key for one correlation factor.

    ``key_data`` is the tuple produced by
    :func:`repro.variation.factors.factor_key_data` — the grid geometry
    plus ``phi`` and the diagonal jitter, i.e. everything the factor
    depends on.
    """
    return stable_hash({
        "version": CACHE_FORMAT_VERSION,
        "kind": "factor",
        "key_data": list(key_data),
    })


def unit_key(cell_key: str, chip_index: int, core_index: int) -> str:
    """Derive one (chip, core) unit's coalescing key from its cell's key.

    The campaign service decomposes a :class:`~repro.exps.engine.RunSpec`
    into (environment, mode, chip, core) units; two jobs whose cells share
    a :func:`summary_key` therefore share every unit key, which is what
    lets the in-flight registry compute each unit exactly once across
    concurrent submissions.
    """
    return f"{cell_key}-{chip_index}-{core_index}"


def summary_key(
    calib: Calibration,
    runner_config: Any,
    core_config: CoreConfig,
    env: Environment,
    mode: AdaptationMode,
    workloads: Sequence[WorkloadProfile],
) -> str:
    """Cache key for a whole (environment, mode) suite summary."""
    return stable_hash({
        "version": CACHE_FORMAT_VERSION,
        "kind": "summary",
        "calib": calib,
        "runner_config": runner_config,
        "core_config": core_config,
        "env": env,
        "mode": mode,
        "workloads": list(workloads),
    })


# ----------------------------------------------------------------------
# The cache itself.
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters, per artifact kind."""

    hits: Dict[str, int] = dataclasses.field(
        default_factory=lambda: {
            "measurement": 0, "bank": 0, "summary": 0, "factor": 0,
        }
    )
    misses: Dict[str, int] = dataclasses.field(
        default_factory=lambda: {
            "measurement": 0, "bank": 0, "summary": 0, "factor": 0,
        }
    )

    def record(self, kind: str, hit: bool) -> None:
        (self.hits if hit else self.misses)[kind] += 1
        # Touch both counters (one with 0) so every run that accesses a
        # cache kind reports the same metric names — serial and parallel
        # runs must stay structurally identical even when one of them
        # never hits (or never misses).
        obs.inc(f"cache.{kind}.hits", 1.0 if hit else 0.0)
        obs.inc(f"cache.{kind}.misses", 0.0 if hit else 1.0)


class ExperimentCache:
    """Filesystem-backed store for measurements, banks and summaries."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.stats = CacheStats()
        for sub in ("measurements", "banks", "summaries", "factors"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExperimentCache({str(self.root)!r})"

    # -- paths ----------------------------------------------------------
    def _path(self, kind: str, key: str, suffix: str) -> Path:
        return self.root / kind / f"{key}{suffix}"

    @staticmethod
    def _atomic_replace(write, final: Path) -> None:
        """Write via a sibling temp file, then atomically rename.

        The temp file keeps the final suffix — ``np.savez`` silently
        appends ``.npz`` to any other name, which would leave the real
        temp file empty.
        """
        fd, tmp = tempfile.mkstemp(
            dir=str(final.parent), prefix=".tmp-", suffix=final.suffix
        )
        os.close(fd)
        try:
            write(Path(tmp))
            os.replace(tmp, final)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _note_write(self, kind: str, path: Path, existed: bool) -> None:
        """Account one artifact write (bytes; overwrites = invalidations)."""
        obs.inc("cache.invalidations", 1.0 if existed else 0.0)
        obs.inc("cache.bytes_written", float(path.stat().st_size))
        log.debug("wrote %s artifact %s", kind, path.name)

    def _load_guarded(self, kind: str, path: Path, parse):
        """Load one artifact; a corrupt/truncated file is a miss.

        A crash mid-write can't leave a torn file (writes are atomic), but
        disks fill, copies truncate, and formats drift — any parse failure
        deletes the bad artifact, bumps ``cache.corrupt``, and reports a
        miss so the caller simply recomputes instead of dying.
        """
        if not path.exists():
            self.stats.record(kind, hit=False)
            return None
        try:
            value = parse(path)
        except Exception as exc:
            log.warning(
                "corrupt %s artifact %s (%s); dropping it and recomputing",
                kind, path.name, exc,
            )
            obs.inc("cache.corrupt")
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing deleters
                pass
            self.stats.record(kind, hit=False)
            return None
        self.stats.record(kind, hit=True)
        return value

    # -- measurements ---------------------------------------------------
    def load_measurement(self, key: str) -> Optional[WorkloadMeasurement]:
        """Return a cached measurement, or ``None`` on a miss."""

        def parse(path: Path) -> WorkloadMeasurement:
            with np.load(path) as archive:
                meta = json.loads(bytes(archive["__meta__"]).decode())
                return WorkloadMeasurement(
                    activity=archive["activity"],
                    rho=archive["rho"],
                    **meta,
                )

        return self._load_guarded(
            "measurement", self._path("measurements", key, ".npz"), parse
        )

    def save_measurement(self, key: str, meas: WorkloadMeasurement) -> None:
        """Store one measurement (arrays binary, scalars as JSON)."""
        meta = {name: getattr(meas, name) for name in _MEAS_META_FIELDS}
        path = self._path("measurements", key, ".npz")
        existed = path.exists()
        self._atomic_replace(
            lambda tmp: np.savez(
                tmp,
                activity=meas.activity,
                rho=meas.rho,
                __meta__=np.frombuffer(
                    json.dumps(meta).encode(), dtype=np.uint8
                ),
            ),
            path,
        )
        self._note_write("measurement", path, existed)

    # -- controller banks -----------------------------------------------
    def load_bank(self, key: str) -> Optional[ControllerBank]:
        """Return a cached trained bank, or ``None`` on a miss."""
        return self._load_guarded(
            "bank", self._path("banks", key, ".npz"), load_bank
        )

    def save_bank(self, key: str, bank: ControllerBank) -> None:
        """Store one trained bank through :mod:`repro.ml.persistence`."""
        path = self._path("banks", key, ".npz")
        existed = path.exists()
        self._atomic_replace(lambda tmp: save_bank(bank, tmp), path)
        self._note_write("bank", path, existed)

    # -- correlation factors ---------------------------------------------
    def load_factor(self, key: str) -> Optional[np.ndarray]:
        """Return a cached correlation factor, or ``None`` on a miss."""

        def parse(path: Path) -> np.ndarray:
            with np.load(path) as archive:
                return archive["factor"]

        return self._load_guarded(
            "factor", self._path("factors", key, ".npz"), parse
        )

    def save_factor(self, key: str, factor: np.ndarray) -> None:
        """Store one correlation factor as a single-array archive."""
        path = self._path("factors", key, ".npz")
        existed = path.exists()
        self._atomic_replace(
            lambda tmp: np.savez(tmp, factor=np.asarray(factor)), path
        )
        self._note_write("factor", path, existed)

    # -- suite summaries -------------------------------------------------
    def load_summary(self, key: str):
        """Return a cached :class:`SuiteSummary`, or ``None`` on a miss."""
        from .runner import SuiteSummary  # runner imports this module

        return self._load_guarded(
            "summary",
            self._path("summaries", key, ".json"),
            lambda path: SuiteSummary.from_json(path.read_text()),
        )

    def save_summary(self, key: str, summary) -> None:
        """Store one suite summary in the shared JSON wire format."""
        path = self._path("summaries", key, ".json")
        text = summary.to_json()
        existed = path.exists()
        self._atomic_replace(lambda tmp: tmp.write_text(text), path)
        self._note_write("summary", path, existed)


class FactorStore:
    """Adapter giving :mod:`repro.variation.factors` durable storage.

    The variation layer sits below the engine, so it cannot import this
    module; instead it accepts any object with ``load(key_data)`` /
    ``save(key_data, factor)``.  This adapter closes the loop: it turns
    the physics-level key tuple into a content-addressed cache key and
    delegates to an :class:`ExperimentCache`.  Install it with::

        from repro import variation
        variation.set_store(FactorStore(cache))
    """

    def __init__(self, cache: ExperimentCache):
        self.cache = cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FactorStore({self.cache!r})"

    def load(self, key_data: Sequence[Any]) -> Optional[np.ndarray]:
        """Return the stored factor for ``key_data``, or ``None``."""
        return self.cache.load_factor(factor_key(key_data))

    def save(self, key_data: Sequence[Any], factor: np.ndarray) -> None:
        """Persist ``factor`` under ``key_data``."""
        self.cache.save_factor(factor_key(key_data), factor)
