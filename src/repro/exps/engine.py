"""Parallel Monte-Carlo execution engine behind ``ExperimentRunner.run``.

The paper's evaluation is embarrassingly parallel across the chip
population: every (chip, core) pair is adapted independently, sharing only
read-only inputs (workload measurements, trained controller banks).  The
engine shards the population across a :class:`~concurrent.futures.
ProcessPoolExecutor`.  Workers rebuild their cores locally from the
``(seed, chip_index)`` recipe — the Monte-Carlo population draw is
deterministic — so only light, picklable specs cross process boundaries:
a :class:`~repro.exps.runner.RunnerConfig`, a :class:`Calibration`,
:class:`Environment` values, and the :class:`~repro.exps.runner.
PhaseResult` record dicts coming back.

Heavy shared artifacts never ride the pipe.  Trained fuzzy banks are
written to the content-addressed disk cache (:mod:`repro.exps.cache`) by
the parent before dispatch and loaded by workers; when the caller did not
configure a cache, an ephemeral one is created for the duration of the
run.  Determinism is by construction: a worker executes exactly the same
per-(chip, core) unit function as the serial loop, and units are
reassembled in serial iteration order, so a parallel run is bit-identical
to the serial run at the same seed.
"""

from __future__ import annotations

import logging
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..core.environments import AdaptationMode, Environment
from ..microarch.workloads import WorkloadProfile
from .cache import ExperimentCache, summary_key

log = logging.getLogger("repro.exps.engine")


class UnitExecutionError(RuntimeError):
    """One (environment, mode, chip, core) unit of work failed.

    Raised instead of the worker's bare traceback so every consumer — the
    serial loop, the process-pool path, and the campaign service's
    supervised scheduler — sees *which* unit died.  The original
    exception rides along as ``__cause__``.
    """

    def __init__(
        self,
        env_name: str,
        mode_value: str,
        chip_index: int,
        core_index: int,
        cause: Optional[BaseException] = None,
    ):
        self.env_name = env_name
        self.mode_value = mode_value
        self.chip_index = chip_index
        self.core_index = core_index
        detail = f": {cause!r}" if cause is not None else ""
        super().__init__(
            f"unit (env={env_name}, mode={mode_value}, chip={chip_index}, "
            f"core={core_index}) failed{detail}"
        )

    @property
    def unit(self) -> Tuple[str, str, int, int]:
        """The failing unit's identity, as plain JSON-safe values."""
        return (self.env_name, self.mode_value, self.chip_index, self.core_index)


def iter_units(
    cells: Sequence[Tuple[Environment, AdaptationMode]],
    n_chips: int,
    cores_per_chip: int,
):
    """Yield the (env, mode, chip, core) units of a campaign, in order.

    This is the resumable decomposition shared by the process-pool path
    and the campaign service: summaries are reassembled by concatenating
    unit rows in exactly this order, which is what keeps parallel — and
    service-coalesced — results bit-identical to the serial loop.
    """
    for env, mode in cells:
        for chip_index in range(n_chips):
            for core_index in range(cores_per_chip):
                yield (env, mode, chip_index, core_index)


def run_unit_guarded(
    runner,
    env: Environment,
    mode: AdaptationMode,
    chip_index: int,
    core_index: int,
    workloads=None,
    bank=None,
):
    """``runner.run_unit`` with failures wrapped in :class:`UnitExecutionError`."""
    try:
        return runner.run_unit(
            env, mode, chip_index, core_index, workloads, bank=bank
        )
    except UnitExecutionError:
        raise
    except Exception as exc:
        raise UnitExecutionError(
            env.name, mode.value, chip_index, core_index, cause=exc
        ) from exc


def run_units_guarded(
    runner,
    env: Environment,
    mode: AdaptationMode,
    units: Sequence[Tuple[int, int]],
    workloads=None,
    bank=None,
):
    """Run a same-cell block of units, failures precisely attributed.

    The block goes through the population-batched path
    (:meth:`~repro.exps.runner.ExperimentRunner.run_units_batched`);
    any failure degrades to the per-unit serial loop — bit-identical by
    construction — so the :class:`UnitExecutionError` finally raised
    names the exact (chip, core) unit that is broken, not the block.
    """
    units = list(units)
    if runner.batch_units and units:
        try:
            return runner.run_units_batched(
                env, mode, units, workloads, bank=bank
            )
        except Exception:
            log.warning(
                "batched unit block (env=%s, mode=%s, %d units) failed; "
                "retrying serially",
                env.name, mode.value, len(units), exc_info=True,
            )
    return [
        run_unit_guarded(
            runner, env, mode, chip_index, core_index, workloads, bank=bank
        )
        for chip_index, core_index in units
    ]


def _chunk_units(
    units: Sequence[Tuple[int, int]], n_blocks: int
) -> List[List[Tuple[int, int]]]:
    """Split a cell's units into at most ``n_blocks`` contiguous blocks.

    Contiguity matters: concatenating block results in block order must
    reproduce the serial unit order exactly.
    """
    units = list(units)
    n_blocks = max(1, min(n_blocks, len(units)))
    size, extra = divmod(len(units), n_blocks)
    chunks = []
    start = 0
    for index in range(n_blocks):
        end = start + size + (1 if index < extra else 0)
        chunks.append(units[start:end])
        start = end
    return chunks


@dataclass(frozen=True)
class RunSpec:
    """One experiment campaign: a grid of (environment, mode) cells.

    Attributes:
        environments: Environments to run (a single one is accepted).
        modes: Adaptation modes; the grid is the cross product with
            ``environments``.  Non-variation environments (``NoVar``) are
            computed once and reported under every requested mode.
        workloads: Workload profiles (default: the runner's suite).
        parallelism: Worker processes; ``1`` runs in-process (serial).
        cache_dir: On-disk artifact cache root.  ``None`` falls back to
            the runner's configured cache (if any).
        use_cache: ``False`` disables the disk cache entirely (the
            ``--no-cache`` flag); in-memory memoisation still applies.
        shared_mem: Broadcast the sampled population and correlation
            factor to pool workers through one shared-memory segment
            (zero-copy) instead of having every worker rebuild them.
            Purely an execution knob — results are bit-identical either
            way, and any shared-memory failure silently falls back to
            the deterministic rebuild — so, like ``parallelism``, it
            stays outside the hashed cache keys.
    """

    environments: Tuple[Environment, ...]
    modes: Tuple[AdaptationMode, ...] = (AdaptationMode.EXH_DYN,)
    workloads: Optional[Tuple[WorkloadProfile, ...]] = None
    parallelism: int = 1
    cache_dir: Optional[str] = None
    use_cache: bool = True
    shared_mem: bool = True

    def __post_init__(self) -> None:
        envs = self.environments
        if isinstance(envs, Environment):
            envs = (envs,)
        object.__setattr__(self, "environments", tuple(envs))
        modes = self.modes
        if isinstance(modes, AdaptationMode):
            modes = (modes,)
        object.__setattr__(self, "modes", tuple(modes))
        if self.workloads is not None:
            object.__setattr__(self, "workloads", tuple(self.workloads))
        if not self.environments or not self.modes:
            raise ValueError("RunSpec needs at least one environment and mode")
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")

    @classmethod
    def from_settings(cls, settings, **overrides) -> "RunSpec":
        """Build a spec whose execution knobs come from a ``Settings``.

        This is the one sanctioned way to turn the runtime-knob bundle
        (:class:`repro.config.Settings`) into campaign execution fields —
        ``parallelism`` from ``jobs``, ``cache_dir``/``use_cache`` from the
        cache knobs, ``shared_mem`` — so call sites stop hand-rolling the
        mapping.  Campaign *content* (``environments``, ``modes``,
        ``workloads``) and any explicit execution override ride in through
        ``overrides``::

            spec = RunSpec.from_settings(settings, environments=(TS,))
        """
        fields = dict(
            parallelism=settings.jobs,
            cache_dir=settings.effective_cache_dir,
            use_cache=settings.cache_enabled,
            shared_mem=settings.shared_mem,
        )
        fields.update(overrides)
        return cls(**fields)

    def pairs(self) -> List[Tuple[Environment, AdaptationMode]]:
        """The (environment, mode) cells of the campaign, in grid order."""
        return [(env, mode) for env in self.environments for mode in self.modes]


@dataclass
class RunResult:
    """All suite summaries of one :class:`RunSpec` campaign."""

    spec: RunSpec
    summaries: Dict[Tuple[str, str], "SuiteSummary"] = field(default_factory=dict)

    def summary(
        self,
        env: Union[Environment, str],
        mode: Union[AdaptationMode, str, None] = None,
    ) -> "SuiteSummary":
        """Look up one cell; ``mode`` defaults to the spec's only mode."""
        env_name = env.name if isinstance(env, Environment) else env
        if mode is None:
            if len(self.spec.modes) != 1:
                raise ValueError("multiple modes in spec: pass mode explicitly")
            mode = self.spec.modes[0]
        mode_value = mode.value if isinstance(mode, AdaptationMode) else mode
        return self.summaries[(env_name, mode_value)]


# ----------------------------------------------------------------------
# Worker-side machinery.  Globals are per-process: the initializer runs
# once per worker and rebuilds the full runner from the light specs.
# ----------------------------------------------------------------------
_WORKER_RUNNER = None
_WORKER_BANK_CACHE = None
#: The attached shared-memory segment, if any.  The worker's population
#: arrays are views into its buffer, so the reference must stay alive for
#: the whole worker lifetime.
_WORKER_SHM = None


def _init_worker(
    config, calib, core_config, workloads, cache_root, bank_cache_root,
    obs_enabled, batch_phases=True, batch_units=True, shm_handle=None,
) -> None:
    """Build this worker's private runner (population, cores, caches).

    ``cache_root`` is the user-facing artifact cache (``None`` when the
    caller disabled caching), while ``bank_cache_root`` is the bank
    transport — possibly an ephemeral directory — that heavy trained
    banks always travel through.  Keeping them separate means
    ``--no-cache`` runs really do skip the measurement/summary cache in
    workers, so serial and parallel runs produce the same cache counters.
    """
    global _WORKER_RUNNER, _WORKER_BANK_CACHE, _WORKER_SHM
    from ..variation import prime_factor
    from .runner import ExperimentRunner
    from .shm import attach

    # Fork-started workers inherit the parent's metric state; start from a
    # clean slate so drained deltas only ever contain this worker's work.
    obs.metrics_registry().clear()
    if obs_enabled:
        obs.enable()
    else:
        obs.disable()
    cache = ExperimentCache(cache_root) if cache_root else None
    _WORKER_BANK_CACHE = (
        ExperimentCache(bank_cache_root) if bank_cache_root else None
    )
    population = None
    if shm_handle is not None:
        try:
            population, factor, _WORKER_SHM = attach(shm_handle)
            if factor is not None:
                prime_factor(
                    factor, shm_handle.grid, shm_handle.params.phi
                )
        except Exception:
            # Any transport failure degrades to the deterministic
            # rebuild below — slower, never wrong.
            log.warning(
                "shared-memory attach failed; rebuilding population",
                exc_info=True,
            )
            population = None
    obs.inc("engine.shm.attached", 1.0 if population is not None else 0.0)
    obs.inc("engine.shm.rebuilt", 0.0 if population is not None else 1.0)
    _WORKER_RUNNER = ExperimentRunner(
        config,
        calib,
        workloads=workloads,
        core_config=core_config,
        cache=cache,
        batch_phases=batch_phases,
        batch_units=batch_units,
        population=population,
    )


def _run_unit(env, mode, chip_index, core_index):
    """Run one (environment, mode, chip, core) unit.

    Returns the :class:`PhaseResult` record dicts plus this worker's
    metric *delta* since the previous unit — the parent merges the deltas
    into the campaign registry, giving fleet-wide totals.
    """
    bank = None
    if mode is AdaptationMode.FUZZY_DYN and _WORKER_BANK_CACHE is not None:
        bank = _WORKER_RUNNER.bank_for(env, cache=_WORKER_BANK_CACHE)
    rows = _WORKER_RUNNER.run_unit(env, mode, chip_index, core_index, bank=bank)
    return [row.to_dict() for row in rows], obs.metrics_registry().drain()


def _run_unit_block(env, mode, units):
    """Run one contiguous block of same-cell units in a pool worker.

    The block rides the population-batched path; a batched failure
    degrades to the bit-identical per-unit loop inside the worker (plain
    exceptions only — :class:`UnitExecutionError` never crosses the
    process boundary, the parent re-wraps).  Returns each unit's record
    dicts, in unit order, plus the worker's metric delta.
    """
    bank = None
    if mode is AdaptationMode.FUZZY_DYN and _WORKER_BANK_CACHE is not None:
        bank = _WORKER_RUNNER.bank_for(env, cache=_WORKER_BANK_CACHE)
    units = list(units)
    try:
        unit_rows = _WORKER_RUNNER.run_units_batched(env, mode, units, bank=bank)
    except Exception:
        log.warning(
            "batched unit block (env=%s, mode=%s, %d units) failed in "
            "worker; retrying serially",
            env.name, mode.value, len(units), exc_info=True,
        )
        unit_rows = [
            _WORKER_RUNNER.run_unit(env, mode, chip_index, core_index, bank=bank)
            for chip_index, core_index in units
        ]
    return (
        [[row.to_dict() for row in rows] for rows in unit_rows],
        obs.metrics_registry().drain(),
    )


# ----------------------------------------------------------------------
# Parent-side orchestration.
# ----------------------------------------------------------------------
def _resolve_cache(runner, spec: RunSpec) -> Optional[ExperimentCache]:
    if not spec.use_cache:
        return None
    if spec.cache_dir is not None:
        return ExperimentCache(spec.cache_dir)
    return runner.cache


def execute(runner, spec: RunSpec) -> RunResult:
    """Run a campaign on a runner: cache lookups, shard, gather, store.

    All instrumentation of the campaign — cache hit/miss counters, span
    timings from the serial loop, merged worker deltas — accumulates in a
    campaign-local registry, whose snapshot is attached to every summary
    computed by this call (``SuiteSummary.metrics``) and then folded into
    the ambient process registry (what ``--metrics-out`` writes).
    """
    from .runner import PhaseResult, summarise

    workloads = (
        list(spec.workloads) if spec.workloads is not None else list(runner.workloads)
    )
    campaign = obs.MetricsRegistry()
    result = RunResult(spec=spec)
    computed_cells: List[Tuple[str, str]] = []
    with obs.scoped(campaign), obs.span("engine.execute"):
        cache = _resolve_cache(runner, spec)
        pending: List[Tuple[Environment, AdaptationMode, Optional[str]]] = []
        novar_memo: Dict[str, "SuiteSummary"] = {}
        obs.set_gauge("engine.jobs", spec.parallelism)
        obs.inc("engine.cells_requested", len(spec.pairs()))

        for env, mode in spec.pairs():
            cell = (env.name, mode.value)
            if cell in result.summaries:
                continue
            key = (
                summary_key(
                    runner.calib, runner.config, runner.core_config, env, mode,
                    workloads,
                )
                if cache is not None
                else None
            )
            if cache is not None:
                hit = cache.load_summary(key)
                if hit is not None:
                    result.summaries[cell] = hit
                    obs.emit_event("cell", env=cell[0], mode=cell[1],
                                   source="cache")
                    continue
            if not env.variation:
                # NoVar has no population dimension: compute once, serially.
                if env.name not in novar_memo:
                    novar_memo[env.name] = runner.novar_summary(workloads)
                result.summaries[cell] = novar_memo[env.name]
                computed_cells.append(cell)
                if cache is not None:
                    cache.save_summary(key, result.summaries[cell])
                continue
            pending.append((env, mode, key))

        if pending:
            n_units = (
                len(pending) * runner.config.n_chips * runner.config.cores_per_chip
            )
            obs.set_gauge("engine.units", n_units)
            obs.set_gauge("engine.workers", min(spec.parallelism, n_units))
            log.info(
                "running %d cells (%d units) with parallelism=%d",
                len(pending), n_units, spec.parallelism,
            )
            start = time.perf_counter()
            if spec.parallelism > 1:
                computed = _execute_parallel(
                    runner, spec, pending, workloads, cache, campaign
                )
            else:
                # Structural parity with the parallel path: the same
                # metric names exist in a serial run, zero-valued — no
                # segment is published and the factor memo is not
                # consulted when units run in-process.
                obs.set_gauge("engine.shm_bytes", 0.0)
                obs.inc("engine.shm.attached", 0.0)
                obs.inc("engine.shm.rebuilt", 0.0)
                obs.inc("variation.factor.hits", 0.0)
                obs.inc("variation.factor.misses", 0.0)
                per_cell: Dict[Tuple[str, str], List[PhaseResult]] = {}
                for env, mode, _ in pending:
                    # One block per cell: all of its (chip, core) units
                    # advance through one population-batched program
                    # (per-unit loop when ``runner.batch_units`` is off).
                    cell_units = [
                        (chip_index, core_index)
                        for chip_index in range(runner.config.n_chips)
                        for core_index in range(runner.config.cores_per_chip)
                    ]
                    unit_rows = run_units_guarded(
                        runner, env, mode, cell_units, workloads
                    )
                    for rows in unit_rows:
                        per_cell.setdefault(
                            (env.name, mode.value), []
                        ).extend(rows)
                computed = {
                    cell: summarise(rows) for cell, rows in per_cell.items()
                }
            elapsed = time.perf_counter() - start
            obs.inc("engine.compute_seconds", elapsed)
            if elapsed > 0.0:
                obs.set_gauge("engine.units_per_second", n_units / elapsed)
            for env, mode, key in pending:
                cell = (env.name, mode.value)
                summary = computed[cell]
                result.summaries[cell] = summary
                computed_cells.append(cell)
                obs.emit_event("cell", env=cell[0], mode=cell[1],
                               source="computed")
                if cache is not None:
                    cache.save_summary(key, summary)

    # Attach the fleet-wide campaign snapshot to every summary this call
    # actually computed (cache hits keep whatever metrics they were saved
    # with), then fold the campaign into the ambient process registry.
    if obs.enabled():
        metrics_doc = campaign.to_dict()
        for cell in computed_cells:
            result.summaries[cell].metrics = metrics_doc
        obs.metrics_registry().merge(campaign)
    return result


class SupervisedExecutor:
    """A supervised process pool executing campaign units.

    Owns a :class:`~concurrent.futures.ProcessPoolExecutor` whose workers
    are initialised from a runner's light specs (:func:`_init_worker`),
    submits ``_run_unit`` shards, and reassembles results in submission
    order.  A worker exception is re-raised as
    :class:`UnitExecutionError` carrying the failing unit's identity
    instead of a bare pool traceback; worker metric deltas are merged
    into the campaign registry so ``--jobs N`` totals stay fleet-wide.
    """

    def __init__(
        self,
        runner,
        workloads: Sequence[WorkloadProfile],
        cache: Optional[ExperimentCache],
        transport: ExperimentCache,
        max_workers: int,
        shm_handle=None,
    ):
        self._pool = ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(
                runner.config,
                runner.calib,
                runner.core_config,
                tuple(workloads),
                str(cache.root) if cache is not None else None,
                str(transport.root),
                obs.enabled(),
                runner.batch_phases,
                runner.batch_units,
                shm_handle,
            ),
        )

    def __enter__(self) -> "SupervisedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        self._pool.shutdown()

    def run_units(
        self,
        units: Sequence[Tuple[Environment, AdaptationMode, int, int]],
        campaign: obs.MetricsRegistry,
    ) -> List[List["PhaseResult"]]:
        """Execute units concurrently; return each unit's rows, in order."""
        from .runner import PhaseResult

        futures = {
            self._pool.submit(_run_unit, *unit): index
            for index, unit in enumerate(units)
        }
        unit_rows: List[Optional[List[PhaseResult]]] = [None] * len(units)
        for future, index in futures.items():
            env, mode, chip_index, core_index = units[index]
            try:
                records, metrics_delta = future.result()
            except Exception as exc:
                raise UnitExecutionError(
                    env.name, mode.value, chip_index, core_index, cause=exc
                ) from exc
            unit_rows[index] = [
                PhaseResult.from_dict(record) for record in records
            ]
            campaign.merge_dict(metrics_delta)
        return unit_rows

    def run_unit_blocks(
        self,
        blocks: Sequence[
            Tuple[Environment, AdaptationMode, Sequence[Tuple[int, int]]]
        ],
        campaign: obs.MetricsRegistry,
    ) -> List[List[List["PhaseResult"]]]:
        """Execute unit blocks concurrently; per-unit rows, in order.

        A failing block is reported as a :class:`UnitExecutionError`
        naming the block's first unit (the worker already logged — and
        serially retried — the precise unit before giving up).
        """
        from .runner import PhaseResult

        futures = {
            self._pool.submit(_run_unit_block, env, mode, tuple(units)): index
            for index, (env, mode, units) in enumerate(blocks)
        }
        block_rows: List[Optional[List[List[PhaseResult]]]] = (
            [None] * len(blocks)
        )
        for future, index in futures.items():
            env, mode, units = blocks[index]
            try:
                unit_records, metrics_delta = future.result()
            except Exception as exc:
                chip_index, core_index = units[0]
                raise UnitExecutionError(
                    env.name, mode.value, chip_index, core_index, cause=exc
                ) from exc
            block_rows[index] = [
                [PhaseResult.from_dict(record) for record in records]
                for records in unit_records
            ]
            campaign.merge_dict(metrics_delta)
        return block_rows


def _execute_parallel(
    runner,
    spec: RunSpec,
    pending: Sequence[Tuple[Environment, AdaptationMode, Optional[str]]],
    workloads: Sequence[WorkloadProfile],
    cache: Optional[ExperimentCache],
    campaign: obs.MetricsRegistry,
) -> Dict[Tuple[str, str], "SuiteSummary"]:
    """Shard pending cells over a supervised pool; reassemble in order."""
    from .runner import summarise

    # Banks must reach the workers; they are far too heavy for the pipe,
    # so they travel through the disk cache (an ephemeral one if needed).
    ephemeral = None
    transport = cache
    if transport is None:
        ephemeral = tempfile.TemporaryDirectory(prefix="eval-repro-cache-")
        transport = ExperimentCache(ephemeral.name)
    shared = _publish_population(runner) if spec.shared_mem else None
    obs.set_gauge(
        "engine.shm_bytes", float(shared.nbytes) if shared is not None else 0.0
    )
    try:
        for env, mode, _ in pending:
            if mode is AdaptationMode.FUZZY_DYN:
                runner.bank_for(env, cache=transport)

        units = list(iter_units(
            [(env, mode) for env, mode, _ in pending],
            runner.config.n_chips,
            runner.config.cores_per_chip,
        ))
        # Honour the requested parallelism (the caller knows the machine);
        # never spin up more workers than there are units to run.
        max_workers = min(spec.parallelism, len(units))
        # Each cell's unit list is cut into contiguous blocks — one per
        # worker when population batching is on, one per unit when it is
        # off — so every worker amortises its share of the population
        # into one batched program.  Blocks are generated (and their
        # results concatenated) in cell-then-unit order, which is what
        # keeps parallel results bit-identical to the serial loop.
        blocks: List[
            Tuple[Environment, AdaptationMode, List[Tuple[int, int]]]
        ] = []
        for env, mode, _ in pending:
            cell_units = [
                (chip_index, core_index)
                for chip_index in range(runner.config.n_chips)
                for core_index in range(runner.config.cores_per_chip)
            ]
            if runner.batch_units:
                chunks = _chunk_units(cell_units, max_workers)
            else:
                chunks = [[unit] for unit in cell_units]
            for chunk in chunks:
                blocks.append((env, mode, chunk))
        log.debug(
            "sharding %d units (%d blocks) across %d workers",
            len(units), len(blocks), max_workers,
        )
        with SupervisedExecutor(
            runner, workloads, cache, transport, max_workers,
            shm_handle=shared.handle if shared is not None else None,
        ) as pool:
            block_rows = pool.run_unit_blocks(blocks, campaign)

        per_cell: Dict[Tuple[str, str], List["PhaseResult"]] = {}
        for (env, mode, _units), unit_rows in zip(blocks, block_rows):
            for rows in unit_rows:
                per_cell.setdefault((env.name, mode.value), []).extend(rows)
        return {cell: summarise(rows) for cell, rows in per_cell.items()}
    finally:
        if shared is not None:
            # The pool is down (SupervisedExecutor.__exit__ ran), so no
            # worker still maps the segment; release it.
            shared.close()
            shared.unlink()
        if ephemeral is not None:
            ephemeral.cleanup()


def _publish_population(runner):
    """Publish the runner's population (+factor) to shared memory.

    Returns the parent-side :class:`~repro.exps.shm.SharedPopulation`
    owner, or ``None`` if anything about the platform refuses (no
    ``/dev/shm``, size limits, heterogeneous chips): transport is an
    optimisation, and workers fall back to the deterministic rebuild.
    """
    from ..variation import get_factor
    from .shm import SharedPopulation

    try:
        population = runner.population
        chip = population[0]
        factor = get_factor(chip.grid, chip.params.phi)
        return SharedPopulation.publish(population, factor)
    except Exception:
        log.warning(
            "shared-memory publish failed; workers will rebuild",
            exc_info=True,
        )
        return None
