"""Figure 7(d): the EVAL area-overhead table."""

from __future__ import annotations

from typing import List

from ..mitigation.area import AreaBudget, area_budget


def run_area_table(include_abb: bool = False) -> AreaBudget:
    """Compute the area budget (preferred configuration omits ABB)."""
    return area_budget(include_abb=include_abb)


def area_rows(budget: AreaBudget) -> List[List[str]]:
    """Render the Figure 7(d) rows plus the total."""
    rows = [
        [name, f"{percent:.1f}"]
        for name, percent in budget.as_percent().items()
    ]
    rows.append(["Total", f"{100 * budget.total:.1f}"])
    return rows
