"""EVAL vs dynamic retiming: the Section 7 comparison, quantified.

The paper argues EVAL beats ReCycle-style dynamic retiming because it
(1) trades error rate for frequency instead of staying safe, (2) actually
changes stage delays via fine-grain ASV/ABB instead of only redistributing
slack, and (3) composes multiple techniques.  This experiment runs both on
the same chip population and reports the mean frequency ladder:
Baseline -> Retiming -> EVAL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..calibration import DEFAULT_CALIBRATION, Calibration
from ..chip.chip import build_core
from ..core.adaptation import optimize_phase
from ..core.environments import BASELINE, TS_ASV_Q
from ..microarch.pipeline import DEFAULT_CORE_CONFIG
from ..microarch.simulator import measure_workload
from ..microarch.workloads import spec2000_like_suite
from ..mitigation.retiming import retime
from ..thermal.solver import solve_temperatures
from ..timing.paths import stage_delays
from ..variation.population import VariationModel


@dataclass(frozen=True)
class RetimingComparison:
    """Mean relative frequencies of the three schemes."""

    baseline_f_rel: float
    retimed_f_rel: float
    eval_f_rel: float

    @property
    def retiming_gain(self) -> float:
        """Retiming's gain over the rigid baseline (paper: 10-20%)."""
        return self.retimed_f_rel / self.baseline_f_rel - 1.0

    @property
    def eval_gain(self) -> float:
        """EVAL's gain over the rigid baseline (paper: ~40-56%)."""
        return self.eval_f_rel / self.baseline_f_rel - 1.0

    def rows(self) -> List[List[str]]:
        """Text-table rows for the three schemes."""
        return [
            ["Baseline (rigid clock)", f"{self.baseline_f_rel:.3f}", "-"],
            [
                "Dynamic retiming",
                f"{self.retimed_f_rel:.3f}",
                f"+{100 * self.retiming_gain:.0f}%",
            ],
            [
                "EVAL (TS+ASV+Q)",
                f"{self.eval_f_rel:.3f}",
                f"+{100 * self.eval_gain:.0f}%",
            ],
        ]


def run_retiming_comparison(
    n_chips: int = 8,
    seed: int = 7,
    calib: Calibration = DEFAULT_CALIBRATION,
    workload_index: int = 0,
) -> RetimingComparison:
    """Run Baseline / retiming / EVAL on the same chips and workload."""
    workload = spec2000_like_suite()[workload_index]
    meas = measure_workload(workload, DEFAULT_CORE_CONFIG)
    meas_resized = measure_workload(
        workload, DEFAULT_CORE_CONFIG.with_resized_queue(workload.domain)
    )

    base_f, retimed_f, eval_f = [], [], []
    for chip in VariationModel().population(n_chips, seed=seed):
        core = build_core(chip, 0, calib=calib)
        base_f.append(optimize_phase(core, BASELINE, meas).f_core)

        n = core.n_subsystems
        thermal = solve_temperatures(
            core,
            np.full(n, calib.vdd_nominal),
            np.zeros(n),
            base_f[-1],
            meas.activity,
            calib.t_heatsink_max,
        )
        delays = stage_delays(
            core, np.full(n, calib.vdd_nominal), np.zeros(n), thermal.temperature
        )
        retimed_f.append(retime(core, delays).f_retimed)

        eval_f.append(
            optimize_phase(core, TS_ASV_Q, meas, meas_resized).f_core
        )

    return RetimingComparison(
        baseline_f_rel=float(np.mean(base_f)) / calib.f_nominal,
        retimed_f_rel=float(np.mean(retimed_f)) / calib.f_nominal,
        eval_f_rel=float(np.mean(eval_f)) / calib.f_nominal,
    )
