"""Variation-severity sensitivity: how the headline results scale.

The paper's motivation cites Bowman et al. [2]: parameter variation may
wipe out much of a technology generation's frequency gains.  This
experiment sweeps the variation magnitude (``Vt``'s sigma/mu, with
``Leff`` tracking at half, as in Figure 7(a)) and the correlation range
``phi``, and reports how much frequency the Baseline loses and how much
EVAL recovers at each severity — the crossover analysis a designer would
run before committing to the EVAL transistor budget (checker + replicas,
10.6% area).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..calibration import DEFAULT_CALIBRATION, Calibration
from ..chip.chip import build_core
from ..core.adaptation import optimize_phase
from ..core.environments import BASELINE, TS_ASV_Q
from ..microarch.pipeline import DEFAULT_CORE_CONFIG
from ..microarch.simulator import measure_workload
from ..microarch.workloads import spec2000_like_suite
from ..variation.grid import DieGrid
from ..variation.maps import VariationParams
from ..variation.population import VariationModel


@dataclass(frozen=True)
class SensitivityPoint:
    """Results at one variation severity."""

    vt_sigma_rel: float
    phi: float
    baseline_f_rel: float
    eval_f_rel: float

    @property
    def recovered_fraction(self) -> float:
        """Share of the variation frequency loss that EVAL recovers."""
        lost = 1.0 - self.baseline_f_rel
        if lost <= 0.0:
            return 1.0
        return min(1.0, (self.eval_f_rel - self.baseline_f_rel) / lost)


@dataclass
class SensitivityResult:
    """A sweep over variation severities."""

    points: List[SensitivityPoint]

    def rows(self) -> List[List[str]]:
        """Text-table rows: severity, baseline, EVAL, recovery."""
        return [
            [
                f"{p.vt_sigma_rel:.3f}",
                f"{p.phi:.2f}",
                f"{p.baseline_f_rel:.3f}",
                f"{p.eval_f_rel:.3f}",
                f"{100 * p.recovered_fraction:.0f}%",
            ]
            for p in self.points
        ]


def run_sensitivity(
    sigma_levels: Sequence[float] = (0.045, 0.09, 0.135),
    phi_levels: Sequence[float] = (0.5,),
    n_chips: int = 6,
    seed: int = 5,
    calib: Calibration = DEFAULT_CALIBRATION,
    workload_index: int = 0,
    grid: Optional[DieGrid] = None,
) -> SensitivityResult:
    """Sweep variation severity; return Baseline vs EVAL frequencies.

    ``sigma_levels`` are total ``Vt`` sigma/mu values (the paper's setting
    is 0.09); ``Leff`` tracks at half, as in Figure 7(a).
    """
    workload = spec2000_like_suite()[workload_index]
    meas = measure_workload(workload, DEFAULT_CORE_CONFIG)
    meas_resized = measure_workload(
        workload, DEFAULT_CORE_CONFIG.with_resized_queue(workload.domain)
    )
    grid = grid or DieGrid(nx=24, ny=24)

    points = []
    for phi in phi_levels:
        for sigma in sigma_levels:
            params = VariationParams(
                vt_sigma_rel=sigma, leff_sigma_rel=sigma / 2.0, phi=phi
            )
            model = VariationModel(grid=grid, params=params)
            base_f, eval_f = [], []
            for chip in model.population(n_chips, seed=seed):
                core = build_core(chip, 0, calib=calib)
                base_f.append(
                    optimize_phase(core, BASELINE, meas).f_core
                )
                eval_f.append(
                    optimize_phase(core, TS_ASV_Q, meas, meas_resized).f_core
                )
            points.append(
                SensitivityPoint(
                    vt_sigma_rel=sigma,
                    phi=phi,
                    baseline_f_rel=float(np.mean(base_f)) / calib.f_nominal,
                    eval_f_rel=float(np.mean(eval_f)) / calib.f_nominal,
                )
            )
    return SensitivityResult(points=points)
