"""The Figures 10-12 computation: every environment x adaptation mode.

One :class:`LadderResult` holds the frequency / performance / power
summaries for Baseline, NoVar, and the six adaptive environments under
Static / Fuzzy-Dyn / Exh-Dyn — the data behind all three bar charts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import Settings
from ..core.environments import (
    ADAPTIVE_ENVIRONMENTS,
    BASELINE,
    NOVAR,
    AdaptationMode,
    Environment,
)
from .engine import RunSpec
from .runner import ExperimentRunner, RunnerConfig, SuiteSummary

#: The three bars per environment in Figures 10-12.
MODES = (AdaptationMode.STATIC, AdaptationMode.FUZZY_DYN, AdaptationMode.EXH_DYN)


@dataclass
class LadderResult:
    """All Figure 10-12 numbers for one run."""

    baseline: SuiteSummary
    novar: SuiteSummary
    entries: Dict[Tuple[str, str], SuiteSummary] = field(default_factory=dict)
    environments: List[Environment] = field(default_factory=list)

    def summary(self, env: Environment, mode: AdaptationMode) -> SuiteSummary:
        """Look up one (environment, mode) cell."""
        return self.entries[(env.name, mode.value)]

    def frequency_rows(self) -> List[List[str]]:
        """Figure 10 rows: relative frequency per environment and mode."""
        return self._rows(lambda s: s.f_rel, f"{self.baseline.f_rel:.3f}", "1.000")

    def performance_rows(self) -> List[List[str]]:
        """Figure 11 rows: relative performance."""
        return self._rows(
            lambda s: s.perf_rel, f"{self.baseline.perf_rel:.3f}", "1.000"
        )

    def power_rows(self) -> List[List[str]]:
        """Figure 12 rows: watts per processor (core + L1 + L2 + checker)."""
        return self._rows(
            lambda s: s.power,
            f"{self.baseline.power:.1f}",
            f"{self.novar.power:.1f}",
            fmt="{:.1f}",
        )

    def _rows(self, metric, baseline_str, novar_str, fmt="{:.3f}"):
        rows = []
        for env in self.environments:
            row = [env.name]
            for mode in MODES:
                row.append(fmt.format(metric(self.summary(env, mode))))
            rows.append(row)
        rows.append(["Baseline", baseline_str, "-", "-"])
        rows.append(["NoVar", novar_str, "-", "-"])
        return rows


def run_ladder(
    runner: Optional[ExperimentRunner] = None,
    environments: Optional[Sequence[Environment]] = None,
    modes: Sequence[AdaptationMode] = MODES,
    parallelism: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    settings: Optional[Settings] = None,
    shared_mem: bool = True,
) -> LadderResult:
    """Run the full Figures 10-12 grid.

    Args:
        runner: Pre-built runner (scale knobs); a default-config runner is
            created when omitted.
        environments: Environments to include (default: the six adaptive
            environments of Table 1).
        modes: Adaptation modes (default: all three bars).
        parallelism: Worker processes for the Monte-Carlo grid (the
            ``--jobs`` flag); 1 runs serially.
        cache_dir: On-disk artifact cache (the ``--cache-dir`` flag);
            ``None`` uses the runner's configured cache, if any.
        use_cache: ``False`` disables the disk cache (``--no-cache``).
        settings: A :class:`repro.config.Settings` bundle; when given it
            overrides ``parallelism``, ``cache_dir``, ``use_cache`` and
            ``shared_mem``.
        shared_mem: Broadcast the population to pool workers over shared
            memory (``--shared-mem``); bit-identical either way.
    """
    if settings is None:
        # Legacy per-knob arguments: fold them into a Settings bundle so
        # RunSpec construction has exactly one source of truth.
        settings = Settings(
            jobs=parallelism,
            cache_dir=cache_dir,
            cache_enabled=use_cache,
            shared_mem=shared_mem,
        )
    runner = runner or ExperimentRunner(
        RunnerConfig(), batch_phases=settings.batch_phases
    )
    environments = (
        list(environments) if environments is not None else list(ADAPTIVE_ENVIRONMENTS)
    )
    grid = runner.run(
        RunSpec.from_settings(
            settings,
            environments=tuple(environments),
            modes=tuple(modes),
        )
    )
    anchors = runner.run(
        RunSpec.from_settings(
            settings,
            environments=(BASELINE, NOVAR),
            modes=(AdaptationMode.EXH_DYN,),
        )
    )
    result = LadderResult(
        baseline=anchors.summary(BASELINE, AdaptationMode.EXH_DYN),
        novar=anchors.summary(NOVAR, AdaptationMode.EXH_DYN),
        environments=environments,
    )
    result.entries.update(grid.summaries)
    return result
