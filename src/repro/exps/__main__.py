"""Command-line entry point: regenerate any paper figure/table.

Usage::

    python -m repro.exps fig1|fig2|fig8|fig9|fig10|fig11|fig12|fig13|table2|area
    python -m repro.exps fig10 --chips 20 --cores 2
    python -m repro.exps fig10 fig11 --chips 100 --cores 4 --jobs 8 \
        --cache-dir ~/.cache/eval-repro
    python -m repro.exps dse run --spec sweep.json --out sweep-out/

``dse`` delegates to the design-space-exploration CLI
(:mod:`repro.exps.dse.cli`: declarative sweeps -> campaign service ->
Pareto analytics).

Figures 10-12 share one ladder computation; requesting several of them in
one invocation reuses it.  ``--jobs N`` shards the Monte-Carlo population
across N worker processes (results are bit-identical to ``--jobs 1``);
``--cache-dir`` persists measurements, trained fuzzy banks, and suite
summaries across invocations; ``--no-cache`` disables the disk cache.
``--log-level/--log-json`` control the ``repro`` logger and
``--metrics-out PATH`` writes the merged fleet-wide metrics registry as
JSON at exit.  ``--service HOST:PORT`` delegates the ladder targets to a
running campaign daemon (``python -m repro.serve daemon``) instead of
computing them in-process.  Every flag's default comes from the
corresponding ``EVAL_REPRO_*`` environment variable (see
:mod:`repro.config`).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .. import __version__, obs
from ..config import Settings
from .area_table import area_rows, run_area_table
from .fig1_paths import run_fig1
from .fig2_taxonomy import run_fig2
from .fig8_tradeoff import run_fig8
from .fig9_surfaces import run_fig9
from .fig13_outcomes import OUTCOME_ORDER, run_fig13
from .ladder import run_ladder
from .reporting import format_series, format_table
from .retiming_comparison import run_retiming_comparison
from .runner import ExperimentRunner
from .sensitivity import run_sensitivity
from .table2_accuracy import run_table2

LADDER_TARGETS = {"fig10", "fig11", "fig12"}
ALL_TARGETS = [
    "fig1", "fig2", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "table2", "area", "retiming", "sensitivity",
]


def _print_ladder(result, target: str) -> None:
    headers = ["Environment", "Static", "Fuzzy-Dyn", "Exh-Dyn"]
    if target == "fig10":
        print(format_table("Fig 10: relative frequency", headers,
                           result.frequency_rows()))
    elif target == "fig11":
        print(format_table("Fig 11: relative performance", headers,
                           result.performance_rows()))
    else:
        print(format_table("Fig 12: power (W)", headers, result.power_rows()))


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "dse":
        from .dse.cli import main as dse_main

        return dse_main(argv[1:])
    env_defaults = Settings.from_env()
    parser = argparse.ArgumentParser(
        prog="python -m repro.exps",
        description="Regenerate EVAL paper figures/tables.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument("targets", nargs="+", choices=ALL_TARGETS + ["all"])
    parser.add_argument(
        "--service",
        default=env_defaults.service_addr,
        metavar="HOST:PORT",
        help="delegate the ladder targets (fig10-12) to a running "
             "campaign daemon (default: $EVAL_REPRO_SERVICE)",
    )
    parser.add_argument("--chips", type=int, default=env_defaults.chips)
    parser.add_argument("--cores", type=int, default=env_defaults.cores)
    parser.add_argument(
        "--fc-examples", type=int, default=env_defaults.fc_examples
    )
    parser.add_argument("--seed", type=int, default=env_defaults.seed)
    Settings.add_cli_arguments(parser, env_defaults)
    args = parser.parse_args(argv)
    try:
        settings = Settings.from_args(args, base=env_defaults)
    except ValueError as exc:
        parser.error(str(exc))
    settings.configure()

    targets = ALL_TARGETS if "all" in args.targets else args.targets
    runner = None
    ladder = None

    def get_runner():
        nonlocal runner
        if runner is None:
            runner = ExperimentRunner.from_settings(settings)
        return runner

    for target in targets:
        print(f"\n=== {target} ===")
        if target in LADDER_TARGETS:
            if ladder is None:
                if settings.service_addr:
                    from ..serve import run_ladder_remote

                    ladder = run_ladder_remote(settings.service_addr)
                else:
                    ladder = run_ladder(get_runner(), settings=settings)
            _print_ladder(ladder, target)
        elif target == "fig1":
            result = run_fig1()
            print(f"T_nom {result.t_nominal * 1e12:.1f} ps -> "
                  f"T_var {result.t_varied * 1e12:.1f} ps")
            print(format_series("processor PE vs f_rel",
                                result.freqs / 4e9, result.pe_pipeline))
        elif target == "fig2":
            result = run_fig2()
            print(f"f_var {result.f_var() / 1e9:.2f} GHz, "
                  f"f_opt {result.tolerance.f_opt / 1e9:.2f} GHz")
            idx = int(np.argmin(np.abs(result.freqs - result.tolerance.f_opt)))
            print(format_table(
                "PE at f_opt", ["transform", "PE"],
                [["before", f"{result.pe_before[idx]:.2e}"],
                 ["tilt", f"{result.pe_tilt[idx]:.2e}"],
                 ["shift", f"{result.pe_shift[idx]:.2e}"],
                 ["reshape", f"{result.pe_reshape[idx]:.2e}"]],
            ))
        elif target == "fig8":
            result = run_fig8()
            print(f"Baseline fR {result.baseline_f_rel():.3f}; "
                  f"TS opt {result.optimum('ts')}; "
                  f"reshaped opt {result.optimum('reshaped')}")
        elif target == "fig9":
            result = run_fig9()
            print(f"min PE spans {result.min_pe.min():.1e} .. "
                  f"{result.min_pe.max():.1e} over "
                  f"{result.min_pe.shape} (power x freq) grid")
        elif target == "fig13":
            result = run_fig13(get_runner(), settings=settings)
            print(format_table(
                "outcomes (%)",
                ["Opt", "Env"] + OUTCOME_ORDER,
                result.rows(),
            ))
        elif target == "table2":
            result = run_table2(get_runner())
            print(format_table(
                "|Fuzzy - Exhaustive|",
                ["Param", "Env", "memory", "mixed", "logic"],
                result.rows(),
            ))
        elif target == "area":
            print(format_table("area overhead (%)", ["Source", "%"],
                               area_rows(run_area_table())))
        elif target == "retiming":
            result = run_retiming_comparison(n_chips=settings.chips)
            print(format_table(
                "EVAL vs dynamic retiming",
                ["scheme", "f_rel", "gain"],
                result.rows(),
            ))
        elif target == "sensitivity":
            result = run_sensitivity(n_chips=max(2, settings.chips // 3))
            print(format_table(
                "variation severity sweep",
                ["sigma/mu", "phi", "Baseline", "EVAL", "recovered"],
                result.rows(),
            ))

    if settings.metrics_out:
        document = obs.metrics_registry().to_dict()
        with open(settings.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nmetrics written to {settings.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
