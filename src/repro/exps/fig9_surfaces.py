"""Figure 9: power vs error-rate vs frequency surfaces for the IntALU.

For a grid of (power budget, frequency) points, find the minimum error
rate the subsystem can realise with any (Vdd, Vbb) whose total power fits
the budget — the surface of Figure 9(a).  Replacing frequency by the
processor performance of Eq 5 gives Figure 9(b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..calibration import DEFAULT_CALIBRATION
from ..chip.chip import build_core
from ..core.adaptation import perf_params_from_measurement
from ..core.environments import TS_ASV_ABB
from ..core.optimizer import core_subsystem_arrays
from ..microarch.pipeline import DEFAULT_CORE_CONFIG
from ..microarch.simulator import measure_workload
from ..microarch.workloads import by_name
from ..timing.speculation import performance
from ..variation.population import VariationModel
from scipy.stats import norm


@dataclass(frozen=True)
class Fig9Result:
    """The two Figure 9 surfaces (arrays indexed [power, frequency])."""

    power_grid: np.ndarray  # watts (subsystem power budgets)
    freq_rel_grid: np.ndarray  # frequency relative to nominal
    min_pe: np.ndarray  # Fig 9(a) surface: min PE(budget, f)
    perf_rel: np.ndarray  # Fig 9(b) x-axis replacement: Perf at (budget, f)


def run_fig9(
    subsystem: str = "IntALU",
    workload: str = "swim*",
    chip_seed: int = 42,
    n_power: int = 16,
    n_freq: int = 24,
) -> Fig9Result:
    """Compute the Figure 9 surfaces for one subsystem of one chip."""
    calib = DEFAULT_CALIBRATION
    chip = VariationModel().population(1, seed=chip_seed)[0]
    core = build_core(chip, 0, calib=calib)
    meas = measure_workload(by_name(workload), DEFAULT_CORE_CONFIG)
    index = core.floorplan.index_of(subsystem)
    spec = TS_ASV_ABB.optimization_spec(core.n_subsystems, calib)
    subs = core_subsystem_arrays(core, meas.activity, meas.rho)

    vdd = spec.vdd_levels[:, None]
    vbb = spec.vbb_levels[None, :]
    freqs = np.linspace(0.75, 1.25, n_freq) * calib.f_nominal

    # Settle temperature per knob combo at the mid frequency (the surface
    # is dominated by the voltage knobs; T feedback is secondary here).
    from ..core.optimizer import _thermal_fixed_point

    rho_i = float(subs.rho[index])
    min_pe = np.full((n_power, n_freq), 1.0)
    powers = None
    pe_knob = np.empty((len(spec.vdd_levels), len(spec.vbb_levels), n_freq))
    pw_knob = np.empty((len(spec.vdd_levels), len(spec.vbb_levels), n_freq))
    for k, f in enumerate(freqs):
        temp, p_dyn = _thermal_fixed_point(
            subs, vdd[..., None], vbb[..., None], float(f), spec.t_heatsink
        )
        p_sta = subs.p_static(vdd[..., None], vbb[..., None], temp)
        d = subs.delay_factor(vdd[..., None], vbb[..., None], temp)
        mean = d[..., index] * subs.stage_mean_rel[index] / calib.f_nominal
        sigma = d[..., index] * subs.stage_sigma_rel[index] / calib.f_nominal
        z = (1.0 / f - mean) / sigma
        pe_knob[..., k] = rho_i * norm.sf(z)
        pw_knob[..., k] = (p_dyn + p_sta)[..., index]

    power_grid = np.linspace(
        float(pw_knob.min()), float(pw_knob.max()), n_power
    )
    for j, budget in enumerate(power_grid):
        allowed = pw_knob <= budget + 1e-12
        masked = np.where(allowed, pe_knob, 1.0)
        min_pe[j] = masked.min(axis=(0, 1))

    params = perf_params_from_measurement(meas, core)
    perf_novar = float(performance(calib.f_nominal, 0.0, params))
    perf_rel = np.empty_like(min_pe)
    for j in range(n_power):
        perf_rel[j] = performance(freqs, min_pe[j], params) / perf_novar

    return Fig9Result(
        power_grid=power_grid,
        freq_rel_grid=freqs / calib.f_nominal,
        min_pe=min_pe,
        perf_rel=perf_rel,
    )
