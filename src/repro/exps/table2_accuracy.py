"""Table 2: fuzzy controller vs Exhaustive selection accuracy.

Mean absolute difference between the FC-chosen and Exhaustive-chosen
frequency, Vdd and Vbb, grouped by subsystem type (memory / mixed /
logic), for the four knob environments of the controller study.
The paper reports ~135-450 MHz (3.3-11%) for frequency, 14-24 mV for
Vdd and 69-129 mV for Vbb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.environments import (
    CONTROLLER_STUDY_ENVIRONMENTS,
    Environment,
)
from ..core.optimizer import core_subsystem_arrays, freq_algorithm, power_algorithm
from ..mitigation.base import BASE, FU_NORMAL, QUEUE_FULL
from .runner import ExperimentRunner, RunnerConfig

KINDS = ("memory", "mixed", "logic")


def _default_variant(core, index: int) -> str:
    spec = core.floorplan.subsystems[index]
    if spec.resizable:
        return QUEUE_FULL
    if spec.replicable:
        return FU_NORMAL
    return BASE


@dataclass
class Table2Result:
    """Mean |FC - Exhaustive| per parameter, environment and kind."""

    freq_mhz: Dict[str, Dict[str, float]]  # env -> kind -> MHz
    vdd_mv: Dict[str, Dict[str, float]]  # only for ASV-capable envs
    vbb_mv: Dict[str, Dict[str, float]]  # only for ABB-capable envs
    f_nominal: float = 4e9

    def rows(self) -> List[List[str]]:
        """Render the Table 2 layout (parameter x environment x kind)."""
        rows = []
        for env, kinds in self.freq_mhz.items():
            row = ["Freq (MHz)", env]
            for kind in KINDS:
                mhz = kinds[kind]
                row.append(f"{mhz:.0f} ({100 * mhz * 1e6 / self.f_nominal:.1f}%)")
            rows.append(row)
        for env, kinds in self.vdd_mv.items():
            rows.append(
                ["Vdd (mV)", env] + [f"{kinds[kind]:.0f}" for kind in KINDS]
            )
        for env, kinds in self.vbb_mv.items():
            rows.append(
                ["Vbb (mV)", env] + [f"{kinds[kind]:.0f}" for kind in KINDS]
            )
        return rows


def run_table2(
    runner: Optional[ExperimentRunner] = None,
    environments: Optional[List[Environment]] = None,
    n_workloads: int = 4,
) -> Table2Result:
    """Compare FC and Exhaustive selections across the population."""
    runner = runner or ExperimentRunner(RunnerConfig(n_chips=6))
    environments = environments or CONTROLLER_STUDY_ENVIRONMENTS
    workloads = runner.workloads[:n_workloads]

    freq_mhz: Dict[str, Dict[str, float]] = {}
    vdd_mv: Dict[str, Dict[str, float]] = {}
    vbb_mv: Dict[str, Dict[str, float]] = {}

    for env in environments:
        bank = runner.bank_for(env)
        spec = env.optimization_spec(15, runner.calib)
        diffs_f = {kind: [] for kind in KINDS}
        diffs_vdd = {kind: [] for kind in KINDS}
        diffs_vbb = {kind: [] for kind in KINDS}
        for core in runner.cores():
            kinds = core.kinds
            for workload in workloads:
                meas, _ = runner.measurements(workload, env)
                subs = core_subsystem_arrays(core, meas.activity, meas.rho)
                exh = freq_algorithm(subs, spec)
                f_core = exh.core_frequency(spec.knob_ranges)
                power = power_algorithm(subs, f_core, spec)
                for i in range(core.n_subsystems):
                    variant = _default_variant(core, i)
                    fc_f = bank.predict_fmax(
                        core, i, variant, spec.t_heatsink,
                        float(meas.activity[i]), float(meas.rho[i]),
                    )
                    diffs_f[kinds[i]].append(abs(fc_f - exh.f_max[i]))
                    fc_vdd, fc_vbb = bank.predict_voltages(
                        core, i, variant, spec.t_heatsink,
                        float(meas.activity[i]), float(meas.rho[i]), f_core,
                    )
                    if env.asv:
                        diffs_vdd[kinds[i]].append(abs(fc_vdd - power.vdd[i]))
                    if env.abb:
                        diffs_vbb[kinds[i]].append(abs(fc_vbb - power.vbb[i]))
        freq_mhz[env.name] = {
            kind: float(np.mean(diffs_f[kind]) / 1e6) for kind in KINDS
        }
        if env.asv:
            vdd_mv[env.name] = {
                kind: float(np.mean(diffs_vdd[kind]) * 1e3) for kind in KINDS
            }
        if env.abb:
            vbb_mv[env.name] = {
                kind: float(np.mean(diffs_vbb[kind]) * 1e3) for kind in KINDS
            }
    return Table2Result(
        freq_mhz=freq_mhz,
        vdd_mv=vdd_mv,
        vbb_mv=vbb_mv,
        f_nominal=runner.calib.f_nominal,
    )
