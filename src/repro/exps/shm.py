"""Zero-copy population transport over POSIX shared memory.

The engine's worker processes need two heavy, read-only inputs: the
sampled chip population (``2 * n_chips`` variation surfaces of
``grid.cell_count`` doubles) and the correlation factor behind it (an
``(n, n)`` matrix, ~20 MB at the default 40x40 grid).  The seed design
rebuilt both in every worker from the ``(seed, n_chips)`` recipe — cheap
to ship but O(n^3) to recompute cold.

This module broadcasts them instead: the parent packs population and
factor into one :class:`multiprocessing.shared_memory.SharedMemory`
segment, and each worker maps it and wraps *views* (no copies) into the
same :class:`~repro.variation.maps.ChipSample` objects the rebuild path
produces.  Only the tiny picklable :class:`SharedPopulationHandle`
crosses the pipe.  Layout of the segment, all float64, C-order::

    vt_sys   (n_chips, n)   per-chip systematic Vt surfaces
    leff_sys (n_chips, n)   per-chip systematic Leff surfaces
    factor   (n, n)         correlation factor (optional)

The transport is strictly an optimisation: attaching workers produce
bit-identical chips to the deterministic rebuild (the parent wrote the
very arrays the rebuild would recompute), and every failure path falls
back to the rebuild, which remains the golden reference.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..variation.grid import DieGrid
from ..variation.maps import ChipSample, VariationParams

__all__ = ["SharedPopulation", "SharedPopulationHandle", "attach"]


@dataclass(frozen=True)
class SharedPopulationHandle:
    """Everything a worker needs to map the segment: light and picklable."""

    name: str
    n_chips: int
    grid: DieGrid
    params: VariationParams
    has_factor: bool

    @property
    def cell_count(self) -> int:
        return self.grid.cell_count

    @property
    def nbytes(self) -> int:
        """Total payload size of the segment described by this handle."""
        n = self.cell_count
        surfaces = 2 * self.n_chips * n * 8
        return surfaces + (n * n * 8 if self.has_factor else 0)


def _layout(handle: SharedPopulationHandle, buf) -> Tuple[np.ndarray, ...]:
    """Map the segment buffer into (vt, leff, factor-or-None) views."""
    n = handle.cell_count
    b = handle.n_chips
    vt = np.ndarray((b, n), dtype=np.float64, buffer=buf, offset=0)
    leff = np.ndarray((b, n), dtype=np.float64, buffer=buf, offset=vt.nbytes)
    factor = None
    if handle.has_factor:
        factor = np.ndarray(
            (n, n), dtype=np.float64, buffer=buf,
            offset=vt.nbytes + leff.nbytes,
        )
    return vt, leff, factor


class SharedPopulation:
    """Parent-side owner of one published population segment.

    The parent keeps this object alive for the lifetime of the worker
    pool and calls :meth:`unlink` once the pool has shut down; workers
    only ever :func:`attach`.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        handle: SharedPopulationHandle,
    ):
        self._shm = shm
        self.handle = handle

    @classmethod
    def publish(
        cls,
        population: Sequence[ChipSample],
        factor: Optional[np.ndarray] = None,
    ) -> "SharedPopulation":
        """Copy a sampled population (and optional factor) into a segment."""
        if not population:
            raise ValueError("cannot publish an empty population")
        first = population[0]
        handle = SharedPopulationHandle(
            name="",
            n_chips=len(population),
            grid=first.grid,
            params=first.params,
            has_factor=factor is not None,
        )
        shm = shared_memory.SharedMemory(create=True, size=handle.nbytes)
        try:
            handle = dataclasses.replace(handle, name=shm.name)
            vt, leff, factor_view = _layout(handle, shm.buf)
            for i, chip in enumerate(population):
                vt[i] = chip.vt_sys
                leff[i] = chip.leff_sys
            if factor_view is not None:
                factor_view[:] = factor
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, handle)

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment; safe to call after workers already exited."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - racing cleanup
            pass


def attach(
    handle: SharedPopulationHandle,
) -> Tuple[List[ChipSample], Optional[np.ndarray], shared_memory.SharedMemory]:
    """Map a published segment and rebuild the population as views.

    Returns ``(chips, factor_or_None, shm)``.  The caller must keep the
    returned ``shm`` object referenced for as long as the chips are in
    use — the arrays are views into its buffer, not copies — and must
    *not* unlink it (the publishing parent owns the segment's lifetime).
    """
    shm = shared_memory.SharedMemory(name=handle.name)
    # Attaching registers the segment for cleanup, but only the
    # publishing parent may unlink it.  Under the spawn start method the
    # worker runs its *own* resource tracker, which would unlink the
    # live segment when the worker exits — undo the registration.  Under
    # fork/forkserver the tracker process is shared with the parent
    # (registrations are a set, so the attach re-register was a no-op)
    # and unregistering here would erase the parent's own entry.
    if multiprocessing.get_start_method(allow_none=True) == "spawn":
        try:  # pragma: no cover - tracker internals vary across platforms
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    vt, leff, factor = _layout(handle, shm.buf)
    for view in (vt, leff) + (() if factor is None else (factor,)):
        view.setflags(write=False)
    chips = [
        ChipSample(
            grid=handle.grid,
            params=handle.params,
            vt_sys=vt[i],
            leff_sys=leff[i],
            chip_id=i,
        )
        for i in range(handle.n_chips)
    ]
    return chips, factor, shm
