"""Timing speculation: Diva-like checker and the Eq 5 performance model.

With a checker at retirement (Section 3.1 / Figure 7(c)), the core may run
*above* its safe frequency; each timing error costs a pipeline flush
(``rp`` cycles, like a branch misprediction).  Performance in instructions
per second is::

    Perf(f) = f / (CPIcomp + mr * mp(f) + PE(f) * rp)       (Eq 5)

``mp(f)`` is the observed (non-overlapped) L2-miss penalty in cycles; the
off-chip latency is constant in *seconds*, so ``mp`` grows linearly with
``f`` — the classic reason frequency gains saturate on memory-bound codes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..calibration import DEFAULT_CALIBRATION, Calibration
from ..units import ghz


@dataclass(frozen=True)
class CheckerConfig:
    """The Diva-like checker of Figure 7(c).

    The checker runs at a safe, lower frequency with ASV-boosted
    transistors; its architectural simplicity lets it keep up with the
    wide core, so it never throttles retirement — it only adds power and
    area, and bounds the detectable error rate.
    """

    frequency: float = ghz(3.5)
    #: Verification width: Diva checkers are made wide ("it is feasible to
    #: design a wide-issue checker thanks to its architectural
    #: simplicity" — Section 3.1), so they out-retire the 3-issue core.
    verify_width: int = 4
    l0_dcache_bytes: int = 4096
    l0_icache_bytes: int = 512
    retire_queue_entries: int = 32
    area_fraction: float = 0.070  # Figure 7(d): 7.0% of processor area

    def __post_init__(self) -> None:
        if self.frequency <= 0.0:
            raise ValueError("checker frequency must be positive")
        if self.verify_width < 1:
            raise ValueError("verify width must be at least 1")

    @property
    def max_throughput(self) -> float:
        """Peak instructions/second the checker can verify."""
        return self.verify_width * self.frequency

    def cap_performance(self, perf):
        """Clamp core performance to the checker's verification rate.

        With the default wide checker this almost never binds — which is
        the paper's design point — but modelling it keeps the Eq 5 output
        honest when experiments shrink the checker.
        """
        return np.minimum(np.asarray(perf, dtype=float), self.max_throughput)


@dataclass(frozen=True)
class PerfParams:
    """Workload-dependent inputs of Eq 5 (all per average instruction)."""

    cpi_comp: float  # computation CPI incl. L1 misses hitting in L2
    l2_miss_rate: float  # misses per instruction (``mr``)
    recovery_penalty: float  # cycles per timing error (``rp``)
    memory_latency_s: float  # off-chip round trip in seconds
    overlap_factor: float = 0.7  # fraction of miss latency not hidden

    def __post_init__(self) -> None:
        if self.cpi_comp <= 0.0:
            raise ValueError("cpi_comp must be positive")
        if self.l2_miss_rate < 0.0:
            raise ValueError("l2_miss_rate cannot be negative")
        if not 0.0 <= self.overlap_factor <= 1.0:
            raise ValueError("overlap_factor must be in [0, 1]")

    @classmethod
    def from_calibration(
        cls,
        cpi_comp: float,
        l2_miss_rate: float,
        calib: Calibration = DEFAULT_CALIBRATION,
    ) -> "PerfParams":
        """Build params using the calibration's memory/recovery settings."""
        return cls(
            cpi_comp=cpi_comp,
            l2_miss_rate=l2_miss_rate,
            recovery_penalty=calib.recovery_penalty_cycles,
            memory_latency_s=calib.memory_latency_seconds,
            overlap_factor=calib.memory_overlap_factor,
        )


def miss_penalty_cycles(freq, params: PerfParams) -> np.ndarray:
    """Observed L2-miss penalty ``mp(f)`` in cycles (grows with f)."""
    return (
        np.asarray(freq, dtype=float)
        * params.memory_latency_s
        * params.overlap_factor
    )


def effective_cpi(freq, error_rate, params: PerfParams) -> np.ndarray:
    """Total CPI: computation + memory stalls + error recovery (Eq 5)."""
    error_rate = np.asarray(error_rate, dtype=float)
    if np.any(error_rate < 0.0):
        raise ValueError("error rate cannot be negative")
    return (
        params.cpi_comp
        + params.l2_miss_rate * miss_penalty_cycles(freq, params)
        + error_rate * params.recovery_penalty
    )


def performance(freq, error_rate, params: PerfParams) -> np.ndarray:
    """Instructions per second at ``freq`` given an error rate (Eq 5)."""
    return np.asarray(freq, dtype=float) / effective_cpi(freq, error_rate, params)


def optimal_on_curve(freqs, error_rates, params: PerfParams):
    """Scan a PE(f) curve for the performance-optimal point (Fig 2(a)).

    Args:
        freqs: 1-D array of candidate frequencies (hertz).
        error_rates: errors/instruction at each frequency.
        params: Eq 5 workload parameters.

    Returns:
        Tuple ``(f_opt, perf_opt)``.
    """
    freqs = np.asarray(freqs, dtype=float)
    perfs = performance(freqs, error_rates, params)
    best = int(np.argmax(perfs))
    return float(freqs[best]), float(perfs[best])
