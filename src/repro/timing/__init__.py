"""VATS-style timing-error modelling and timing speculation (Secs 2.2, 3.1)."""

from .errors import (
    NEGLIGIBLE_PE,
    error_free_frequency,
    frequency_at_stage_budget,
    max_frequency_under_budget,
    processor_error_rate,
    stage_error_rates,
)
from .paths import StageDelays, StageModifiers, stage_delays
from .sampling import PathEnsemble, fit_stage_model, wall_ensemble
from .speculation import (
    CheckerConfig,
    PerfParams,
    effective_cpi,
    miss_penalty_cycles,
    optimal_on_curve,
    performance,
)

__all__ = [
    "CheckerConfig",
    "NEGLIGIBLE_PE",
    "PathEnsemble",
    "PerfParams",
    "StageDelays",
    "StageModifiers",
    "effective_cpi",
    "error_free_frequency",
    "fit_stage_model",
    "frequency_at_stage_budget",
    "max_frequency_under_budget",
    "miss_penalty_cycles",
    "optimal_on_curve",
    "performance",
    "processor_error_rate",
    "stage_delays",
    "wall_ensemble",
]
