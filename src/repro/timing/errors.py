"""Timing-error rates as a function of frequency (paper Sec 2.2, Eq 4).

Given each stage's dynamic delay distribution ``N(m_i, s_i)`` and activity
``rho_i`` (exercises per instruction), the per-instruction error rate is::

    PE(f) = sum_i  rho_i * Q( (1/f - m_i) / s_i )          (Eq 4)

where ``Q`` is the standard normal survival function.  The inverse mapping
— the highest frequency whose error rate stays below a budget — is the
work-horse of the Freq algorithm (Section 4.2).
"""

from __future__ import annotations

import numpy as np

from ..backend import get_backend
from ..numerics import ndtri

from .paths import StageDelays

#: Error rates below this are treated as exactly zero ("error-free").
NEGLIGIBLE_PE: float = 1e-300


def stage_error_rates(freq, delays: StageDelays, rho) -> np.ndarray:
    """Per-stage errors/instruction at frequency ``freq`` (hertz).

    ``freq`` broadcasts against the leading axes of the delay arrays;
    the trailing axis indexes subsystems.  The evaluation routes
    through the fused ``timing_error_cdf`` kernel (bit-identical to the
    unfused ``rho * Q((1/f - m)/s)`` composition).
    """
    freq = np.asarray(freq, dtype=float)
    if np.any(freq <= 0.0):
        raise ValueError("frequency must be positive")
    return get_backend().kernel("timing_error_cdf")(
        freq, delays.mean, delays.sigma, rho
    )


def processor_error_rate(freq, delays: StageDelays, rho) -> np.ndarray:
    """Whole-processor errors/instruction: Eq 4's sum over stages."""
    return stage_error_rates(freq, delays, rho).sum(axis=-1)


def error_free_frequency(delays: StageDelays) -> float:
    """The safe frequency ``f_var``: min over stages of 1/(m + z_free*s).

    This is what the Baseline environment (no checker) must respect.
    """
    return float(delays.error_free_frequency().min(axis=-1))


def frequency_at_stage_budget(delays: StageDelays, rho, pe_budget) -> np.ndarray:
    """Per-stage max frequency whose error rate stays within ``pe_budget``.

    Inverts ``rho * Q(z) = pe_budget`` for each stage: the allowed z-score
    is ``Qinv(pe_budget / rho)`` and the period ``m + z*s``.  The z-score
    is clamped to ``z_free`` from above — a stage is never *required* to
    run slower than its error-free point — and stages with ``rho == 0``
    are unconstrained (infinite frequency).

    Returns an array shaped like the broadcast of the delay arrays.
    """
    rho = np.asarray(rho, dtype=float)
    pe_budget = np.asarray(pe_budget, dtype=float)
    if np.any(pe_budget <= 0.0):
        raise ValueError("pe_budget must be positive")
    with np.errstate(divide="ignore"):
        quantile = np.where(rho > 0.0, pe_budget / np.maximum(rho, 1e-300), 1.0)
    # Q(z) = quantile  =>  z = ndtri(1 - quantile); clamp into [?, z_free].
    z = np.where(
        quantile >= 1.0, -np.inf, ndtri(1.0 - np.minimum(quantile, 1.0 - 1e-16))
    )
    z = np.minimum(z, delays.z_free)
    period = delays.mean + z * delays.sigma
    with np.errstate(divide="ignore"):
        freq = np.where(
            (rho > 0.0) & (quantile < 1.0), 1.0 / period, np.inf
        )
    return freq


def max_frequency_under_budget(delays: StageDelays, rho, pe_budget) -> np.ndarray:
    """Max core frequency with *every* stage within its own ``pe_budget``.

    This is the conservative per-subsystem budget split of Section 4.2
    (each subsystem receives ``PEMAX / n``): the core frequency is the
    minimum of the per-stage maxima.
    """
    return frequency_at_stage_budget(delays, rho, pe_budget).min(axis=-1)
