"""Dynamic path-delay distributions per pipeline stage (paper Fig 1).

VATS [26] characterises each pipeline stage by the *dynamic* distribution
of exercised-path delays: every access to the stage exercises some path,
whose delay is a random variable.  We model that distribution as a normal
``N(m_i, s_i)`` per subsystem ``i``:

* ``m_i`` — mean exercised-path delay in seconds.  It scales with the
  subsystem's variation-afflicted gate-delay factor and carries the
  extreme-value tail of the random component (the worst of millions of
  near-critical paths).
* ``s_i`` — the input-dependent spread.  Memory stages have homogeneous
  paths (small ``s``, sharp error onset); logic stages exercise a wide
  variety of paths (large ``s``, gradual onset); mixed sit between.

The design is balanced so that, without variation, every stage satisfies
``m + z_free * s = 1 / f_nominal`` — the "critical-path wall".

Mitigation techniques act on these parameters:

* *Tilt* (low-slope FU): multiplies ``s`` while holding the error-free
  point ``m + z_free * s`` fixed.
* *Shift* (queue resize): multiplies both ``m`` and ``s`` by < 1.
* *Reshape* (ABB/ASV): moves the delay factor itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..calibration import Calibration
from ..chip.chip import Core


@dataclass(frozen=True)
class StageModifiers:
    """Per-subsystem multipliers applied by micro-architectural techniques.

    Attributes:
        delay_scale: Multiplies both ``m`` and ``s`` (a *Shift*: e.g. 0.95
            when an issue queue runs at 3/4 capacity).
        sigma_scale: Multiplies ``s`` while preserving the error-free point
            ``m + z_free*s`` (a *Tilt*: e.g. sqrt(2) for the low-slope FU).
    """

    delay_scale: np.ndarray
    sigma_scale: np.ndarray

    @classmethod
    def identity(cls, n: int) -> "StageModifiers":
        """Return modifiers that change nothing (all-ones)."""
        return cls(delay_scale=np.ones(n), sigma_scale=np.ones(n))

    def __post_init__(self) -> None:
        if self.delay_scale.shape != self.sigma_scale.shape:
            raise ValueError("modifier arrays must have matching shapes")
        if np.any(self.delay_scale <= 0.0) or np.any(self.sigma_scale <= 0.0):
            raise ValueError("modifier scales must be positive")


@dataclass(frozen=True)
class StageDelays:
    """The per-subsystem dynamic delay distribution at an operating point.

    ``mean`` and ``sigma`` are in seconds; trailing axis indexes the
    subsystem, leading axes broadcast over operating-point grids.
    """

    mean: np.ndarray
    sigma: np.ndarray
    z_free: float

    def error_free_period(self) -> np.ndarray:
        """Period below which a stage starts to err (``T_var`` of Fig 1)."""
        return self.mean + self.z_free * self.sigma

    def error_free_frequency(self) -> np.ndarray:
        """Per-stage safe frequency ``f_var`` (1 / error-free period)."""
        return 1.0 / self.error_free_period()


def stage_delays(
    core: Core,
    vdd,
    vbb,
    temp,
    modifiers: Optional[StageModifiers] = None,
) -> StageDelays:
    """Compute each subsystem's dynamic delay distribution in seconds.

    Args:
        core: The core model (holds variation factors and stage shapes).
        vdd: Per-subsystem supply voltage(s); broadcasts on the last axis.
        vbb: Per-subsystem body bias(es).
        temp: Per-subsystem temperature(s) in kelvin.
        modifiers: Optional technique modifiers (identity if omitted).
    """
    calib: Calibration = core.calib
    t_cycle = 1.0 / calib.f_nominal
    d = core.delay_factor(vdd, vbb, temp)
    mean = t_cycle * d * (core.stage_mean_rel + core.tail_rel)
    sigma = t_cycle * d * core.stage_sigma_rel
    if modifiers is not None:
        # Tilt first (preserves the error-free point), then shift.
        free = mean + calib.z_free * sigma
        sigma = sigma * modifiers.sigma_scale
        mean = free - calib.z_free * sigma
        mean = mean * modifiers.delay_scale
        sigma = sigma * modifiers.delay_scale
    return StageDelays(mean=mean, sigma=sigma, z_free=calib.z_free)
