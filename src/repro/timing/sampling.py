"""Microscopic path-level Monte Carlo behind the VATS abstraction.

The analytic stage model (:mod:`repro.timing.paths`) summarises a stage by
a normal dynamic-delay distribution.  VATS itself (Fig 1) starts one level
lower: a stage *is* an ensemble of static paths — each with a nominal
delay and per-gate random variation — of which every access exercises a
random subset, erring when the slowest exercised path misses the clock
edge.

This module implements that microscopic model.  It serves two purposes:

* **validation** — tests draw Monte-Carlo error rates from a
  :class:`PathEnsemble` and check the analytic normal approximation
  (:func:`fit_stage_model`) reproduces them;
* **experimentation** — the Figure 1(a)/(b) histograms can be generated
  from actual path samples rather than the fitted normal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .paths import StageDelays


@dataclass
class PathEnsemble:
    """An explicit set of static paths for one pipeline stage.

    Attributes:
        nominal_delays: Per-path nominal delay in seconds, shape ``(p,)``.
            Design tools pile paths up just below the cycle time (the
            "critical-path wall"), so a realistic ensemble is dense near
            its maximum.
        random_sigma: Per-path random-variation sigma in seconds (the
            per-gate randomness averaged over the path depth).
        exercise_count: How many paths a single access exercises; the
            access's delay is the max over its exercised subset.
        seed: Seed for the frozen per-chip random component.
    """

    nominal_delays: np.ndarray
    random_sigma: float
    exercise_count: int = 12
    seed: int = 0
    _static_delays: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.nominal_delays.ndim != 1 or len(self.nominal_delays) == 0:
            raise ValueError("need a 1-D, non-empty nominal delay array")
        if np.any(self.nominal_delays <= 0.0):
            raise ValueError("path delays must be positive")
        if self.random_sigma < 0.0:
            raise ValueError("random sigma cannot be negative")
        if not 1 <= self.exercise_count <= len(self.nominal_delays):
            raise ValueError("exercise_count must be in [1, n_paths]")

    @property
    def n_paths(self) -> int:
        """Number of static paths in the ensemble."""
        return len(self.nominal_delays)

    def static_delays(self) -> np.ndarray:
        """Per-path delays with the chip's frozen random component."""
        if self._static_delays is None:
            rng = np.random.default_rng(self.seed)
            noise = rng.normal(0.0, self.random_sigma, self.n_paths)
            self._static_delays = np.maximum(
                self.nominal_delays + noise, 1e-15
            )
        return self._static_delays

    def sample_access_delays(
        self, n_accesses: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Dynamic delays: max over each access's exercised path subset."""
        delays = self.static_delays()
        choices = rng.integers(
            0, self.n_paths, size=(n_accesses, self.exercise_count)
        )
        return delays[choices].max(axis=1)

    def empirical_error_rate(
        self, freq, n_accesses: int = 20000, seed: int = 1
    ):
        """Monte-Carlo per-access error probability at frequency ``freq``.

        ``freq`` may be a scalar (returns ``float``, as before) or an
        array of frequencies (returns an array of matching shape).  All
        frequencies are evaluated against *one* sampled access-delay
        set, so a sweep over a frequency axis — e.g. the Figure 1
        benches — costs one Monte-Carlo draw instead of one per point,
        and every point sees the same draw (a scalar call at ``freq[i]``
        returns exactly the ``i``-th element of the array call).
        """
        freq_arr = np.asarray(freq, dtype=float)
        if np.any(freq_arr <= 0.0):
            raise ValueError("frequency must be positive")
        rng = np.random.default_rng(seed)
        samples = self.sample_access_delays(n_accesses, rng)
        rates = np.mean(
            samples > 1.0 / freq_arr[..., np.newaxis], axis=-1
        )
        if freq_arr.ndim == 0:
            return float(rates)
        return rates


def wall_ensemble(
    t_cycle: float,
    n_paths: int = 4000,
    wall_fraction: float = 0.35,
    spread: float = 0.12,
    random_sigma_rel: float = 0.01,
    exercise_count: int = 12,
    seed: int = 0,
) -> PathEnsemble:
    """Build a critical-path-wall ensemble (Section 3.3.1's premise).

    A fraction of the paths sits in a dense wall just below the cycle
    time; the rest spreads over shorter delays (they were "good enough"
    and never optimised).
    """
    rng = np.random.default_rng(seed)
    n_wall = int(n_paths * wall_fraction)
    wall = t_cycle * rng.uniform(0.97, 1.0, n_wall)
    body = t_cycle * (1.0 - rng.exponential(spread, n_paths - n_wall))
    body = np.clip(body, 0.2 * t_cycle, t_cycle)
    return PathEnsemble(
        nominal_delays=np.concatenate([wall, body]),
        random_sigma=random_sigma_rel * t_cycle,
        exercise_count=exercise_count,
        seed=seed,
    )


def fit_stage_model(
    ensemble: PathEnsemble,
    z_free: float,
    n_accesses: int = 40000,
    seed: int = 2,
) -> StageDelays:
    """Fit the analytic normal stage model to a path ensemble.

    This is the 'VATS characterisation' step: sample the dynamic
    access-delay distribution and summarise it by its first two moments —
    exactly the abstraction the rest of the library builds on.
    """
    rng = np.random.default_rng(seed)
    samples = ensemble.sample_access_delays(n_accesses, rng)
    return StageDelays(
        mean=np.array([samples.mean()]),
        sigma=np.array([max(samples.std(), 1e-18)]),
        z_free=z_free,
    )
