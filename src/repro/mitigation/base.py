"""Micro-architectural technique state and its effect on the stage model.

The two techniques of Sections 3.3.1-3.3.2 each have two configurations
per domain (int / fp):

* FU replication: *normal* (power-efficient) or *low-slope* (tilted PE
  curve, +30% power on that FU).
* Issue-queue size: *full* or *3/4* (shifted PE curve, slightly worse
  CPI).

:class:`TechniqueState` captures one concrete choice; it translates into
(a) :class:`~repro.timing.paths.StageModifiers` for the timing model,
(b) a per-subsystem power multiplier, and (c) the
:class:`~repro.microarch.pipeline.CoreConfig` the pipeline model should
use to measure CPI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..calibration import Calibration
from ..chip.chip import Core
from ..chip.subsystem import FP_DOMAIN, INT_DOMAIN
from ..microarch.pipeline import CoreConfig
from ..timing.paths import StageModifiers

#: Configuration-variant names shared by the technique state and the
#: fuzzy-controller banks (one trained FC per variant).
BASE = "base"
QUEUE_FULL = "full"
QUEUE_RESIZED = "resized"
FU_NORMAL = "normal"
FU_LOWSLOPE = "lowslope"


@dataclass(frozen=True)
class TechniqueState:
    """One concrete configuration of the two micro-arch techniques.

    ``None`` semantics do not exist here: a core *without* the FU
    replication hardware is expressed by ``lowslope_available=False`` on
    the owning environment, which always passes ``lowslope=False``.
    """

    queue_full: bool = True  # False = 3/4-capacity issue queue
    lowslope: bool = False  # True = low-slope FU replica enabled
    domain: str = INT_DOMAIN  # which cluster the techniques act on

    def __post_init__(self) -> None:
        if self.domain not in (INT_DOMAIN, FP_DOMAIN):
            raise ValueError("domain must be 'int' or 'fp'")

    @property
    def queue_name(self) -> str:
        """Name of the issue-queue subsystem this state resizes."""
        return "IntQ" if self.domain == INT_DOMAIN else "FPQ"

    @property
    def fu_name(self) -> str:
        """Name of the FU subsystem this state replicates."""
        return "IntALU" if self.domain == INT_DOMAIN else "FPUnit"

    def stage_modifiers(self, core: Core) -> StageModifiers:
        """Build the timing-model modifiers for this technique state."""
        calib: Calibration = core.calib
        n = core.n_subsystems
        delay_scale = np.ones(n)
        sigma_scale = np.ones(n)
        if not self.queue_full:
            delay_scale[core.floorplan.index_of(self.queue_name)] = (
                calib.queue_resize_delay_factor
            )
        if self.lowslope:
            sigma_scale[core.floorplan.index_of(self.fu_name)] = (
                calib.lowslope_sigma_factor
            )
        return StageModifiers(delay_scale=delay_scale, sigma_scale=sigma_scale)

    def power_factors(self, core: Core) -> np.ndarray:
        """Per-subsystem power multipliers.

        The low-slope FU burns +30%; a 3/4-sized issue queue saves the
        disabled quarter's switching and leakage.
        """
        factors = np.ones(core.n_subsystems)
        if self.lowslope:
            factors[core.floorplan.index_of(self.fu_name)] = (
                core.calib.lowslope_power_factor
            )
        if not self.queue_full:
            factors[core.floorplan.index_of(self.queue_name)] = (
                core.calib.queue_resize_power_factor
            )
        return factors

    def core_config(
        self, base: CoreConfig, *, replication_built: bool
    ) -> CoreConfig:
        """Return the pipeline configuration matching this state.

        ``replication_built`` is a property of the *hardware* (not of the
        dynamic choice): once the replica exists, the extra pipeline stage
        of Section 3.3.1 is always present, whichever FU copy is enabled.
        """
        config = base
        if replication_built:
            config = config.with_fu_replication()
        if not self.queue_full:
            config = config.with_resized_queue(self.domain)
        return config


def technique_choices(
    resize_available: bool, replication_available: bool, domain: str
) -> list:
    """Enumerate the legal :class:`TechniqueState` values for a domain."""
    queue_options = [True, False] if resize_available else [True]
    fu_options = [False, True] if replication_available else [False]
    return [
        TechniqueState(queue_full=q, lowslope=s, domain=domain)
        for q in queue_options
        for s in fu_options
    ]
