"""Shift: resizable SRAM issue queues (Section 3.3.2).

Disabling a quarter of the issue queue (transmission gates between the
sections) shortens its wordlines and taglines: *all* paths speed up, so
the PE-vs-f curve shifts right by the resize delay factor.  The cost is a
(usually small) CPI increase, which the decision rule below weighs using
the Eq 5 performance estimate — exactly the procedure of Section 4.2:
measure ``CPIcomp`` with both sizes at the start of the phase, compute
the core frequency each size would allow, and keep whichever yields more
performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..timing.speculation import PerfParams, performance


@dataclass(frozen=True)
class QueueDecision:
    """Outcome of the full-vs-3/4 issue-queue comparison."""

    use_full: bool
    f_full: float
    f_resized: float
    perf_full: float
    perf_resized: float

    @property
    def core_frequency(self) -> float:
        """Frequency of the winning configuration."""
        return self.f_full if self.use_full else self.f_resized

    @property
    def performance(self) -> float:
        """Estimated performance (IPS) of the winning configuration."""
        return self.perf_full if self.use_full else self.perf_resized


def choose_queue_size(
    f_full: float,
    params_full: PerfParams,
    f_resized: float,
    params_resized: PerfParams,
    error_rate: float,
) -> QueueDecision:
    """Pick the queue size that maximises estimated performance (Sec 4.2).

    Args:
        f_full: Core frequency achievable with the full queue.
        params_full: Eq 5 parameters measured with the full queue
            (``CPIcomp_1.00``).
        f_resized: Core frequency achievable with the 3/4 queue (higher,
            since the smaller queue's paths are faster).
        params_resized: Eq 5 parameters with the 3/4 queue
            (``CPIcomp_0.75``).
        error_rate: Expected errors/instruction at the chosen operating
            point (the controller targets ``PEMAX``).
    """
    perf_full = float(performance(f_full, error_rate, params_full))
    perf_resized = float(performance(f_resized, error_rate, params_resized))
    return QueueDecision(
        use_full=perf_full >= perf_resized,
        f_full=f_full,
        f_resized=f_resized,
        perf_full=perf_full,
        perf_resized=perf_resized,
    )
