"""Tilt: FU replication without a critical-path wall (Section 3.3.1).

Two side-by-side implementations of the hot functional units (the integer
ALU block and the FP adder+multiplier): *Normal* (the power-efficient
original) and *LowSlope* (near-critical paths optimised away, so the
dynamic path-delay distribution is less steep — the PE-vs-f curve tilts).

The enable decision (Figure 4) compares the FU's achievable frequency
under each implementation with the bottleneck frequency of the *rest* of
the processor:

* ``f_normal < Min(f)_rest``  (cases i, ii): the FU is critical — enable
  LowSlope to maximise frequency.
* otherwise (case iii): the FU is not the bottleneck — enable Normal to
  save power.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReplicaDecision:
    """Outcome of the Figure 4 comparison for one replicated FU."""

    use_lowslope: bool
    f_normal: float
    f_lowslope: float
    f_rest: float

    @property
    def core_frequency(self) -> float:
        """The frequency the core gets under this decision."""
        chosen = self.f_lowslope if self.use_lowslope else self.f_normal
        return min(chosen, self.f_rest)


def choose_fu_implementation(
    f_normal: float, f_lowslope: float, f_rest: float
) -> ReplicaDecision:
    """Apply the Figure 4 decision rule.

    Args:
        f_normal: Max frequency the FU supports with the normal replica.
        f_lowslope: Max frequency with the low-slope replica (>= normal
            whenever errors are being tolerated).
        f_rest: Minimum of the other subsystems' max frequencies
            (``Min(f)_rest``).

    Returns:
        The decision plus the frequencies that justified it.
    """
    if f_normal <= 0.0 or f_lowslope <= 0.0 or f_rest <= 0.0:
        raise ValueError("frequencies must be positive")
    # Figure 4 assumes f_lowslope > f_normal; when the replica's extra
    # power makes it thermally *worse*, enabling it cannot help.
    use_lowslope = f_normal < f_rest and f_lowslope > f_normal
    return ReplicaDecision(
        use_lowslope=use_lowslope,
        f_normal=f_normal,
        f_lowslope=f_lowslope,
        f_rest=f_rest,
    )
