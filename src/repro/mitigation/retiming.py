"""Dynamic pipeline retiming: the related-work baseline (Section 7).

The paper positions EVAL against *dynamic retiming* of pipelines
(ReCycle-style [33, 34]): instead of tolerating errors, retiming
redistributes clocking slack among pipeline stages — donating the margin
of fast stages to slow ones through programmable skews — and always clocks
the processor at a safe (error-free) frequency.  The paper reports that
this family gains 10-20% where EVAL gains ~40%.

Our model: slack can flow freely between stages *within a pipeline loop*,
but a loop's total latency cannot shrink below the sum of its stage
delays; the achievable period is therefore, per loop, the mean stage delay
over the loop (instead of the max over all stages), and the processor
period is the worst loop's mean — plus any single stage that sits in no
loop with donors.  This captures both the benefit (averaging within
loops) and the fundamental limit (no help across the slowest loop) of
retiming, without modelling individual skew registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..chip.chip import Core
from ..timing.paths import StageDelays

#: Pipeline loops over the Figure 7(b) subsystems: slack can be shuffled
#: inside each loop (the recurrence paths that bound retiming).
DEFAULT_LOOPS: Tuple[Tuple[str, ...], ...] = (
    ("Icache", "ITLB", "BranchPred", "Decode"),  # fetch/branch loop
    ("IntMap", "IntQ", "IntReg", "IntALU"),  # int issue-execute loop
    ("FPMap", "FPQ", "FPReg", "FPUnit"),  # fp issue-execute loop
    ("LdStQ", "DTLB", "Dcache"),  # load-use loop
)


@dataclass(frozen=True)
class RetimingResult:
    """Outcome of retiming one core's error-free stage delays."""

    f_baseline: float  # safe frequency without retiming (1 / worst stage)
    f_retimed: float  # safe frequency with intra-loop slack borrowing
    limiting_loop: Tuple[str, ...]  # the loop that bounds the retimed clock
    loop_periods: Dict[Tuple[str, ...], float]

    @property
    def gain(self) -> float:
        """Relative frequency gain of retiming over the rigid clock."""
        return self.f_retimed / self.f_baseline - 1.0


def retime(
    core: Core,
    delays: StageDelays,
    loops: Sequence[Tuple[str, ...]] = DEFAULT_LOOPS,
) -> RetimingResult:
    """Compute the retimed safe frequency for a core's stage delays.

    Args:
        core: The core (provides the name -> index mapping).
        delays: Error-free stage delays (the retiming baseline never
            speculates, so the ``z_free`` period of each stage is what the
            skews must accommodate).
        loops: Stage groupings within which slack may be redistributed.
    """
    periods = delays.error_free_period()
    index_of = core.floorplan.index_of
    covered = set()
    loop_periods: Dict[Tuple[str, ...], float] = {}
    for loop in loops:
        indices = [index_of(name) for name in loop]
        covered.update(indices)
        loop_periods[tuple(loop)] = float(np.mean(periods[indices]))

    # Stages outside every loop have no donors: they keep their own period.
    lonely = [i for i in range(core.n_subsystems) if i not in covered]
    for i in lonely:
        loop_periods[(core.names[i],)] = float(periods[i])

    limiting_loop = max(loop_periods, key=loop_periods.get)
    period_retimed = loop_periods[limiting_loop]
    return RetimingResult(
        f_baseline=float(1.0 / periods.max()),
        f_retimed=float(1.0 / period_retimed),
        limiting_loop=limiting_loop,
        loop_periods=loop_periods,
    )
