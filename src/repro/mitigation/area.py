"""Area accounting for the EVAL support hardware (Figure 7(d)).

Every overhead is *computed* from the corresponding model object rather
than hard-coded, so changing e.g. the FU areas or the checker sizing in
one place keeps this table consistent:

* ASV: chip-external supplies, repurposed pins — ~0% (Section 2.3).
* ABB: ~2% for bias generators/networks [21, 35] (excluded from the
  preferred configuration).
* FU replication: replica area = original FU area x the low-slope
  area/power factor (the replica is 30% larger than the original [1]).
* Issue-queue resizing: transmission gates — ~0% [4].
* Checker: 7.0% (Figure 7(d), Diva-like with L0 caches).
* Phase detector: ~0.3% (CACTI estimate for 32 buckets x 6 bits [28]).
* Sensors: ~0.1%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..calibration import DEFAULT_CALIBRATION, Calibration
from ..chip.floorplan import Floorplan, default_floorplan
from ..timing.speculation import CheckerConfig

ABB_AREA_FRACTION = 0.020
PHASE_DETECTOR_AREA_FRACTION = 0.003
SENSOR_AREA_FRACTION = 0.001


@dataclass(frozen=True)
class AreaBudget:
    """Per-source area overheads as fractions of processor area."""

    entries: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total overhead as a fraction of processor area."""
        return sum(self.entries.values())

    def as_percent(self) -> Dict[str, float]:
        """Entries in percent, rounded to one decimal (like Fig 7(d))."""
        return {name: round(100.0 * value, 1) for name, value in self.entries.items()}


def area_budget(
    floorplan: Optional[Floorplan] = None,
    calib: Calibration = DEFAULT_CALIBRATION,
    checker: Optional[CheckerConfig] = None,
    include_abb: bool = False,
) -> AreaBudget:
    """Compute the Figure 7(d) overhead table.

    Args:
        floorplan: Source of the replicated-FU areas.
        calib: Source of the low-slope area factor.
        checker: Source of the checker area.
        include_abb: The preferred EVAL configuration omits ABB; pass True
            to account for it.
    """
    floorplan = floorplan or default_floorplan()
    checker = checker or CheckerConfig()
    replica_factor = calib.lowslope_power_factor  # area tracks power [22]
    int_alu = floorplan.by_name("IntALU").area_frac * replica_factor
    fp_unit = floorplan.by_name("FPUnit").area_frac * replica_factor
    entries = {
        "ASV": 0.0,
        "IntALU replication": int_alu,
        "FPAdd/Mul replication": fp_unit,
        "Issue-queue resize": 0.0,
        "Checker": checker.area_fraction,
        "Phase detector": PHASE_DETECTOR_AREA_FRACTION,
        "Sensors": SENSOR_AREA_FRACTION,
    }
    if include_abb:
        entries["ABB"] = ABB_AREA_FRACTION
    return AreaBudget(entries=entries)
