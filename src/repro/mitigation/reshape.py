"""Reshape: fine-grain ABB/ASV (Section 3.3.3).

Reshaping is not a separate mechanism — it is what per-subsystem ASV/ABB
*does* to the processor-level PE-vs-f curve when driven by the Freq/Power
algorithms: slow stages are sped up (the bottom of the curve moves right)
and fast stages are slowed down to save power (the top moves left).

This module provides the curve-level view used by the Figure 2(d)
demonstration and by tests: given per-stage operating points it evaluates
the aggregate PE curve before and after reshaping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..chip.chip import Core
from ..thermal.solver import solve_temperatures
from ..timing.errors import processor_error_rate
from ..timing.paths import StageDelays, StageModifiers, stage_delays


@dataclass(frozen=True)
class ReshapeResult:
    """PE curves before and after applying per-subsystem voltages."""

    freqs: np.ndarray
    pe_before: np.ndarray
    pe_after: np.ndarray
    delays_before: StageDelays
    delays_after: StageDelays


def reshape_curve(
    core: Core,
    vdd_after: np.ndarray,
    vbb_after: np.ndarray,
    freqs: np.ndarray,
    activity: np.ndarray,
    rho: np.ndarray,
    t_heatsink: float,
    modifiers: StageModifiers = None,
) -> ReshapeResult:
    """Evaluate the processor PE(f) curve at nominal vs reshaped voltages.

    The "before" point is all subsystems at nominal supply with zero body
    bias; "after" uses the provided per-subsystem settings.  Temperatures
    are re-solved for each setting (reshaping changes power and therefore
    temperature, which feeds back into delay).
    """
    n = core.n_subsystems
    calib = core.calib
    vdd_before = np.full(n, calib.vdd_nominal)
    vbb_before = np.zeros(n)
    freqs = np.asarray(freqs, dtype=float)
    f_mid = float(np.median(freqs))

    results = []
    for vdd, vbb in ((vdd_before, vbb_before), (vdd_after, vbb_after)):
        solution = solve_temperatures(
            core, vdd, vbb, f_mid, activity, t_heatsink
        )
        delays = stage_delays(core, vdd, vbb, solution.temperature, modifiers)
        pe = processor_error_rate(freqs[:, None], delays, rho)
        results.append((delays, pe))

    (delays_before, pe_before), (delays_after, pe_after) = results
    return ReshapeResult(
        freqs=freqs,
        pe_before=pe_before,
        pe_after=pe_after,
        delays_before=delays_before,
        delays_after=delays_after,
    )
