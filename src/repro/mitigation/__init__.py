"""Error-mitigation techniques: tilt, shift, reshape (paper Section 3.3)."""

from .area import (
    ABB_AREA_FRACTION,
    PHASE_DETECTOR_AREA_FRACTION,
    SENSOR_AREA_FRACTION,
    AreaBudget,
    area_budget,
)
from .base import (
    BASE,
    FU_LOWSLOPE,
    FU_NORMAL,
    QUEUE_FULL,
    QUEUE_RESIZED,
    TechniqueState,
    technique_choices,
)
from .fu_replication import ReplicaDecision, choose_fu_implementation
from .queue_resize import QueueDecision, choose_queue_size
from .reshape import ReshapeResult, reshape_curve
from .retiming import DEFAULT_LOOPS, RetimingResult, retime

__all__ = [
    "ABB_AREA_FRACTION",
    "BASE",
    "FU_LOWSLOPE",
    "FU_NORMAL",
    "QUEUE_FULL",
    "QUEUE_RESIZED",
    "AreaBudget",
    "PHASE_DETECTOR_AREA_FRACTION",
    "QueueDecision",
    "ReplicaDecision",
    "ReshapeResult",
    "RetimingResult",
    "DEFAULT_LOOPS",
    "SENSOR_AREA_FRACTION",
    "TechniqueState",
    "area_budget",
    "choose_fu_implementation",
    "choose_queue_size",
    "reshape_curve",
    "retime",
    "technique_choices",
]
