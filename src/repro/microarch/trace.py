"""Reproducible synthetic trace generation from workload profiles.

A trace is a set of parallel numpy arrays, one entry per dynamic
instruction: micro-op kind, register-dependence distances, and the memory /
branch outcomes pre-drawn from the profile's rates.  Pre-drawing keeps the
pipeline model deterministic for a given ``(profile, seed)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .isa import Uop
from .workloads import WorkloadProfile


@dataclass(frozen=True)
class SyntheticTrace:
    """Parallel per-instruction arrays; see module docstring."""

    kinds: np.ndarray  # int8 Uop codes
    dep1: np.ndarray  # distance (instructions back) of first source, 0=none
    dep2: np.ndarray  # distance of second source, 0 = none
    branch_mispredict: np.ndarray  # bool, only meaningful for BRANCH
    l1_miss: np.ndarray  # bool, only meaningful for LOAD/STORE
    l2_miss: np.ndarray  # bool, implies l1_miss
    icache_miss: np.ndarray  # bool: fetch stalls for an L2 refill

    def __post_init__(self) -> None:
        n = len(self.kinds)
        for name in (
            "dep1", "dep2", "branch_mispredict", "l1_miss", "l2_miss",
            "icache_miss",
        ):
            if len(getattr(self, name)) != n:
                raise ValueError(f"trace array {name} has mismatched length")

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def l2_misses_per_instruction(self) -> float:
        """The ``mr`` of Eq 5 for this trace."""
        return float(np.count_nonzero(self.l2_miss)) / len(self)

    def kind_fraction(self, kind: Uop) -> float:
        """Fraction of instructions of the given kind."""
        return float(np.count_nonzero(self.kinds == int(kind))) / len(self)


def generate_trace(
    profile: WorkloadProfile, n_instructions: int, seed: int = 0
) -> SyntheticTrace:
    """Draw a trace of ``n_instructions`` from a workload profile.

    Dependence distances are geometric with the profile's mean; a distance
    of ``k`` means the instruction reads the result of the instruction
    ``k`` slots earlier (clipped at the start of the trace).  Stores and
    branches take one source; loads take one address source; arithmetic
    takes two.
    """
    if n_instructions < 1:
        raise ValueError("need at least one instruction")
    rng = np.random.default_rng(seed)

    kinds_list = list(profile.mix.keys())
    probs = np.array([profile.mix[k] for k in kinds_list])
    codes = np.array([int(k) for k in kinds_list], dtype=np.int8)
    kinds = rng.choice(codes, size=n_instructions, p=probs / probs.sum())

    # Geometric dependence distances with the requested mean (mean of a
    # geometric(p) on {1,2,...} is 1/p).
    p = 1.0 / profile.dep_mean_distance
    dep1 = rng.geometric(p, size=n_instructions)
    dep2 = rng.geometric(p, size=n_instructions)
    index = np.arange(n_instructions)
    dep1 = np.minimum(dep1, index)  # cannot reach before the trace start
    dep2 = np.minimum(dep2, index)
    # Single-source kinds ignore dep2.
    single_source = np.isin(kinds, [int(Uop.LOAD), int(Uop.STORE), int(Uop.BRANCH)])
    dep2 = np.where(single_source, 0, dep2)

    is_branch = kinds == int(Uop.BRANCH)
    branch_misp = is_branch & (rng.random(n_instructions) < profile.branch_misp_rate)

    is_mem = np.isin(kinds, [int(Uop.LOAD), int(Uop.STORE)])
    l1_miss = is_mem & (rng.random(n_instructions) < profile.l1d_miss_rate)
    l2_miss = l1_miss & (rng.random(n_instructions) < profile.l2_miss_rate)
    icache_miss = rng.random(n_instructions) < profile.icache_miss_rate

    return SyntheticTrace(
        kinds=kinds,
        dep1=dep1.astype(np.int32),
        dep2=dep2.astype(np.int32),
        branch_mispredict=branch_misp,
        l1_miss=l1_miss,
        l2_miss=l2_miss,
        icache_miss=icache_miss,
    )
