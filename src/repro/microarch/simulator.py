"""Workload measurement harness: what the controller senses per phase.

For every (workload-phase, core-configuration) pair the EVAL optimiser
needs the Eq 5 ingredients: ``CPIcomp``, the L2 miss rate ``mr``, the
observed overlap between misses and computation, and the per-subsystem
activity factors.  This module runs the pipeline model (twice: once as-is
and once with L2 misses suppressed, to split computation from memory
stalls) and caches results, since the same measurements are reused across
the 100-chip Monte Carlo population.

The in-process cache is a bounded LRU keyed on the profile's canonical
:meth:`~repro.microarch.workloads.WorkloadProfile.content_hash`, so
structurally identical profiles — suite members, inline specs, evolved
workloads — share entries regardless of how they were constructed, and a
long campaign over generated workloads cannot grow the cache without
bound.  ``microarch.cache.{hits,misses,evictions}`` counters expose its
behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..chip.floorplan import Floorplan, default_floorplan
from .activity import activity_factors, rho_vector
from .pipeline import DEFAULT_CORE_CONFIG, CoreConfig, simulate, simulate_batch
from .trace import generate_trace
from .workloads import WorkloadProfile


@dataclass(frozen=True)
class WorkloadMeasurement:
    """Eq 5 inputs plus sensed activity for one workload-phase."""

    name: str
    phase: str
    domain: str
    cpi_comp: float
    cpi_total: float  # at nominal frequency, for reference
    l2_miss_rate: float  # misses per instruction (``mr``)
    overlap_factor: float  # fraction of miss latency NOT hidden
    activity: np.ndarray  # alpha_f per subsystem, canonical order
    rho: np.ndarray  # accesses per instruction per subsystem
    ipc: float

    def __post_init__(self) -> None:
        if self.cpi_comp <= 0.0:
            raise ValueError("cpi_comp must be positive")


def _profile_key(profile: WorkloadProfile) -> str:
    """Cache identity of a profile: its canonical content hash.

    Hashing the wire document (rather than an ad-hoc field tuple) means
    equal-content profiles alias the same entry wherever they came from,
    and a future profile field can never be silently dropped from the
    key — ``to_wire`` is the single canonical serialisation.
    """
    return profile.content_hash()


#: LRU capacity of the measurement cache (entries, not bytes).  Large
#: enough for every (workload-phase, config) pair of a figure-10 style
#: campaign; small enough that generated-workload sweeps stay bounded.
MEASUREMENT_CACHE_CAPACITY = 4096

_CACHE: "OrderedDict[Tuple, WorkloadMeasurement]" = OrderedDict()
_CACHE_CAPACITY: int = MEASUREMENT_CACHE_CAPACITY
_DEFAULT_FLOORPLAN: "list" = []


def _default_floorplan_singleton() -> Floorplan:
    if not _DEFAULT_FLOORPLAN:
        _DEFAULT_FLOORPLAN.append(default_floorplan())
    return _DEFAULT_FLOORPLAN[0]


def clear_measurement_cache() -> None:
    """Drop all cached measurements (used by tests)."""
    _CACHE.clear()


def set_measurement_cache_capacity(capacity: int) -> int:
    """Set the LRU cap (returns the previous value; tests shrink it)."""
    global _CACHE_CAPACITY
    if capacity < 1:
        raise ValueError("cache capacity must be >= 1")
    previous = _CACHE_CAPACITY
    _CACHE_CAPACITY = int(capacity)
    _evict()
    return previous


def measurement_cache_len() -> int:
    """Current number of cached measurements."""
    return len(_CACHE)


def _evict() -> None:
    evicted = 0
    while len(_CACHE) > _CACHE_CAPACITY:
        _CACHE.popitem(last=False)
        evicted += 1
    if evicted:
        obs.inc("microarch.cache.evictions", float(evicted))


def _cache_get(key: Tuple) -> Optional[WorkloadMeasurement]:
    """LRU lookup; every access touches all three cache counters so the
    serial and parallel engine paths stay structurally comparable."""
    measurement = _CACHE.get(key)
    if measurement is not None:
        _CACHE.move_to_end(key)
    obs.inc("microarch.cache.hits", 1.0 if measurement is not None else 0.0)
    obs.inc("microarch.cache.misses", 0.0 if measurement is not None else 1.0)
    obs.inc("microarch.cache.evictions", 0.0)
    return measurement


def _cache_put(key: Tuple, measurement: WorkloadMeasurement) -> None:
    _CACHE[key] = measurement
    _CACHE.move_to_end(key)
    _evict()


def measure_workload(
    profile: WorkloadProfile,
    config: CoreConfig = DEFAULT_CORE_CONFIG,
    n_instructions: int = 12000,
    seed: int = 0,
    floorplan: Optional[Floorplan] = None,
    mem_latency_cycles: Optional[int] = None,
) -> WorkloadMeasurement:
    """Measure one workload-phase on one core configuration (cached).

    Args:
        profile: Workload (or phase-specialised workload) profile.
        config: Core configuration (queue sizes, extra stage, ...).
        n_instructions: Trace length; 12k instructions is enough for CPI
            to stabilise within ~1%.
        seed: Trace RNG seed.
        floorplan: Floorplan for activity extraction (default Fig 7(b)).
        mem_latency_cycles: Override of the L2-miss round trip used to
            derive the overlap factor (defaults to the config's).
    """
    floorplan = floorplan or _default_floorplan_singleton()
    key = (
        _profile_key(profile),
        config,
        n_instructions,
        seed,
        tuple(floorplan.names),
    )
    cached = _cache_get(key)
    if cached is not None:
        return cached

    trace = generate_trace(profile, n_instructions, seed)
    full = simulate(trace, config)
    comp = simulate(trace, config, suppress_l2_misses=True)

    mr = trace.l2_misses_per_instruction
    latency = mem_latency_cycles or config.mem_latency
    if mr > 0.0:
        overlap = (full.cpi - comp.cpi) / (mr * latency)
        overlap = float(np.clip(overlap, 0.05, 1.0))
    else:
        overlap = 1.0  # irrelevant: no misses

    measurement = WorkloadMeasurement(
        name=profile.name,
        phase=profile.phases[0].name if profile.phases else "",
        domain=profile.domain,
        cpi_comp=comp.cpi,
        cpi_total=full.cpi,
        l2_miss_rate=mr,
        overlap_factor=overlap,
        activity=activity_factors(trace, full, floorplan),
        rho=rho_vector(trace, floorplan),
        ipc=full.ipc,
    )
    _cache_put(key, measurement)
    return measurement


def measure_suite_batched(
    requests: Sequence[Tuple[WorkloadProfile, CoreConfig]],
    n_instructions: int = 12000,
    seed: int = 0,
    floorplan: Optional[Floorplan] = None,
    mem_latency_cycles: Optional[int] = None,
) -> List[WorkloadMeasurement]:
    """Measure many (profile, config) pairs with batched trace walks.

    The serial path regenerates the trace and re-runs :func:`simulate`
    twice for every request; here each distinct profile generates its
    trace once and all of its configuration variants (full and
    L2-suppressed) advance through one
    :func:`~repro.microarch.pipeline.simulate_batch` walk, with the
    CPI/overlap extraction applied per lane afterwards.  Returns the
    measurements in request order, bit-identical to calling
    :func:`measure_workload` per request (the two share the LRU cache,
    so mixing the paths is safe).
    """
    floorplan = floorplan or _default_floorplan_singleton()
    floorplan_names = tuple(floorplan.names)
    requests = list(requests)
    out: List[Optional[WorkloadMeasurement]] = [None] * len(requests)
    missing: "OrderedDict[Tuple, List[int]]" = OrderedDict()
    for index, (profile, config) in enumerate(requests):
        key = (
            _profile_key(profile),
            config,
            n_instructions,
            seed,
            floorplan_names,
        )
        cached = _cache_get(key)
        if cached is not None:
            out[index] = cached
        else:
            missing.setdefault(key, []).append(index)

    # One trace per distinct profile; all of its config variants share
    # the walk.
    by_trace: "OrderedDict[str, List[Tuple]]" = OrderedDict()
    for key, indices in missing.items():
        profile, config = requests[indices[0]]
        by_trace.setdefault(key[0], []).append((key, profile, config))

    for group in by_trace.values():
        profile = group[0][1]
        trace = generate_trace(profile, n_instructions, seed)
        variants: List[Tuple[CoreConfig, bool]] = []
        for _, _, config in group:
            variants.append((config, False))
            variants.append((config, True))
        sims = simulate_batch(trace, variants)

        mr = trace.l2_misses_per_instruction
        rho = rho_vector(trace, floorplan)
        for slot, (key, prof, config) in enumerate(group):
            full = sims[2 * slot]
            comp = sims[2 * slot + 1]
            latency = mem_latency_cycles or config.mem_latency
            if mr > 0.0:
                overlap = (full.cpi - comp.cpi) / (mr * latency)
                overlap = float(np.clip(overlap, 0.05, 1.0))
            else:
                overlap = 1.0  # irrelevant: no misses
            measurement = WorkloadMeasurement(
                name=prof.name,
                phase=prof.phases[0].name if prof.phases else "",
                domain=prof.domain,
                cpi_comp=comp.cpi,
                cpi_total=full.cpi,
                l2_miss_rate=mr,
                overlap_factor=overlap,
                activity=activity_factors(trace, full, floorplan),
                rho=rho,
                ipc=full.ipc,
            )
            _cache_put(key, measurement)
            for index in missing[key]:
                out[index] = measurement
    return out


def measure_suite(
    profiles,
    config: CoreConfig = DEFAULT_CORE_CONFIG,
    n_instructions: int = 12000,
    seed: int = 0,
):
    """Measure a list of profiles; returns them in input order.

    Routed through :func:`measure_suite_batched` so a cold suite costs
    one trace walk per profile instead of two simulations each; results
    are bit-identical to the per-profile path.
    """
    return measure_suite_batched(
        [(profile, config) for profile in profiles], n_instructions, seed
    )
