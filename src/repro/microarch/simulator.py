"""Workload measurement harness: what the controller senses per phase.

For every (workload-phase, core-configuration) pair the EVAL optimiser
needs the Eq 5 ingredients: ``CPIcomp``, the L2 miss rate ``mr``, the
observed overlap between misses and computation, and the per-subsystem
activity factors.  This module runs the pipeline model (twice: once as-is
and once with L2 misses suppressed, to split computation from memory
stalls) and caches results, since the same measurements are reused across
the 100-chip Monte Carlo population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..chip.floorplan import Floorplan, default_floorplan
from .activity import activity_factors, rho_vector
from .pipeline import DEFAULT_CORE_CONFIG, CoreConfig, simulate
from .trace import generate_trace
from .workloads import WorkloadProfile


@dataclass(frozen=True)
class WorkloadMeasurement:
    """Eq 5 inputs plus sensed activity for one workload-phase."""

    name: str
    phase: str
    domain: str
    cpi_comp: float
    cpi_total: float  # at nominal frequency, for reference
    l2_miss_rate: float  # misses per instruction (``mr``)
    overlap_factor: float  # fraction of miss latency NOT hidden
    activity: np.ndarray  # alpha_f per subsystem, canonical order
    rho: np.ndarray  # accesses per instruction per subsystem
    ipc: float

    def __post_init__(self) -> None:
        if self.cpi_comp <= 0.0:
            raise ValueError("cpi_comp must be positive")


def _profile_key(profile: WorkloadProfile) -> Tuple:
    return (
        profile.name,
        profile.phases[0].name if profile.phases else "",
        profile.dep_mean_distance,
        profile.branch_misp_rate,
        profile.l1d_miss_rate,
        profile.l2_miss_rate,
        tuple(sorted((int(k), v) for k, v in profile.mix.items())),
    )


_CACHE: Dict[Tuple, WorkloadMeasurement] = {}
_DEFAULT_FLOORPLAN: "list" = []


def _default_floorplan_singleton() -> Floorplan:
    if not _DEFAULT_FLOORPLAN:
        _DEFAULT_FLOORPLAN.append(default_floorplan())
    return _DEFAULT_FLOORPLAN[0]


def clear_measurement_cache() -> None:
    """Drop all cached measurements (used by tests)."""
    _CACHE.clear()


def measure_workload(
    profile: WorkloadProfile,
    config: CoreConfig = DEFAULT_CORE_CONFIG,
    n_instructions: int = 12000,
    seed: int = 0,
    floorplan: Optional[Floorplan] = None,
    mem_latency_cycles: Optional[int] = None,
) -> WorkloadMeasurement:
    """Measure one workload-phase on one core configuration (cached).

    Args:
        profile: Workload (or phase-specialised workload) profile.
        config: Core configuration (queue sizes, extra stage, ...).
        n_instructions: Trace length; 12k instructions is enough for CPI
            to stabilise within ~1%.
        seed: Trace RNG seed.
        floorplan: Floorplan for activity extraction (default Fig 7(b)).
        mem_latency_cycles: Override of the L2-miss round trip used to
            derive the overlap factor (defaults to the config's).
    """
    floorplan = floorplan or _default_floorplan_singleton()
    key = (
        _profile_key(profile),
        config,
        n_instructions,
        seed,
        tuple(floorplan.names),
    )
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    trace = generate_trace(profile, n_instructions, seed)
    full = simulate(trace, config)
    comp = simulate(trace, config, suppress_l2_misses=True)

    mr = trace.l2_misses_per_instruction
    latency = mem_latency_cycles or config.mem_latency
    if mr > 0.0:
        overlap = (full.cpi - comp.cpi) / (mr * latency)
        overlap = float(np.clip(overlap, 0.05, 1.0))
    else:
        overlap = 1.0  # irrelevant: no misses

    measurement = WorkloadMeasurement(
        name=profile.name,
        phase=profile.phases[0].name if profile.phases else "",
        domain=profile.domain,
        cpi_comp=comp.cpi,
        cpi_total=full.cpi,
        l2_miss_rate=mr,
        overlap_factor=overlap,
        activity=activity_factors(trace, full, floorplan),
        rho=rho_vector(trace, floorplan),
        ipc=full.ipc,
    )
    _CACHE[key] = measurement
    return measurement


def measure_suite(
    profiles,
    config: CoreConfig = DEFAULT_CORE_CONFIG,
    n_instructions: int = 12000,
    seed: int = 0,
):
    """Measure a list of profiles; returns them in input order."""
    return [
        measure_workload(profile, config, n_instructions, seed)
        for profile in profiles
    ]
