"""Micro-architecture substrate: OoO core model, workloads, phases."""

from .activity import accesses_per_instruction, activity_factors, rho_vector
from .isa import BASE_LATENCY, Uop, queue_of
from .phases import (
    COUNTER_MAX,
    N_BUCKETS,
    DetectedPhase,
    PhaseDetector,
    PhaseInstance,
    generate_phase_stream,
)
from .pipeline import DEFAULT_CORE_CONFIG, CoreConfig, SimResult, simulate
from .simulator import (
    WorkloadMeasurement,
    clear_measurement_cache,
    measure_suite,
    measure_workload,
)
from .trace import SyntheticTrace, generate_trace
from .workloads import FP, INT, PhaseSpec, WorkloadProfile, by_name, spec2000_like_suite

__all__ = [
    "BASE_LATENCY",
    "COUNTER_MAX",
    "CoreConfig",
    "DEFAULT_CORE_CONFIG",
    "DetectedPhase",
    "FP",
    "INT",
    "N_BUCKETS",
    "PhaseDetector",
    "PhaseInstance",
    "PhaseSpec",
    "SimResult",
    "SyntheticTrace",
    "Uop",
    "WorkloadMeasurement",
    "WorkloadProfile",
    "accesses_per_instruction",
    "activity_factors",
    "by_name",
    "clear_measurement_cache",
    "generate_phase_stream",
    "generate_trace",
    "measure_suite",
    "measure_workload",
    "queue_of",
    "rho_vector",
    "simulate",
    "spec2000_like_suite",
]
