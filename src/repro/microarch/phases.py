"""Program phases: stream generation and Sherwood-style detection.

The adaptation runtime (Section 4.3) is driven by a hardware phase
detector [28]: basic-block execution frequencies are accumulated into a
32-bucket vector with 6-bit saturating counters (Figure 7(a)); when the
vector moves far from the current phase's signature, the detector fires,
and the controller either reuses a saved configuration (phase seen
before) or runs the fuzzy-controller routines.

Because our workloads are synthetic profiles, each phase also carries a
synthetic basic-block vector signature: a fixed random direction per
phase plus small per-interval sampling noise — which is exactly the
stability/recurrence structure the detector exploits on real codes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .workloads import PhaseSpec, WorkloadProfile

#: Figure 7(a): 32 buckets with 6-bit saturating counters.
N_BUCKETS = 32
COUNTER_MAX = 63


@dataclass(frozen=True)
class PhaseInstance:
    """One stable phase occurrence in an execution."""

    workload: str
    spec: PhaseSpec
    profile: WorkloadProfile  # the phase-specialised profile
    duration_ms: float
    signature: np.ndarray = field(repr=False)  # noiseless BBV direction

    def sample_bbv(self, rng: np.random.Generator, noise: float = 0.006) -> np.ndarray:
        """Return one noisy quantised BBV observation for this phase."""
        vector = self.signature + rng.normal(0.0, noise, N_BUCKETS)
        vector = np.clip(vector, 0.0, None)
        total = vector.sum()
        if total <= 0.0:
            vector = np.ones(N_BUCKETS)
            total = float(N_BUCKETS)
        return np.minimum(
            np.round(vector / total * 4.0 * COUNTER_MAX), COUNTER_MAX
        ).astype(np.int64)


def generate_phase_stream(
    profile: WorkloadProfile,
    total_ms: float = 2000.0,
    mean_phase_ms: float = 120.0,
    seed: int = 0,
) -> List[PhaseInstance]:
    """Generate a stream of stable phases for a workload.

    Phase kinds recur according to the profile's phase weights; durations
    are lognormal around ``mean_phase_ms`` (the paper's SPEC average is
    ~120 ms).  Each phase kind has a persistent BBV signature so the
    detector can recognise recurrences.
    """
    if total_ms <= 0.0:
        raise ValueError("total_ms must be positive")
    rng = np.random.default_rng(seed)
    specs = list(profile.phases)
    weights = np.array([p.weight for p in specs])
    weights = weights / weights.sum()

    signatures = {}
    for spec in specs:
        # zlib.crc32 is deterministic across processes, unlike hash().
        digest = zlib.crc32(f"{profile.name}/{spec.name}".encode())
        sig_rng = np.random.default_rng(digest)
        signature = sig_rng.dirichlet(np.ones(N_BUCKETS) * 0.5)
        signatures[spec.name] = signature

    stream: List[PhaseInstance] = []
    elapsed = 0.0
    last_name: Optional[str] = None
    while elapsed < total_ms:
        spec = specs[rng.choice(len(specs), p=weights)]
        if len(specs) > 1 and spec.name == last_name:
            continue  # phases alternate; a repeat is the same phase
        duration = float(
            np.clip(rng.lognormal(np.log(mean_phase_ms), 0.4), 20.0, 600.0)
        )
        stream.append(
            PhaseInstance(
                workload=profile.name,
                spec=spec,
                profile=profile.phase_profile(spec),
                duration_ms=min(duration, total_ms - elapsed),
                signature=signatures[spec.name],
            )
        )
        elapsed += duration
        last_name = spec.name
    return stream


@dataclass
class DetectedPhase:
    """Result of feeding one BBV interval to the detector."""

    phase_id: int
    is_new: bool
    changed: bool  # True when this interval starts a different phase


class PhaseDetector:
    """Sherwood-style BBV phase detector (Figure 7(a) parameters).

    Signatures are 32-bucket quantised vectors; two intervals belong to
    the same phase when their normalised Manhattan distance is below
    ``threshold``.  The detector keeps a table of past phase signatures,
    so recurring phases get their original IDs back (enabling the
    controller's saved-configuration reuse).
    """

    def __init__(self, threshold: float = 0.25, max_table: int = 64):
        if not 0.0 < threshold < 2.0:
            raise ValueError("threshold must be in (0, 2)")
        self.threshold = threshold
        self.max_table = max_table
        self._table: List[np.ndarray] = []
        self._counts: List[int] = []
        self._current: Optional[int] = None

    @staticmethod
    def distance(a: np.ndarray, b: np.ndarray) -> float:
        """Normalised Manhattan distance between two quantised BBVs."""
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        denominator = a.sum() + b.sum()
        if denominator <= 0.0:
            return 0.0
        return float(np.abs(a - b).sum() / denominator)

    @property
    def current_phase(self) -> Optional[int]:
        """ID of the phase the detector believes it is in (None at start)."""
        return self._current

    @property
    def table_size(self) -> int:
        """Number of distinct phases seen so far."""
        return len(self._table)

    def observe(self, bbv: np.ndarray) -> DetectedPhase:
        """Feed one interval's BBV; classify it against the phase table."""
        bbv = np.asarray(bbv)
        if bbv.shape != (N_BUCKETS,):
            raise ValueError(f"BBV must have {N_BUCKETS} buckets")
        best_id, best_dist = -1, np.inf
        for pid, signature in enumerate(self._table):
            dist = self.distance(bbv, signature)
            if dist < best_dist:
                best_id, best_dist = pid, dist
        if best_id >= 0 and best_dist <= self.threshold:
            # Exponentially age the stored signature toward the new sample.
            self._counts[best_id] += 1
            self._table[best_id] = (
                0.9 * self._table[best_id] + 0.1 * bbv.astype(float)
            )
            changed = self._current != best_id
            self._current = best_id
            return DetectedPhase(phase_id=best_id, is_new=False, changed=changed)
        if len(self._table) >= self.max_table:
            # Evict the least-seen phase (hardware table is finite).
            victim = int(np.argmin(self._counts))
            self._table[victim] = bbv.astype(float)
            self._counts[victim] = 1
            self._current = victim
            return DetectedPhase(phase_id=victim, is_new=True, changed=True)
        self._table.append(bbv.astype(float))
        self._counts.append(1)
        self._current = len(self._table) - 1
        return DetectedPhase(phase_id=self._current, is_new=True, changed=True)
