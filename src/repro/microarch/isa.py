"""Micro-operation vocabulary of the trace-driven core model.

The simulator does not execute real binaries (see DESIGN.md substitution
S6); it consumes synthetic traces whose instructions are drawn from this
small micro-op vocabulary, which is sufficient to exercise every structure
the paper adapts (issue queues, integer/FP units, the memory hierarchy).
"""

from __future__ import annotations

from enum import IntEnum


class Uop(IntEnum):
    """Micro-op kinds.  Integer values index numpy arrays in the trace."""

    INT_ALU = 0
    INT_MUL = 1
    FP_ADD = 2
    FP_MUL = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6


#: Uops dispatched to the integer issue queue.
INT_QUEUE_UOPS = frozenset({Uop.INT_ALU, Uop.INT_MUL, Uop.BRANCH})
#: Uops dispatched to the FP issue queue.
FP_QUEUE_UOPS = frozenset({Uop.FP_ADD, Uop.FP_MUL})
#: Uops dispatched to the load/store queue.
MEM_QUEUE_UOPS = frozenset({Uop.LOAD, Uop.STORE})

#: Execution latency in cycles (L1-hit latency for loads; misses add more).
BASE_LATENCY = {
    Uop.INT_ALU: 1,
    Uop.INT_MUL: 3,
    Uop.FP_ADD: 4,
    Uop.FP_MUL: 4,
    Uop.LOAD: 3,
    Uop.STORE: 1,
    Uop.BRANCH: 1,
}


def queue_of(kind: int) -> str:
    """Return which issue queue ('int', 'fp', 'mem') a uop kind uses."""
    if kind in (Uop.INT_ALU, Uop.INT_MUL, Uop.BRANCH):
        return "int"
    if kind in (Uop.FP_ADD, Uop.FP_MUL):
        return "fp"
    return "mem"
