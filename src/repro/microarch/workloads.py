"""Synthetic SPEC 2000-like workload profiles.

The paper evaluates SPECint/SPECfp 2000 on SESC.  We cannot ship SPEC
binaries or traces, so each application is replaced by a *profile*: an
instruction mix, dependency-distance distribution (ILP), branch
mispredict rate, cache miss rates, and a phase structure.  The profiles
below span the behaviour space the paper's techniques are sensitive to —
int vs FP (which issue queue / FU gets resized or replicated),
compute-bound vs memory-bound (how much frequency is worth), and
high- vs low-ILP (how much queue downsizing hurts).

Rates are quoted per instruction; miss rates are per *access* of the
relevant structure.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Tuple

from .isa import Uop

INT = "int"
FP = "fp"

#: Weight / mix sums are accepted within this tolerance of 1.0.  Wide
#: enough for measured (ingested) fractions that went through a float
#: renormalisation, tight enough that a genuinely malformed profile is
#: rejected here instead of surfacing as numeric drift downstream.
SUM_TOLERANCE = 1e-6

_SCALE_FIELDS = ("l2_scale", "branch_scale", "ilp_scale", "fp_scale")


@dataclass(frozen=True)
class PhaseSpec:
    """One stable program phase (Sherwood-style, ~120 ms each).

    ``weight`` is the fraction of execution time spent in the phase.
    Scale factors multiply the parent profile's rates, letting a phase be
    e.g. "the memory-bound stretch" of an otherwise compute-bound app.
    """

    name: str
    weight: float
    l2_scale: float = 1.0
    branch_scale: float = 1.0
    ilp_scale: float = 1.0
    fp_scale: float = 1.0  # multiplies the FP fraction of the mix

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise ValueError(
                f"phase {self.name!r}: weight must be in (0, 1], "
                f"got {self.weight}"
            )
        for field_name in _SCALE_FIELDS:
            scale = getattr(self, field_name)
            if not math.isfinite(scale) or scale < 0.0:
                raise ValueError(
                    f"phase {self.name!r}: {field_name} must be a finite "
                    f"non-negative number, got {scale}"
                )

    # -- wire ------------------------------------------------------------
    def to_wire(self) -> Dict[str, Any]:
        """The canonical JSON document for this phase (floats by repr)."""
        return {
            "name": self.name,
            "weight": self.weight,
            "l2_scale": self.l2_scale,
            "branch_scale": self.branch_scale,
            "ilp_scale": self.ilp_scale,
            "fp_scale": self.fp_scale,
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "PhaseSpec":
        """Rebuild a phase from :meth:`to_wire` (bit-identical floats)."""
        try:
            return cls(
                name=str(doc["name"]),
                weight=float(doc["weight"]),
                l2_scale=float(doc.get("l2_scale", 1.0)),
                branch_scale=float(doc.get("branch_scale", 1.0)),
                ilp_scale=float(doc.get("ilp_scale", 1.0)),
                fp_scale=float(doc.get("fp_scale", 1.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad phase document {doc!r}: {exc}") from exc


@dataclass(frozen=True)
class WorkloadProfile:
    """A synthetic application profile.

    Attributes:
        name: Application name (SPEC-2000-alike).
        domain: ``int`` or ``fp`` — decides which issue queue / FU the
            micro-architectural techniques target (Section 4.1 "depending
            on the type of application running").
        mix: Instruction mix over :class:`Uop` kinds (must sum to 1).
        dep_mean_distance: Mean register-dependence distance in
            instructions (geometric); larger = more ILP.
        branch_misp_rate: Mispredictions per branch.
        l1d_miss_rate: L1-D misses per load/store.
        l2_miss_rate: L2 misses per L1-D miss (so L2 misses/access is the
            product).
        icache_miss_rate: L1-I misses per instruction (refilled from the
            L2; instruction footprints rarely spill to memory).
        phases: Stable phases (weights sum to 1).
    """

    name: str
    domain: str
    mix: Dict[Uop, float]
    dep_mean_distance: float
    branch_misp_rate: float
    l1d_miss_rate: float
    l2_miss_rate: float
    icache_miss_rate: float = 0.001
    phases: Tuple[PhaseSpec, ...] = (PhaseSpec("main", 1.0),)

    def __post_init__(self) -> None:
        total = sum(self.mix.values())
        if abs(total - 1.0) > SUM_TOLERANCE:
            raise ValueError(
                f"workload {self.name!r}: instruction mix sums to "
                f"{total!r}, expected 1.0 (tolerance {SUM_TOLERANCE})"
            )
        if any(fraction < 0.0 for fraction in self.mix.values()):
            raise ValueError(
                f"workload {self.name!r}: instruction mix has a negative "
                f"fraction"
            )
        if self.domain not in (INT, FP):
            raise ValueError(
                f"workload {self.name!r}: domain must be {INT!r} or {FP!r}, "
                f"got {self.domain!r}"
            )
        weights = sum(p.weight for p in self.phases)
        if abs(weights - 1.0) > SUM_TOLERANCE:
            raise ValueError(
                f"workload {self.name!r}: phase weights sum to {weights!r}, "
                f"expected 1.0 (tolerance {SUM_TOLERANCE})"
            )
        if self.dep_mean_distance < 1.0:
            raise ValueError(
                f"workload {self.name!r}: dep_mean_distance must be >= 1, "
                f"got {self.dep_mean_distance}"
            )
        for field_name in ("branch_misp_rate", "l1d_miss_rate",
                           "l2_miss_rate", "icache_miss_rate"):
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"workload {self.name!r}: {field_name} must be in "
                    f"[0, 1], got {rate}"
                )

    def phase_profile(self, phase: PhaseSpec) -> "WorkloadProfile":
        """Return a copy of this profile with the phase's scalings applied."""
        mix = dict(self.mix)
        fp_frac = mix.get(Uop.FP_ADD, 0.0) + mix.get(Uop.FP_MUL, 0.0)
        if fp_frac > 0.0 and phase.fp_scale != 1.0:
            new_fp = min(fp_frac * phase.fp_scale, 0.9)
            shift = new_fp - fp_frac
            mix[Uop.FP_ADD] = mix.get(Uop.FP_ADD, 0.0) * new_fp / fp_frac
            mix[Uop.FP_MUL] = mix.get(Uop.FP_MUL, 0.0) * new_fp / fp_frac
            mix[Uop.INT_ALU] = mix.get(Uop.INT_ALU, 0.0) - shift
            if mix[Uop.INT_ALU] <= 0.0:
                raise ValueError("fp_scale leaves no integer instructions")
        return replace(
            self,
            mix=mix,
            dep_mean_distance=max(1.0, self.dep_mean_distance * phase.ilp_scale),
            branch_misp_rate=min(1.0, self.branch_misp_rate * phase.branch_scale),
            l2_miss_rate=min(1.0, self.l2_miss_rate * phase.l2_scale),
            phases=(PhaseSpec(phase.name, 1.0),),
        )

    # ------------------------------------------------------------------
    # Canonical wire format + content hash.
    # ------------------------------------------------------------------
    def to_wire(self) -> Dict[str, Any]:
        """The canonical JSON document for this profile.

        Mix keys ride as :class:`Uop` names and floats survive Python's
        ``json`` round trip bit-identically (repr-based), so
        ``from_wire(to_wire(p)) == p`` exactly.  This is what lets
        generated / ingested (non-suite) profiles cross the campaign
        service's JSON-lines wire and address the artifact cache by
        *content* instead of by suite name.
        """
        return {
            "name": self.name,
            "domain": self.domain,
            "mix": {kind.name: fraction for kind, fraction in self.mix.items()},
            "dep_mean_distance": self.dep_mean_distance,
            "branch_misp_rate": self.branch_misp_rate,
            "l1d_miss_rate": self.l1d_miss_rate,
            "l2_miss_rate": self.l2_miss_rate,
            "icache_miss_rate": self.icache_miss_rate,
            "phases": [phase.to_wire() for phase in self.phases],
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "WorkloadProfile":
        """Rebuild a profile from :meth:`to_wire`; raises ``ValueError``
        (with the offending field) on malformed documents."""
        try:
            mix = {
                Uop[str(kind)]: float(fraction)
                for kind, fraction in dict(doc["mix"]).items()
            }
        except KeyError as exc:
            raise ValueError(
                f"bad workload document: unknown or missing mix kind {exc}"
            ) from exc
        try:
            phases = tuple(
                PhaseSpec.from_wire(inner) for inner in doc.get("phases", [])
            ) or (PhaseSpec("main", 1.0),)
            return cls(
                name=str(doc["name"]),
                domain=str(doc["domain"]),
                mix=mix,
                dep_mean_distance=float(doc["dep_mean_distance"]),
                branch_misp_rate=float(doc["branch_misp_rate"]),
                l1d_miss_rate=float(doc["l1d_miss_rate"]),
                l2_miss_rate=float(doc["l2_miss_rate"]),
                icache_miss_rate=float(doc.get("icache_miss_rate", 0.001)),
                phases=phases,
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"bad workload document (missing/invalid field): {exc}"
            ) from exc

    def content_hash(self) -> str:
        """SHA-256 of the canonical wire document.

        Stable across processes and hosts (sorted keys, repr floats), so
        two structurally identical profiles — whatever produced them —
        hash alike, and any field change (including the name) rehashes.

        The digest is memoised per instance (profiles are frozen, so the
        document cannot change): the measurement cache keys on it for
        every lookup, and re-serialising the mix each time would put
        ``json.dumps`` on the runner's hot path.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            document = json.dumps(self.to_wire(), sort_keys=True)
            cached = hashlib.sha256(document.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_content_hash", cached)
        return cached


def _mix(
    int_alu: float,
    int_mul: float,
    fp_add: float,
    fp_mul: float,
    load: float,
    store: float,
    branch: float,
) -> Dict[Uop, float]:
    return {
        Uop.INT_ALU: int_alu,
        Uop.INT_MUL: int_mul,
        Uop.FP_ADD: fp_add,
        Uop.FP_MUL: fp_mul,
        Uop.LOAD: load,
        Uop.STORE: store,
        Uop.BRANCH: branch,
    }


def spec2000_like_suite() -> List[WorkloadProfile]:
    """Return the 10-application suite used throughout the evaluation."""
    return [
        # ---------------- SPECint-like ----------------
        WorkloadProfile(
            "gzip*", INT, _mix(0.44, 0.02, 0.0, 0.0, 0.24, 0.12, 0.18),
            dep_mean_distance=3.2, branch_misp_rate=0.06,
            l1d_miss_rate=0.02, l2_miss_rate=0.10, icache_miss_rate=0.0008,
            phases=(
                PhaseSpec("compress", 0.6),
                PhaseSpec("io", 0.4, l2_scale=2.5, ilp_scale=0.8),
            ),
        ),
        WorkloadProfile(
            "gcc*", INT, _mix(0.42, 0.01, 0.0, 0.0, 0.26, 0.14, 0.17),
            dep_mean_distance=2.8, branch_misp_rate=0.08,
            l1d_miss_rate=0.035, l2_miss_rate=0.18, icache_miss_rate=0.010,
            phases=(
                PhaseSpec("parse", 0.35, branch_scale=1.3),
                PhaseSpec("optimize", 0.45, ilp_scale=1.2),
                PhaseSpec("emit", 0.20, l2_scale=1.8),
            ),
        ),
        WorkloadProfile(
            "mcf*", INT, _mix(0.38, 0.01, 0.0, 0.0, 0.33, 0.10, 0.18),
            dep_mean_distance=2.2, branch_misp_rate=0.09,
            l1d_miss_rate=0.12, l2_miss_rate=0.55,
            phases=(
                PhaseSpec("pointer-chase", 0.7, l2_scale=1.2),
                PhaseSpec("refine", 0.3, l2_scale=0.5, ilp_scale=1.2),
            ),
        ),
        WorkloadProfile(
            "crafty*", INT, _mix(0.50, 0.03, 0.0, 0.0, 0.22, 0.08, 0.17),
            dep_mean_distance=3.8, branch_misp_rate=0.07,
            l1d_miss_rate=0.012, l2_miss_rate=0.06, icache_miss_rate=0.007,
        ),
        WorkloadProfile(
            "twolf*", INT, _mix(0.43, 0.02, 0.0, 0.0, 0.26, 0.11, 0.18),
            dep_mean_distance=2.9, branch_misp_rate=0.10,
            l1d_miss_rate=0.05, l2_miss_rate=0.22, icache_miss_rate=0.004,
            phases=(
                PhaseSpec("place", 0.5, branch_scale=1.1),
                PhaseSpec("route", 0.5, l2_scale=1.5),
            ),
        ),
        # ---------------- SPECfp-like ----------------
        WorkloadProfile(
            "swim*", FP, _mix(0.20, 0.01, 0.22, 0.16, 0.27, 0.10, 0.04),
            dep_mean_distance=6.0, branch_misp_rate=0.01,
            l1d_miss_rate=0.10, l2_miss_rate=0.45,
            phases=(
                PhaseSpec("stencil", 0.8, l2_scale=1.1),
                PhaseSpec("boundary", 0.2, l2_scale=0.4, fp_scale=0.7),
            ),
        ),
        WorkloadProfile(
            "applu*", FP, _mix(0.22, 0.01, 0.24, 0.18, 0.24, 0.08, 0.03),
            dep_mean_distance=5.0, branch_misp_rate=0.015,
            l1d_miss_rate=0.06, l2_miss_rate=0.30,
            phases=(
                PhaseSpec("sweep-x", 0.45),
                PhaseSpec("sweep-y", 0.45, ilp_scale=0.9),
                PhaseSpec("norm", 0.10, fp_scale=0.6, l2_scale=0.5),
            ),
        ),
        WorkloadProfile(
            "mgrid*", FP, _mix(0.18, 0.01, 0.26, 0.20, 0.25, 0.07, 0.03),
            dep_mean_distance=6.5, branch_misp_rate=0.008,
            l1d_miss_rate=0.05, l2_miss_rate=0.25,
        ),
        WorkloadProfile(
            "art*", FP, _mix(0.24, 0.01, 0.20, 0.15, 0.28, 0.08, 0.04),
            dep_mean_distance=4.5, branch_misp_rate=0.02,
            l1d_miss_rate=0.18, l2_miss_rate=0.70,
            phases=(
                PhaseSpec("scan", 0.6, l2_scale=1.2),
                PhaseSpec("match", 0.4, l2_scale=0.6, ilp_scale=1.1),
            ),
        ),
        WorkloadProfile(
            "equake*", FP, _mix(0.26, 0.02, 0.20, 0.14, 0.25, 0.08, 0.05),
            dep_mean_distance=4.0, branch_misp_rate=0.025,
            l1d_miss_rate=0.04, l2_miss_rate=0.20,
        ),
    ]


def by_name(name: str) -> WorkloadProfile:
    """Look up a suite profile by name."""
    for profile in spec2000_like_suite():
        if profile.name == name:
            return profile
    raise KeyError(f"no workload named {name!r}")
