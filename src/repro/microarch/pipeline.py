"""Trace-driven out-of-order core timing model.

A one-pass timing simulation of a 3-issue out-of-order core in the style
of the paper's AMD-Athlon-64-like cores (Section 5): separate integer /
FP / memory issue queues (the int and FP queues are the resizable
structures of Section 3.3.2), a small set of functional units (the
replicable structures of Section 3.3.1), a ROB, and a non-blocking memory
hierarchy with the paper's 2/8/208-cycle round trips.

The model walks the trace once, computing for every instruction its
dispatch, issue, completion and retirement cycles under:

* fetch/issue/retire bandwidth,
* register dependences (from the trace's dependence distances),
* issue-queue / ROB occupancy (an instruction cannot dispatch while its
  queue is full — this is what makes CPI sensitive to queue downsizing),
* functional-unit structural hazards,
* branch-misprediction flushes (resolve-to-refetch loop), and
* cache misses (loads hold their dependents, not the pipeline).

This is the standard "interval" style of approximation: not
cycle-faithful to any RTL, but it reproduces the relative CPI effects the
paper's adaptation decisions depend on (queue size, extra execute stage,
memory-boundedness).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .isa import Uop
from .trace import SyntheticTrace


@dataclass(frozen=True)
class CoreConfig:
    """Micro-architectural parameters of the simulated core."""

    fetch_width: int = 3
    issue_width: int = 3
    retire_width: int = 3
    int_queue_size: int = 68  # Figure 7(a): full-sized integer issue queue
    fp_queue_size: int = 32  # Figure 7(a): full-sized FP issue queue
    mem_queue_size: int = 48
    rob_size: int = 160
    n_int_alu: int = 3  # Figure 7(a): 3 add/shift
    n_int_mul: int = 1  # ... + 1 mult
    n_fp_add: int = 1
    n_fp_mul: int = 1
    n_mem_ports: int = 2
    frontend_depth: int = 8
    branch_penalty: int = 6  # redirect cycles after resolve
    extra_exec_stage: int = 0  # FU-replication pipeline stage (Sec 3.3.1)
    l1_latency: int = 3
    l2_latency: int = 12
    mem_latency: int = 208
    #: Fraction of L2 misses a (stride) prefetcher converts into L2 hits.
    #: 0 disables prefetching (the paper's configuration); the ablation
    #: benches use it to study memory-boundedness sensitivity.
    prefetch_accuracy: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "fetch_width",
            "issue_width",
            "retire_width",
            "int_queue_size",
            "fp_queue_size",
            "mem_queue_size",
            "rob_size",
            "n_int_alu",
            "n_int_mul",
            "n_fp_add",
            "n_fp_mul",
            "n_mem_ports",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.extra_exec_stage < 0:
            raise ValueError("extra_exec_stage cannot be negative")
        if not 0.0 <= self.prefetch_accuracy <= 1.0:
            raise ValueError("prefetch_accuracy must be in [0, 1]")

    def with_resized_queue(self, domain: str, fraction: float = 0.75) -> "CoreConfig":
        """Return a config with the int or FP issue queue downsized.

        This is the Shift technique's CPI side: e.g. ``fraction=0.75``
        models the paper's 3/4-capacity configuration.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if domain == "int":
            return replace(
                self, int_queue_size=max(1, int(self.int_queue_size * fraction))
            )
        if domain == "fp":
            return replace(
                self, fp_queue_size=max(1, int(self.fp_queue_size * fraction))
            )
        raise ValueError("domain must be 'int' or 'fp'")

    def with_fu_replication(self) -> "CoreConfig":
        """Return a config with the extra execute stage of Section 3.3.1."""
        return replace(self, extra_exec_stage=1)


DEFAULT_CORE_CONFIG = CoreConfig()


@dataclass(frozen=True)
class SimResult:
    """Aggregate outcome of one pipeline simulation."""

    instructions: int
    cycles: int
    kind_counts: Dict[int, int]
    l1_misses: int
    l2_misses: int
    branch_flushes: int
    int_queue_waits: int  # dispatches delayed by a full int queue
    fp_queue_waits: int

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles


# Functional-unit groups: kind -> (group name, latency attr handled below).
_FU_GROUP = {
    int(Uop.INT_ALU): "int_alu",
    int(Uop.BRANCH): "int_alu",
    int(Uop.INT_MUL): "int_mul",
    int(Uop.FP_ADD): "fp_add",
    int(Uop.FP_MUL): "fp_mul",
    int(Uop.LOAD): "mem",
    int(Uop.STORE): "mem",
}

_QUEUE_OF = {
    int(Uop.INT_ALU): "int",
    int(Uop.BRANCH): "int",
    int(Uop.INT_MUL): "int",
    int(Uop.FP_ADD): "fp",
    int(Uop.FP_MUL): "fp",
    int(Uop.LOAD): "mem",
    int(Uop.STORE): "mem",
}


def simulate(
    trace: SyntheticTrace,
    config: CoreConfig = DEFAULT_CORE_CONFIG,
    *,
    suppress_l2_misses: bool = False,
) -> SimResult:
    """Run the timing model over a trace and return aggregate results.

    Args:
        trace: The synthetic instruction trace.
        config: Core configuration.
        suppress_l2_misses: Treat L2 misses as L2 hits.  Running the model
            twice (with and without) separates ``CPIcomp`` from the memory
            stall term of Eq 5.
    """
    n = len(trace)
    kinds = trace.kinds
    dep1 = trace.dep1
    dep2 = trace.dep2

    exec_latency = {
        int(Uop.INT_ALU): 1,
        int(Uop.BRANCH): 1,
        int(Uop.INT_MUL): 3,
        int(Uop.FP_ADD): 4,
        int(Uop.FP_MUL): 4,
        int(Uop.STORE): 1,
        int(Uop.LOAD): config.l1_latency,
    }

    fu_free = {
        "int_alu": [0] * config.n_int_alu,
        "int_mul": [0] * config.n_int_mul,
        "fp_add": [0] * config.n_fp_add,
        "fp_mul": [0] * config.n_fp_mul,
        "mem": [0] * config.n_mem_ports,
    }
    queue_size = {
        "int": config.int_queue_size,
        "fp": config.fp_queue_size,
        "mem": config.mem_queue_size,
    }
    # Issue times of previously dispatched, same-queue instructions, in
    # dispatch order (FIFO occupancy approximation).
    queue_issue_log: Dict[str, list] = {"int": [], "fp": [], "mem": []}

    completion = np.zeros(n, dtype=np.int64)
    retire_log: list = []  # retirement cycles in program order

    issued_in_cycle: Dict[int, int] = defaultdict(int)
    fetched_in_cycle: Dict[int, int] = defaultdict(int)

    fetch_ready = 0  # earliest cycle the next instruction may fetch
    kind_counts: Dict[int, int] = defaultdict(int)
    l1_misses = l2_misses = branch_flushes = 0
    int_queue_waits = fp_queue_waits = 0
    frontend = config.frontend_depth + config.extra_exec_stage

    for i in range(n):
        kind = int(kinds[i])
        kind_counts[kind] += 1

        # ---------------- fetch ----------------
        t_fetch = fetch_ready
        if trace.icache_miss[i]:
            # Instruction fetch stalls for an L2 refill of the I-line.
            t_fetch += config.l2_latency
        while fetched_in_cycle[t_fetch] >= config.fetch_width:
            t_fetch += 1
        fetched_in_cycle[t_fetch] += 1
        fetch_ready = t_fetch

        # ---------------- dispatch (rename + queue entry) --------------
        dispatch = t_fetch + frontend
        # ROB occupancy: the (i - rob_size)-th instruction must retire.
        if i >= config.rob_size:
            dispatch = max(dispatch, retire_log[i - config.rob_size])
        # Issue-queue occupancy (FIFO approximation).
        qname = _QUEUE_OF[kind]
        log = queue_issue_log[qname]
        if len(log) >= queue_size[qname]:
            blocker = log[len(log) - queue_size[qname]]
            if blocker > dispatch:
                dispatch = blocker
                if qname == "int":
                    int_queue_waits += 1
                elif qname == "fp":
                    fp_queue_waits += 1

        # ---------------- issue ----------------
        ready = dispatch
        if dep1[i]:
            ready = max(ready, completion[i - dep1[i]])
        if dep2[i]:
            ready = max(ready, completion[i - dep2[i]])

        group = _FU_GROUP[kind]
        units = fu_free[group]
        t_issue = ready
        while True:
            while issued_in_cycle[t_issue] >= config.issue_width:
                t_issue += 1
            unit = min(range(len(units)), key=units.__getitem__)
            if units[unit] > t_issue:
                t_issue = units[unit]
                continue
            break
        issued_in_cycle[t_issue] += 1
        units[unit] = t_issue + 1  # fully pipelined (initiation interval 1)
        log.append(t_issue)

        # ---------------- execute / memory ----------------
        latency = exec_latency[kind]
        if kind == int(Uop.LOAD) or kind == int(Uop.STORE):
            if trace.l1_miss[i]:
                l1_misses += 1
                covered = (
                    config.prefetch_accuracy > 0.0
                    and (i * 2654435761) % 1000 < config.prefetch_accuracy * 1000
                )
                if trace.l2_miss[i] and not suppress_l2_misses and not covered:
                    l2_misses += 1
                    latency += config.mem_latency
                else:
                    latency += config.l2_latency
        completion[i] = t_issue + latency

        # ---------------- retire (in order) ----------------
        t_retire = completion[i]
        if retire_log:
            t_retire = max(t_retire, retire_log[-1])
            # Retire-width: the retire slot frees when the instruction
            # retire_width places earlier has retired.
            if len(retire_log) >= config.retire_width:
                t_retire = max(
                    t_retire, retire_log[len(retire_log) - config.retire_width] + 1
                )
        retire_log.append(t_retire)

        # ---------------- branch misprediction ----------------
        if kind == int(Uop.BRANCH) and trace.branch_mispredict[i]:
            branch_flushes += 1
            redirect = completion[i] + config.branch_penalty + config.extra_exec_stage
            if redirect > fetch_ready:
                fetch_ready = redirect

    cycles = int(retire_log[-1]) + 1
    return SimResult(
        instructions=n,
        cycles=cycles,
        kind_counts=dict(kind_counts),
        l1_misses=l1_misses,
        l2_misses=l2_misses,
        branch_flushes=branch_flushes,
        int_queue_waits=int_queue_waits,
        fp_queue_waits=fp_queue_waits,
    )


class _PipelineState:
    """Mutable machine state of one :func:`simulate_batch` variant.

    Exactly the loop-carried state of :func:`simulate`, hoisted into an
    object so K variants can advance through one shared trace walk.
    """

    __slots__ = (
        "config", "suppress", "exec_latency", "fu_free", "queue_size",
        "queue_issue_log", "completion", "retire_log", "issued_in_cycle",
        "fetched_in_cycle", "fetch_ready", "l1_misses", "l2_misses",
        "branch_flushes", "int_queue_waits", "fp_queue_waits", "frontend",
    )

    def __init__(self, n: int, config: CoreConfig, suppress: bool):
        self.config = config
        self.suppress = suppress
        self.exec_latency = {
            int(Uop.INT_ALU): 1,
            int(Uop.BRANCH): 1,
            int(Uop.INT_MUL): 3,
            int(Uop.FP_ADD): 4,
            int(Uop.FP_MUL): 4,
            int(Uop.STORE): 1,
            int(Uop.LOAD): config.l1_latency,
        }
        self.fu_free = {
            "int_alu": [0] * config.n_int_alu,
            "int_mul": [0] * config.n_int_mul,
            "fp_add": [0] * config.n_fp_add,
            "fp_mul": [0] * config.n_fp_mul,
            "mem": [0] * config.n_mem_ports,
        }
        self.queue_size = {
            "int": config.int_queue_size,
            "fp": config.fp_queue_size,
            "mem": config.mem_queue_size,
        }
        self.queue_issue_log: Dict[str, list] = {"int": [], "fp": [], "mem": []}
        self.completion = [0] * n
        self.retire_log: list = []
        self.issued_in_cycle: Dict[int, int] = defaultdict(int)
        self.fetched_in_cycle: Dict[int, int] = defaultdict(int)
        self.fetch_ready = 0
        self.l1_misses = self.l2_misses = self.branch_flushes = 0
        self.int_queue_waits = self.fp_queue_waits = 0
        self.frontend = config.frontend_depth + config.extra_exec_stage


def simulate_batch(
    trace: SyntheticTrace,
    variants: Sequence[Tuple[CoreConfig, bool]],
) -> List[SimResult]:
    """Run K independent ``(config, suppress_l2_misses)`` variants in one
    trace walk.

    The per-instruction trace reads (kind, dependence distances, miss and
    misprediction flags) are shared across all variants — the point of
    batching this interpreter-bound model — while each variant advances
    its own machine state through exactly the :func:`simulate` loop body.
    The model is pure integer arithmetic, so ``simulate_batch(trace,
    [(c, s), ...])[k] == simulate(trace, c_k, suppress_l2_misses=s_k)``
    holds bit-for-bit; the golden suite asserts it.
    """
    if not variants:
        return []
    n = len(trace)
    kinds = trace.kinds.tolist()
    dep1 = trace.dep1.tolist()
    dep2 = trace.dep2.tolist()
    branch_misp = trace.branch_mispredict.tolist()
    l1_miss = trace.l1_miss.tolist()
    l2_miss = trace.l2_miss.tolist()
    icache_miss = trace.icache_miss.tolist()

    states = [
        _PipelineState(n, config, suppress) for config, suppress in variants
    ]
    load = int(Uop.LOAD)
    store = int(Uop.STORE)
    branch = int(Uop.BRANCH)
    kind_counts: Dict[int, int] = defaultdict(int)

    for i in range(n):
        kind = kinds[i]
        kind_counts[kind] += 1
        d1 = dep1[i]
        d2 = dep2[i]
        qname = _QUEUE_OF[kind]
        group = _FU_GROUP[kind]
        icm = icache_miss[i]
        is_mem = kind == load or kind == store
        misses_l1 = is_mem and l1_miss[i]
        misses_l2 = misses_l1 and l2_miss[i]
        flushes = kind == branch and branch_misp[i]

        for s in states:
            config = s.config

            # ---------------- fetch ----------------
            t_fetch = s.fetch_ready
            if icm:
                t_fetch += config.l2_latency
            fetched = s.fetched_in_cycle
            while fetched[t_fetch] >= config.fetch_width:
                t_fetch += 1
            fetched[t_fetch] += 1
            s.fetch_ready = t_fetch

            # ---------------- dispatch (rename + queue entry) ----------
            dispatch = t_fetch + s.frontend
            if i >= config.rob_size:
                dispatch = max(dispatch, s.retire_log[i - config.rob_size])
            log = s.queue_issue_log[qname]
            qsize = s.queue_size[qname]
            if len(log) >= qsize:
                blocker = log[len(log) - qsize]
                if blocker > dispatch:
                    dispatch = blocker
                    if qname == "int":
                        s.int_queue_waits += 1
                    elif qname == "fp":
                        s.fp_queue_waits += 1

            # ---------------- issue ----------------
            ready = dispatch
            completion = s.completion
            if d1:
                ready = max(ready, completion[i - d1])
            if d2:
                ready = max(ready, completion[i - d2])
            units = s.fu_free[group]
            issued = s.issued_in_cycle
            t_issue = ready
            while True:
                while issued[t_issue] >= config.issue_width:
                    t_issue += 1
                unit = min(range(len(units)), key=units.__getitem__)
                if units[unit] > t_issue:
                    t_issue = units[unit]
                    continue
                break
            issued[t_issue] += 1
            units[unit] = t_issue + 1
            log.append(t_issue)

            # ---------------- execute / memory ----------------
            latency = s.exec_latency[kind]
            if misses_l1:
                s.l1_misses += 1
                covered = (
                    config.prefetch_accuracy > 0.0
                    and (i * 2654435761) % 1000
                    < config.prefetch_accuracy * 1000
                )
                if misses_l2 and not s.suppress and not covered:
                    s.l2_misses += 1
                    latency += config.mem_latency
                else:
                    latency += config.l2_latency
            completion[i] = t_issue + latency

            # ---------------- retire (in order) ----------------
            t_retire = completion[i]
            retire_log = s.retire_log
            if retire_log:
                t_retire = max(t_retire, retire_log[-1])
                if len(retire_log) >= config.retire_width:
                    t_retire = max(
                        t_retire,
                        retire_log[len(retire_log) - config.retire_width] + 1,
                    )
            retire_log.append(t_retire)

            # ---------------- branch misprediction ----------------
            if flushes:
                s.branch_flushes += 1
                redirect = (
                    completion[i]
                    + config.branch_penalty
                    + config.extra_exec_stage
                )
                if redirect > s.fetch_ready:
                    s.fetch_ready = redirect

    counts = dict(kind_counts)
    return [
        SimResult(
            instructions=n,
            cycles=int(s.retire_log[-1]) + 1,
            kind_counts=dict(counts),
            l1_misses=s.l1_misses,
            l2_misses=s.l2_misses,
            branch_flushes=s.branch_flushes,
            int_queue_waits=s.int_queue_waits,
            fp_queue_waits=s.fp_queue_waits,
        )
        for s in states
    ]
