"""Per-subsystem activity factors from a simulation (paper Section 4.1).

The controller's sensed inputs include each subsystem's activity factor
``alpha_f`` in accesses per cycle, measured with performance counters at
the start of every phase.  This module derives those counters from a
trace + simulation result: accesses per instruction (``rho_i``, the error
exposure of Eq 4) times IPC gives accesses per cycle.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..chip.floorplan import Floorplan
from .isa import Uop
from .pipeline import SimResult
from .trace import SyntheticTrace


def accesses_per_instruction(trace: SyntheticTrace) -> Dict[str, float]:
    """Per-subsystem accesses per instruction (``rho_i``) for a trace.

    The mapping encodes which structures an average instruction of each
    kind exercises on its way through the pipeline.
    """
    n = len(trace)
    frac = {kind: trace.kind_fraction(kind) for kind in Uop}
    loads_stores = frac[Uop.LOAD] + frac[Uop.STORE]
    int_ops = frac[Uop.INT_ALU] + frac[Uop.INT_MUL]
    fp_ops = frac[Uop.FP_ADD] + frac[Uop.FP_MUL]
    branches = frac[Uop.BRANCH]
    l1d_misses = float(np.count_nonzero(trace.l1_miss)) / n
    icache_misses = float(np.count_nonzero(trace.icache_miss)) / n

    # Every instruction is fetched, decoded, and mapped; integer ops (and
    # address computations) exercise the int cluster; FP ops the FP
    # cluster; memory ops the LSQ/DTLB/Dcache.  Register files see one
    # write plus reads (~2 accesses per op using them).
    rho = {
        "Icache": 1.0 + icache_misses,  # fetches + line refills
        "ITLB": 1.0,
        "BranchPred": branches + 0.25,  # lookups + updates; fetch predictor
        "Decode": 1.0,
        "IntMap": 1.0,  # all instructions are renamed through the int map
        "IntQ": int_ops + branches + loads_stores,  # address uops use IntQ slots
        "IntReg": 2.0 * (int_ops + branches) + loads_stores,
        "IntALU": int_ops + branches + loads_stores * 0.5,  # AGU work
        "FPMap": fp_ops,
        "FPQ": fp_ops,
        "FPReg": 2.0 * fp_ops,
        "FPUnit": fp_ops,
        "LdStQ": loads_stores,
        "DTLB": loads_stores,
        "Dcache": loads_stores + l1d_misses,  # misses refill the array
    }
    return rho


def activity_factors(
    trace: SyntheticTrace, result: SimResult, floorplan: Floorplan
) -> np.ndarray:
    """Per-subsystem ``alpha_f`` (accesses/cycle) in canonical order."""
    rho = accesses_per_instruction(trace)
    ipc = result.ipc
    return np.array([rho[name] * ipc for name in floorplan.names])


def rho_vector(trace: SyntheticTrace, floorplan: Floorplan) -> np.ndarray:
    """Per-subsystem ``rho_i`` (accesses/instruction) in canonical order."""
    rho = accesses_per_instruction(trace)
    return np.array([rho[name] for name in floorplan.names])
