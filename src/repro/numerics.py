"""Shared special functions, routed through the array-backend shim.

The Gaussian inverse survival function ``Qinv(p) = ndtri(1 - p)`` appears
in three places — the timing-error model (:mod:`repro.timing.errors`),
the optimiser's error-budget inversion (:mod:`repro.core.optimizer`) and
the fuzzy bank's demand feature (:mod:`repro.ml.bank`) — and the forward
survival function ``Q(z)`` sits in the innermost loop of the error-rate
evaluation.  Defining them once here, on top of
:func:`repro.backend.get_backend`, keeps the SciPy dependency surface
small and makes swapping the array backend (cupy/jax) a no-op for every
caller: they keep importing ``ndtri``/``norm_sf`` from this module.
"""

from __future__ import annotations

from .backend import get_backend

__all__ = ["ndtri", "norm_sf"]


def ndtri(q):
    """Inverse standard normal CDF via the active array backend."""
    return get_backend().ndtri(q)


def norm_sf(z):
    """Standard normal survival function ``Q(z) = P(X > z)``.

    Bit-identical to ``scipy.stats.norm.sf`` — which bottoms out in the
    same Cephes ``ndtr`` (an erf/erfc evaluation, switching to the
    complementary branch for large ``|x|``) via ``sf(z) = ndtr(-z)`` —
    but without the distribution layer's argument-munging overhead, which
    dominates for the small arrays the optimiser sweeps (about an order
    of magnitude per call at the sizes ``stage_error_rates`` sees).
    """
    backend = get_backend()
    return backend.ndtr(backend.xp.negative(z))
