"""Shared special functions.

The Gaussian inverse survival function ``Qinv(p) = ndtri(1 - p)`` appears
in three places — the timing-error model (:mod:`repro.timing.errors`),
the optimiser's error-budget inversion (:mod:`repro.core.optimizer`) and
the fuzzy bank's demand feature (:mod:`repro.ml.bank`) — and the forward
survival function ``Q(z)`` sits in the innermost loop of the error-rate
evaluation.  Importing/defining them once here keeps the SciPy dependency
surface small, so gating or replacing either (e.g. with an erfinv-based
fallback) is a one-file change.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr, ndtri

__all__ = ["ndtri", "norm_sf"]


def norm_sf(z):
    """Standard normal survival function ``Q(z) = P(X > z)``.

    Bit-identical to ``scipy.stats.norm.sf`` — which bottoms out in the
    same Cephes ``ndtr`` (an erf/erfc evaluation, switching to the
    complementary branch for large ``|x|``) via ``sf(z) = ndtr(-z)`` —
    but without the distribution layer's argument-munging overhead, which
    dominates for the small arrays the optimiser sweeps (about an order
    of magnitude per call at the sizes ``stage_error_rates`` sees).
    """
    return ndtr(np.negative(z))
