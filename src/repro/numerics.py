"""Shared special-function imports.

The Gaussian inverse survival function ``Qinv(p) = ndtri(1 - p)`` appears
in three places — the timing-error model (:mod:`repro.timing.errors`),
the optimiser's error-budget inversion (:mod:`repro.core.optimizer`) and
the fuzzy bank's demand feature (:mod:`repro.ml.bank`).  Importing it
once here keeps the SciPy dependency surface a single line, so gating or
replacing it (e.g. with an erfinv-based fallback) is a one-file change.
"""

from __future__ import annotations

from scipy.special import ndtri

__all__ = ["ndtri"]
