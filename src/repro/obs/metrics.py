"""Metrics registry: counters, gauges, and percentile histograms.

The experiment engine is a fan-out of identical Monte-Carlo units over
worker processes, so the registry is built around *mergeability*: every
metric serialises to a JSON-safe dict (:meth:`MetricsRegistry.to_dict`)
and merges losslessly for counters/gauges and approximately for
histograms (a bounded sample reservoir keeps percentile estimates
meaningful after a merge).  Workers drain their registry per unit of
work (:meth:`MetricsRegistry.drain`) and the parent folds the deltas in,
so ``--jobs N`` runs report fleet-wide totals with the same metric names
as a serial run.

Instrumented call sites use the module-level helpers :func:`inc`,
:func:`observe` and :func:`set_gauge`, which write into the *active*
registry — the top of a small stack that :func:`scoped` pushes a
campaign-local registry onto.  When observability is disabled
(:func:`disable`) every helper is a single boolean check, which is what
keeps the instrumented warm path within noise of the bare one.

The registry is process-local and not thread-safe; the engine's
parallelism is process-based, so no locking is needed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

#: Raw observations retained per histogram for percentile estimates;
#: beyond this the histogram keeps exact count/total/min/max only.
RESERVOIR_SIZE = 512

#: Percentiles reported by :meth:`Histogram.summary`.
PERCENTILES = (50.0, 90.0, 99.0)


class Counter:
    """A monotonically increasing total (float so it can carry seconds)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value (e.g. worker-pool size)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A distribution: exact count/total/min/max + a bounded reservoir.

    The reservoir keeps the first :data:`RESERVOIR_SIZE` observations
    (deterministic — no sampling RNG), which is plenty for the engine's
    per-unit and per-phase timings; percentiles over a truncated
    reservoir are approximate but the moments stay exact.
    """

    __slots__ = ("count", "total", "vmin", "vmax", "values")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)
        if len(self.values) < RESERVOIR_SIZE:
            self.values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile over the retained reservoir."""
        if not self.values:
            return 0.0
        return float(np.percentile(self.values, q))

    def summary(self) -> Dict[str, Any]:
        """JSON-safe summary including the reservoir (for later merging)."""
        doc: Dict[str, Any] = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.vmin,
            "max": self.vmax,
        }
        for q in PERCENTILES:
            doc[f"p{q:g}"] = self.percentile(q)
        doc["values"] = list(self.values)
        return doc

    def merge_dict(self, doc: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`summary` document into this one."""
        self.count += int(doc["count"])
        self.total += float(doc["total"])
        for bound, pick in (("min", min), ("max", max)):
            other = doc.get(bound)
            if other is not None:
                ours = self.vmin if bound == "min" else self.vmax
                merged = float(other) if ours is None else pick(ours, float(other))
                if bound == "min":
                    self.vmin = merged
                else:
                    self.vmax = merged
        room = RESERVOIR_SIZE - len(self.values)
        if room > 0:
            self.values.extend(float(v) for v in doc.get("values", [])[:room])


class MetricsRegistry:
    """A named collection of counters, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- access (create on first use) -----------------------------------
    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram()
        return metric

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)

    # -- wire format ----------------------------------------------------
    def to_dict(self, prefix: Optional[str] = None) -> Dict[str, Any]:
        """JSON-safe snapshot: the ``--metrics-out`` document.

        ``prefix`` restricts the snapshot to metrics whose name starts
        with it — how the campaign service carves one job's gauges
        (``serve.job.<id>.``) out of the shared registry for progress
        snapshots.
        """

        def keep(name: str) -> bool:
            return prefix is None or name.startswith(prefix)

        return {
            "counters": {
                n: c.value for n, c in sorted(self.counters.items()) if keep(n)
            },
            "gauges": {
                n: g.value for n, g in sorted(self.gauges.items()) if keep(n)
            },
            "histograms": {
                n: h.summary()
                for n, h in sorted(self.histograms.items())
                if keep(n)
            },
        }

    def merge_dict(self, doc: Dict[str, Any]) -> None:
        """Fold a :meth:`to_dict` document in: the cross-process merge."""
        for name, value in doc.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in doc.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, hdoc in doc.get("histograms", {}).items():
            self.histogram(name).merge_dict(hdoc)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters add, gauges last-write)."""
        self.merge_dict(other.to_dict())

    def clear(self) -> None:
        """Drop every metric (worker initialisation after fork)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def drain(self) -> Dict[str, Any]:
        """Snapshot and reset: the per-unit delta workers send back."""
        doc = self.to_dict()
        self.clear()
        return doc


# ----------------------------------------------------------------------
# Active-registry stack and the global on/off switch.
# ----------------------------------------------------------------------
_AMBIENT = MetricsRegistry()
_STACK: List[MetricsRegistry] = [_AMBIENT]
_ENABLED = True


def metrics_registry() -> MetricsRegistry:
    """The registry instrumented call sites currently write into."""
    return _STACK[-1]


@contextmanager
def scoped(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make ``registry`` the active one for the duration of the block."""
    _STACK.append(registry)
    try:
        yield registry
    finally:
        _STACK.pop()


def enabled() -> bool:
    return _ENABLED


def enable() -> None:
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn all instrumentation into cheap no-ops (see module docstring)."""
    global _ENABLED
    _ENABLED = False


# -- call-site helpers: one branch when disabled ------------------------
def inc(name: str, amount: float = 1.0) -> None:
    """Increment a counter in the active registry."""
    if _ENABLED:
        _STACK[-1].counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record one histogram observation in the active registry."""
    if _ENABLED:
        _STACK[-1].histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge in the active registry."""
    if _ENABLED:
        _STACK[-1].gauge(name).set(value)
