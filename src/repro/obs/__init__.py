"""Structured observability for the experiment engine.

Three cooperating pieces (each in its own module):

* :mod:`repro.obs.metrics` — a mergeable registry of counters, gauges
  and percentile histograms.  Workers drain per-unit deltas; the parent
  merges them, so ``--jobs N`` campaigns report fleet-wide totals.
* :mod:`repro.obs.spans` — nesting span timers that record into
  ``span.<name>_seconds`` histograms and compile to no-ops when
  observability is disabled.
* :mod:`repro.obs.events` — an optional JSON-lines event sink for
  discrete occurrences (span completions, cache-served cells).

Plus :func:`configure_logging` for the ``repro.*`` logger hierarchy
(plain text or JSON lines).

Typical use::

    from repro import obs

    obs.configure_logging("INFO")
    with obs.span("my.campaign"):
        run_experiments()
    print(obs.metrics_registry().to_dict())
"""

from .events import (
    EventSink,
    emit_event,
    get_event_sink,
    read_events,
    set_event_sink,
)
from .logsetup import JsonLogFormatter, configure_logging
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    inc,
    metrics_registry,
    observe,
    scoped,
    set_gauge,
)
from .spans import Span, current_span, span

__all__ = [
    "Counter",
    "EventSink",
    "Gauge",
    "Histogram",
    "JsonLogFormatter",
    "MetricsRegistry",
    "Span",
    "configure_logging",
    "current_span",
    "disable",
    "emit_event",
    "enable",
    "enabled",
    "get_event_sink",
    "inc",
    "metrics_registry",
    "observe",
    "read_events",
    "scoped",
    "set_event_sink",
    "set_gauge",
    "span",
]
