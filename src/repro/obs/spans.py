"""Lightweight nesting span timers.

``with span("runner.phase"):`` times a block and records the duration in
the active registry's ``span.<name>_seconds`` histogram; when an event
sink is installed it also emits a ``span`` event carrying the nesting
context (depth and enclosing span name).  Nesting is tracked on a
process-local stack, but deliberately *not* encoded into the metric
name: a unit of work timed inside a pool worker (no enclosing span) and
the same unit timed inside the serial loop (under ``engine.execute``)
must land in the same histogram, so serial and parallel runs report a
structurally identical metrics document.

When observability is disabled, :func:`span` returns a shared do-nothing
context manager — the warm path pays one boolean check and no clock
reads, which is what keeps instrumented runs within noise of bare ones.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from . import metrics
from .events import emit_event, get_event_sink

_SPAN_STACK: List[str] = []


class Span:
    """One timed block; use via :func:`span`, not directly."""

    __slots__ = ("name", "fields", "_start")

    def __init__(self, name: str, fields: Dict[str, Any]):
        self.name = name
        self.fields = fields
        self._start = 0.0

    def __enter__(self) -> "Span":
        _SPAN_STACK.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        _SPAN_STACK.pop()
        metrics.observe(f"span.{self.name}_seconds", elapsed)
        if get_event_sink() is not None:
            emit_event(
                "span",
                name=self.name,
                seconds=elapsed,
                depth=len(_SPAN_STACK),
                parent=_SPAN_STACK[-1] if _SPAN_STACK else None,
                **self.fields,
            )


class _NullSpan:
    """The disabled-path span: enter/exit do nothing at all."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


def span(name: str, **fields: Any):
    """A context manager timing a named block (no-op when disabled).

    ``fields`` are attached to the emitted event only, never to the
    metric name, so label cardinality cannot explode the registry.
    """
    if not metrics.enabled():
        return _NULL_SPAN
    return Span(name, fields)


def current_span() -> Optional[str]:
    """Name of the innermost open span, if any (used by tests)."""
    return _SPAN_STACK[-1] if _SPAN_STACK else None
