"""Logging configuration for the ``repro`` logger hierarchy.

Every instrumented module logs under ``repro.<module>``; this installs a
single handler on the ``repro`` root with either a human-readable or a
JSON-lines formatter (``--log-json``), replacing any handler a previous
call installed so repeated configuration (tests, REPL) never stacks
duplicate output.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional


class JsonLogFormatter(logging.Formatter):
    """One JSON object per log line, shippable alongside the event sink."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            doc["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(doc)


def configure_logging(
    level: str = "INFO",
    json_lines: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Configure the ``repro`` logger and return it.

    Args:
        level: Threshold name (``DEBUG``/``INFO``/``WARNING``/``ERROR``).
        json_lines: Emit one JSON object per line instead of plain text.
        stream: Destination (default ``sys.stderr``).
    """
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level.upper()))
    for handler in [h for h in logger.handlers if getattr(h, "_repro_obs", False)]:
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_obs = True  # type: ignore[attr-defined]
    if json_lines:
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
    logger.addHandler(handler)
    logger.propagate = False
    return logger
