"""JSON-lines event sink: one structured record per line.

Spans (:mod:`repro.obs.spans`) and the engine emit discrete events —
span completions, campaign cells served from cache, metric snapshots —
through a process-global sink.  With no sink installed (the default)
:func:`emit_event` is a single ``None`` check, so library users pay
nothing; installing an :class:`EventSink` turns the stream on.

The format is deliberately plain JSONL so any log shipper or ``jq`` can
consume it; :func:`read_events` is the matching reader used by tests and
small analysis scripts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Union


class EventSink:
    """Append structured events to a file (or any writable text stream)."""

    def __init__(self, target: Union[str, Path, IO[str]]):
        if isinstance(target, (str, Path)):
            self._file: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False

    def emit(self, kind: str, **fields: Any) -> None:
        """Write one event line; ``kind`` names the event type."""
        record: Dict[str, Any] = {"event": kind, "ts": time.time()}
        record.update(fields)
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL event file back into dicts (blank lines skipped)."""
    events = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            events.append(json.loads(line))
    return events


_SINK: Optional[EventSink] = None


def set_event_sink(sink: Optional[EventSink]) -> None:
    """Install (or with ``None`` remove) the process-global sink."""
    global _SINK
    _SINK = sink


def get_event_sink() -> Optional[EventSink]:
    return _SINK


def emit_event(kind: str, **fields: Any) -> None:
    """Emit to the global sink; a no-op when none is installed."""
    if _SINK is not None:
        _SINK.emit(kind, **fields)
