"""eval-repro: a reproduction of *EVAL: Utilizing Processors with
Variation-Induced Timing Errors* (Sarangi, Greskamp, Tiwari, Torrellas —
MICRO 2008).

Layer map (see DESIGN.md for the full inventory):

* :mod:`repro.variation` — VARIUS-style within-die variation maps.
* :mod:`repro.circuits` — alpha-power delay, leakage, dynamic power,
  ABB/ASV knobs.
* :mod:`repro.chip` — the Figure 7(b) floorplan and per-core constants.
* :mod:`repro.timing` — VATS error model and timing speculation (Eq 4-5).
* :mod:`repro.thermal` — the Eq 6-9 steady-state solver and sensors.
* :mod:`repro.microarch` — trace-driven OoO core, workloads, phases.
* :mod:`repro.mitigation` — tilt / shift / reshape techniques + area.
* :mod:`repro.ml` — the Appendix A fuzzy controllers.
* :mod:`repro.core` — environments, Freq/Power optimisation,
  high-dimensional dynamic adaptation, retuning, the runtime timeline.
* :mod:`repro.exps` — one experiment module per paper table/figure.
* :mod:`repro.exps.dse` — declarative design-space sweeps: SweepSpec →
  campaign service → Pareto/sensitivity analytics.
* :mod:`repro.workloads` — workload sources: trace ingestion,
  parameterized generation, adversarial evolution
  (``python -m repro.workloads``).
* :mod:`repro.obs` — metrics registry, span timers, JSONL event sink.
* :mod:`repro.serve` — the async campaign service (coalescing, retries,
  JSON-lines daemon; ``python -m repro.serve``).
* :mod:`repro.config` — the :class:`Settings` runtime-knob bundle.

Quickstart::

    from repro import quick_adapt

    result = quick_adapt()          # one chip, one workload, full EVAL
    print(result.f_core / 4e9)      # relative frequency, ~1.1-1.2

Observability::

    from repro import Settings, metrics_registry, span

    Settings.from_env().configure()        # logging per $EVAL_REPRO_*
    with span("my.block"):
        ...
    print(metrics_registry().to_dict())
"""

from . import obs
from .calibration import DEFAULT_CALIBRATION, Calibration
from .config import Settings
from .chip import build_chip_cores, build_core, build_novar_core, default_floorplan
from .core import (
    ADAPTIVE_ENVIRONMENTS,
    BASELINE,
    NOVAR,
    TS,
    TS_ASV,
    TS_ASV_Q_FU,
    AdaptationMode,
    AdaptationResult,
    Environment,
    optimize_phase,
    optimize_phases_batched,
)
from .exps.dse import SweepSpec, pareto_front, run_sweep
from .exps.engine import RunResult, RunSpec
from .exps.runner import ExperimentRunner, RunnerConfig
from .microarch import measure_workload, spec2000_like_suite
from .mitigation import TechniqueState, area_budget
from .workloads import (
    EvolveConfig,
    WorkloadFamily,
    evolve,
    family_by_name,
    family_names,
    ingest_trace,
)
from .obs import (
    EventSink,
    MetricsRegistry,
    configure_logging,
    metrics_registry,
    span,
)
from . import variation
from .variation import VariationModel

__version__ = "1.10.0"

__all__ = [
    "ADAPTIVE_ENVIRONMENTS",
    "AdaptationMode",
    "AdaptationResult",
    "BASELINE",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "Environment",
    "EventSink",
    "EvolveConfig",
    "ExperimentRunner",
    "MetricsRegistry",
    "NOVAR",
    "RunResult",
    "RunSpec",
    "RunnerConfig",
    "Settings",
    "SweepSpec",
    "TS",
    "TS_ASV",
    "TS_ASV_Q_FU",
    "TechniqueState",
    "VariationModel",
    "WorkloadFamily",
    "area_budget",
    "build_chip_cores",
    "build_core",
    "build_novar_core",
    "configure_logging",
    "default_floorplan",
    "evolve",
    "family_by_name",
    "family_names",
    "ingest_trace",
    "measure_workload",
    "metrics_registry",
    "obs",
    "optimize_phase",
    "optimize_phases_batched",
    "pareto_front",
    "quick_adapt",
    "run_sweep",
    "span",
    "spec2000_like_suite",
    "variation",
]


def quick_adapt(
    workload_index: int = 0, chip_seed: int = 42
) -> AdaptationResult:
    """One-call demo: adapt one chip for one workload under TS+ASV+Q+FU."""
    from .microarch.pipeline import DEFAULT_CORE_CONFIG

    chip = VariationModel().population(1, seed=chip_seed)[0]
    core = build_core(chip, 0)
    workload = spec2000_like_suite()[workload_index]
    env = TS_ASV_Q_FU
    base_cfg = TechniqueState(domain=workload.domain).core_config(
        DEFAULT_CORE_CONFIG, replication_built=env.fu
    )
    meas_full = measure_workload(workload, base_cfg)
    meas_resized = measure_workload(
        workload, base_cfg.with_resized_queue(workload.domain)
    )
    return optimize_phase(core, env, meas_full, meas_resized)
