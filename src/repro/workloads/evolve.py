"""Adversarial workload search: evolve profiles against the EVAL stack.

A small genetic loop in the spirit of the variability-aware workload
synthesis line of work (arxiv 2404.04258): a population of
:class:`WorkloadProfile` genomes is mutated and recombined, and fitness
is measured by actually running each candidate through the repro —
a one-cell :class:`~repro.exps.engine.RunSpec` submitted to a
:class:`~repro.serve.service.CampaignService` (in-process, or a remote
daemon now that non-suite profiles cross the wire inline).  The service
is the fitness oracle on purpose: identical candidates coalesce, and the
content-addressed summary cache serves repeated evaluations — elites
re-scored every generation, children that mutate back into a seen
genome, warm re-runs of a whole evolve — from disk instead of
recomputing.  An in-loop memo keyed by
:meth:`WorkloadProfile.content_hash` makes those hits explicit
(``workloads.evals_cached``).

Determinism: one ``np.random.default_rng(config.seed)`` stream drives
every draw in strict program order, candidate names are derived from
(generation, slot), and ranking ties break on the content hash — so a
pinned seed reproduces the same winner hash run after run, process after
process.

Objectives (all maximised):

* ``error-frac`` — the phase-weighted fraction of adaptation outcomes in
  the ``Error`` regime (timing-speculation recovery pressure);
* ``power`` — the suite's mean power draw (thermal pressure);
* ``perf-loss`` — negated relative performance (find what the
  techniques help least).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..core.environments import AdaptationMode, by_name
from ..exps.dse.drive import error_fraction
from ..exps.engine import RunSpec
from ..exps.runner import SuiteSummary
from ..microarch.isa import Uop
from ..microarch.workloads import WorkloadProfile
from .ingest import _normalise_fractions

#: Named fitness objectives; every function maps a cell's
#: :class:`SuiteSummary` to a score to maximise.
OBJECTIVES: Dict[str, Callable[[SuiteSummary], float]] = {
    "error-frac": error_fraction,
    "power": lambda summary: summary.power,
    "perf-loss": lambda summary: -summary.perf_rel,
}

_RATE_FIELDS = (
    "branch_misp_rate", "l1d_miss_rate", "l2_miss_rate", "icache_miss_rate",
)

_MIN_INT_ALU = 0.02


@dataclass(frozen=True)
class EvolveConfig:
    """Knobs of one adversarial search."""

    environment: str = "TS"
    mode: str = "Exh-Dyn"
    objective: str = "error-frac"
    generations: int = 4
    population: int = 6
    elite: int = 2
    mutation_scale: float = 0.25
    crossover_rate: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r} "
                f"(available: {sorted(OBJECTIVES)})"
            )
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if not 1 <= self.elite < self.population:
            raise ValueError("need 1 <= elite < population")
        if self.mutation_scale <= 0.0:
            raise ValueError("mutation_scale must be positive")
        by_name(self.environment)  # raises KeyError on unknown names
        AdaptationMode(self.mode)


@dataclass
class EvolutionResult:
    """The winner and the audit trail of one evolve run."""

    winner: WorkloadProfile
    winner_hash: str
    fitness: float
    objective: str
    ranking: List[Tuple[WorkloadProfile, float]] = field(repr=False)
    history: List[Dict[str, float]] = field(default_factory=list)
    evals_submitted: int = 0
    evals_cached: int = 0


# ----------------------------------------------------------------------
# Genome operators.
# ----------------------------------------------------------------------
def _clamp_rate(value: float) -> float:
    return float(min(1.0, max(0.0, value)))


def _jitter(rng: np.random.Generator, scale: float) -> float:
    return float(np.exp(rng.normal(0.0, scale)))


def _fix_mix(mix: Dict[Uop, float]) -> Dict[Uop, float]:
    """Renormalise a jittered mix exactly, keeping the ALU floor."""
    mix = {kind: max(0.0, value) for kind, value in mix.items()}
    if mix.get(Uop.INT_ALU, 0.0) < _MIN_INT_ALU:
        mix[Uop.INT_ALU] = _MIN_INT_ALU
    return _normalise_fractions(
        {kind: value for kind, value in mix.items() if value > 0.0}
    )


def mutate_profile(
    profile: WorkloadProfile,
    rng: np.random.Generator,
    *,
    scale: float = 0.25,
    name: Optional[str] = None,
) -> WorkloadProfile:
    """One mutation step: multiplicative jitter on every genome field.

    Rates stay in [0, 1], the dependency distance stays >= 1, the mix is
    re-closed exactly, and phase weights re-normalise — the child always
    passes the profile validator.
    """
    mix = {
        kind: value * _jitter(rng, scale * 0.5)
        for kind, value in profile.mix.items()
    }
    rates = {
        field_name: _clamp_rate(getattr(profile, field_name) * _jitter(rng, scale))
        for field_name in _RATE_FIELDS
    }
    phases = profile.phases
    if len(phases) > 1:
        weights = _normalise_fractions(
            {i: p.weight * _jitter(rng, scale * 0.5)
             for i, p in enumerate(phases)}
        )
        phases = tuple(
            replace(
                p,
                weight=weights[i],
                l2_scale=max(0.0, p.l2_scale * _jitter(rng, scale * 0.5)),
                ilp_scale=max(0.0, p.ilp_scale * _jitter(rng, scale * 0.5)),
            )
            for i, p in enumerate(phases)
        )
    return replace(
        profile,
        name=name if name is not None else profile.name,
        mix=_fix_mix(mix),
        dep_mean_distance=max(1.0, profile.dep_mean_distance * _jitter(rng, scale)),
        phases=phases,
        **rates,
    )


def crossover_profiles(
    a: WorkloadProfile,
    b: WorkloadProfile,
    rng: np.random.Generator,
    *,
    name: str,
) -> WorkloadProfile:
    """Field-level recombination of two parents (child named ``name``)."""
    if a.domain != b.domain:
        # Cross-domain mixes do not blend meaningfully; inherit from a.
        return replace(a, name=name)
    union = set(a.mix) | set(b.mix)
    mix = _fix_mix({
        kind: 0.5 * (a.mix.get(kind, 0.0) + b.mix.get(kind, 0.0))
        for kind in union
    })

    def pick(field_name: str) -> float:
        parent = a if rng.random() < 0.5 else b
        return getattr(parent, field_name)

    phases = (a if rng.random() < 0.5 else b).phases
    return WorkloadProfile(
        name=name,
        domain=a.domain,
        mix=mix,
        dep_mean_distance=pick("dep_mean_distance"),
        branch_misp_rate=pick("branch_misp_rate"),
        l1d_miss_rate=pick("l1d_miss_rate"),
        l2_miss_rate=pick("l2_miss_rate"),
        icache_miss_rate=pick("icache_miss_rate"),
        phases=phases,
    )


# ----------------------------------------------------------------------
# Fitness oracle.
# ----------------------------------------------------------------------
class _Oracle:
    """Scores profiles through a campaign service, memoised by hash."""

    def __init__(self, client, config: EvolveConfig, window: int, registry):
        self.client = client
        self.spec_env = by_name(config.environment)
        self.spec_mode = AdaptationMode(config.mode)
        self.score = OBJECTIVES[config.objective]
        self.window = max(1, window)
        # Counters go to the registry active at evolve() entry, pinned:
        # service scheduler threads push their own scoped campaign
        # registries onto the shared stack while we run, and plain
        # obs.inc() would land there instead of the caller's scope.
        self.registry = registry
        self.memo: Dict[str, float] = {}
        self.submitted = 0
        self.cached = 0

    def _summary(self, payload) -> SuiteSummary:
        # A remote client returns the wire payload; the in-process one
        # returns a RunResult.
        if isinstance(payload, dict):
            from ..serve.protocol import summaries_from_wire

            cells = summaries_from_wire(payload["cells"])
        else:
            cells = payload.summaries
        return cells[(self.spec_env.name, self.spec_mode.value)]

    def evaluate(
        self, population: Sequence[WorkloadProfile]
    ) -> List[float]:
        """Fitness of every member (memo first, then windowed submits)."""
        hashes = [profile.content_hash() for profile in population]
        pending: List[Tuple[str, str]] = []  # (hash, job_id)

        def drain_one() -> None:
            content_hash, job_id = pending.pop(0)
            summary = self._summary(self.client.result(job_id))
            self.memo[content_hash] = float(self.score(summary))

        queued = set()
        for profile, content_hash in zip(population, hashes):
            if content_hash in self.memo:
                self.cached += 1
                self.registry.counter("workloads.evals_cached").inc()
                continue
            if content_hash in queued:
                continue  # an identical twin is already in flight
            queued.add(content_hash)
            if len(pending) >= self.window:
                drain_one()
            spec = RunSpec(
                environments=(self.spec_env,),
                modes=(self.spec_mode,),
                workloads=(profile,),
            )
            pending.append((content_hash, self.client.submit(spec)))
            self.submitted += 1
            self.registry.counter("workloads.evals").inc()
        while pending:
            drain_one()
        return [self.memo[content_hash] for content_hash in hashes]


# ----------------------------------------------------------------------
# The loop.
# ----------------------------------------------------------------------
def evolve(
    seeds: Sequence[WorkloadProfile],
    *,
    config: Optional[EvolveConfig] = None,
    runner=None,
    settings=None,
    service: Optional[str] = None,
) -> EvolutionResult:
    """Run the genetic loop; returns the ranked :class:`EvolutionResult`.

    Args:
        seeds: Initial gene pool (a generated family, ingested profiles,
            or suite members).  Fewer seeds than ``config.population``
            are topped up by mutation.
        config: Loop knobs (:class:`EvolveConfig`).
        runner: The :class:`~repro.exps.runner.ExperimentRunner` behind
            the in-process fitness oracle (default: built from
            ``settings``).  Ignored when ``service`` is given.
        settings: :class:`~repro.config.Settings` for the ephemeral
            service / default runner (cache dir, admission window...).
        service: ``host:port`` of a running campaign daemon — candidate
            profiles cross the wire inline and are scored remotely.
    """
    if not seeds:
        raise ValueError("evolve needs at least one seed profile")
    config = config if config is not None else EvolveConfig()
    rng = np.random.default_rng(config.seed)

    registry = obs.metrics_registry()

    def run(client, window: int) -> EvolutionResult:
        oracle = _Oracle(client, config, window, registry)
        population = _initial_population(list(seeds), config, rng)
        history: List[Dict[str, float]] = []
        ranked: List[Tuple[WorkloadProfile, float]] = []
        for generation in range(config.generations):
            with obs.span("workloads.generation", index=generation):
                fitnesses = oracle.evaluate(population)
            ranked = sorted(
                zip(population, fitnesses),
                key=lambda pair: (-pair[1], pair[0].content_hash()),
            )
            registry.counter("workloads.generations").inc()
            best_profile, best_fitness = ranked[0]
            entry = {
                "generation": float(generation),
                "best": best_fitness,
                "mean": float(np.mean(fitnesses)),
            }
            history.append(entry)
            obs.emit_event(
                "workloads.generation",
                index=generation,
                best=best_fitness,
                best_hash=best_profile.content_hash(),
                mean=entry["mean"],
                cached=oracle.cached,
                submitted=oracle.submitted,
            )
            if generation < config.generations - 1:
                population = _next_generation(ranked, config, rng, generation)
        winner, fitness = ranked[0]
        return EvolutionResult(
            winner=winner,
            winner_hash=winner.content_hash(),
            fitness=fitness,
            objective=config.objective,
            ranking=ranked,
            history=history,
            evals_submitted=oracle.submitted,
            evals_cached=oracle.cached,
        )

    if service is not None:
        from ..serve.daemon import ServiceClient

        window = settings.service_max_jobs if settings is not None else 4
        return run(ServiceClient(service), window)

    from ..config import Settings
    from ..serve.client import Client
    from ..serve.service import CampaignService

    settings = settings if settings is not None else Settings()
    if runner is None:
        from ..exps.runner import ExperimentRunner

        runner = ExperimentRunner.from_settings(settings)
    with CampaignService(runner, settings=settings) as svc:
        return run(Client(svc), settings.service_max_jobs)


def _initial_population(
    seeds: List[WorkloadProfile],
    config: EvolveConfig,
    rng: np.random.Generator,
) -> List[WorkloadProfile]:
    population = seeds[: config.population]
    slot = 0
    while len(population) < config.population:
        parent = seeds[int(rng.integers(len(seeds)))]
        population.append(
            mutate_profile(
                parent, rng,
                scale=config.mutation_scale,
                name=f"{parent.name}~m{slot}",
            )
        )
        slot += 1
    return population


def _next_generation(
    ranked: Sequence[Tuple[WorkloadProfile, float]],
    config: EvolveConfig,
    rng: np.random.Generator,
    generation: int,
) -> List[WorkloadProfile]:
    """Elites survive unchanged; the rest are bred from rank-weighted
    parents.  Unchanged elites are the cache's best friend: their
    re-evaluation next generation is a guaranteed memo/cache hit."""
    elites = [profile for profile, _ in ranked[: config.elite]]
    children: List[WorkloadProfile] = []
    # Rank-weighted parent choice: rank i gets weight (n - i).
    weights = np.arange(len(ranked), 0, -1, dtype=float)
    weights = weights / weights.sum()
    while len(elites) + len(children) < config.population:
        slot = len(children)
        name = f"evolved-g{generation + 1}-{slot:02d}"
        i = int(rng.choice(len(ranked), p=weights))
        parent = ranked[i][0]
        if len(ranked) > 1 and rng.random() < config.crossover_rate:
            j = int(rng.choice(len(ranked), p=weights))
            other = ranked[j][0]
            child = crossover_profiles(parent, other, rng, name=name)
            child = mutate_profile(
                child, rng, scale=config.mutation_scale, name=name
            )
        else:
            child = mutate_profile(
                parent, rng, scale=config.mutation_scale, name=name
            )
        children.append(child)
    return elites + children
