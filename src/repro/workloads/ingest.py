"""Trace ingestion: real instruction streams -> :class:`WorkloadProfile`.

The repro cannot ship SPEC traces, but it can *measure* yours.  A trace
is a stream of per-instruction records; the built-in readers parse the
simple JSONL and CSV formats below, and :func:`register_trace_adapter`
hooks any other producer (a SESC/gem5 converter, a Pin tool) into the
same pipeline.  One record::

    {"op": "LOAD", "dep1": 3, "dep2": 0, "branch_miss": false,
     "l1_miss": true, "l2_miss": false, "icache_miss": false, "block": 17}

``op`` is a :class:`~repro.microarch.isa.Uop` name; ``dep1``/``dep2`` are
register-dependence distances in instructions (0 = no source); the miss
flags are the outcomes the synthetic pipeline model pre-draws; ``block``
is an optional basic-block id used for Sherwood-style phase detection
(when absent, the op kind stands in for the block).  The CSV format is
the same fields as a header row.

:func:`ingest_trace` streams the records once, measuring

* the instruction **mix** over :class:`Uop` kinds,
* the mean **dependency distance** (ILP),
* the **miss rates** (branch per branch, L1-D per memory op, L2 per
  L1-D miss, I-cache per instruction), and
* the **phase structure**: fixed instruction windows are summarised as
  32-bucket basic-block vectors and fed to the
  :class:`~repro.microarch.phases.PhaseDetector`; each detected phase
  becomes a :class:`PhaseSpec` whose weight is its share of windows and
  whose scale factors are its per-window rates relative to the global
  means.

The result is a fully validated profile that flows through everything a
suite profile does — :func:`~repro.microarch.trace.generate_trace`, the
runner's content-addressed cache keys, and (inline, via
:func:`~repro.serve.protocol.workloads_to_wire`) the campaign daemon.
"""

from __future__ import annotations

import csv
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .. import obs
from ..microarch.isa import Uop
from ..microarch.phases import N_BUCKETS, PhaseDetector
from ..microarch.workloads import FP, INT, PhaseSpec, WorkloadProfile

#: Default phase-detection window, instructions.  Sherwood uses 10M on
#: real traces; synthetic/test traces are far shorter, so the default is
#: small enough that a few-thousand-instruction trace still has several
#: windows to cluster.
DEFAULT_WINDOW = 1000

_MEM_KINDS = (Uop.LOAD, Uop.STORE)
_FP_KINDS = (Uop.FP_ADD, Uop.FP_MUL)

_FLAG_FIELDS = ("branch_miss", "l1_miss", "l2_miss", "icache_miss")

_TRUE_STRINGS = frozenset(("1", "true", "yes", "t"))


@dataclass(frozen=True)
class TraceRecord:
    """One dynamic instruction of an ingested trace."""

    op: Uop
    dep1: int = 0
    dep2: int = 0
    branch_miss: bool = False
    l1_miss: bool = False
    l2_miss: bool = False
    icache_miss: bool = False
    block: Optional[int] = None


#: Registered trace adapters: format name -> (path -> record iterator).
_ADAPTERS: Dict[str, Callable[[str], Iterable[Any]]] = {}


def register_trace_adapter(
    name: str, reader: Callable[[str], Iterable[Any]]
) -> None:
    """Register a custom trace reader under ``--format name``.

    ``reader(path)`` may yield :class:`TraceRecord` objects or plain
    record dicts (the JSONL field names); both are accepted everywhere a
    built-in format is.
    """
    if not name or name in ("jsonl", "csv"):
        raise ValueError(f"adapter name {name!r} is reserved or empty")
    _ADAPTERS[name] = reader


def trace_adapters() -> Tuple[str, ...]:
    """The registered adapter names (built-ins excluded)."""
    return tuple(sorted(_ADAPTERS))


def _coerce_record(raw: Union[TraceRecord, Mapping[str, Any]]) -> TraceRecord:
    if isinstance(raw, TraceRecord):
        return raw
    try:
        op = raw["op"]
        kind = op if isinstance(op, Uop) else Uop[str(op)]
    except KeyError as exc:
        raise ValueError(f"trace record has no valid 'op': {raw!r}") from exc
    block = raw.get("block")
    return TraceRecord(
        op=kind,
        dep1=int(raw.get("dep1", 0) or 0),
        dep2=int(raw.get("dep2", 0) or 0),
        branch_miss=_flag(raw.get("branch_miss")),
        l1_miss=_flag(raw.get("l1_miss")),
        l2_miss=_flag(raw.get("l2_miss")),
        icache_miss=_flag(raw.get("icache_miss")),
        block=None if block in (None, "") else int(block),
    )


def _flag(value: Any) -> bool:
    if isinstance(value, str):
        return value.strip().lower() in _TRUE_STRINGS
    return bool(value)


# ----------------------------------------------------------------------
# Readers.
# ----------------------------------------------------------------------
def read_jsonl_trace(path: str) -> Iterator[TraceRecord]:
    """Stream a JSON-lines trace file (one record object per line)."""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: undecodable trace line: {exc}"
                ) from exc
            yield _coerce_record(doc)


def read_csv_trace(path: str) -> Iterator[TraceRecord]:
    """Stream a CSV trace file (header row names the JSONL fields)."""
    with open(path, "r", encoding="utf-8", newline="") as handle:
        for row in csv.DictReader(handle):
            yield _coerce_record(row)


def iter_trace(path: str, format: Optional[str] = None) -> Iterator[TraceRecord]:
    """Open a trace by path, dispatching on ``format`` or the extension."""
    if format is None:
        suffix = Path(path).suffix.lower().lstrip(".")
        format = {"jsonl": "jsonl", "ndjson": "jsonl", "csv": "csv"}.get(
            suffix, "jsonl"
        )
    if format == "jsonl":
        return read_jsonl_trace(path)
    if format == "csv":
        return read_csv_trace(path)
    if format in _ADAPTERS:
        return (_coerce_record(raw) for raw in _ADAPTERS[format](path))
    raise ValueError(
        f"unknown trace format {format!r} "
        f"(built-ins: jsonl, csv; adapters: {list(trace_adapters())})"
    )


def trace_records(trace) -> Iterator[TraceRecord]:
    """Adapt a :class:`~repro.microarch.trace.SyntheticTrace` to records.

    Useful for round-trip tests and for writing example trace files; the
    synthetic arrays carry no basic-block ids, so phase detection falls
    back to op-kind vectors.
    """
    for i in range(len(trace)):
        yield TraceRecord(
            op=Uop(int(trace.kinds[i])),
            dep1=int(trace.dep1[i]),
            dep2=int(trace.dep2[i]),
            branch_miss=bool(trace.branch_mispredict[i]),
            l1_miss=bool(trace.l1_miss[i]),
            l2_miss=bool(trace.l2_miss[i]),
            icache_miss=bool(trace.icache_miss[i]),
        )


def write_jsonl_trace(
    records: Iterable[Union[TraceRecord, Mapping[str, Any]]], path: str
) -> int:
    """Write records in the JSONL trace format; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for raw in records:
            record = _coerce_record(raw)
            doc: Dict[str, Any] = {
                "op": record.op.name,
                "dep1": record.dep1,
                "dep2": record.dep2,
                "branch_miss": record.branch_miss,
                "l1_miss": record.l1_miss,
                "l2_miss": record.l2_miss,
                "icache_miss": record.icache_miss,
            }
            if record.block is not None:
                doc["block"] = record.block
            handle.write(json.dumps(doc) + "\n")
            count += 1
    return count


# ----------------------------------------------------------------------
# Streaming measurement.
# ----------------------------------------------------------------------
@dataclass
class _WindowStats:
    """Accumulators for one phase-detection window."""

    n: int = 0
    bbv: np.ndarray = field(
        default_factory=lambda: np.zeros(N_BUCKETS, dtype=np.int64)
    )
    dep_sum: float = 0.0
    dep_count: int = 0
    branches: int = 0
    branch_misses: int = 0
    mem_ops: int = 0
    l1_misses: int = 0
    l2_misses: int = 0

    def quantised_bbv(self) -> np.ndarray:
        total = self.bbv.sum()
        if total <= 0:
            return np.zeros(N_BUCKETS, dtype=np.int64)
        from ..microarch.phases import COUNTER_MAX

        return np.minimum(
            np.round(self.bbv / total * 4.0 * COUNTER_MAX), COUNTER_MAX
        ).astype(np.int64)


def _normalise_fractions(fractions: Dict[Any, float]) -> Dict[Any, float]:
    """Rescale so the values sum to exactly 1.0 within float arithmetic.

    The largest entry absorbs the rounding residual, so the result always
    passes the profile's ``SUM_TOLERANCE`` check bit-for-bit.
    """
    total = sum(fractions.values())
    if total <= 0.0:
        raise ValueError("cannot normalise all-zero fractions")
    scaled = {key: value / total for key, value in fractions.items()}
    residual = 1.0 - sum(scaled.values())
    biggest = max(scaled, key=lambda key: scaled[key])
    scaled[biggest] += residual
    return scaled


def _ratio(numer: float, denom: float, default: float = 0.0) -> float:
    return numer / denom if denom > 0 else default


def ingest_trace(
    source: Union[str, Iterable[Union[TraceRecord, Mapping[str, Any]]]],
    *,
    name: str,
    domain: Optional[str] = None,
    format: Optional[str] = None,
    window: int = DEFAULT_WINDOW,
    phase_threshold: float = 0.25,
    max_phases: int = 8,
) -> WorkloadProfile:
    """Measure a trace into a validated :class:`WorkloadProfile`.

    Args:
        source: A trace file path (dispatched by ``format``/extension)
            or any iterable of records.
        name: The resulting profile's name (part of its content hash).
        domain: ``int``/``fp``; default infers ``fp`` when FP ops are
            more than 10% of the mix.
        format: Reader selection for path sources (``jsonl``, ``csv``,
            or a registered adapter name).
        window: Instructions per phase-detection window.
        phase_threshold: BBV Manhattan-distance threshold for "same
            phase" (the detector's Figure 7(a) default).
        max_phases: Detected phases beyond this are folded into the
            dominant one (profiles stay compact).
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    records: Iterable[Any] = (
        iter_trace(source, format=format) if isinstance(source, str) else source
    )

    started = time.perf_counter()
    kind_counts: Dict[Uop, int] = {kind: 0 for kind in Uop}
    dep_sum = 0.0
    dep_count = 0
    branches = branch_misses = 0
    mem_ops = l1_misses = l2_misses = 0
    icache_misses = 0
    total = 0

    windows: List[Tuple[np.ndarray, _WindowStats]] = []
    current = _WindowStats()

    for raw in records:
        record = _coerce_record(raw)
        total += 1
        kind_counts[record.op] += 1
        for distance in (record.dep1, record.dep2):
            if distance > 0:
                dep_sum += distance
                dep_count += 1
                current.dep_sum += distance
                current.dep_count += 1
        if record.op is Uop.BRANCH:
            branches += 1
            current.branches += 1
            if record.branch_miss:
                branch_misses += 1
                current.branch_misses += 1
        if record.op in _MEM_KINDS:
            mem_ops += 1
            current.mem_ops += 1
            if record.l1_miss:
                l1_misses += 1
                current.l1_misses += 1
                if record.l2_miss:
                    l2_misses += 1
                    current.l2_misses += 1
        if record.icache_miss:
            icache_misses += 1
        bucket = (record.block if record.block is not None
                  else int(record.op)) % N_BUCKETS
        current.bbv[bucket] += 1
        current.n += 1
        if current.n >= window:
            windows.append((current.quantised_bbv(), current))
            current = _WindowStats()
    if current.n > 0:
        windows.append((current.quantised_bbv(), current))

    if total == 0:
        raise ValueError(f"trace for {name!r} is empty")

    mix = _normalise_fractions(
        {kind: float(count) for kind, count in kind_counts.items() if count}
    )
    # Kinds absent from the trace stay absent from the mix.
    dep_mean = max(1.0, _ratio(dep_sum, dep_count, default=1.0))
    branch_rate = min(1.0, _ratio(branch_misses, branches))
    l1_rate = min(1.0, _ratio(l1_misses, mem_ops))
    l2_rate = min(1.0, _ratio(l2_misses, l1_misses))
    icache_rate = min(1.0, _ratio(icache_misses, total))

    phases = _detect_phases(
        windows,
        dep_mean=dep_mean,
        branch_rate=branch_rate,
        l2_rate=l2_rate,
        threshold=phase_threshold,
        max_phases=max_phases,
    )

    if domain is None:
        fp_fraction = sum(mix.get(kind, 0.0) for kind in _FP_KINDS)
        domain = FP if fp_fraction > 0.10 else INT

    profile = WorkloadProfile(
        name=name,
        domain=domain,
        mix=mix,
        dep_mean_distance=dep_mean,
        branch_misp_rate=branch_rate,
        l1d_miss_rate=l1_rate,
        l2_miss_rate=l2_rate,
        icache_miss_rate=icache_rate,
        phases=phases,
    )
    elapsed = time.perf_counter() - started
    obs.inc("workloads.traces_ingested")
    obs.inc("workloads.instructions_ingested", float(total))
    obs.emit_event(
        "workloads.ingest",
        name=name,
        instructions=total,
        windows=len(windows),
        phases=len(phases),
        seconds=elapsed,
        content_hash=profile.content_hash(),
    )
    return profile


def _detect_phases(
    windows: Sequence[Tuple[np.ndarray, _WindowStats]],
    *,
    dep_mean: float,
    branch_rate: float,
    l2_rate: float,
    threshold: float,
    max_phases: int,
) -> Tuple[PhaseSpec, ...]:
    """Cluster windows with the Sherwood detector; derive PhaseSpecs.

    Each detected phase's scale factors are its per-window rates relative
    to the trace-global means, so ``profile.phase_profile(spec)``
    reconstructs roughly the behaviour the phase's windows showed.
    """
    if len(windows) < 2:
        return (PhaseSpec("main", 1.0),)
    detector = PhaseDetector(threshold=threshold, max_table=max(2, max_phases))
    assignments: List[int] = []
    for bbv, _ in windows:
        assignments.append(detector.observe(bbv).phase_id)

    grouped: Dict[int, List[_WindowStats]] = {}
    for phase_id, (_, stats) in zip(assignments, windows):
        grouped.setdefault(phase_id, []).append(stats)
    if len(grouped) == 1:
        return (PhaseSpec("main", 1.0),)

    # Tiny phases (single stray window of many) fold into the dominant
    # one: a <2% weight would be noise, not structure.
    total_windows = len(windows)
    dominant = max(grouped, key=lambda pid: len(grouped[pid]))
    for phase_id in sorted(grouped):
        if phase_id != dominant and len(grouped[phase_id]) / total_windows < 0.02:
            grouped[dominant].extend(grouped.pop(phase_id))
    if len(grouped) == 1:
        return (PhaseSpec("main", 1.0),)

    weights = _normalise_fractions(
        {pid: float(len(stats)) for pid, stats in grouped.items()}
    )
    specs: List[PhaseSpec] = []
    for index, phase_id in enumerate(sorted(grouped)):
        stats = grouped[phase_id]
        phase_dep = _ratio(
            sum(s.dep_sum for s in stats),
            sum(s.dep_count for s in stats),
            default=dep_mean,
        )
        phase_branch = _ratio(
            sum(s.branch_misses for s in stats),
            sum(s.branches for s in stats),
            default=branch_rate,
        )
        phase_l2 = _ratio(
            sum(s.l2_misses for s in stats),
            sum(s.l1_misses for s in stats),
            default=l2_rate,
        )
        specs.append(
            PhaseSpec(
                name=f"phase-{index}",
                weight=weights[phase_id],
                l2_scale=_ratio(phase_l2, l2_rate, default=1.0),
                branch_scale=_ratio(phase_branch, branch_rate, default=1.0),
                ilp_scale=_ratio(phase_dep, dep_mean, default=1.0),
            )
        )
    return tuple(specs)


# ----------------------------------------------------------------------
# Profile files (the CLI's interchange format).
# ----------------------------------------------------------------------
def save_profiles(
    profiles: Sequence[WorkloadProfile], path: str
) -> str:
    """Write profiles as ``{"profiles": [to_wire...]}`` JSON; returns path.

    This is the file format the ``python -m repro.workloads`` CLI emits
    and ``python -m repro.serve submit --profiles`` consumes.
    """
    document = {
        "profiles": [profile.to_wire() for profile in profiles],
        "hashes": [profile.content_hash() for profile in profiles],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_profiles(path: str) -> Tuple[WorkloadProfile, ...]:
    """Read a :func:`save_profiles` file back (bit-identical floats)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    docs = document["profiles"] if isinstance(document, dict) else document
    return tuple(WorkloadProfile.from_wire(doc) for doc in docs)
