"""Parameterized workload families: seeded datacenter-style generators.

A :class:`WorkloadFamily` is a distribution over workload profiles — a
range for every knob a :class:`~repro.microarch.workloads.WorkloadProfile`
has (mix composition, dependency distance, miss rates, phase count and
per-phase scale spreads).  ``family.generate(size, seed)`` draws a
deterministic fleet: member *i* gets its own RNG stream keyed by
``crc32(f"{family}/{seed}/{i}")`` (the cross-process-deterministic
discipline of :mod:`repro.microarch.phases`), so the same ref always
yields bit-identical profiles — and therefore identical content hashes
and cache keys — on any host, and generating a 100-profile fleet gives
the same member 7 as generating a 10-profile one.

Three presets mirror the datacenter mixes the VFS-characterization line
of work sweeps (arxiv 2106.09975): ``bursty`` (compute phases punctuated
by memory-traffic bursts), ``phase_heavy`` (many distinct phases with
wide ILP/locality spread), and ``memory_bound`` (high miss-rate fleets
where frequency is worth the least).

Family references are compact strings — ``"bursty:6:42"`` is preset
``bursty``, 6 members, seed 42 — usable as a DSE sweep axis
(``workload_family``) and on every CLI.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

import numpy as np

from .. import obs
from ..microarch.isa import Uop
from ..microarch.workloads import FP, INT, PhaseSpec, WorkloadProfile

#: Default fleet size / seed when a family ref omits them.
DEFAULT_SIZE = 4
DEFAULT_SEED = 0

#: No phase may shrink below this weight (detector-visible structure).
_MIN_PHASE_WEIGHT = 0.05

#: The integer-ALU floor: mutation/generation keeps every mix runnable.
_MIN_INT_ALU = 0.05


@dataclass(frozen=True)
class Range:
    """A closed interval a family knob is drawn from (uniform or log)."""

    low: float
    high: float
    log: bool = False

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"range high {self.high} < low {self.low}")
        if self.log and self.low <= 0.0:
            raise ValueError("log ranges need a positive lower bound")

    def sample(self, rng: np.random.Generator) -> float:
        if self.low == self.high:
            return self.low
        if self.log:
            return float(
                np.exp(rng.uniform(np.log(self.low), np.log(self.high)))
            )
        return float(rng.uniform(self.low, self.high))

    @classmethod
    def fixed(cls, value: float) -> "Range":
        return cls(value, value)


@dataclass(frozen=True)
class WorkloadFamily:
    """A seeded distribution over :class:`WorkloadProfile` s.

    All fractions are drawn first, then the mix is closed exactly to 1
    (integer ALU absorbs the remainder, floored at 5%), so every member
    passes the profile validator bit-for-bit.
    """

    name: str
    domain: str = INT
    mem_fraction: Range = field(default_factory=lambda: Range(0.25, 0.40))
    fp_fraction: Range = field(default_factory=lambda: Range.fixed(0.0))
    branch_fraction: Range = field(default_factory=lambda: Range(0.10, 0.20))
    dep_mean: Range = field(default_factory=lambda: Range(2.0, 5.0))
    branch_misp: Range = field(default_factory=lambda: Range(0.01, 0.10))
    l1d_miss: Range = field(default_factory=lambda: Range(0.01, 0.10))
    l2_miss: Range = field(default_factory=lambda: Range(0.05, 0.40))
    icache_miss: Range = field(default_factory=lambda: Range(0.0005, 0.01))
    min_phases: int = 1
    max_phases: int = 3
    phase_l2_spread: Range = field(default_factory=lambda: Range(0.5, 2.0))
    phase_ilp_spread: Range = field(default_factory=lambda: Range(0.8, 1.25))
    phase_branch_spread: Range = field(default_factory=lambda: Range(0.8, 1.3))

    def __post_init__(self) -> None:
        if self.domain not in (INT, FP):
            raise ValueError(f"family domain must be {INT!r} or {FP!r}")
        if not 1 <= self.min_phases <= self.max_phases:
            raise ValueError("need 1 <= min_phases <= max_phases")

    # ------------------------------------------------------------------
    def member_seed(self, seed: int, index: int) -> int:
        """The deterministic RNG key of member ``index`` under ``seed``."""
        return zlib.crc32(f"{self.name}/{seed}/{index}".encode())

    def generate_one(self, seed: int, index: int) -> WorkloadProfile:
        """Draw member ``index`` of the fleet seeded by ``seed``."""
        rng = np.random.default_rng(self.member_seed(seed, index))

        mem = self.mem_fraction.sample(rng)
        fp = self.fp_fraction.sample(rng)
        branch = self.branch_fraction.sample(rng)
        int_mul = float(rng.uniform(0.005, 0.03))
        int_alu = 1.0 - mem - fp - branch - int_mul
        if int_alu < _MIN_INT_ALU:
            # Rescale the drawn fractions to leave the ALU floor intact.
            drawn = mem + fp + branch + int_mul
            scale = (1.0 - _MIN_INT_ALU) / drawn
            mem, fp, branch, int_mul = (
                mem * scale, fp * scale, branch * scale, int_mul * scale,
            )
            int_alu = _MIN_INT_ALU
        loads = mem * 0.7
        mix: Dict[Uop, float] = {
            Uop.INT_ALU: int_alu,
            Uop.INT_MUL: int_mul,
            Uop.LOAD: loads,
            Uop.STORE: mem - loads,
            Uop.BRANCH: branch,
        }
        if fp > 0.0:
            mix[Uop.FP_ADD] = fp * 0.55
            mix[Uop.FP_MUL] = fp * 0.45
        # Close the sum exactly: the ALU entry absorbs the residual.
        mix[Uop.INT_ALU] += 1.0 - sum(mix.values())

        n_phases = int(rng.integers(self.min_phases, self.max_phases + 1))
        phases = self._draw_phases(rng, n_phases)

        return WorkloadProfile(
            name=f"{self.name}-{seed}-{index:03d}",
            domain=self.domain,
            mix=mix,
            dep_mean_distance=max(1.0, self.dep_mean.sample(rng)),
            branch_misp_rate=min(1.0, self.branch_misp.sample(rng)),
            l1d_miss_rate=min(1.0, self.l1d_miss.sample(rng)),
            l2_miss_rate=min(1.0, self.l2_miss.sample(rng)),
            icache_miss_rate=min(1.0, self.icache_miss.sample(rng)),
            phases=phases,
        )

    def _draw_phases(
        self, rng: np.random.Generator, n_phases: int
    ) -> Tuple[PhaseSpec, ...]:
        if n_phases <= 1:
            return (PhaseSpec("main", 1.0),)
        weights = rng.dirichlet(np.full(n_phases, 2.0))
        weights = np.maximum(weights, _MIN_PHASE_WEIGHT)
        weights = weights / weights.sum()
        specs = []
        for i in range(n_phases):
            weight = float(weights[i])
            if i == n_phases - 1:  # close the sum exactly
                weight = 1.0 - sum(s.weight for s in specs)
            specs.append(
                PhaseSpec(
                    name=f"phase-{i}",
                    weight=weight,
                    l2_scale=self.phase_l2_spread.sample(rng),
                    branch_scale=self.phase_branch_spread.sample(rng),
                    ilp_scale=self.phase_ilp_spread.sample(rng),
                )
            )
        return tuple(specs)

    def generate(
        self, size: int = DEFAULT_SIZE, seed: int = DEFAULT_SEED
    ) -> Tuple[WorkloadProfile, ...]:
        """Draw a deterministic fleet of ``size`` profiles."""
        if size < 1:
            raise ValueError("family size must be >= 1")
        profiles = tuple(
            self.generate_one(seed, index) for index in range(size)
        )
        obs.inc("workloads.profiles_generated", float(size))
        return profiles


# ----------------------------------------------------------------------
# Presets.
# ----------------------------------------------------------------------
def _preset_bursty() -> WorkloadFamily:
    """Compute-heavy services with bursts of memory traffic."""
    return WorkloadFamily(
        name="bursty",
        domain=INT,
        mem_fraction=Range(0.22, 0.34),
        branch_fraction=Range(0.12, 0.20),
        dep_mean=Range(2.5, 4.5),
        branch_misp=Range(0.04, 0.10),
        l1d_miss=Range(0.01, 0.05),
        l2_miss=Range(0.05, 0.25),
        min_phases=2,
        max_phases=4,
        phase_l2_spread=Range(0.3, 4.0, log=True),
        phase_ilp_spread=Range(0.7, 1.3),
    )


def _preset_phase_heavy() -> WorkloadFamily:
    """Many distinct phases with wide ILP / locality spread."""
    return WorkloadFamily(
        name="phase_heavy",
        domain=INT,
        mem_fraction=Range(0.24, 0.38),
        branch_fraction=Range(0.10, 0.18),
        dep_mean=Range(2.0, 6.0),
        branch_misp=Range(0.02, 0.09),
        l1d_miss=Range(0.02, 0.08),
        l2_miss=Range(0.10, 0.40),
        min_phases=3,
        max_phases=5,
        phase_l2_spread=Range(0.4, 2.5, log=True),
        phase_ilp_spread=Range(0.6, 1.6, log=True),
        phase_branch_spread=Range(0.6, 1.5),
    )


def _preset_memory_bound() -> WorkloadFamily:
    """High miss-rate FP fleets (frequency is worth the least here)."""
    return WorkloadFamily(
        name="memory_bound",
        domain=FP,
        mem_fraction=Range(0.30, 0.42),
        fp_fraction=Range(0.25, 0.40),
        branch_fraction=Range(0.03, 0.08),
        dep_mean=Range(4.0, 7.0),
        branch_misp=Range(0.005, 0.03),
        l1d_miss=Range(0.06, 0.18),
        l2_miss=Range(0.30, 0.70),
        min_phases=1,
        max_phases=3,
        phase_l2_spread=Range(0.6, 1.8),
        phase_ilp_spread=Range(0.85, 1.2),
    )


_PRESETS = {
    "bursty": _preset_bursty,
    "phase_heavy": _preset_phase_heavy,
    "memory_bound": _preset_memory_bound,
}


def family_names() -> Tuple[str, ...]:
    """The available preset family names."""
    return tuple(sorted(_PRESETS))


def family_by_name(name: str) -> WorkloadFamily:
    """Look up a preset family; raises ``KeyError`` on unknown names."""
    try:
        return _PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"no workload family named {name!r} "
            f"(available: {list(family_names())})"
        ) from None


# ----------------------------------------------------------------------
# Family references ("name:size:seed").
# ----------------------------------------------------------------------
def parse_family_ref(ref: str) -> Tuple[WorkloadFamily, int, int]:
    """Parse ``"name[:size[:seed]]"`` into (family, size, seed).

    This is the canonical form the DSE ``workload_family`` axis and the
    CLIs accept; :func:`canonical_family_ref` round-trips it with the
    defaults filled in, so equal fleets always get equal point ids.
    """
    parts = ref.split(":")
    if not 1 <= len(parts) <= 3 or not parts[0]:
        raise ValueError(
            f"family ref must be 'name[:size[:seed]]', got {ref!r}"
        )
    family = family_by_name(parts[0])
    try:
        size = int(parts[1]) if len(parts) > 1 else DEFAULT_SIZE
        seed = int(parts[2]) if len(parts) > 2 else DEFAULT_SEED
    except ValueError as exc:
        raise ValueError(
            f"family ref size/seed must be integers, got {ref!r}"
        ) from exc
    if size < 1:
        raise ValueError(f"family ref size must be >= 1, got {ref!r}")
    return family, size, seed


def canonical_family_ref(ref: str) -> str:
    """Normalise a ref to the full ``name:size:seed`` form."""
    family, size, seed = parse_family_ref(ref)
    return f"{family.name}:{size}:{seed}"


def generate_family_ref(ref: str) -> Tuple[WorkloadProfile, ...]:
    """Generate the fleet a ``name[:size[:seed]]`` ref describes."""
    family, size, seed = parse_family_ref(ref)
    return family.generate(size, seed)


def register_family(name: str, family: WorkloadFamily) -> None:
    """Register a custom family under ``name`` for refs and the CLI."""
    if not name:
        raise ValueError("family name must be non-empty")
    named = family if family.name == name else replace(family, name=name)
    _PRESETS[name] = lambda: named
