"""Command-line entry point for the workload subsystem.

Usage::

    python -m repro.workloads ingest trace.jsonl --name web-tier \\
        --out profiles.json
    python -m repro.workloads generate bursty:4:42 --out family.json
    python -m repro.workloads evolve --family bursty:3:42 \\
        --generations 4 --population 6 --objective error-frac \\
        --out winner.json

``ingest`` measures :class:`~repro.microarch.workloads.WorkloadProfile`
objects out of instruction traces; ``generate`` emits a deterministic
parameterized family; ``evolve`` runs the adversarial genetic loop
against a fitness oracle — in-process by default, or a running campaign
daemon via ``--service HOST:PORT`` (candidates cross the wire inline).

Profile files written by ``--out`` are the :func:`~repro.workloads.
ingest.save_profiles` format and feed straight into
``python -m repro.serve submit --profiles FILE``.
"""

from __future__ import annotations

import argparse
import json
import sys

from .. import __version__, obs
from ..config import Settings
from ..exps.reporting import format_table
from .evolve import OBJECTIVES, EvolveConfig, evolve
from .families import (
    DEFAULT_SEED,
    DEFAULT_SIZE,
    family_names,
    parse_family_ref,
)
from .ingest import DEFAULT_WINDOW, ingest_trace, load_profiles, save_profiles


def _profile_rows(profiles):
    return [
        [
            p.name,
            p.domain,
            str(len(p.phases)),
            f"{p.dep_mean_distance:.2f}",
            f"{p.l2_miss_rate:.4f}",
            p.content_hash()[:12],
        ]
        for p in profiles
    ]


def _print_profiles(title: str, profiles) -> None:
    print(format_table(
        title,
        ["Profile", "Domain", "Phases", "Dep dist", "L2 miss", "Hash"],
        _profile_rows(profiles),
    ))


def _maybe_save(profiles, path) -> None:
    if path:
        save_profiles(profiles, path)
        print(f"{len(profiles)} profile(s) written to {path}")


def _dump_metrics(settings: Settings) -> None:
    if settings.metrics_out:
        document = obs.metrics_registry().to_dict()
        with open(settings.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics written to {settings.metrics_out}")


def _run_ingest(args: argparse.Namespace, settings: Settings) -> int:
    if args.name and len(args.trace) > 1:
        print("error: --name only applies to a single trace", file=sys.stderr)
        return 2
    profiles = []
    for path in args.trace:
        name = args.name or path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        try:
            profiles.append(ingest_trace(
                path,
                name=name,
                format=args.format,
                window=args.window,
                phase_threshold=args.phase_threshold,
                max_phases=args.max_phases,
            ))
        except (OSError, ValueError) as exc:
            print(f"error: cannot ingest {path}: {exc}", file=sys.stderr)
            return 1
    _print_profiles("ingested profiles", profiles)
    _maybe_save(profiles, args.out)
    return 0


def _run_generate(args: argparse.Namespace, settings: Settings) -> int:
    try:
        family, size, seed = parse_family_ref(args.family)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    profiles = family.generate(size=size, seed=seed)
    _print_profiles(f"family {family.name} (seed {seed})", profiles)
    _maybe_save(profiles, args.out)
    return 0


def _run_evolve(args: argparse.Namespace, settings: Settings) -> int:
    seeds = []
    if args.family:
        try:
            family, size, seed = parse_family_ref(args.family)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        seeds.extend(family.generate(size=size, seed=seed))
    if args.profiles:
        try:
            seeds.extend(load_profiles(args.profiles))
        except (OSError, ValueError) as exc:
            print(f"error: cannot load {args.profiles}: {exc}",
                  file=sys.stderr)
            return 1
    if not seeds:
        print("error: no seed profiles (use --family and/or --profiles)",
              file=sys.stderr)
        return 2
    try:
        config = EvolveConfig(
            environment=args.environment,
            mode=args.mode,
            objective=args.objective,
            generations=args.generations,
            population=args.population,
            elite=args.elite,
            mutation_scale=args.mutation_scale,
            seed=args.evolve_seed,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = evolve(
        seeds,
        config=config,
        settings=settings,
        service=settings.service_addr or None,
    )
    print(format_table(
        f"evolve ({config.objective}, seed {config.seed})",
        ["Generation", "Best", "Mean"],
        [
            [f"{entry['generation']:.0f}", f"{entry['best']:.6f}",
             f"{entry['mean']:.6f}"]
            for entry in result.history
        ],
    ))
    print(f"winner: {result.winner.name}  fitness={result.fitness:.6f}  "
          f"hash={result.winner_hash}")
    print(f"evaluations: {result.evals_submitted} submitted, "
          f"{result.evals_cached} served from the evolve memo")
    _maybe_save([profile for profile, _ in result.ranking], args.out)
    return 0


def main(argv=None) -> int:
    env_defaults = Settings.from_env()
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Workload profiles: ingest traces, generate families, "
                    "evolve adversaries.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ingest_p = sub.add_parser(
        "ingest", help="measure profiles out of instruction traces"
    )
    ingest_p.add_argument(
        "trace", nargs="+",
        help="trace file(s): .jsonl/.ndjson, .csv, or a registered adapter "
             "format via --format",
    )
    ingest_p.add_argument(
        "--name", default=None,
        help="profile name (single trace only; default: the file stem)",
    )
    ingest_p.add_argument("--format", default=None, metavar="FMT")
    ingest_p.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW, metavar="N",
        help=f"instructions per phase-detection window "
             f"(default {DEFAULT_WINDOW})",
    )
    ingest_p.add_argument(
        "--phase-threshold", type=float, default=0.25, metavar="D",
        help="BBV Manhattan-distance threshold for a new phase group",
    )
    ingest_p.add_argument("--max-phases", type=int, default=8, metavar="N")
    ingest_p.add_argument("--out", default=None, metavar="FILE")

    generate_p = sub.add_parser(
        "generate", help="emit a deterministic parameterized family"
    )
    generate_p.add_argument(
        "family", metavar="NAME[:SIZE[:SEED]]",
        help=f"family reference (families: {', '.join(family_names())}; "
             f"defaults {DEFAULT_SIZE} members, seed {DEFAULT_SEED})",
    )
    generate_p.add_argument("--out", default=None, metavar="FILE")

    evolve_p = sub.add_parser(
        "evolve", help="adversarial search against the campaign service"
    )
    evolve_p.add_argument(
        "--family", default=None, metavar="NAME[:SIZE[:SEED]]",
        help="seed the gene pool from a generated family",
    )
    evolve_p.add_argument(
        "--profiles", default=None, metavar="FILE",
        help="seed the gene pool from a saved profile file",
    )
    evolve_p.add_argument(
        "--objective", default="error-frac", choices=sorted(OBJECTIVES),
    )
    evolve_p.add_argument("--environment", default="TS", metavar="NAME")
    evolve_p.add_argument("--mode", default="Exh-Dyn", metavar="MODE")
    evolve_p.add_argument("--generations", type=int, default=4)
    evolve_p.add_argument("--population", type=int, default=6)
    evolve_p.add_argument("--elite", type=int, default=2)
    evolve_p.add_argument("--mutation-scale", type=float, default=0.25)
    evolve_p.add_argument(
        "--evolve-seed", type=int, default=0, metavar="SEED",
        help="genetic-loop RNG seed (--seed stays the physics seed)",
    )
    evolve_p.add_argument(
        "--service", default=None, metavar="HOST:PORT",
        help="score candidates on a running campaign daemon instead of "
             "in-process",
    )
    evolve_p.add_argument("--out", default=None, metavar="FILE")
    evolve_p.add_argument("--chips", type=int, default=env_defaults.chips)
    evolve_p.add_argument("--cores", type=int, default=env_defaults.cores)
    evolve_p.add_argument(
        "--fc-examples", type=int, default=env_defaults.fc_examples
    )
    evolve_p.add_argument("--seed", type=int, default=env_defaults.seed)
    Settings.add_cli_arguments(evolve_p, env_defaults)

    args = parser.parse_args(argv)
    try:
        settings = Settings.from_args(args, base=env_defaults)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    settings.configure()
    try:
        if args.command == "ingest":
            return _run_ingest(args, settings)
        if args.command == "generate":
            return _run_generate(args, settings)
        if args.command == "evolve":
            return _run_evolve(args, settings)
        raise AssertionError(f"unhandled command {args.command}")
    finally:
        _dump_metrics(settings)


if __name__ == "__main__":
    sys.exit(main())
