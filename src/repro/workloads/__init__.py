"""``repro.workloads`` — where workload profiles come from.

The microarchitectural stack consumes :class:`~repro.microarch.
workloads.WorkloadProfile` objects; until now the only source was the
hand-written SPEC-2000-like suite.  This package adds three more fronts,
all emitting the same validated, content-hashed profile type so every
downstream layer (runner, cache, service, fleet, DSE) works unchanged:

* **Ingestion** (:mod:`.ingest`) — parse real instruction traces
  (JSONL/CSV, or any format via :func:`register_trace_adapter`) and
  measure a profile out of them: instruction mix, dependency distances,
  miss rates, and Sherwood-style BBV phase structure.
* **Generation** (:mod:`.families`) — seeded parameterized families
  (:class:`WorkloadFamily`) emitting deterministic datacenter-style
  populations: ``bursty``, ``phase-heavy``, ``memory-bound``.
* **Adversarial search** (:mod:`.evolve`) — a genetic loop that evolves
  profiles against an objective (error fraction, power, perf loss),
  using the campaign service as its fitness oracle so the
  content-addressed cache dedupes repeated evaluations.

CLI: ``python -m repro.workloads ingest|generate|evolve``.
"""

from .evolve import (
    OBJECTIVES,
    EvolutionResult,
    EvolveConfig,
    crossover_profiles,
    evolve,
    mutate_profile,
)
from .families import (
    DEFAULT_SEED,
    DEFAULT_SIZE,
    Range,
    WorkloadFamily,
    canonical_family_ref,
    family_by_name,
    family_names,
    generate_family_ref,
    parse_family_ref,
    register_family,
)
from .ingest import (
    DEFAULT_WINDOW,
    TraceRecord,
    ingest_trace,
    iter_trace,
    load_profiles,
    read_csv_trace,
    read_jsonl_trace,
    register_trace_adapter,
    save_profiles,
    trace_adapters,
    trace_records,
    write_jsonl_trace,
)

__all__ = [
    "DEFAULT_SEED",
    "DEFAULT_SIZE",
    "DEFAULT_WINDOW",
    "EvolutionResult",
    "EvolveConfig",
    "OBJECTIVES",
    "Range",
    "TraceRecord",
    "WorkloadFamily",
    "canonical_family_ref",
    "crossover_profiles",
    "evolve",
    "family_by_name",
    "family_names",
    "generate_family_ref",
    "ingest_trace",
    "iter_trace",
    "load_profiles",
    "mutate_profile",
    "parse_family_ref",
    "read_csv_trace",
    "read_jsonl_trace",
    "register_family",
    "register_trace_adapter",
    "save_profiles",
    "trace_adapters",
    "trace_records",
    "write_jsonl_trace",
]
