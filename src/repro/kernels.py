"""Fused physics kernels behind the backend registry (DESIGN.md §15).

The batched optimizer/thermal profile is dominated by chains of small
elementwise ufuncs — ``threshold_voltage`` (Eq 9), ``static_power``
(Eq 8) and the Eq 6-9 thermal fixed point — each allocating fresh
temporaries on every call inside the (vdd, vbb, B, n) sweeps.  This
module collapses those chains into three named kernels resolved through
:meth:`repro.backend.ArrayBackend.kernel`:

``vt_and_static_power``
    Eq 9 + Eq 8 in one pass: effective threshold voltage and the
    leakage power it implies (optionally scaled by a power factor).
``thermal_step``
    One fixed-point iteration of Eq 6-9: both power terms, the clamped
    temperature update, and (optionally) the per-lane convergence
    delta.  Accepts an ``out=`` buffer so callers can ping-pong two
    temperature buffers and allocate nothing in steady state.
``timing_error_cdf``
    Eq 4's per-stage error rate ``rho * Q((1/f - m) / s)`` via the
    backend's ``ndtr``.

Every kernel ships multiple *implementations*:

``reference``
    The exact seed composition of the leaf functions — the parity
    oracle and the benchmark baseline.
``numpy``
    Hand-fused: identical operations in the identical order, but
    written through ``out=`` parameters into buffers borrowed from a
    per-thread :class:`WorkspacePool`, so the only steady-state
    allocations are the results themselves.
``numba``
    ``@njit(cache=True, fastmath=False)`` loops for the arithmetic
    stages, registered only when numba imports.  Transcendentals
    (``exp``, ``ndtr``) are deliberately evaluated *outside* the jitted
    code with the same numpy/scipy ufuncs the other implementations
    use, so bit-identity holds by construction rather than by hoping
    two libm builds agree.

The bit-identity contract: every implementation performs the same IEEE
double operations in the same association order as the seed leaf
functions, so results are *bitwise* equal, not merely close.  Selection
is ``EVAL_REPRO_KERNELS`` ∈ {``auto`` (default: numba if importable,
else numpy), ``reference``, ``numpy``, ``numba``}; :func:`use_impl`
forces one for a scope (tests and benchmarks), and
:func:`repro.backend.reset_backend` re-reads the environment.

Each resolved kernel is wrapped with per-kernel observability:
``kernel.<name>.calls`` / ``kernel.<name>.ns`` counters feed the
``benchmarks/bench_kernels.py`` breakdown and cost one boolean check
when metrics are disabled.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

import numpy as np
from scipy.special import ndtr as _scipy_ndtr

from . import obs
from .circuits.knobs import VtSensitivities, threshold_voltage
from .circuits.leakage import IDEALITY_FACTOR, static_power
from .numerics import norm_sf
from .units import Q_OVER_K

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the container default
    njit = None
    NUMBA_AVAILABLE = False

_ENV_VAR = "EVAL_REPRO_KERNELS"

#: Temperature cap flagging thermal runaway (mirrors the solver's).
_T_RUNAWAY_DEFAULT = 500.0


# ----------------------------------------------------------------------
# Workspace pool: per-thread scratch buffers keyed on (shape, dtype).
# ----------------------------------------------------------------------
class WorkspacePool:
    """A per-thread free list of preallocated scratch arrays.

    The fused numpy kernels write every intermediate into a borrowed
    buffer instead of allocating it, which is where most of their win
    comes from: grid-sized temporaries exceed the allocator's mmap
    threshold, so a fresh one costs a kernel round-trip plus first-touch
    page faults on every ufunc of the chain.  Buffers are keyed on
    ``(shape, dtype)`` and the free list per key is bounded, so the pool
    cannot grow past ``max_per_key`` grid-sized buffers per shape.

    Buffers come back uninitialised (``np.empty`` semantics); borrowers
    must fully overwrite them.  The pool is thread-local — concurrent
    kernel calls from different threads never share scratch space — and
    re-entrant: nested borrows of the same key pop distinct buffers.
    """

    def __init__(self, max_per_key: int = 8):
        self.max_per_key = max_per_key
        self._local = threading.local()

    def _free_lists(self) -> Dict[Tuple[tuple, str], list]:
        free = getattr(self._local, "free", None)
        if free is None:
            free = {}
            self._local.free = free
        return free

    @contextmanager
    def borrow(
        self, shape, count: int = 1, dtype=np.float64
    ) -> Iterator[Tuple[np.ndarray, ...]]:
        """Borrow ``count`` uninitialised ``shape``-shaped scratch arrays."""
        key = (tuple(shape), np.dtype(dtype).str)
        stack = self._free_lists().setdefault(key, [])
        buffers = tuple(
            stack.pop() if stack else np.empty(shape, dtype=dtype)
            for _ in range(count)
        )
        try:
            yield buffers
        finally:
            stack = self._free_lists().setdefault(key, [])
            for buffer in buffers:
                if len(stack) < self.max_per_key:
                    stack.append(buffer)

    def clear(self) -> None:
        """Drop this thread's cached buffers."""
        self._local.free = {}

    def cached_bytes(self) -> int:
        """Bytes currently cached for this thread (introspection/tests)."""
        return sum(
            buffer.nbytes
            for stack in self._free_lists().values()
            for buffer in stack
        )


_POOL = WorkspacePool()


def workspace_pool() -> WorkspacePool:
    """The process-wide (per-thread) scratch pool the fused kernels use."""
    return _POOL


# ----------------------------------------------------------------------
# Reference implementations: the exact seed leaf-function compositions.
# ----------------------------------------------------------------------
def _reference_vt_and_static_power(
    vt0,
    vdd,
    vbb,
    temp,
    ksta,
    sens: VtSensitivities,
    ideality: float = IDEALITY_FACTOR,
    power_factor=None,
):
    vt = threshold_voltage(vt0, temp, vdd, vbb, sens)
    p_sta = static_power(ksta, vdd, temp, vt, ideality)
    if power_factor is not None:
        p_sta = p_sta * power_factor
    return vt, p_sta


def _reference_thermal_step(
    vt0_leak,
    vdd,
    vbb,
    temp,
    ksta,
    rth,
    p_dyn,
    t_heatsink,
    sens: VtSensitivities,
    ideality: float = IDEALITY_FACTOR,
    power_factor=None,
    t_runaway: float = _T_RUNAWAY_DEFAULT,
    compute_delta: bool = False,
    out: Optional[np.ndarray] = None,
):
    _, p_sta = _reference_vt_and_static_power(
        vt0_leak, vdd, vbb, temp, ksta, sens, ideality, power_factor
    )
    new_temp = np.minimum(t_heatsink + rth * (p_dyn + p_sta), t_runaway)
    delta = None
    if compute_delta:
        delta = np.max(
            np.abs(new_temp - np.asarray(temp, dtype=float)), axis=-1
        )
    if out is not None:
        np.copyto(out, new_temp)
        new_temp = out
    return new_temp, delta


def _reference_timing_error_cdf(freq, mean, sigma, rho):
    freq = np.asarray(freq, dtype=float)
    period = 1.0 / freq
    z = (period - np.asarray(mean, dtype=float)) / np.asarray(
        sigma, dtype=float
    )
    return np.asarray(rho, dtype=float) * norm_sf(z)


# ----------------------------------------------------------------------
# Hand-fused numpy implementations: same ops, same order, zero
# steady-state temporaries.  Bitwise equalities relied on here (all
# asserted by tests/test_kernels.py): ``x**2 == x*x``, scalar
# multiplication commutes (``k*a == a*k``), and ufunc ``out=`` writes
# are exact.
# ----------------------------------------------------------------------
def _fill_vt(vt0, vdd, vbb, temp_b, sens, shape, vt):
    """Eq 9 into ``vt``, preserving the seed's association order."""
    np.subtract(temp_b, sens.t_ref, out=vt)
    np.multiply(vt, sens.k1, out=vt)
    np.add(np.broadcast_to(vt0, shape), vt, out=vt)
    np.add(vt, np.broadcast_to(sens.k2 * (vdd - sens.vdd_ref), shape), out=vt)
    np.add(vt, np.broadcast_to(sens.k3 * vbb, shape), out=vt)


def _fill_psta(vt, vdd, temp_b, ksta, ideality, power_factor, shape, p, ws, ws2):
    """Eq 8 (optionally * power_factor) into ``p``.

    ``p`` may alias ``vt``: the first operation consumes ``vt`` into
    ``ws`` and nothing reads it afterwards.
    """
    np.multiply(vt, -Q_OVER_K, out=ws)
    np.multiply(temp_b, ideality, out=ws2)
    np.divide(ws, ws2, out=ws)
    np.exp(ws, out=ws)
    np.multiply(temp_b, temp_b, out=ws2)
    np.multiply(np.broadcast_to(ksta * vdd, shape), ws2, out=p)
    np.multiply(p, ws, out=p)
    if power_factor is not None:
        np.multiply(p, np.broadcast_to(power_factor, shape), out=p)


def _numpy_vt_and_static_power(
    vt0,
    vdd,
    vbb,
    temp,
    ksta,
    sens: VtSensitivities,
    ideality: float = IDEALITY_FACTOR,
    power_factor=None,
):
    vt0 = np.asarray(vt0, dtype=float)
    vdd = np.asarray(vdd, dtype=float)
    vbb = np.asarray(vbb, dtype=float)
    temp = np.asarray(temp, dtype=float)
    ksta = np.asarray(ksta, dtype=float)
    shapes = [vt0.shape, vdd.shape, vbb.shape, temp.shape, ksta.shape]
    if power_factor is not None:
        power_factor = np.asarray(power_factor, dtype=float)
        shapes.append(power_factor.shape)
    shape = np.broadcast_shapes(*shapes)
    temp_b = np.broadcast_to(temp, shape)
    vt = np.empty(shape)
    p_sta = np.empty(shape)
    _fill_vt(vt0, vdd, vbb, temp_b, sens, shape, vt)
    with _POOL.borrow(shape, 2) as (ws, ws2):
        _fill_psta(
            vt, vdd, temp_b, ksta, ideality, power_factor, shape, p_sta, ws, ws2
        )
    return vt, p_sta


def _numpy_thermal_step(
    vt0_leak,
    vdd,
    vbb,
    temp,
    ksta,
    rth,
    p_dyn,
    t_heatsink,
    sens: VtSensitivities,
    ideality: float = IDEALITY_FACTOR,
    power_factor=None,
    t_runaway: float = _T_RUNAWAY_DEFAULT,
    compute_delta: bool = False,
    out: Optional[np.ndarray] = None,
):
    vt0_leak = np.asarray(vt0_leak, dtype=float)
    vdd = np.asarray(vdd, dtype=float)
    vbb = np.asarray(vbb, dtype=float)
    temp = np.asarray(temp, dtype=float)
    ksta = np.asarray(ksta, dtype=float)
    rth = np.asarray(rth, dtype=float)
    p_dyn = np.asarray(p_dyn, dtype=float)
    shapes = [
        vt0_leak.shape, vdd.shape, vbb.shape, temp.shape,
        ksta.shape, rth.shape, p_dyn.shape,
    ]
    if power_factor is not None:
        power_factor = np.asarray(power_factor, dtype=float)
        shapes.append(power_factor.shape)
    shape = np.broadcast_shapes(*shapes)
    if out is None:
        out = np.empty(shape)
    elif out.shape != shape:
        raise ValueError(
            f"thermal_step out buffer has shape {out.shape}, expected {shape}"
        )
    temp_b = np.broadcast_to(temp, shape)
    delta = None
    with _POOL.borrow(shape, 3) as (p, ws, ws2):
        _fill_vt(vt0_leak, vdd, vbb, temp_b, sens, shape, p)
        _fill_psta(p, vdd, temp_b, ksta, ideality, power_factor, shape, p, ws, ws2)
        np.add(np.broadcast_to(p_dyn, shape), p, out=p)
        np.multiply(np.broadcast_to(rth, shape), p, out=p)
        np.add(p, t_heatsink, out=p)
        np.minimum(p, t_runaway, out=out)
        if compute_delta:
            np.subtract(out, temp_b, out=ws)
            np.abs(ws, out=ws)
            delta = ws.max(axis=-1)
    return out, delta


def _numpy_timing_error_cdf(freq, mean, sigma, rho):
    freq = np.asarray(freq, dtype=float)
    mean = np.asarray(mean, dtype=float)
    sigma = np.asarray(sigma, dtype=float)
    rho = np.asarray(rho, dtype=float)
    shape = np.broadcast_shapes(
        freq.shape, mean.shape, sigma.shape, rho.shape
    )
    pe = np.empty(shape)
    np.divide(1.0, np.broadcast_to(freq, shape), out=pe)
    np.subtract(pe, np.broadcast_to(mean, shape), out=pe)
    np.divide(pe, np.broadcast_to(sigma, shape), out=pe)
    np.negative(pe, out=pe)
    _scipy_ndtr(pe, out=pe)
    np.multiply(np.broadcast_to(rho, shape), pe, out=pe)
    return pe


# ----------------------------------------------------------------------
# Numba implementations (registered only when numba imports).  The
# jitted stages fuse the pure-arithmetic chains into single loops; the
# transcendental evaluations stay on the exact numpy/scipy ufuncs the
# other implementations use, so every element sees the same sequence of
# correctly-rounded IEEE operations and results stay bitwise identical.
# ----------------------------------------------------------------------
if NUMBA_AVAILABLE:  # pragma: no cover - needs numba (CI parity leg)

    @njit(cache=True, fastmath=False)
    def _nb_vt(vt0, temp, vdd, vbb, k1, k2, k3, t_ref, vdd_ref):
        return vt0 + k1 * (temp - t_ref) + k2 * (vdd - vdd_ref) + k3 * vbb

    @njit(cache=True, fastmath=False)
    def _nb_exp_arg(vt, temp, neg_q_over_k, ideality):
        return neg_q_over_k * vt / (ideality * temp)

    @njit(cache=True, fastmath=False)
    def _nb_prefactor(ksta, vdd, temp):
        return ksta * vdd * (temp * temp)

    @njit(cache=True, fastmath=False)
    def _nb_neg_z(freq, mean, sigma):
        return -((1.0 / freq - mean) / sigma)

    def _numba_vt_and_static_power(
        vt0,
        vdd,
        vbb,
        temp,
        ksta,
        sens: VtSensitivities,
        ideality: float = IDEALITY_FACTOR,
        power_factor=None,
    ):
        vt0 = np.asarray(vt0, dtype=float)
        vdd = np.asarray(vdd, dtype=float)
        vbb = np.asarray(vbb, dtype=float)
        temp = np.asarray(temp, dtype=float)
        ksta = np.asarray(ksta, dtype=float)
        vt = _nb_vt(
            vt0, temp, vdd, vbb,
            sens.k1, sens.k2, sens.k3, sens.t_ref, sens.vdd_ref,
        )
        exp_term = _nb_exp_arg(vt, temp, -Q_OVER_K, ideality)
        np.exp(exp_term, out=exp_term)
        prefactor = _nb_prefactor(ksta, vdd, temp)
        shapes = [exp_term.shape, prefactor.shape]
        if power_factor is not None:
            power_factor = np.asarray(power_factor, dtype=float)
            shapes.append(power_factor.shape)
        shape = np.broadcast_shapes(*shapes)
        p_sta = np.empty(shape)
        np.multiply(
            np.broadcast_to(prefactor, shape),
            np.broadcast_to(exp_term, shape),
            out=p_sta,
        )
        if power_factor is not None:
            np.multiply(p_sta, np.broadcast_to(power_factor, shape), out=p_sta)
        return vt, p_sta

    def _numba_thermal_step(
        vt0_leak,
        vdd,
        vbb,
        temp,
        ksta,
        rth,
        p_dyn,
        t_heatsink,
        sens: VtSensitivities,
        ideality: float = IDEALITY_FACTOR,
        power_factor=None,
        t_runaway: float = _T_RUNAWAY_DEFAULT,
        compute_delta: bool = False,
        out: Optional[np.ndarray] = None,
    ):
        vt0_leak = np.asarray(vt0_leak, dtype=float)
        vdd = np.asarray(vdd, dtype=float)
        vbb = np.asarray(vbb, dtype=float)
        temp = np.asarray(temp, dtype=float)
        ksta = np.asarray(ksta, dtype=float)
        rth = np.asarray(rth, dtype=float)
        p_dyn = np.asarray(p_dyn, dtype=float)
        vt = _nb_vt(
            vt0_leak, temp, vdd, vbb,
            sens.k1, sens.k2, sens.k3, sens.t_ref, sens.vdd_ref,
        )
        exp_term = _nb_exp_arg(vt, temp, -Q_OVER_K, ideality)
        np.exp(exp_term, out=exp_term)
        prefactor = _nb_prefactor(ksta, vdd, temp)
        shapes = [exp_term.shape, prefactor.shape, rth.shape, p_dyn.shape]
        if power_factor is not None:
            power_factor = np.asarray(power_factor, dtype=float)
            shapes.append(power_factor.shape)
        shape = np.broadcast_shapes(*shapes)
        if out is None:
            out = np.empty(shape)
        elif out.shape != shape:
            raise ValueError(
                f"thermal_step out buffer has shape {out.shape}, "
                f"expected {shape}"
            )
        delta = None
        with _POOL.borrow(shape, 2) as (p, ws):
            np.multiply(
                np.broadcast_to(prefactor, shape),
                np.broadcast_to(exp_term, shape),
                out=p,
            )
            if power_factor is not None:
                np.multiply(p, np.broadcast_to(power_factor, shape), out=p)
            np.add(np.broadcast_to(p_dyn, shape), p, out=p)
            np.multiply(np.broadcast_to(rth, shape), p, out=p)
            np.add(p, t_heatsink, out=p)
            np.minimum(p, t_runaway, out=out)
            if compute_delta:
                np.subtract(out, np.broadcast_to(temp, shape), out=ws)
                np.abs(ws, out=ws)
                delta = ws.max(axis=-1)
        return out, delta

    def _numba_timing_error_cdf(freq, mean, sigma, rho):
        freq = np.asarray(freq, dtype=float)
        mean = np.asarray(mean, dtype=float)
        sigma = np.asarray(sigma, dtype=float)
        rho = np.asarray(rho, dtype=float)
        neg_z = _nb_neg_z(freq, mean, sigma)
        _scipy_ndtr(neg_z, out=neg_z)
        shape = np.broadcast_shapes(neg_z.shape, rho.shape)
        pe = np.empty(shape)
        np.multiply(
            np.broadcast_to(rho, shape),
            np.broadcast_to(neg_z, shape),
            out=pe,
        )
        return pe


# ----------------------------------------------------------------------
# Registry, selection and per-kernel instrumentation.
# ----------------------------------------------------------------------
_IMPLS: Dict[str, Dict[str, Callable[..., Any]]] = {}
_CACHE: Dict[Tuple[str, str, str], Callable[..., Any]] = {}
_FORCED: Optional[str] = None


def register_kernel_impl(
    kernel: str, impl: str, fn: Callable[..., Any]
) -> None:
    """Register implementation ``impl`` of ``kernel`` (used at import)."""
    _IMPLS.setdefault(kernel, {})[impl] = fn
    _CACHE.clear()


def available_kernels() -> tuple:
    """Kernel names resolvable through ``ArrayBackend.kernel``."""
    return tuple(sorted(_IMPLS))


def available_impls(kernel: str) -> tuple:
    """Implementation names registered for ``kernel``."""
    if kernel not in _IMPLS:
        raise ValueError(
            f"unknown kernel {kernel!r}; "
            f"available: {', '.join(available_kernels())}"
        )
    return tuple(sorted(_IMPLS[kernel]))


def _selector() -> str:
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(_ENV_VAR, "auto").lower()


def _pick_impl(kernel: str, backend: str, choice: str) -> str:
    impls = _IMPLS.get(kernel)
    if impls is None:
        raise ValueError(
            f"unknown kernel {kernel!r}; "
            f"available: {', '.join(available_kernels())}"
        )
    if choice == "auto":
        # The fused implementations are numpy/scipy programs; any other
        # array backend falls back to the reference composition, which
        # routes its special functions through the active backend.
        if backend != "numpy":
            return "reference"
        if NUMBA_AVAILABLE and "numba" in impls:
            return "numba"
        if "numpy" in impls:
            return "numpy"
        return "reference"
    if choice == "numba" and not NUMBA_AVAILABLE:
        raise RuntimeError(
            "kernel impl 'numba' requested but numba is not installed; "
            "install numba or select EVAL_REPRO_KERNELS=auto"
        )
    if choice not in impls:
        raise ValueError(
            f"unknown kernel impl {choice!r} for {kernel!r}; "
            f"available: {', '.join(available_impls(kernel))}"
        )
    return choice


def active_impl(kernel: str, backend: str = "numpy") -> str:
    """The implementation name :func:`resolve` would pick right now."""
    return _pick_impl(kernel, backend, _selector())


def _instrument(
    kernel: str, impl: str, fn: Callable[..., Any]
) -> Callable[..., Any]:
    calls_metric = f"kernel.{kernel}.calls"
    ns_metric = f"kernel.{kernel}.ns"

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if not obs.enabled():
            return fn(*args, **kwargs)
        start = time.perf_counter_ns()
        try:
            return fn(*args, **kwargs)
        finally:
            obs.inc(calls_metric)
            obs.inc(ns_metric, float(time.perf_counter_ns() - start))

    wrapper.kernel_name = kernel  # type: ignore[attr-defined]
    wrapper.impl_name = impl  # type: ignore[attr-defined]
    return wrapper


def resolve(kernel: str, backend: str = "numpy") -> Callable[..., Any]:
    """The instrumented callable for ``kernel`` under the current policy.

    Callers normally go through ``get_backend().kernel(name)``; the
    cache key includes the selection policy, so forcing or re-reading
    ``EVAL_REPRO_KERNELS`` never serves a stale resolution.
    """
    choice = _selector()
    key = (kernel, backend, choice)
    fn = _CACHE.get(key)
    if fn is None:
        impl = _pick_impl(kernel, backend, choice)
        fn = _instrument(kernel, impl, _IMPLS[kernel][impl])
        _CACHE[key] = fn
    return fn


@contextmanager
def use_impl(impl: str) -> Iterator[None]:
    """Force one implementation for a scope (tests and benchmarks)."""
    global _FORCED
    previous = _FORCED
    _FORCED = impl
    try:
        yield
    finally:
        _FORCED = previous


def reset() -> None:
    """Drop forced/cached selections; the next resolve re-reads the env."""
    global _FORCED
    _FORCED = None
    _CACHE.clear()


register_kernel_impl(
    "vt_and_static_power", "reference", _reference_vt_and_static_power
)
register_kernel_impl("vt_and_static_power", "numpy", _numpy_vt_and_static_power)
register_kernel_impl("thermal_step", "reference", _reference_thermal_step)
register_kernel_impl("thermal_step", "numpy", _numpy_thermal_step)
register_kernel_impl("timing_error_cdf", "reference", _reference_timing_error_cdf)
register_kernel_impl("timing_error_cdf", "numpy", _numpy_timing_error_cdf)
if NUMBA_AVAILABLE:  # pragma: no cover - needs numba (CI parity leg)
    register_kernel_impl(
        "vt_and_static_power", "numba", _numba_vt_and_static_power
    )
    register_kernel_impl("thermal_step", "numba", _numba_thermal_step)
    register_kernel_impl("timing_error_cdf", "numba", _numba_timing_error_cdf)
