"""Every calibrated constant of the reproduction, in one place.

The paper publishes its headline parameters (Figure 7(a)): 45 nm, 4 GHz /
1 V nominal, ``Vt`` sigma/mu 0.09 with phi 0.5, per-core ``PMAX`` 30 W,
``TMAX`` 85 C, heat-sink 70 C, ``PEMAX`` 1e-4 err/inst.  What it does not
publish is the authors' proprietary device files, critical-path
composition, and Wattch/HotSpot extraction.  Those gaps are filled by the
constants below.

Calibration policy (see DESIGN.md Section 5): the delay-variation gains are
tuned against a single anchor — mean Baseline relative frequency ~0.78
across the Monte Carlo population (paper Section 6.2).  Everything else the
paper reports is a *prediction* of the model and is compared against the
paper in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .units import celsius_to_kelvin, ghz

#: Stage/subsystem categories used throughout (paper Figure 7(b)).
STAGE_KINDS = ("memory", "mixed", "logic")


@dataclass(frozen=True)
class Calibration:
    """Calibrated model constants (defaults reproduce the paper setup)."""

    # ------------------------------------------------------------------
    # Published anchors (Figure 7(a)) — not free parameters.
    # ------------------------------------------------------------------
    f_nominal: float = ghz(4.0)
    vdd_nominal: float = 1.0
    p_max: float = 30.0  # watts per core (core + L1 + L2)
    t_max: float = celsius_to_kelvin(85.0)
    t_heatsink_max: float = celsius_to_kelvin(70.0)
    pe_max: float = 1e-4  # errors per instruction, whole processor

    # ------------------------------------------------------------------
    # Design-balance assumptions.
    # ------------------------------------------------------------------
    #: Temperature at which the no-variation design meets 4 GHz exactly.
    t_design: float = celsius_to_kelvin(72.0)
    #: The design is "error-free" when every stage's exercised-path delay
    #: sits z_free sigmas below the cycle time.  This is what defines the
    #: safe frequency f_var of Section 2.2 (PE indistinguishable from 0).
    z_free: float = 6.5

    # ------------------------------------------------------------------
    # Per-stage-kind dynamic path-delay spread, as a fraction of the
    # nominal cycle.  Memory stages have homogeneous near-critical paths
    # (sharp error onset, Fig 8(a)); logic stages have a wide mix of paths
    # (gradual onset); mixed sits between.
    # ------------------------------------------------------------------
    stage_sigma: Dict[str, float] = field(
        default_factory=lambda: {"memory": 0.034, "mixed": 0.045, "logic": 0.048}
    )
    #: Typical logic depth of a critical path, per stage kind.  Random
    #: per-transistor variation averages over the path (sigma / sqrt(n)).
    path_gate_depth: Dict[str, float] = field(
        default_factory=lambda: {"memory": 10.0, "mixed": 14.0, "logic": 20.0}
    )
    #: Effective number of *independent* near-critical paths per stage
    #: kind.  SRAM arrays expose millions of identical bitline paths, so
    #: their worst path sits far out in the random-variation tail.
    path_count: Dict[str, float] = field(
        default_factory=lambda: {"memory": 2e6, "mixed": 2e5, "logic": 5e4}
    )
    #: Which cell-delay quantile of a subsystem's footprint governs its
    #: timing.  Large SRAM arrays carry redundant rows/columns that repair
    #: the slowest spots, so they are governed by a high percentile rather
    #: than the absolute worst cell; logic has no such repair.
    repair_quantile: Dict[str, float] = field(
        default_factory=lambda: {"memory": 0.80, "mixed": 0.90, "logic": 1.0}
    )

    # ------------------------------------------------------------------
    # Calibrated gains (the only knobs fit to the Baseline ~0.78 anchor).
    # They absorb unmodelled die-to-die components, path re-convergence
    # and the coarseness of the analytic path model.
    # ------------------------------------------------------------------
    systematic_delay_gain: float = 2.85
    random_delay_gain: float = 1.3

    # ------------------------------------------------------------------
    # Mitigation-technique parameters (paper Sections 3.3 and 5).
    # ------------------------------------------------------------------
    #: Low-slope FU replica: dynamic-delay sigma multiplier ("variance
    #: doubles" -> sigma x sqrt(2)=~1.41; we keep the published x2 variance
    #: by scaling sigma by sqrt(2)) while the slowest path (f_var anchor)
    #: is unchanged — a pure Tilt of the PE curve.
    lowslope_sigma_factor: float = 1.4142135623730951
    #: Low-slope replica consumes 30% more power (and area) [1].
    lowslope_power_factor: float = 1.30
    #: Resizing an issue queue to 3/4 capacity shortens its wordlines /
    #: taglines; all paths speed up by this factor (Shift).
    queue_resize_delay_factor: float = 0.92
    #: ... and the disabled quarter stops switching/leaking, so the
    #: queue's power drops too (the original goal of [4]).
    queue_resize_power_factor: float = 0.78
    #: Extra pipeline stage added between register read and execute when FU
    #: replication is built in (Section 3.3.1): lengthens the branch
    #: misprediction / load misspeculation loops by one cycle.
    fu_replication_extra_stage: int = 1

    # ------------------------------------------------------------------
    # Power budget split (45 nm ITRS-style: ~30% static at nominal).
    # The per-subsystem budgets live in the floorplan; these are totals
    # used to normalise them.
    # ------------------------------------------------------------------
    core_dynamic_power_nominal: float = 15.5  # W at 4 GHz, 1 V, typical activity
    core_static_power_nominal: float = 7.0  # W at t_design and mean Vt

    # ------------------------------------------------------------------
    # Thermal network (HotSpot substitute).  Rth_i = rth_coeff / area_i^p
    # where area_i is the subsystem's fraction of core area.  The exponent
    # < 1 models lateral heat spreading, which benefits small hot blocks.
    # ------------------------------------------------------------------
    rth_coefficient: float = 0.20  # K/W at area fraction 1.0
    rth_area_exponent: float = 0.72

    # ------------------------------------------------------------------
    # Timing speculation (Diva-like checker, Section 3.1 / Figure 7(c)).
    # ------------------------------------------------------------------
    #: Error-recovery penalty in cycles: take the checker result, flush the
    #: pipeline, restart — same cost as a branch misprediction.
    recovery_penalty_cycles: float = 14.0
    #: Checker power as a fraction of core dynamic power (7% area, simple
    #: in-order engine at 3.5 GHz).
    checker_power_fraction: float = 0.05

    # ------------------------------------------------------------------
    # Memory system (Figure 7(a)): round-trip latencies at 4 GHz.
    # ------------------------------------------------------------------
    l1_roundtrip_cycles_nominal: int = 2
    l2_roundtrip_cycles_nominal: int = 8
    memory_roundtrip_cycles_nominal: int = 208
    #: The memory round trip is dominated by off-chip time, so in seconds
    #: it is frequency-independent: mp(f) grows linearly with f (Eq 5).
    memory_latency_seconds: float = 208 / ghz(4.0)
    #: Fraction of the L2-miss latency not overlapped with computation.
    memory_overlap_factor: float = 0.7

    def stage_mean(self, kind: str) -> float:
        """Design-point mean exercised-path delay, in cycle fractions.

        Every stage is balanced so its error-free point (mean + z_free
        sigma) lands exactly on the nominal cycle: the "critical-path
        wall" of Section 3.3.1.
        """
        return 1.0 - self.z_free * self.stage_sigma[kind]

    def validate(self) -> None:
        """Raise ``ValueError`` on physically inconsistent settings."""
        for kind in STAGE_KINDS:
            if self.stage_mean(kind) <= 0.0:
                raise ValueError(f"z_free * sigma >= 1 for stage kind {kind!r}")
        if self.pe_max <= 0.0 or self.pe_max >= 1.0:
            raise ValueError("pe_max must be in (0, 1)")
        if self.t_max <= self.t_heatsink_max:
            raise ValueError("TMAX must exceed the heat-sink temperature")


DEFAULT_CALIBRATION = Calibration()
DEFAULT_CALIBRATION.validate()
