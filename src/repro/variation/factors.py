"""Process-wide memo for correlation factors.

The correlation factor ``L`` (``L @ L.T == correlation_matrix``) depends
only on the die geometry, the correlation range ``phi`` and the diagonal
jitter — not on the chip population, the seed, or any campaign knob.  Yet
the seed code recomputed the O(n^3) Cholesky (n = 1600 at the default
40x40 grid) once per :class:`~repro.variation.population.VariationModel`
instance, which in practice meant once per pool worker and once per
service scheduler cell.

This module makes the factor compute-once, share-everywhere:

* a thread-safe, process-wide memo keyed by ``(grid, phi, jitter)``;
* an optional pluggable *store* (installed via :func:`set_store`, backed
  by ``repro.exps.cache.FactorStore``) so cold processes load a
  content-addressed on-disk artifact in milliseconds instead of
  re-factorising;
* paired obs counters ``variation.factor.hits`` / ``.misses`` and a
  ``variation.cholesky_seconds`` counter (plus a ``variation.cholesky``
  span) so campaigns can see exactly how often the expensive path ran.

The memo deliberately lives here, below :mod:`repro.exps`, and knows
nothing about the cache implementation — the store is an injected object
with ``load(key_data)`` / ``save(key_data, factor)`` — which keeps the
dependency arrow pointing from the engine down into the physics layer.

Cached factors are returned with ``writeable=False`` so one consumer
cannot corrupt every other consumer's view.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Protocol, Tuple

import numpy as np

from .. import obs
from .correlation import correlated_normal_factor
from .grid import DieGrid

DEFAULT_JITTER = 1e-9

FactorKey = Tuple[int, int, float, float, float, float]


class FactorStoreProtocol(Protocol):
    """Durable factor storage, pluggable via :func:`set_store`."""

    def load(self, key_data: FactorKey) -> Optional[np.ndarray]:
        """Return the stored factor for ``key_data``, or ``None``."""

    def save(self, key_data: FactorKey, factor: np.ndarray) -> None:
        """Persist ``factor`` under ``key_data``."""


_lock = threading.Lock()
_memo: Dict[FactorKey, np.ndarray] = {}
_store: Optional[FactorStoreProtocol] = None


def factor_key_data(
    grid: DieGrid, phi: float, jitter: float = DEFAULT_JITTER
) -> FactorKey:
    """Return the memo/store key for a factor.

    The key captures everything the factor depends on: the grid geometry
    (``nx``/``ny``/``width``/``height`` fully determine the cell-centre
    coordinates) plus ``phi`` and ``jitter``.
    """
    return (
        grid.nx,
        grid.ny,
        float(grid.width),
        float(grid.height),
        float(phi),
        float(jitter),
    )


def set_store(store: Optional[FactorStoreProtocol]) -> None:
    """Install (or clear, with ``None``) the durable factor store."""
    global _store
    with _lock:
        _store = store


def get_store() -> Optional[FactorStoreProtocol]:
    """Return the currently installed factor store, if any."""
    return _store


def clear_factor_memo() -> None:
    """Drop every memoised factor (the durable store is untouched)."""
    with _lock:
        _memo.clear()


def memo_size() -> int:
    """Return the number of factors currently held in the memo."""
    return len(_memo)


def get_factor(
    grid: DieGrid, phi: float, jitter: float = DEFAULT_JITTER
) -> np.ndarray:
    """Return the (read-only) correlation factor for ``(grid, phi, jitter)``.

    Resolution order: process memo, then the installed store (a store hit
    also populates the memo), then a fresh Cholesky factorisation — which
    is written back to both.  Counters follow the repo's paired-counter
    idiom: every call touches both ``variation.factor.hits`` and
    ``.misses`` so serial and parallel runs stay structurally comparable.
    """
    key = factor_key_data(grid, phi, jitter)
    factor = _memo.get(key)
    if factor is not None:
        obs.inc("variation.factor.hits")
        obs.inc("variation.factor.misses", 0)
        return factor
    with _lock:
        factor = _memo.get(key)
        if factor is not None:
            obs.inc("variation.factor.hits")
            obs.inc("variation.factor.misses", 0)
            return factor
        obs.inc("variation.factor.hits", 0)
        obs.inc("variation.factor.misses")
        factor = _load_from_store(key)
        if factor is None:
            started = time.perf_counter()
            with obs.span("variation.cholesky"):
                factor = correlated_normal_factor(
                    grid.cell_centers(), phi, jitter=jitter
                )
            obs.inc(
                "variation.cholesky_seconds", time.perf_counter() - started
            )
            _save_to_store(key, factor)
        factor = np.ascontiguousarray(factor, dtype=float)
        factor.setflags(write=False)
        _memo[key] = factor
        return factor


def prime_factor(
    factor: np.ndarray,
    grid: DieGrid,
    phi: float,
    jitter: float = DEFAULT_JITTER,
) -> np.ndarray:
    """Seed the memo with an externally obtained factor (e.g. from shared
    memory) and return the read-only array actually memoised.

    An existing memo entry wins: priming is a transport optimisation, and
    the first factor observed for a key is as good as any later copy.
    """
    key = factor_key_data(grid, phi, jitter)
    with _lock:
        existing = _memo.get(key)
        if existing is not None:
            return existing
        factor = np.ascontiguousarray(factor, dtype=float)
        factor.setflags(write=False)
        _memo[key] = factor
        return factor


def _load_from_store(key: FactorKey) -> Optional[np.ndarray]:
    if _store is None:
        return None
    try:
        return _store.load(key)
    except Exception:  # pragma: no cover - defensive: store I/O only
        return None


def _save_to_store(key: FactorKey, factor: np.ndarray) -> None:
    if _store is None:
        return
    try:
        _store.save(key, factor)
    except Exception:  # pragma: no cover - defensive: store I/O only
        pass
