"""Monte Carlo chip populations.

The paper repeats every experiment on 100 chips whose systematic ``Vt`` and
``Leff`` maps are drawn independently with the same ``sigma`` and ``phi``
(Section 5, "Process Variation").  :class:`VariationModel` generates such
populations reproducibly; the (expensive) correlation factor comes from the
process-wide memo in :mod:`repro.variation.factors`, so drawing any number
of populations in one process costs a single Cholesky decomposition.

Sampling is batched: :meth:`VariationModel.population` draws the whole
population's normals in one flat RNG call and multiplies the factor by one
``(n, 2 * n_chips)`` driver matrix — a single GEMM instead of 200
sequential matvecs.  Two properties make the batch *bit-identical* to the
per-chip serial loop (``batch=False``, kept as the golden reference):

* ``np.random.Generator.standard_normal`` fills arrays sequentially from
  the stream, so one flat draw of ``n_chips * per_chip`` values sliced
  into consecutive per-chip blocks yields exactly the values the serial
  loop's per-chip ``(2, n)`` (and die-to-die ``(2,)``) draws produce;
* :meth:`VariationModel.sample` routes its two fields through the same
  width-2 GEMM kernel (driver columns ``[z_vt, leff_driver]``), and the
  batched path *verifies* that the wide product reproduces the width-2
  kernel bit for bit on sentinel column pairs, dropping to a per-chip
  width-2 panel sweep (identical to ``sample()`` by construction) if the
  platform's BLAS disagrees.  On this class of machine the wide product
  matches at the production 40x40 grid and the panel fallback engages
  only on small dies, but the guard makes the equality a checked
  invariant rather than a BLAS implementation detail.

Because the RNG stream parity holds for the interleaved die-to-die draws
too, the ``d2d_sigma_rel > 0`` branch batches as well — no serial
fallback is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .. import obs
from .factors import DEFAULT_JITTER, get_factor
from .grid import DieGrid
from .maps import DEFAULT_VARIATION_PARAMS, ChipSample, VariationParams


@dataclass
class VariationModel:
    """Generator of :class:`ChipSample` populations on a fixed die grid."""

    grid: DieGrid = field(default_factory=DieGrid)
    params: VariationParams = DEFAULT_VARIATION_PARAMS

    @property
    def factor(self) -> np.ndarray:
        """The memoised correlation factor ``L`` (``L @ L.T = corr``)."""
        return get_factor(self.grid, self.params.phi, DEFAULT_JITTER)

    def _fields_from_drivers(self, drivers: np.ndarray) -> np.ndarray:
        """Multiply the factor by a ``(n, 2k)`` driver matrix.

        Every sampling path — serial and batched — funnels through this
        one GEMM so they share a single BLAS kernel; adjacent column
        pairs of a wide product match a per-chip width-2 product bit for
        bit, which is what makes ``population(batch=True)`` reproduce
        ``sample()`` exactly.
        """
        return self.factor @ drivers

    def sample(self, rng: np.random.Generator, chip_id: int = 0) -> ChipSample:
        """Draw one chip's systematic variation surfaces."""
        n = self.grid.cell_count
        normals = rng.standard_normal((2, n))
        rho = self.params.vt_leff_correlation
        leff_driver = rho * normals[0] + np.sqrt(1.0 - rho**2) * normals[1]
        drivers = np.empty((n, 2))
        drivers[:, 0] = normals[0]
        drivers[:, 1] = leff_driver
        fields = self._fields_from_drivers(drivers)
        vt_sys = self.params.vt_sigma_sys * fields[:, 0]
        leff_sys = self.params.leff_sigma_sys * fields[:, 1]
        if self.params.d2d_sigma_rel > 0.0:
            # Die-to-die: one correlated offset for the whole chip.
            d2d = rng.standard_normal(2)
            vt_sys = vt_sys + (
                self.params.d2d_sigma_rel * self.params.vt_mean * d2d[0]
            )
            leff_sys = leff_sys + (
                self.params.d2d_sigma_rel * 0.5 * d2d[1]
            )
        return ChipSample(
            grid=self.grid,
            params=self.params,
            vt_sys=vt_sys,
            leff_sys=leff_sys,
            chip_id=chip_id,
        )

    def population(
        self, n_chips: int = 100, seed: int = 0, *, batch: bool = True
    ) -> List[ChipSample]:
        """Draw ``n_chips`` independent chips, reproducibly from ``seed``.

        ``batch=True`` (the default) draws the whole population through
        one GEMM; ``batch=False`` runs the per-chip serial loop.  Both
        produce bit-identical chips for every parameter combination,
        including ``d2d_sigma_rel > 0`` and ``vt_leff_correlation != 0``.
        """
        if n_chips < 1:
            raise ValueError("population needs at least one chip")
        rng = np.random.default_rng(seed)
        if not batch:
            return [self.sample(rng, chip_id=i) for i in range(n_chips)]
        return self._population_batched(rng, n_chips)

    def _wide_matches_width2(
        self, drivers: np.ndarray, fields: np.ndarray, n_chips: int
    ) -> bool:
        """Check the wide GEMM against the width-2 kernel on sentinels.

        Recomputes the first, middle and last chips' column pairs with
        the same width-2 call :meth:`sample` issues and compares bits.
        Whether a narrow product reproduces the columns of a wide one is
        a BLAS kernel-selection detail that varies with the matrix size,
        so the equality is verified at runtime instead of assumed; every
        mismatch observed in practice shows up on the first pair.
        """
        for i in {0, n_chips // 2, n_chips - 1}:
            pair = self._fields_from_drivers(drivers[:, 2 * i : 2 * i + 2])
            if not np.array_equal(pair, fields[:, 2 * i : 2 * i + 2]):
                return False
        return True

    def _population_batched(
        self, rng: np.random.Generator, n_chips: int
    ) -> List[ChipSample]:
        n = self.grid.cell_count
        params = self.params
        has_d2d = params.d2d_sigma_rel > 0.0
        # One flat draw covering every chip's (2, n) block — plus its
        # (2,) die-to-die pair when that branch is active — reproduces
        # the serial loop's interleaved per-chip draws exactly, because
        # the Generator fills any output shape sequentially from the
        # same stream.
        per_chip = 2 * n + (2 if has_d2d else 0)
        blocks = rng.standard_normal(n_chips * per_chip)
        blocks = blocks.reshape(n_chips, per_chip)
        z_vt = blocks[:, :n]
        z_leff = blocks[:, n : 2 * n]
        d2d = blocks[:, 2 * n :]
        rho = params.vt_leff_correlation
        leff_driver = rho * z_vt + np.sqrt(1.0 - rho**2) * z_leff
        # Interleave per-chip driver pairs as adjacent columns: chip i
        # owns columns (2i, 2i + 1), matching the width-2 kernel layout
        # sample() uses.
        drivers = np.empty((n, 2 * n_chips))
        drivers[:, 0::2] = z_vt.T
        drivers[:, 1::2] = leff_driver.T
        fields = self._fields_from_drivers(drivers)
        if self._wide_matches_width2(drivers, fields, n_chips):
            obs.inc("variation.batch.wide")
            obs.inc("variation.batch.panel", 0)
        else:
            # This BLAS computes narrow and wide products differently at
            # this size; sweep per-chip width-2 panels instead, which is
            # identical to sample() by construction.
            obs.inc("variation.batch.wide", 0)
            obs.inc("variation.batch.panel")
            for i in range(n_chips):
                fields[:, 2 * i : 2 * i + 2] = self._fields_from_drivers(
                    drivers[:, 2 * i : 2 * i + 2]
                )
        chips: List[ChipSample] = []
        for i in range(n_chips):
            vt_sys = params.vt_sigma_sys * fields[:, 2 * i]
            leff_sys = params.leff_sigma_sys * fields[:, 2 * i + 1]
            if has_d2d:
                vt_sys = vt_sys + (
                    params.d2d_sigma_rel * params.vt_mean * d2d[i, 0]
                )
                leff_sys = leff_sys + (
                    params.d2d_sigma_rel * 0.5 * d2d[i, 1]
                )
            chips.append(
                ChipSample(
                    grid=self.grid,
                    params=params,
                    vt_sys=vt_sys,
                    leff_sys=leff_sys,
                    chip_id=i,
                )
            )
        return chips
