"""Monte Carlo chip populations.

The paper repeats every experiment on 100 chips whose systematic ``Vt`` and
``Leff`` maps are drawn independently with the same ``sigma`` and ``phi``
(Section 5, "Process Variation").  :class:`VariationModel` generates such
populations reproducibly and caches the (expensive) correlation factor so
that drawing 100 chips costs one Cholesky decomposition plus 100
matrix-vector products.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .correlation import correlated_normal_factor
from .grid import DieGrid
from .maps import DEFAULT_VARIATION_PARAMS, ChipSample, VariationParams


@dataclass
class VariationModel:
    """Generator of :class:`ChipSample` populations on a fixed die grid."""

    grid: DieGrid = field(default_factory=DieGrid)
    params: VariationParams = DEFAULT_VARIATION_PARAMS
    _factor: Optional[np.ndarray] = field(default=None, repr=False, init=False)

    @property
    def factor(self) -> np.ndarray:
        """The cached correlation factor ``L`` (``L @ L.T = corr``)."""
        if self._factor is None:
            points = self.grid.cell_centers()
            self._factor = correlated_normal_factor(points, self.params.phi)
        return self._factor

    def sample(self, rng: np.random.Generator, chip_id: int = 0) -> ChipSample:
        """Draw one chip's systematic variation surfaces."""
        n = self.grid.cell_count
        normals = rng.standard_normal((2, n))
        rho = self.params.vt_leff_correlation
        vt_field = self.factor @ normals[0]
        leff_driver = rho * normals[0] + np.sqrt(1.0 - rho**2) * normals[1]
        leff_field = self.factor @ leff_driver
        vt_sys = self.params.vt_sigma_sys * vt_field
        leff_sys = self.params.leff_sigma_sys * leff_field
        if self.params.d2d_sigma_rel > 0.0:
            # Die-to-die: one correlated offset for the whole chip.
            d2d = rng.standard_normal(2)
            vt_sys = vt_sys + (
                self.params.d2d_sigma_rel * self.params.vt_mean * d2d[0]
            )
            leff_sys = leff_sys + (
                self.params.d2d_sigma_rel * 0.5 * d2d[1]
            )
        return ChipSample(
            grid=self.grid,
            params=self.params,
            vt_sys=vt_sys,
            leff_sys=leff_sys,
            chip_id=chip_id,
        )

    def population(self, n_chips: int = 100, seed: int = 0) -> List[ChipSample]:
        """Draw ``n_chips`` independent chips, reproducibly from ``seed``."""
        if n_chips < 1:
            raise ValueError("population needs at least one chip")
        rng = np.random.default_rng(seed)
        return [self.sample(rng, chip_id=i) for i in range(n_chips)]
