"""Per-chip variation maps: systematic ``Vt`` / ``Leff`` surfaces.

Following VARIUS [26] and the paper's Section 2.1 / Figure 7(a):

* ``Vt``'s mean is 150 mV (quoted at 100 C); total ``sigma/mu`` is 0.09,
  split equally between systematic and random components, so
  ``sigma_sys/mu = sigma_ran/mu = sqrt(0.09^2 / 2) = 0.064``.
* ``Leff`` uses the same correlation range ``phi`` and half of ``Vt``'s
  relative sigma: ``sigma/mu = 0.045``, again split equally.
* The systematic component lives on a die grid, sampled from a
  multivariate normal whose correlation decays to zero at range
  ``phi = 0.5`` (die-width units).
* The random component acts at individual-transistor granularity and is
  handled *analytically* downstream (see :mod:`repro.timing.paths`), not
  spatially.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .grid import DieGrid


@dataclass(frozen=True)
class VariationParams:
    """Statistical parameters of the process-variation model.

    Defaults reproduce Figure 7(a).  ``vt_mean`` is quoted at the reference
    temperature of :class:`repro.circuits.VtSensitivities` (100 C).
    ``Leff`` values are relative to nominal (mean 1.0).
    """

    vt_mean: float = 0.150  # volts at the Vt reference temperature
    vt_sigma_rel: float = 0.09  # total sigma/mu for Vt
    leff_sigma_rel: float = 0.045  # total sigma/mu for Leff (0.5 x Vt's)
    systematic_fraction: float = 0.5  # fraction of variance that is systematic
    phi: float = 0.5  # correlation range, die-width units
    #: Die-to-die component: a single normal offset per chip, added on top
    #: of the within-die systematic surface.  The paper studies WID
    #: variation (d2d = 0); VARIUS supports both, and the sensitivity
    #: experiments use this knob.
    d2d_sigma_rel: float = 0.0
    # Correlation between the Vt and Leff systematic surfaces.  VARIUS
    # generates them with separate sigmas but notes they share lithographic
    # causes; 0 keeps them independent, which is the paper's usage.
    vt_leff_correlation: float = 0.0

    def __post_init__(self) -> None:
        if self.vt_mean <= 0.0:
            raise ValueError("vt_mean must be positive")
        if not 0.0 <= self.systematic_fraction <= 1.0:
            raise ValueError("systematic_fraction must be in [0, 1]")
        if self.vt_sigma_rel < 0.0 or self.leff_sigma_rel < 0.0:
            raise ValueError("sigma/mu values cannot be negative")
        if self.phi <= 0.0:
            raise ValueError("phi must be positive")
        if not -1.0 <= self.vt_leff_correlation <= 1.0:
            raise ValueError("vt_leff_correlation must be in [-1, 1]")
        if self.d2d_sigma_rel < 0.0:
            raise ValueError("d2d_sigma_rel cannot be negative")

    @property
    def vt_sigma_sys(self) -> float:
        """Systematic sigma of ``Vt`` in volts."""
        return self.vt_mean * self.vt_sigma_rel * np.sqrt(self.systematic_fraction)

    @property
    def vt_sigma_ran(self) -> float:
        """Random (per-transistor) sigma of ``Vt`` in volts."""
        return self.vt_mean * self.vt_sigma_rel * np.sqrt(
            1.0 - self.systematic_fraction
        )

    @property
    def leff_sigma_sys(self) -> float:
        """Systematic sigma of relative ``Leff`` (dimensionless)."""
        return self.leff_sigma_rel * np.sqrt(self.systematic_fraction)

    @property
    def leff_sigma_ran(self) -> float:
        """Random sigma of relative ``Leff`` (dimensionless)."""
        return self.leff_sigma_rel * np.sqrt(1.0 - self.systematic_fraction)


DEFAULT_VARIATION_PARAMS = VariationParams()


@dataclass(frozen=True)
class ChipSample:
    """One manufactured chip: systematic variation surfaces on a die grid.

    Attributes:
        grid: The die grid the surfaces are sampled on.
        params: The statistical parameters used to generate the sample.
        vt_sys: Flat array (length ``grid.cell_count``) of systematic
            ``Vt`` offsets in volts (zero-mean across the process).
        leff_sys: Flat array of systematic relative-``Leff`` offsets
            (zero-mean; cell Leff is ``1 + leff_sys``).
        chip_id: Index of the chip within its population (for reporting).
    """

    grid: DieGrid
    params: VariationParams
    vt_sys: np.ndarray = field(repr=False)
    leff_sys: np.ndarray = field(repr=False)
    chip_id: int = 0

    def __post_init__(self) -> None:
        expected = self.grid.cell_count
        if self.vt_sys.shape != (expected,) or self.leff_sys.shape != (expected,):
            raise ValueError(
                "variation surfaces must be flat arrays of length "
                f"{expected}; got {self.vt_sys.shape} and {self.leff_sys.shape}"
            )
        if np.any(1.0 + self.leff_sys <= 0.0):
            raise ValueError("sampled Leff must remain positive")

    @property
    def vt0_cells(self) -> np.ndarray:
        """Absolute per-cell ``Vt0`` in volts (at the Vt reference temp)."""
        return self.params.vt_mean + self.vt_sys

    @property
    def leff_cells(self) -> np.ndarray:
        """Per-cell relative ``Leff`` (1.0 = nominal)."""
        return 1.0 + self.leff_sys

    def region_vt0(self, cell_indices: np.ndarray) -> "RegionStats":
        """Summarise ``Vt0`` over a set of cells (a subsystem footprint)."""
        values = self.vt0_cells[np.asarray(cell_indices)]
        return RegionStats(
            mean=float(values.mean()),
            worst_slow=float(values.max()),  # high Vt = slow
            worst_leaky=float(values.min()),  # low Vt = leaky
        )

    def region_leff(self, cell_indices: np.ndarray) -> "RegionStats":
        """Summarise relative ``Leff`` over a set of cells."""
        values = self.leff_cells[np.asarray(cell_indices)]
        return RegionStats(
            mean=float(values.mean()),
            worst_slow=float(values.max()),  # long Leff = slow
            worst_leaky=float(values.min()),
        )


@dataclass(frozen=True)
class RegionStats:
    """Mean / extreme statistics of a parameter over a die region."""

    mean: float
    worst_slow: float
    worst_leaky: float
