"""Within-die process-variation model (VARIUS-style, paper Section 2.1)."""

from .correlation import (
    correlated_normal_factor,
    correlation_matrix,
    spherical_correlation,
)
from .grid import DieGrid
from .maps import (
    DEFAULT_VARIATION_PARAMS,
    ChipSample,
    RegionStats,
    VariationParams,
)
from .population import VariationModel

__all__ = [
    "ChipSample",
    "DEFAULT_VARIATION_PARAMS",
    "DieGrid",
    "RegionStats",
    "VariationModel",
    "VariationParams",
    "correlated_normal_factor",
    "correlation_matrix",
    "spherical_correlation",
]
