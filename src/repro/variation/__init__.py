"""Within-die process-variation model (VARIUS-style, paper Section 2.1)."""

from .correlation import (
    correlated_normal_factor,
    correlation_matrix,
    spherical_correlation,
)
from .factors import (
    DEFAULT_JITTER,
    clear_factor_memo,
    factor_key_data,
    get_factor,
    get_store,
    memo_size,
    prime_factor,
    set_store,
)
from .grid import DieGrid
from .maps import (
    DEFAULT_VARIATION_PARAMS,
    ChipSample,
    RegionStats,
    VariationParams,
)
from .population import VariationModel

__all__ = [
    "ChipSample",
    "DEFAULT_JITTER",
    "DEFAULT_VARIATION_PARAMS",
    "DieGrid",
    "RegionStats",
    "VariationModel",
    "VariationParams",
    "clear_factor_memo",
    "correlated_normal_factor",
    "correlation_matrix",
    "factor_key_data",
    "get_factor",
    "get_store",
    "memo_size",
    "prime_factor",
    "set_store",
    "spherical_correlation",
]
