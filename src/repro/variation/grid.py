"""Die grid geometry for the variation model.

VARIUS divides the die into a regular grid; each cell takes a single value
of the systematic component of ``Vt`` / ``Leff``.  The die is modelled as
a unit square (coordinates in die-width units), which is also the unit the
correlation range ``phi`` is expressed in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DieGrid:
    """A regular ``nx`` x ``ny`` grid over a rectangular die.

    Attributes:
        nx: Number of cells along x.
        ny: Number of cells along y.
        width: Die width in die-width units (1.0 by convention).
        height: Die height in die-width units.
    """

    nx: int = 40
    ny: int = 40
    width: float = 1.0
    height: float = 1.0

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValueError("grid dimensions must be at least 1x1")
        if self.width <= 0.0 or self.height <= 0.0:
            raise ValueError("die dimensions must be positive")

    @property
    def cell_count(self) -> int:
        """Total number of grid cells."""
        return self.nx * self.ny

    def cell_centers(self) -> np.ndarray:
        """Return cell-centre coordinates, shape ``(nx*ny, 2)``.

        Cells are ordered row-major: index ``iy * nx + ix``.
        """
        xs = (np.arange(self.nx) + 0.5) * (self.width / self.nx)
        ys = (np.arange(self.ny) + 0.5) * (self.height / self.ny)
        grid_x, grid_y = np.meshgrid(xs, ys)
        return np.column_stack([grid_x.ravel(), grid_y.ravel()])

    def cells_in_rect(
        self, x0: float, y0: float, x1: float, y1: float
    ) -> np.ndarray:
        """Return flat indices of cells whose centre lies in a rectangle.

        The rectangle is ``[x0, x1) x [y0, y1)`` in die-width units.  If no
        cell centre falls inside (a very small rectangle), the single cell
        containing the rectangle's centre is returned so every subsystem
        maps to at least one cell.
        """
        if x1 <= x0 or y1 <= y0:
            raise ValueError("rectangle must have positive extent")
        centers = self.cell_centers()
        inside = (
            (centers[:, 0] >= x0)
            & (centers[:, 0] < x1)
            & (centers[:, 1] >= y0)
            & (centers[:, 1] < y1)
        )
        indices = np.flatnonzero(inside)
        if indices.size:
            return indices
        return np.array([self.cell_index_at((x0 + x1) / 2, (y0 + y1) / 2)])

    def cell_index_at(self, x: float, y: float) -> int:
        """Return the flat index of the cell containing point ``(x, y)``."""
        if not (0.0 <= x <= self.width and 0.0 <= y <= self.height):
            raise ValueError("point lies outside the die")
        ix = min(int(x / self.width * self.nx), self.nx - 1)
        iy = min(int(y / self.height * self.ny), self.ny - 1)
        return iy * self.nx + ix
