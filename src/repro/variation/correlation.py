"""Spatial correlation of systematic within-die variation.

The VARIUS model [26] correlates the systematic component of ``Vt`` (and
``Leff``) between two points using an isotropic, position-independent
function of distance only, which decays to zero at a distance ``phi``
(the *range*).  We use the spherical correlogram — the standard choice in
VARIUS — which has exactly that property::

    rho(r) = 1 - 1.5*(r/phi) + 0.5*(r/phi)^3     for r <= phi
    rho(r) = 0                                    for r >  phi

Distances are expressed as fractions of the die width, matching the
paper's ``phi = 0.5``.
"""

from __future__ import annotations

import numpy as np


def spherical_correlation(distance, phi: float):
    """Return the spherical correlogram ``rho(distance)``.

    Args:
        distance: Euclidean distance(s), in die-width units. Scalars and
            arrays are both accepted.
        phi: Correlation range in die-width units; at distances >= ``phi``
            the correlation is exactly zero.

    Raises:
        ValueError: If ``phi`` is not positive or any distance is negative.
    """
    if phi <= 0.0:
        raise ValueError("correlation range phi must be positive")
    r = np.asarray(distance, dtype=float)
    if np.any(r < 0.0):
        raise ValueError("distances cannot be negative")
    scaled = np.minimum(r / phi, 1.0)
    return 1.0 - 1.5 * scaled + 0.5 * scaled**3


def correlation_matrix(points: np.ndarray, phi: float) -> np.ndarray:
    """Return the correlation matrix for a set of 2-D points.

    Distances come from separate x/y outer differences — two ``(n, n)``
    scratch arrays instead of one ``(n, n, 2)`` deltas tensor, which at
    the default 40x40 grid keeps ~20 MB of peak memory off the table
    while producing bit-identical values (``np.hypot`` sees the exact
    same coordinate differences either way).

    Args:
        points: Array of shape ``(n, 2)`` with point coordinates in
            die-width units.
        phi: Correlation range in die-width units.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must have shape (n, 2)")
    dx = np.subtract.outer(points[:, 0], points[:, 0])
    dy = np.subtract.outer(points[:, 1], points[:, 1])
    distances = np.hypot(dx, dy)
    return spherical_correlation(distances, phi)


def correlated_normal_factor(
    points: np.ndarray, phi: float, jitter: float = 1e-9
) -> np.ndarray:
    """Return a matrix ``L`` with ``L @ L.T == correlation_matrix``.

    The factor is computed with a Cholesky decomposition; a small diagonal
    ``jitter`` keeps the matrix numerically positive definite (the
    spherical correlogram is positive definite in 2-D, but finite grids can
    sit at the edge of machine precision).

    Multiplying ``L`` by an i.i.d. standard-normal vector yields one
    realisation of the systematic variation surface sampled at ``points``.
    """
    corr = correlation_matrix(points, phi)
    # Add the jitter in place on the diagonal: materialising
    # ``jitter * np.eye(n)`` would cost another dense (n, n) array (~20 MB
    # at 40x40) only to add zeros everywhere off the diagonal.
    diag = np.einsum("ii->i", corr)
    diag += jitter
    try:
        return np.linalg.cholesky(corr)
    except np.linalg.LinAlgError:
        # Restore the exact un-jittered matrix: the diagonal of a
        # correlation matrix is exactly 1.0 (zero self-distance).
        diag[...] = 1.0
        # Fall back to an eigen-decomposition factor, clipping any tiny
        # negative eigenvalues introduced by round-off.
        eigvals, eigvecs = np.linalg.eigh(corr)
        eigvals = np.clip(eigvals, 0.0, None)
        return eigvecs * np.sqrt(eigvals)
