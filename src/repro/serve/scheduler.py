"""Fault-tolerant unit scheduler: a supervised, prioritised worker pool.

Worker threads pop (priority, sequence) unit tasks off a shared
:class:`queue.PriorityQueue` and run them through a caller-supplied
execute function under a :class:`RetryPolicy`: a failed attempt is
retried with exponential backoff up to the configured budget, an attempt
that overruns the per-unit wall-clock budget counts as a failure, and a
unit that exhausts its budget is reported to the failure callback — the
worker moves on to the next task instead of dying.  Callback exceptions
are logged and swallowed for the same reason: the pool must outlive any
single poisoned unit.

Threads (not processes) carry the service's concurrency: units spend
their time inside numpy, the task objects are shared by reference with
the coalescing layer, and a daemon restart is cheap.  ``--jobs`` style
process sharding stays the engine's business
(:class:`repro.exps.engine.SupervisedExecutor`).
"""

from __future__ import annotations

import itertools
import logging
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .. import obs

log = logging.getLogger("repro.serve.scheduler")

#: Queue entries sort by (-priority, sequence): higher priority first,
#: FIFO within a priority band.
_SENTINEL = object()


@dataclass(frozen=True)
class RetryPolicy:
    """Per-unit supervision knobs.

    Attributes:
        retries: Extra attempts after the first failure; ``0`` fails fast.
        backoff: Sleep before attempt *n+1*, doubling each retry.
        timeout: Wall-clock budget per attempt, in seconds.  Threads
            cannot be preempted, so the budget is enforced *post hoc*: an
            attempt that finishes over budget is discarded and counts as
            a failure (and so consumes retry budget) — the graceful-
            degradation signal that a cell is too slow for the service's
            configuration.
    """

    retries: int = 1
    backoff: float = 0.05
    timeout: Optional[float] = None


class UnitTimeoutError(RuntimeError):
    """An attempt finished, but over the configured wall-clock budget."""


class CellScheduler:
    """N worker threads draining a priority queue of unit tasks."""

    def __init__(
        self,
        execute: Callable[[Any], Any],
        *,
        workers: int = 2,
        policy: RetryPolicy = RetryPolicy(),
        on_done: Callable[[Any, Any, int], None],
        on_failed: Callable[[Any, BaseException, int], None],
        claim: Optional[Callable[[Any], bool]] = None,
        warmup: Optional[Callable[[], None]] = None,
    ):
        """Args:
            execute: Runs one unit task, returning its result.
            workers: Worker-thread count.
            policy: Retry/backoff/timeout supervision knobs.
            on_done: ``(item, result, attempts)`` success callback.
            on_failed: ``(item, error, attempts)`` exhausted-budget callback.
            claim: Optional predicate consulted when an item is popped;
                returning ``False`` drops it (a cancelled/abandoned cell).
            warmup: Optional callable each worker thread runs once before
                draining tasks — e.g. priming shared read-only state such
                as the correlation-factor memo — so the first unit does
                not pay for it under a retry/timeout budget.  Warmup
                failures are logged and ignored: they only cost the lazy
                initialisation back.
        """
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self._execute = execute
        self._workers = workers
        self._policy = policy
        self._on_done = on_done
        self._on_failed = on_failed
        self._claim = claim
        self._warmup = warmup
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._seq = itertools.count()
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._threads:
            return
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._loop, name=f"serve-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Stop workers after their current unit; pending tasks are dropped."""
        for _ in self._threads:
            # Sentinels sort behind nothing that matters: workers exit as
            # soon as they reach one.
            self._queue.put((float("inf"), next(self._seq), _SENTINEL))
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads.clear()

    def submit(self, priority: int, item: Any) -> None:
        """Enqueue one unit task; higher priority runs first."""
        self._queue.put((-priority, next(self._seq), item))
        obs.set_gauge("serve.queue_depth", self._queue.qsize())

    def depth(self) -> int:
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # Fleet integration: lease-style access to the same queue.
    # ------------------------------------------------------------------
    def take(self) -> Optional[tuple]:
        """Pop the highest-priority task without blocking.

        Returns ``(neg_priority, item)`` — the stored (negated) priority
        rides along so :meth:`requeue` can reinsert the task in its
        original band — or ``None`` when the queue is empty.  Sentinels
        are put straight back: stopping the in-process pool must not eat
        the fleet's work, and vice versa.
        """
        try:
            neg_priority, seq, item = self._queue.get_nowait()
        except queue.Empty:
            return None
        if item is _SENTINEL:
            self._queue.put((neg_priority, seq, item))
            return None
        obs.set_gauge("serve.queue_depth", self._queue.qsize())
        return neg_priority, item

    def requeue(self, neg_priority: int, item: Any) -> None:
        """Reinsert a task taken with :meth:`take` (lease revoked/failed).

        A fresh sequence number puts it behind live submissions of the
        same priority band — re-queued work should not overtake work
        that never failed.
        """
        self._queue.put((neg_priority, next(self._seq), item))
        obs.set_gauge("serve.queue_depth", self._queue.qsize())

    # ------------------------------------------------------------------
    # Worker loop + supervision.
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        if self._warmup is not None:
            try:
                self._warmup()
            except Exception:
                log.warning("worker warmup failed; continuing", exc_info=True)
        while True:
            _, _, item = self._queue.get()
            obs.set_gauge("serve.queue_depth", self._queue.qsize())
            if item is _SENTINEL:
                return
            try:
                if self._claim is not None and not self._claim(item):
                    obs.inc("serve.units_skipped")
                    continue
                self._run_supervised(item)
            except Exception:  # pragma: no cover - callback bug backstop
                log.exception("scheduler callback failed; worker continues")

    def _run_supervised(self, item: Any) -> None:
        attempts = 0
        while True:
            attempts += 1
            start = time.perf_counter()
            error: BaseException
            try:
                result = self._execute(item)
            except Exception as exc:
                error = exc
            else:
                elapsed = time.perf_counter() - start
                budget = self._policy.timeout
                if budget is None or elapsed <= budget:
                    obs.observe("serve.unit_seconds", elapsed)
                    self._on_done(item, result, attempts)
                    return
                obs.inc("serve.unit_timeouts")
                error = UnitTimeoutError(
                    f"unit took {elapsed:.3f}s, budget {budget:.3f}s"
                )
            if attempts > self._policy.retries:
                self._on_failed(item, error, attempts)
                return
            obs.inc("serve.retries")
            log.warning(
                "unit attempt %d/%d failed (%s); retrying",
                attempts, self._policy.retries + 1, error,
            )
            time.sleep(self._policy.backoff * (2 ** (attempts - 1)))
