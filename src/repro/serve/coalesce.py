"""Request coalescing: one in-flight cell per content-addressed key.

The unit of sharing is the *cell* — one (environment, mode) pair of a
:class:`~repro.exps.engine.RunSpec`, addressed by the same
:func:`~repro.exps.cache.summary_key` the artifact cache uses.  Two jobs
whose specs overlap resolve to the same key, so the second job *follows*
the first cell instead of enqueueing duplicate work; each (chip, core)
unit inside the cell is computed exactly once and the finished summary is
delivered to every follower (and written once to the summary cache).

The registry only tracks cells that are currently in flight.  Once a
cell completes — or is poisoned — it leaves the registry: completed cells
are served from the disk cache on the next submission, and poisoned ones
get a fresh chance rather than being failed forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.environments import AdaptationMode, Environment
from ..exps.cache import unit_key
from ..exps.runner import PhaseResult, SuiteSummary
from ..microarch.workloads import WorkloadProfile
from .jobs import CellFailure, Job

#: Chip index of the pseudo-unit backing a NoVar cell (no population
#: dimension: the whole cell is one ``novar_summary`` call).
NOVAR_CHIP = -1


@dataclass
class UnitTask:
    """One (chip, core) shard of a cell."""

    chip_index: int
    core_index: int
    key: str
    rows: Optional[List[PhaseResult]] = None
    attempts: int = 0


@dataclass
class CellTask:
    """One in-flight (environment, mode) cell, shared across jobs."""

    key: str
    env: Environment
    mode: AdaptationMode
    workloads: Tuple[WorkloadProfile, ...]
    units: List[UnitTask] = field(default_factory=list)
    followers: List[Job] = field(default_factory=list)
    pending_units: int = 0
    started: bool = False
    live: bool = True  # False once abandoned (no followers left) or poisoned
    summary: Optional[SuiteSummary] = None
    failure: Optional[CellFailure] = None

    @property
    def cell(self) -> Tuple[str, str]:
        return (self.env.name, self.mode.value)

    def rows_in_order(self) -> List[PhaseResult]:
        """Concatenate unit rows in decomposition order.

        Completion order is scheduler-dependent; reassembly order is not —
        which is what keeps service summaries bit-identical to a direct
        serial ``ExperimentRunner.run``.
        """
        rows: List[PhaseResult] = []
        for unit in self.units:
            rows.extend(unit.rows or [])
        return rows


def build_cell(
    key: str,
    env: Environment,
    mode: AdaptationMode,
    workloads: Sequence[WorkloadProfile],
    n_chips: int,
    cores_per_chip: int,
) -> CellTask:
    """Decompose one cell into its (chip, core) unit tasks.

    NoVar cells have no population dimension and get a single pseudo-unit
    (chip index :data:`NOVAR_CHIP`) that the executor maps to
    ``novar_summary``.
    """
    cell = CellTask(key=key, env=env, mode=mode, workloads=tuple(workloads))
    if not env.variation:
        cell.units = [UnitTask(NOVAR_CHIP, 0, unit_key(key, NOVAR_CHIP, 0))]
    else:
        cell.units = [
            UnitTask(chip, core, unit_key(key, chip, core))
            for chip in range(n_chips)
            for core in range(cores_per_chip)
        ]
    cell.pending_units = len(cell.units)
    return cell


class InFlightRegistry:
    """The key -> live :class:`CellTask` map behind coalescing.

    Not internally locked: the service serialises every mutation under
    its own lock, and the registry is an implementation detail of it.
    """

    def __init__(self) -> None:
        self._cells: Dict[str, CellTask] = {}

    def __len__(self) -> int:
        return len(self._cells)

    def get(self, key: str) -> Optional[CellTask]:
        """The in-flight cell for a key, if any."""
        return self._cells.get(key)

    def add(self, cell: CellTask) -> None:
        self._cells[cell.key] = cell

    def finish(self, key: str) -> None:
        """Retire a completed/poisoned/abandoned cell from the registry."""
        self._cells.pop(key, None)
