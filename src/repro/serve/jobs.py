"""Job bookkeeping for the campaign service.

A *job* is one accepted :class:`~repro.exps.engine.RunSpec` submission.
The service decomposes it into (environment, mode) cells — shared,
coalescable :class:`~repro.serve.coalesce.CellTask` objects — and the job
tracks which of its cells have been delivered.  Jobs never own work:
cells do, and a cell delivers its summary to every job following it.

Failure is structured: a poisoned cell produces a :class:`CellFailure`
report (unit identity, attempt count, error text) that is attached to
every following job instead of tearing the service down.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from ..exps.engine import RunSpec
from ..exps.runner import SuiteSummary


class JobState(Enum):
    """Lifecycle of one submission."""

    QUEUED = "queued"  # accepted, no unit started yet
    RUNNING = "running"  # at least one unit claimed by a worker
    DONE = "done"  # every cell delivered
    FAILED = "failed"  # a poisoned cell failed this job
    CANCELLED = "cancelled"  # withdrawn by the client


#: States in which a job still counts against the admission limit.
LIVE_STATES = (JobState.QUEUED, JobState.RUNNING)


@dataclass(frozen=True)
class CellFailure:
    """Structured error report for one poisoned cell.

    Carries the identity of the unit that exhausted the retry budget —
    not a worker traceback — so a client can tell *which* (environment,
    mode, chip, core) is poisoned and resubmit around it.
    """

    environment: str
    mode: str
    chip_index: int
    core_index: int
    attempts: int
    error: str

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-safe record (the wire/report format)."""
        return {
            "environment": self.environment,
            "mode": self.mode,
            "chip_index": self.chip_index,
            "core_index": self.core_index,
            "attempts": self.attempts,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "CellFailure":
        return cls(**record)


@dataclass
class Job:
    """One accepted submission and its delivery state."""

    job_id: str
    spec: RunSpec
    priority: int
    created: float = field(default_factory=time.time)
    state: JobState = JobState.QUEUED
    #: Cells this job is waiting on, keyed (env name, mode value).
    pending_cells: int = 0
    cells_total: int = 0
    cells_cached: int = 0
    cells_coalesced: int = 0
    summaries: Dict[Tuple[str, str], SuiteSummary] = field(default_factory=dict)
    failures: List[CellFailure] = field(default_factory=list)
    finished: Optional[float] = None
    done_event: threading.Event = field(default_factory=threading.Event)

    def finish(self, state: JobState) -> None:
        """Move to a terminal state and wake every waiter."""
        self.state = state
        self.finished = time.time()
        self.done_event.set()

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe progress snapshot (the ``status`` wire payload)."""
        return {
            "job_id": self.job_id,
            "state": self.state.value,
            "priority": self.priority,
            "cells": {
                "total": self.cells_total,
                "done": len(self.summaries),
                "pending": self.pending_cells,
                "cached": self.cells_cached,
                "coalesced": self.cells_coalesced,
            },
            "failures": [failure.to_dict() for failure in self.failures],
            "created": self.created,
            "finished": self.finished,
        }
