"""The remote fleet worker: lease, execute, report, heartbeat.

``python -m repro.serve worker --connect HOST:PORT`` runs one
:class:`FleetWorker`.  Its lifecycle::

    register -> (heartbeat ...)          # background thread
             -> lease -> execute -> complete/fail   # main loop
             -> idle  -> poll / exit after --max-idle

Registration ships the daemon's physics context — ``RunnerConfig``,
``Calibration``, ``CoreConfig`` — over the wire with a fingerprint
(:func:`~repro.serve.protocol.runner_context_from_wire` refuses a
mismatch), so the worker's locally-rebuilt
:class:`~repro.exps.runner.ExperimentRunner` produces bit-identical
rows and, crucially, *identical cache keys*: a fleet sharing one
artifact store (``--store-backend shared``) reuses each other's
measurements and fuzzy banks instead of retraining per host.

The worker is expendable by design.  The daemon re-queues the leases of
a worker that stops heartbeating, and unit delivery is idempotent, so
``kill -9`` mid-unit costs one recompute, never a wrong result.  A
worker that learns it was presumed dead (``unknown-worker`` on any op)
simply re-registers under a fresh id and keeps going.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
from typing import Any, Dict, List, Optional

from .. import obs
from ..core.environments import AdaptationMode
from ..exps.cache import ExperimentCache
from ..exps.engine import UnitExecutionError, run_unit_guarded
from ..exps.runner import ExperimentRunner
from .coalesce import NOVAR_CHIP
from .daemon import ServiceClient
from .fleet import UnknownWorkerError
from .protocol import (
    LeasedUnit,
    rows_to_wire,
    runner_context_from_wire,
    unit_from_wire,
)

log = logging.getLogger("repro.serve.worker")


class FleetWorker:
    """One remote execution loop against a campaign-service daemon."""

    def __init__(
        self,
        address: str,
        *,
        cache: Optional[ExperimentCache] = None,
        poll_interval: float = 0.25,
        max_idle: Optional[float] = None,
        max_units_per_lease: int = 1,
        heartbeats: bool = True,
        meta: Optional[Dict[str, Any]] = None,
    ):
        """Args:
            address: The daemon's ``host:port``.
            cache: This worker's artifact cache — point every fleet
                member at the same root with the ``shared`` backend to
                share measurements/banks (results always flow back over
                the wire; the store only saves recompute).
            poll_interval: Sleep between empty lease polls, seconds.
            max_idle: Exit after this long without work (``None``: poll
                until the daemon goes away).
            max_units_per_lease: Units requested per lease round trip.
            heartbeats: Disable only in tests that simulate a dead
                worker deterministically.
            meta: Extra registration metadata (shown in ``ping``).
        """
        self.client = ServiceClient(address)
        self.cache = cache
        self.poll_interval = float(poll_interval)
        self.max_idle = max_idle
        self.max_units_per_lease = int(max_units_per_lease)
        self.heartbeats = bool(heartbeats)
        self.meta = {
            "host": socket.gethostname(),
            "pid": os.getpid(),
            **(meta or {}),
        }
        self.worker_id: Optional[str] = None
        self.heartbeat_interval = 2.0
        self.runner: Optional[ExperimentRunner] = None
        self.units_done = 0
        self.units_failed = 0
        self._stop = threading.Event()
        self._reregister = threading.Event()
        self._beat_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def register(self) -> str:
        """Handshake: get an id and rebuild the daemon's runner locally."""
        response = self.client.request("fleet.register", meta=self.meta)
        self.worker_id = response["worker_id"]
        self.heartbeat_interval = float(response["heartbeat_interval"])
        # Beats must start before the runner rebuild below: sampling the
        # chip population can take longer than the daemon's heartbeat
        # deadline, and a worker reaped during its own startup would
        # re-register in a loop.
        self._start_beats()
        config, calib, core_config = runner_context_from_wire(
            response["context"]
        )
        # Rebuilding per registration is cheap relative to one unit and
        # keeps a re-registration after a daemon restart safe even if
        # the daemon came back with a different physics config.
        self.runner = ExperimentRunner(
            config, calib, core_config=core_config, cache=self.cache
        )
        obs.inc("worker.registrations")
        log.info("registered as %s with %s (heartbeat %.1fs)",
                 self.worker_id, self.client.host, self.heartbeat_interval)
        return self.worker_id

    def stop(self) -> None:
        """Ask the run loop (and heartbeat thread) to exit."""
        self._stop.set()

    def _start_beats(self) -> None:
        if not self.heartbeats or self._beat_thread is not None:
            return
        self._beat_thread = threading.Thread(
            target=self._beat_loop, name="fleet-heartbeat", daemon=True
        )
        self._beat_thread.start()

    def run(self) -> int:
        """Drain leases until stopped, idled out, or the daemon is gone.

        Returns the number of units completed (the CLI's exit report).
        """
        self.register()
        idle_since = time.monotonic()
        try:
            while not self._stop.is_set():
                if self._reregister.is_set():
                    self._reregister.clear()
                    self.register()
                try:
                    units = self._lease()
                except UnknownWorkerError:
                    self.register()
                    continue
                except (OSError, ConnectionError):
                    log.info("daemon unreachable; worker exiting")
                    break
                if not units:
                    if (
                        self.max_idle is not None
                        and time.monotonic() - idle_since > self.max_idle
                    ):
                        log.info("idle for %.1fs; worker exiting",
                                 self.max_idle)
                        break
                    self._stop.wait(self.poll_interval)
                    continue
                idle_since = time.monotonic()
                for block in self._blocks(units):
                    if self._stop.is_set():
                        break
                    self._run_block(block)
        finally:
            self._stop.set()
            if self._beat_thread is not None:
                self._beat_thread.join(timeout=5.0)
        return self.units_done

    # ------------------------------------------------------------------
    # One unit.
    # ------------------------------------------------------------------
    def _lease(self) -> List[LeasedUnit]:
        response = self.client.request(
            "fleet.lease",
            worker_id=self.worker_id,
            max_units=self.max_units_per_lease,
        )
        units = [unit_from_wire(doc) for doc in response.get("units", [])]
        obs.inc("worker.leases", 1.0 if units else 0.0)
        obs.inc("worker.leases_empty", 0.0 if units else 1.0)
        return units

    def execute(self, unit: LeasedUnit) -> list:
        """Compute one unit's rows with the rebuilt runner."""
        runner = self.runner
        assert runner is not None, "execute() before register()"
        if unit.chip_index == NOVAR_CHIP:
            return runner.novar_summary(list(unit.workloads)).results
        bank = None
        if unit.mode is AdaptationMode.FUZZY_DYN:
            # One worker process, one training at a time; with a shared
            # store the first fleet member to train persists the bank
            # for everyone else.
            bank = runner.bank_for(unit.env)
        return run_unit_guarded(
            runner, unit.env, unit.mode, unit.chip_index, unit.core_index,
            list(unit.workloads), bank=bank,
        )

    @staticmethod
    def _blocks(units: List[LeasedUnit]) -> List[List[LeasedUnit]]:
        """Group consecutive leased units that form one batchable cell.

        Units sharing (environment, mode, workloads) advance together
        through the population-batched path; NoVar pseudo-units always
        stand alone.  Grouping only ever merges *adjacent* leases, so
        completion reports arrive in lease order.
        """
        blocks: List[List[LeasedUnit]] = []
        key = None
        for unit in units:
            unit_key = (
                None
                if unit.chip_index == NOVAR_CHIP
                else (unit.env.name, unit.mode.value, unit.workloads)
            )
            if blocks and key is not None and unit_key == key:
                blocks[-1].append(unit)
            else:
                blocks.append([unit])
            key = unit_key
        return blocks

    def _run_block(self, block: List[LeasedUnit]) -> None:
        """Run one lease block batched, degrading to per-unit execution.

        Any batched failure falls back to the per-unit loop so each unit
        still gets its own complete/fail report — a broken unit never
        takes its block-mates down with it.  Single-unit blocks stay on
        the batched path (like the engine's) so the metric structure a
        worker emits does not depend on how leases happened to chunk;
        only NoVar pseudo-units take the dedicated summary path.
        """
        if len(block) == 1 and block[0].chip_index == NOVAR_CHIP:
            self._run_unit(block[0])
            return
        runner = self.runner
        assert runner is not None, "_run_block() before register()"
        first = block[0]
        bank = None
        if first.mode is AdaptationMode.FUZZY_DYN:
            bank = runner.bank_for(first.env)
        with obs.span("worker.unit_block", units=len(block),
                      env=first.env.name, mode=first.mode.value):
            try:
                unit_rows = runner.run_units_batched(
                    first.env,
                    first.mode,
                    [(u.chip_index, u.core_index) for u in block],
                    list(first.workloads),
                    bank=bank,
                )
            except Exception:
                log.warning(
                    "batched lease block (%d units) failed; retrying "
                    "per unit", len(block), exc_info=True,
                )
                for unit in block:
                    if self._stop.is_set():
                        return
                    self._run_unit(unit)
                return
        for unit, rows in zip(block, unit_rows):
            self.units_done += 1
            obs.inc("worker.units_done")
            self._report("fleet.complete", unit, rows=rows_to_wire(rows))

    def _run_unit(self, unit: LeasedUnit) -> None:
        with obs.span("worker.unit", unit=unit.unit_key):
            try:
                rows = self.execute(unit)
            except UnitExecutionError as exc:
                self.units_failed += 1
                obs.inc("worker.units_failed")
                log.warning("unit %s failed: %s", unit.unit_key, exc)
                self._report("fleet.fail", unit, error=str(exc))
                return
        self.units_done += 1
        obs.inc("worker.units_done")
        self._report("fleet.complete", unit, rows=rows_to_wire(rows))

    def _report(self, op: str, unit: LeasedUnit, **payload: Any) -> None:
        try:
            self.client.request(
                op, worker_id=self.worker_id, unit_key=unit.unit_key,
                **payload,
            )
        except UnknownWorkerError:
            # Presumed dead while computing: the unit was re-queued and
            # someone else owns it now.  Re-register and move on.
            log.warning("daemon retired this worker mid-unit; re-registering")
            self._reregister.set()
        except (OSError, ConnectionError) as exc:
            log.warning("could not report %s for %s: %s",
                        op, unit.unit_key, exc)

    # ------------------------------------------------------------------
    # Liveness.
    # ------------------------------------------------------------------
    def _beat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.client.request(
                    "fleet.heartbeat", worker_id=self.worker_id
                )
            except UnknownWorkerError:
                self._reregister.set()
            except (OSError, ConnectionError):
                # The main loop notices an unreachable daemon on its
                # next lease; heartbeats just keep trying until then.
                pass
            except Exception:  # pragma: no cover - liveness must survive
                log.exception("heartbeat failed; continuing")
