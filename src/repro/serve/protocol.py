"""JSON-lines wire protocol shared by the daemon and its clients.

One request, one response, one line of JSON each::

    -> {"op": "submit", "spec": {"environments": ["TS"], ...}, "priority": 0}
    <- {"ok": true, "job_id": "job-1"}
    -> {"op": "status", "job_id": "job-1"}
    <- {"ok": true, "state": "running", "cells": {...}, ...}

Specs cross the wire by *name*: environments by their Table 1 names
(:func:`repro.core.environments.by_name`), modes by their
:class:`~repro.core.environments.AdaptationMode` values, suite workloads
by their suite names.  Non-suite workloads — generated families, ingested
traces, evolved adversaries (:mod:`repro.workloads`) — ride *inline* as
their canonical :meth:`WorkloadProfile.to_wire` documents, so a daemon or
fleet worker rebuilds them bit-identically and the content-addressed
cache keys still hold.  Custom in-memory :class:`Environment` objects
cannot be submitted remotely — that is the price of a content-addressed,
language-neutral wire format.  Engine-level spec fields (``parallelism``,
``cache_dir``, ``use_cache``) are intentionally absent: server-side
policy governs them.

Suite summaries ride the existing :meth:`SuiteSummary.to_json` wire
format, nested per cell, so a socket result is rebuilt bit-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.environments import AdaptationMode, by_name
from ..exps.engine import RunSpec
from ..exps.runner import SuiteSummary
from ..microarch.workloads import WorkloadProfile, spec2000_like_suite

#: The protocol major this build speaks.  Bumped on breaking wire-format
#: changes; every request and response carries it in a ``"v"`` field.
#: v2 added the explicit version handshake itself (requests may carry
#: ``"v"``; ``ping`` reports ``{"v", "__version__"}``).  v3 added the
#: worker-fleet surface (``register``/``lease``/``heartbeat``/
#: ``complete``/``fail``) — see :mod:`repro.serve.fleet`.
PROTOCOL_VERSION = 3

#: Majors this build still understands.  v1 requests (no ``"v"`` field,
#: or ``"v": 1``) predate the handshake and are accepted unchanged — the
#: client operation surface is identical across all three majors; only
#: the fleet operations are gated on :data:`FLEET_MIN_VERSION`.
SUPPORTED_PROTOCOL_VERSIONS = (1, 2, 3)

#: The first major that carries the fleet operations.  Older clients can
#: still submit jobs, ping, and shut the daemon down; a v1/v2 peer
#: sending ``fleet.*`` gets a structured ``kind="version"`` error.
FLEET_MIN_VERSION = 3


class ProtocolError(ValueError):
    """A request/response line that cannot be decoded or resolved."""


class UnknownWorkloadError(ProtocolError):
    """A spec named workloads this daemon's suite does not contain.

    Carries the missing and the available names so the daemon can answer
    with a structured ``kind="workload"`` error (like version errors) and
    the client can correct the spec — or submit the profile inline.
    """

    def __init__(self, missing: Sequence[str], available: Sequence[str]):
        self.missing = list(missing)
        self.available = sorted(available)
        super().__init__(
            f"unknown workloads: {self.missing} "
            f"(available: {self.available}; non-suite profiles must be "
            f"submitted inline as to_wire() documents)"
        )


class ProtocolVersionError(ProtocolError):
    """A request whose protocol major this daemon does not speak."""

    def __init__(self, requested: Any):
        self.requested = requested
        super().__init__(
            f"unsupported protocol version {requested!r} "
            f"(supported: {list(SUPPORTED_PROTOCOL_VERSIONS)})"
        )


def check_version(request: Dict[str, Any]) -> int:
    """Validate a request's ``"v"`` field; returns the effective major.

    A missing field means a v1 client (the handshake did not exist yet).
    Anything that is not a supported integer major raises
    :class:`ProtocolVersionError` so the daemon answers with a structured
    error instead of a ``KeyError`` deep in dispatch.
    """
    requested = request.get("v", 1)
    if not isinstance(requested, int) or isinstance(requested, bool):
        raise ProtocolVersionError(requested)
    if requested not in SUPPORTED_PROTOCOL_VERSIONS:
        raise ProtocolVersionError(requested)
    return requested


# ----------------------------------------------------------------------
# Workloads: suite names or inline profile documents.
# ----------------------------------------------------------------------
def workloads_to_wire(
    workloads: Sequence[WorkloadProfile],
) -> List[Any]:
    """Encode workloads compactly: suite members by name, others inline.

    A profile is sent as a bare name string only when it is *structurally
    identical* to the suite profile of that name — a generated profile
    that merely reuses a suite name still rides inline, so the receiving
    side always rebuilds exactly what was submitted.
    """
    suite = {w.name: w for w in spec2000_like_suite()}
    return [
        w.name if suite.get(w.name) == w else w.to_wire() for w in workloads
    ]


def workloads_from_wire(
    items: Sequence[Any],
    suite: Optional[Sequence[WorkloadProfile]] = None,
) -> Tuple[WorkloadProfile, ...]:
    """Resolve a wire workload list (names and/or inline documents).

    Unknown names raise :class:`UnknownWorkloadError` listing the
    available suite names; malformed inline documents raise
    :class:`ProtocolError`.
    """
    pool = {w.name: w for w in (suite or spec2000_like_suite())}
    resolved: List[WorkloadProfile] = []
    missing: List[str] = []
    for item in items:
        if isinstance(item, str):
            if item in pool:
                resolved.append(pool[item])
            else:
                missing.append(item)
            continue
        if isinstance(item, dict):
            try:
                resolved.append(WorkloadProfile.from_wire(item))
            except ValueError as exc:
                raise ProtocolError(f"bad inline workload: {exc}") from exc
            continue
        raise ProtocolError(
            f"workload entries must be suite names or profile documents, "
            f"got {item!r}"
        )
    if missing:
        raise UnknownWorkloadError(missing, list(pool))
    return tuple(resolved)


# ----------------------------------------------------------------------
# Specs.
# ----------------------------------------------------------------------
def spec_to_wire(spec: RunSpec) -> Dict[str, Any]:
    """Encode a :class:`RunSpec` as JSON-safe names/documents."""
    return {
        "environments": [env.name for env in spec.environments],
        "modes": [mode.value for mode in spec.modes],
        "workloads": (
            workloads_to_wire(spec.workloads)
            if spec.workloads is not None
            else None
        ),
    }


def spec_from_wire(
    doc: Dict[str, Any],
    suite: Optional[Sequence[WorkloadProfile]] = None,
) -> RunSpec:
    """Resolve a wire spec back to a :class:`RunSpec`.

    ``suite`` is the workload universe names resolve against (default:
    the SPEC-2000-like suite); inline profile documents bypass it.
    Unknown names raise :class:`UnknownWorkloadError` (listing the
    available names) so the daemon can answer with a structured
    ``kind="workload"`` error instead of dying mid-decode.
    """
    try:
        environments = tuple(by_name(n) for n in doc["environments"])
        modes = tuple(AdaptationMode(v) for v in doc.get("modes") or ["Exh-Dyn"])
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"bad spec: {exc}") from exc
    workloads = None
    items = doc.get("workloads")
    if items is not None:
        workloads = workloads_from_wire(items, suite=suite)
    return RunSpec(environments=environments, modes=modes, workloads=workloads)


# ----------------------------------------------------------------------
# Results.
# ----------------------------------------------------------------------
def summaries_to_wire(
    summaries: Dict[Tuple[str, str], SuiteSummary],
) -> List[Dict[str, Any]]:
    """Encode a result's cell map as a list of tagged summary documents."""
    return [
        {
            "environment": env_name,
            "mode": mode_value,
            "summary": json.loads(summary.to_json()),
        }
        for (env_name, mode_value), summary in sorted(summaries.items())
    ]


def summaries_from_wire(
    cells: List[Dict[str, Any]],
) -> Dict[Tuple[str, str], SuiteSummary]:
    """Rebuild the cell map (floats round-trip bit-identically)."""
    return {
        (cell["environment"], cell["mode"]): SuiteSummary.from_json(
            json.dumps(cell["summary"])
        )
        for cell in cells
    }


# ----------------------------------------------------------------------
# Fleet (v3): execution context, leased units, result rows.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LeasedUnit:
    """A worker-side view of one leased (chip, core) unit.

    Everything a :class:`~repro.serve.worker.FleetWorker` needs to run
    the unit through ``run_unit_guarded`` — resolved objects, not wire
    names — plus the content-addressed keys it reports back with.
    """

    cell_key: str
    unit_key: str
    chip_index: int
    core_index: int
    env: Any
    mode: AdaptationMode
    workloads: Tuple[WorkloadProfile, ...]


def runner_context_to_wire(runner) -> Dict[str, Any]:
    """Encode an :class:`ExperimentRunner`'s physics context for workers.

    Ships the three frozen dataclasses that pin the content-addressed
    keys — :class:`~repro.exps.runner.RunnerConfig`,
    :class:`~repro.calibration.Calibration`,
    :class:`~repro.microarch.pipeline.CoreConfig` — as canonical JSON
    documents plus a :func:`~repro.exps.cache.stable_hash` fingerprint.
    A worker that rebuilds a context with a different fingerprint would
    silently poison the shared cache, so the decoder treats a mismatch
    as a protocol error, not a warning.
    """
    from ..exps.cache import jsonable, stable_hash

    docs = {
        "runner_config": jsonable(runner.config),
        "calibration": jsonable(runner.calib),
        "core_config": jsonable(runner.core_config),
    }
    return {**docs, "fingerprint": stable_hash(docs)}


def runner_context_from_wire(doc: Dict[str, Any]):
    """Rebuild ``(RunnerConfig, Calibration, CoreConfig)`` from the wire.

    Raises :class:`ProtocolError` if the documents are malformed or the
    rebuilt objects do not hash back to the advertised fingerprint
    (e.g. a field the daemon knows about but this worker build does not).
    """
    from ..calibration import Calibration
    from ..exps.cache import jsonable, stable_hash
    from ..exps.runner import RunnerConfig
    from ..microarch.pipeline import CoreConfig

    try:
        config = RunnerConfig(**doc["runner_config"])
        calibration = Calibration(**doc["calibration"])
        core_config = CoreConfig(**doc["core_config"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad runner context: {exc}") from exc
    rebuilt = {
        "runner_config": jsonable(config),
        "calibration": jsonable(calibration),
        "core_config": jsonable(core_config),
    }
    fingerprint = stable_hash(rebuilt)
    if fingerprint != doc.get("fingerprint"):
        raise ProtocolError(
            "runner-context fingerprint mismatch "
            f"(daemon {doc.get('fingerprint')!r}, worker {fingerprint!r}) "
            "— daemon and worker builds disagree on the physics config"
        )
    return config, calibration, core_config


def unit_to_wire(cell, unit) -> Dict[str, Any]:
    """Encode one leased (chip, core) unit with its cell context."""
    return {
        "cell_key": cell.key,
        "unit_key": unit.key,
        "chip_index": unit.chip_index,
        "core_index": unit.core_index,
        "environment": cell.env.name,
        "mode": cell.mode.value,
        "workloads": workloads_to_wire(cell.workloads),
    }


def unit_from_wire(
    doc: Dict[str, Any],
    suite: Optional[Sequence[WorkloadProfile]] = None,
) -> "LeasedUnit":
    """Resolve a leased unit's names back to runnable objects."""
    try:
        env = by_name(doc["environment"])
        mode = AdaptationMode(doc["mode"])
        items = doc["workloads"]
        chip_index = int(doc["chip_index"])
        core_index = int(doc["core_index"])
        cell_key = doc["cell_key"]
        key = doc["unit_key"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad leased unit: {exc}") from exc
    return LeasedUnit(
        cell_key=cell_key,
        unit_key=key,
        chip_index=chip_index,
        core_index=core_index,
        env=env,
        mode=mode,
        workloads=workloads_from_wire(items, suite=suite),
    )


def rows_to_wire(rows: Sequence[Any]) -> List[Dict[str, Any]]:
    """Encode a unit's :class:`PhaseResult` rows (bit-identical floats)."""
    return [row.to_dict() for row in rows]


def rows_from_wire(docs: Sequence[Dict[str, Any]]) -> List[Any]:
    """Rebuild :class:`PhaseResult` rows from :func:`rows_to_wire`."""
    from ..exps.runner import PhaseResult

    try:
        return [PhaseResult.from_dict(doc) for doc in docs]
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad result rows: {exc}") from exc


# ----------------------------------------------------------------------
# Framing.
# ----------------------------------------------------------------------
def encode_line(doc: Dict[str, Any]) -> bytes:
    """One JSON document, newline-framed."""
    return (json.dumps(doc) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one frame; anything but a JSON object is a protocol error."""
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(f"frame is not an object: {doc!r}")
    return doc


def ok(**payload: Any) -> Dict[str, Any]:
    """A success response envelope (stamped with the protocol major)."""
    return {"ok": True, "v": PROTOCOL_VERSION, **payload}


def error(message: str, **payload: Any) -> Dict[str, Any]:
    """A failure response envelope (the daemon never sends tracebacks)."""
    return {"ok": False, "v": PROTOCOL_VERSION, "error": message, **payload}
