"""Worker-fleet registry: registration, heartbeats, leases, stealing.

:class:`FleetRegistry` is the daemon-side bookkeeping for remote
workers (``python -m repro.serve worker``).  It owns no execution and no
network: workers reach it through the daemon's ``fleet.*`` protocol ops
(v3), and it reaches the campaign service only through injected
callables — ``take``/``requeue`` against the :class:`~repro.serve.
scheduler.CellScheduler` queue and ``claim``/``deliver``/``fail``
against the service's unit callbacks — so this module imports neither
:mod:`repro.serve.service` nor :mod:`repro.serve.daemon`.

Liveness and exactly-once semantics:

* A worker heartbeats every ``heartbeat_interval`` seconds; one that
  misses :data:`MISSED_BEATS_DEAD` consecutive beats is declared dead
  and its undelivered leases are re-queued (``fleet.units_requeued``).
  The unit keys are content-addressed, and unit delivery is idempotent
  on the service side, so a presumed-dead worker that completes late
  cannot double-count a unit (``fleet.late_completions``).
* An idle worker whose lease request finds the queue empty may *steal*
  a unit from a slow peer: the oldest outstanding lease older than
  ``lease_timeout`` is duplicated (``fleet.units_stolen``), capped at
  :data:`MAX_DUPLICATE_LEASES` concurrent holders per unit.  Whichever
  copy finishes first wins; the loser's completion is dropped by the
  same idempotency guard.
* A failed attempt consumes the unit's daemon-side retry budget
  (``UnitTask.attempts``); the unit is re-queued until the budget is
  exhausted, then reported to the ``fail`` callback, which poisons its
  cell exactly like an in-process failure.

Lock ordering: the registry lock is acquired *before* the service lock
(which the ``claim``/``deliver``/``fail`` callbacks take internally),
never the other way around — the service must not call into the
registry while holding its own lock.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import obs

log = logging.getLogger("repro.serve.fleet")

#: Consecutive missed heartbeats after which a worker is declared dead.
MISSED_BEATS_DEAD = 3

#: Most concurrent leases (original + steals) per unit.  Two is enough
#: to cover one slow holder without letting a tail unit fan out to the
#: whole fleet.
MAX_DUPLICATE_LEASES = 2


class FleetError(RuntimeError):
    """Base class for fleet-registry request failures."""


class UnknownWorkerError(FleetError, KeyError):
    """No live worker with the requested id (never registered, retired
    after missed heartbeats, or a stale id from before a daemon restart).
    The worker's recovery is to re-register."""


@dataclass
class Lease:
    """One unit checked out to one worker."""

    unit_key: str
    item: Any  # the scheduler's (CellTask, UnitTask) pair
    neg_priority: int
    worker_id: str
    issued_at: float  # time.monotonic()

    @property
    def age(self) -> float:
        return time.monotonic() - self.issued_at


@dataclass
class WorkerInfo:
    """Daemon-side record of one registered worker."""

    worker_id: str
    meta: Dict[str, Any]
    registered_at: float
    last_beat: float
    alive: bool = True
    leases: Dict[str, Lease] = field(default_factory=dict)
    units_done: int = 0
    units_failed: int = 0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "alive": self.alive,
            "leases": sorted(self.leases),
            "units_done": self.units_done,
            "units_failed": self.units_failed,
            "meta": dict(self.meta),
        }


class FleetRegistry:
    """Registration, liveness and lease bookkeeping for remote workers."""

    def __init__(
        self,
        *,
        take: Callable[[], Optional[Tuple[int, Any]]],
        requeue: Callable[[int, Any], None],
        claim: Callable[[Any], bool],
        deliver: Callable[[Any, Any, int], None],
        fail: Callable[[Any, BaseException, int], None],
        heartbeat_interval: float = 2.0,
        lease_timeout: float = 60.0,
        retries: int = 1,
    ):
        """Args:
            take: Non-blocking queue pop -> ``(neg_priority, item)`` or
                ``None`` (:meth:`CellScheduler.take`).
            requeue: Reinsert a taken item (:meth:`CellScheduler.requeue`).
            claim: The service's claim predicate; ``False`` drops the
                item (cancelled/abandoned cell, already-delivered unit).
            deliver: The service's ``(item, rows, attempts)`` success
                callback — must be idempotent per unit.
            fail: The service's ``(item, error, attempts)`` poison
                callback, invoked when the retry budget is exhausted.
            heartbeat_interval: Expected worker beat period, seconds.
            lease_timeout: Lease age beyond which an idle worker may
                steal the unit from its holder.
            retries: Extra attempts after a reported failure before the
                unit poisons its cell (mirrors :class:`RetryPolicy`).
        """
        self._take = take
        self._requeue = requeue
        self._claim = claim
        self._deliver = deliver
        self._fail = fail
        self.heartbeat_interval = float(heartbeat_interval)
        self.lease_timeout = float(lease_timeout)
        self.retries = int(retries)
        self._lock = threading.RLock()
        self._workers: Dict[str, WorkerInfo] = {}
        self._ids = itertools.count(1)
        #: unit_key -> live lease count (original + steals).
        self._holders: Dict[str, int] = {}
        self._reaper: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "FleetRegistry":
        """Start the liveness reaper (idempotent) and touch the metrics
        so every fleet counter exists in every metrics document."""
        for name in (
            "fleet.workers_registered", "fleet.workers_dead",
            "fleet.units_leased", "fleet.units_stolen",
            "fleet.units_requeued", "fleet.units_completed",
            "fleet.late_completions", "fleet.retries",
        ):
            obs.inc(name, 0.0)
        self._update_gauges()
        with self._lock:
            if self._reaper is None:
                self._stop.clear()
                self._reaper = threading.Thread(
                    target=self._reap_loop, name="fleet-reaper", daemon=True
                )
                self._reaper.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        reaper, self._reaper = self._reaper, None
        if reaper is not None:
            reaper.join(timeout=10.0)

    # ------------------------------------------------------------------
    # Worker-facing operations (called from daemon handler threads).
    # ------------------------------------------------------------------
    def register(self, meta: Optional[Dict[str, Any]] = None) -> str:
        """Admit a worker; returns its fleet-unique id."""
        now = time.monotonic()
        with self._lock:
            worker = WorkerInfo(
                worker_id=f"w-{next(self._ids)}",
                meta=dict(meta or {}),
                registered_at=now,
                last_beat=now,
            )
            self._workers[worker.worker_id] = worker
            obs.inc("fleet.workers_registered")
            self._update_gauges()
            log.info("worker %s registered (%s)", worker.worker_id,
                     worker.meta or "no metadata")
            return worker.worker_id

    def heartbeat(self, worker_id: str) -> None:
        """Record one beat; unknown/retired ids raise so the worker
        knows to re-register."""
        with self._lock:
            self._live(worker_id).last_beat = time.monotonic()

    def lease(self, worker_id: str, max_units: int = 1) -> List[Lease]:
        """Check out up to ``max_units`` tasks for a worker.

        Drains the scheduler queue first; when the queue is dry, tries
        to steal the oldest over-age lease from a peer (tail latency:
        near the end of a cell the only pending units are on slow
        workers).  May return an empty list — the worker polls.
        """
        granted: List[Lease] = []
        with self._lock:
            worker = self._live(worker_id)
            worker.last_beat = time.monotonic()
            while len(granted) < max_units:
                taken = self._take()
                if taken is None:
                    break
                neg_priority, item = taken
                # claim() takes the service lock; registry lock is
                # already held (registry -> service, never reverse).
                if not self._claim(item):
                    continue
                granted.append(self._grant(worker, neg_priority, item))
            if not granted:
                stolen = self._steal_for(worker)
                if stolen is not None:
                    granted.append(stolen)
            self._update_gauges()
        return granted

    def complete(self, worker_id: str, unit_key: str, rows: Any) -> bool:
        """Deliver a finished unit.  Returns ``False`` for a *late*
        completion (lease revoked by the reaper, or a steal race already
        delivered the unit) — the rows are dropped, not double-counted."""
        with self._lock:
            worker = self._live(worker_id)
            worker.last_beat = time.monotonic()
            lease = worker.leases.pop(unit_key, None)
            if lease is None:
                obs.inc("fleet.late_completions")
                self._update_gauges()
                return False
            self._release(unit_key)
            _cell, unit = lease.item
            if unit.rows is not None:
                # A duplicate holder already delivered this unit.
                obs.inc("fleet.late_completions")
                self._update_gauges()
                return False
            worker.units_done += 1
            unit.attempts += 1
            obs.inc("fleet.units_completed")
            self._update_gauges()
            # deliver() takes the service lock (registry -> service).
            self._deliver(lease.item, rows, unit.attempts)
            return True

    def fail(self, worker_id: str, unit_key: str, message: str) -> bool:
        """Report a failed attempt.  Consumes the unit's retry budget:
        re-queued while budget remains, else its cell is poisoned.
        Returns ``False`` for a late/unknown lease (nothing charged)."""
        with self._lock:
            worker = self._live(worker_id)
            worker.last_beat = time.monotonic()
            lease = worker.leases.pop(unit_key, None)
            if lease is None:
                self._update_gauges()
                return False
            self._release(unit_key)
            worker.units_failed += 1
            _cell, unit = lease.item
            unit.attempts += 1
            if unit.attempts > self.retries:
                log.error("unit %s failed on %s, budget exhausted: %s",
                          unit_key, worker_id, message)
                self._update_gauges()
                self._fail(
                    lease.item, FleetError(message), unit.attempts
                )
                return True
            obs.inc("fleet.retries")
            log.warning("unit %s failed on %s (attempt %d/%d); re-queued: %s",
                        unit_key, worker_id, unit.attempts,
                        self.retries + 1, message)
            self._requeue(lease.neg_priority, lease.item)
            self._update_gauges()
            return True

    def stats(self) -> Dict[str, Any]:
        """A JSON-safe snapshot (rides in the daemon's ``ping``)."""
        with self._lock:
            workers = [w.snapshot() for w in self._workers.values()]
            return {
                "workers": workers,
                "alive": sum(1 for w in self._workers.values() if w.alive),
                "leased_units": sum(self._holders.values()),
                "heartbeat_interval": self.heartbeat_interval,
                "lease_timeout": self.lease_timeout,
            }

    # ------------------------------------------------------------------
    # Internals (registry lock held).
    # ------------------------------------------------------------------
    def _live(self, worker_id: str) -> WorkerInfo:
        worker = self._workers.get(worker_id)
        if worker is None or not worker.alive:
            raise UnknownWorkerError(worker_id)
        return worker

    def _grant(self, worker: WorkerInfo, neg_priority: int,
               item: Any) -> Lease:
        _cell, unit = item
        lease = Lease(
            unit_key=unit.key,
            item=item,
            neg_priority=neg_priority,
            worker_id=worker.worker_id,
            issued_at=time.monotonic(),
        )
        worker.leases[unit.key] = lease
        self._holders[unit.key] = self._holders.get(unit.key, 0) + 1
        obs.inc("fleet.units_leased")
        return lease

    def _release(self, unit_key: str) -> None:
        count = self._holders.get(unit_key, 0) - 1
        if count > 0:
            self._holders[unit_key] = count
        else:
            self._holders.pop(unit_key, None)

    def _steal_for(self, thief: WorkerInfo) -> Optional[Lease]:
        """Duplicate the oldest over-age lease of a (slow) peer."""
        candidates = [
            lease
            for worker in self._workers.values()
            if worker.alive and worker.worker_id != thief.worker_id
            for lease in worker.leases.values()
            if lease.age > self.lease_timeout
            and self._holders.get(lease.unit_key, 0) < MAX_DUPLICATE_LEASES
            and lease.item[1].rows is None
        ]
        if not candidates:
            return None
        victim = min(candidates, key=lambda lease: lease.issued_at)
        obs.inc("fleet.units_stolen")
        log.info("worker %s steals unit %s from %s (lease age %.1fs)",
                 thief.worker_id, victim.unit_key, victim.worker_id,
                 victim.age)
        return self._grant(thief, victim.neg_priority, victim.item)

    # ------------------------------------------------------------------
    # Liveness.
    # ------------------------------------------------------------------
    def _reap_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.reap()
            except Exception:  # pragma: no cover - reaper must survive
                log.exception("fleet reaper pass failed; continuing")

    def reap(self, now: Optional[float] = None) -> List[str]:
        """One liveness pass: retire workers whose last beat is older
        than :data:`MISSED_BEATS_DEAD` intervals and re-queue their
        undelivered leases.  Returns the retired worker ids (tests call
        this directly with a pinned ``now``)."""
        now = time.monotonic() if now is None else now
        deadline = MISSED_BEATS_DEAD * self.heartbeat_interval
        retired: List[str] = []
        with self._lock:
            for worker in self._workers.values():
                if not worker.alive or now - worker.last_beat <= deadline:
                    continue
                worker.alive = False
                retired.append(worker.worker_id)
                obs.inc("fleet.workers_dead")
                leases, worker.leases = worker.leases, {}
                for lease in leases.values():
                    self._release(lease.unit_key)
                    _cell, unit = lease.item
                    if unit.rows is not None:
                        continue  # already delivered by a duplicate
                    if self._holders.get(lease.unit_key, 0) > 0:
                        continue  # a duplicate holder is still on it
                    obs.inc("fleet.units_requeued")
                    self._requeue(lease.neg_priority, lease.item)
                log.warning(
                    "worker %s presumed dead (%.1fs since last beat); "
                    "%d lease(s) processed",
                    worker.worker_id, now - worker.last_beat, len(leases),
                )
            if retired:
                self._update_gauges()
        return retired

    def _update_gauges(self) -> None:
        obs.set_gauge("fleet.workers_alive",
                      sum(1 for w in self._workers.values() if w.alive))
        obs.set_gauge("fleet.units_leased_now", sum(self._holders.values()))
