"""In-process client façade over a :class:`CampaignService`.

Mirrors the socket client's surface (:class:`repro.serve.daemon.
ServiceClient`) so call sites can swap an in-process service for a remote
daemon without changing shape::

    with CampaignService(runner) as service:
        client = Client(service)
        job = client.submit(RunSpec(environments=(TS,)))
        print(client.status(job)["cells"])
        result = client.result(job, timeout=600)
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..exps.engine import RunResult, RunSpec
from .service import CampaignService


class Client:
    """Submit/status/result/cancel against an in-process service."""

    def __init__(self, service: CampaignService):
        self._service = service

    def submit(self, spec: RunSpec, priority: int = 0) -> str:
        """Submit a campaign; returns its job id immediately."""
        return self._service.submit(spec, priority=priority)

    def status(self, job_id: str) -> Dict[str, Any]:
        """A JSON-safe progress snapshot."""
        return self._service.status(job_id)

    def progress(self, job_id: str) -> Dict[str, Any]:
        """Status plus the job's slice of the obs metrics registry."""
        return self._service.progress(job_id)

    def result(self, job_id: str, timeout: Optional[float] = None) -> RunResult:
        """Block for the finished :class:`RunResult` (see service docs)."""
        return self._service.result(job_id, timeout=timeout)

    def cancel(self, job_id: str) -> bool:
        """Withdraw a live job."""
        return self._service.cancel(job_id)

    def ping(self) -> Dict[str, Any]:
        """The service-level stats snapshot."""
        return self._service.stats()
