"""Batch delegation: run existing drivers through a remote daemon.

The ``python -m repro.exps`` CLI calls :func:`run_ladder_remote` when
``--service ADDR`` is set, so the Figures 10-12 grid is computed by the
shared daemon — coalesced with whatever other clients are asking for —
instead of in-process.  The returned :class:`LadderResult` is built from
the daemon's wire summaries and renders through the same reporting path
as a local run.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.environments import (
    ADAPTIVE_ENVIRONMENTS,
    BASELINE,
    NOVAR,
    AdaptationMode,
    Environment,
)
from ..exps.engine import RunSpec
from ..exps.ladder import MODES, LadderResult
from .daemon import ServiceClient
from .protocol import summaries_from_wire


def run_ladder_remote(
    address: str,
    environments: Optional[Sequence[Environment]] = None,
    modes: Sequence[AdaptationMode] = MODES,
    timeout: Optional[float] = None,
) -> LadderResult:
    """The Figures 10-12 grid, computed by the daemon at ``address``.

    Submits the adaptive grid and the Baseline/NoVar anchors as two jobs
    (the daemon coalesces any overlap with concurrent clients) and blocks
    until both finish.
    """
    environments = (
        list(environments)
        if environments is not None
        else list(ADAPTIVE_ENVIRONMENTS)
    )
    client = ServiceClient(address)
    grid_job = client.submit(
        RunSpec(environments=tuple(environments), modes=tuple(modes))
    )
    anchor_job = client.submit(
        RunSpec(environments=(BASELINE, NOVAR), modes=(AdaptationMode.EXH_DYN,))
    )
    grid = summaries_from_wire(client.result(grid_job, timeout=timeout)["cells"])
    anchors = summaries_from_wire(
        client.result(anchor_job, timeout=timeout)["cells"]
    )
    result = LadderResult(
        baseline=anchors[(BASELINE.name, AdaptationMode.EXH_DYN.value)],
        novar=anchors[(NOVAR.name, AdaptationMode.EXH_DYN.value)],
        environments=environments,
    )
    result.entries.update(grid)
    return result
