"""Command-line entry point: campaign-service daemon + client subcommands.

Usage::

    python -m repro.serve daemon --addr 127.0.0.1:7571 --chips 20 --jobs 4
    python -m repro.serve worker --connect 127.0.0.1:7571 \
        --cache-dir /mnt/shared/evalcache --store-backend shared
    python -m repro.serve submit --env TS --env TS+ASV --mode Exh-Dyn --wait
    python -m repro.serve status job-1
    python -m repro.serve result job-1 --timeout 600
    python -m repro.serve cancel job-1
    python -m repro.serve ping
    python -m repro.serve shutdown

``worker`` joins a daemon's fleet: it registers over protocol v3,
leases (chip, core) units, computes them with a runner rebuilt from the
daemon's fingerprinted physics context, and reports rows back.  Run the
daemon with ``--fleet-only`` to delegate *all* compute to workers.

Every client subcommand takes ``--addr HOST:PORT`` (default:
``$EVAL_REPRO_SERVICE`` or ``127.0.0.1:7571``); the daemon binds the same
address.  Daemon scale/engine/observability knobs mirror the
``python -m repro.exps`` flags, plus the ``--service-*`` supervision
policy (see :meth:`repro.config.Settings.add_service_arguments`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .. import __version__, obs
from ..config import Settings
from ..exps.reporting import format_table
from .daemon import DEFAULT_ADDRESS, ServiceClient, ServiceDaemon
from .protocol import spec_from_wire, summaries_from_wire
from .service import CampaignService, JobFailedError, ServiceError


def _print_cells(cells) -> None:
    summaries = summaries_from_wire(cells)
    rows = [
        [env, mode, f"{s.f_rel:.3f}", f"{s.perf_rel:.3f}", f"{s.power:.1f}"]
        for (env, mode), s in sorted(summaries.items())
    ]
    print(format_table(
        "campaign result",
        ["Environment", "Mode", "f_rel", "perf_rel", "power (W)"],
        rows,
    ))


def _wait_and_print(client: ServiceClient, job_id: str,
                    timeout: Optional[float]) -> int:
    try:
        response = client.result(job_id, timeout=timeout)
    except JobFailedError as exc:
        print(f"{job_id} FAILED:", file=sys.stderr)
        for failure in exc.failures:
            print(f"  {failure.to_dict()}", file=sys.stderr)
        return 1
    except TimeoutError:
        print(f"{job_id} still pending (see: python -m repro.serve status "
              f"{job_id})", file=sys.stderr)
        return 2
    _print_cells(response["cells"])
    return 0


def _run_daemon(args: argparse.Namespace, env_defaults: Settings) -> int:
    from ..exps.runner import ExperimentRunner

    try:
        settings = Settings.from_args(args, base=env_defaults)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    settings.configure()
    runner = ExperimentRunner.from_settings(settings)
    service = CampaignService(
        runner,
        settings=settings,
        workers=0 if getattr(args, "fleet_only", False) else None,
    )
    daemon = ServiceDaemon(service, address=args.addr)
    print(f"campaign service listening on {daemon.address}", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        service.close()
    finally:
        if settings.metrics_out:
            document = obs.metrics_registry().to_dict()
            with open(settings.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"metrics written to {settings.metrics_out}")
    return 0


def _run_worker(args: argparse.Namespace, env_defaults: Settings) -> int:
    from .worker import FleetWorker

    try:
        settings = Settings.from_args(args, base=env_defaults)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    settings.configure()
    address = settings.worker_connect or settings.service_addr
    if not address:
        print(
            "error: no daemon address (use --connect HOST:PORT or set "
            "$EVAL_REPRO_WORKER_CONNECT)",
            file=sys.stderr,
        )
        return 2
    worker = FleetWorker(
        address,
        cache=settings.build_cache(),
        max_idle=args.max_idle,
        max_units_per_lease=args.max_units,
    )
    try:
        done = worker.run()
    except KeyboardInterrupt:
        worker.stop()
        done = worker.units_done
    except (ServiceError, OSError) as exc:
        print(
            f"python -m repro.serve: cannot join fleet at {address}: {exc}",
            file=sys.stderr,
        )
        return 1
    finally:
        if settings.metrics_out:
            document = obs.metrics_registry().to_dict()
            with open(settings.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
    print(f"worker done: {done} unit(s) completed, "
          f"{worker.units_failed} failed")
    return 0


def main(argv=None) -> int:
    env_defaults = Settings.from_env()
    default_addr = env_defaults.service_addr or DEFAULT_ADDRESS
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="EVAL campaign service: daemon + client subcommands.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def with_addr(p: argparse.ArgumentParser) -> argparse.ArgumentParser:
        p.add_argument(
            "--addr", default=default_addr, metavar="HOST:PORT",
            help=f"daemon address (default: $EVAL_REPRO_SERVICE or "
                 f"{DEFAULT_ADDRESS})",
        )
        return p

    daemon_p = with_addr(sub.add_parser(
        "daemon", help="run the campaign-service daemon on this address"
    ))
    daemon_p.add_argument("--chips", type=int, default=env_defaults.chips)
    daemon_p.add_argument("--cores", type=int, default=env_defaults.cores)
    daemon_p.add_argument(
        "--fc-examples", type=int, default=env_defaults.fc_examples
    )
    daemon_p.add_argument("--seed", type=int, default=env_defaults.seed)
    Settings.add_cli_arguments(daemon_p, env_defaults)
    Settings.add_service_arguments(daemon_p, env_defaults)
    Settings.add_fleet_arguments(daemon_p, env_defaults, role="daemon")

    worker_p = sub.add_parser(
        "worker",
        help="join a daemon's fleet: lease and compute units remotely",
    )
    Settings.add_fleet_arguments(worker_p, env_defaults, role="worker")
    Settings.add_cli_arguments(worker_p, env_defaults)
    worker_p.add_argument(
        "--max-idle", type=float, default=None, metavar="SECONDS",
        help="exit after this long without leased work "
             "(default: poll until the daemon goes away)",
    )
    worker_p.add_argument(
        "--max-units", type=int, default=1, metavar="N",
        help="units requested per lease round trip (default: 1)",
    )

    submit_p = with_addr(sub.add_parser(
        "submit", help="submit a campaign; prints the job id"
    ))
    submit_p.add_argument(
        "--env", action="append", required=True, metavar="NAME",
        help="environment name (repeatable), e.g. TS, TS+ASV, Baseline",
    )
    submit_p.add_argument(
        "--mode", action="append", metavar="MODE",
        help="adaptation mode (repeatable; default Exh-Dyn): "
             "Static, Fuzzy-Dyn, Exh-Dyn",
    )
    submit_p.add_argument(
        "--workload", action="append", metavar="NAME",
        help="restrict to these suite workloads (repeatable)",
    )
    submit_p.add_argument(
        "--profiles", default=None, metavar="FILE",
        help="also run the profiles saved in FILE (the repro.workloads "
             "--out format); non-suite profiles cross the wire inline",
    )
    submit_p.add_argument("--priority", type=int, default=0)
    submit_p.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print the result table",
    )
    submit_p.add_argument("--timeout", type=float, default=None)

    for name, help_text in (
        ("status", "print a job's progress snapshot as JSON"),
        ("progress", "status plus the job's obs-metrics slice"),
        ("result", "wait for a job and print its result table"),
        ("cancel", "withdraw a live job"),
    ):
        p = with_addr(sub.add_parser(name, help=help_text))
        p.add_argument("job_id")
        if name == "result":
            p.add_argument("--timeout", type=float, default=None)

    with_addr(sub.add_parser("ping", help="print the service stats snapshot"))
    with_addr(sub.add_parser("shutdown", help="stop the daemon"))

    args = parser.parse_args(argv)
    if args.command == "daemon":
        return _run_daemon(args, env_defaults)
    if args.command == "worker":
        return _run_worker(args, env_defaults)
    try:
        return _run_client(args)
    except ServiceError as exc:
        print(f"python -m repro.serve: error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"python -m repro.serve: cannot reach daemon at {args.addr}: "
            f"{exc}",
            file=sys.stderr,
        )
        return 1


def _run_client(args) -> int:
    client = ServiceClient(args.addr)
    if args.command == "submit":
        workloads = list(args.workload or [])
        if args.profiles:
            from ..workloads.ingest import load_profiles
            from .protocol import workloads_to_wire

            workloads.extend(workloads_to_wire(load_profiles(args.profiles)))
        spec = spec_from_wire({
            "environments": args.env,
            "modes": args.mode or ["Exh-Dyn"],
            "workloads": workloads or None,
        })
        job_id = client.submit(spec, priority=args.priority)
        print(job_id)
        if args.wait:
            return _wait_and_print(client, job_id, args.timeout)
        return 0
    if args.command in ("status", "progress"):
        response = client.request(args.command, job_id=args.job_id)
        response.pop("ok", None)
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    if args.command == "result":
        return _wait_and_print(client, args.job_id, args.timeout)
    if args.command == "cancel":
        cancelled = client.cancel(args.job_id)
        print("cancelled" if cancelled else "already finished")
        return 0
    if args.command == "ping":
        response = client.ping()
        response.pop("ok", None)
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    if args.command == "shutdown":
        client.shutdown()
        print("daemon stopped")
        return 0
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
