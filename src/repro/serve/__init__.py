"""``repro.serve`` — the asynchronous campaign service.

Turns the in-process ``ExperimentRunner.run(spec)`` API into a
multi-tenant service: submissions enter a priority job queue, decompose
into (environment, mode, chip, core) cells, coalesce against concurrent
jobs through the artifact cache's content-addressed keys, and run on a
supervised worker pool with per-unit retry/backoff, wall-clock budgets,
and graceful degradation (a poisoned cell fails its job with a
structured report; the service keeps serving everyone else).

Three front doors:

* In process — :class:`CampaignService` + :class:`Client`.
* Over a socket — ``python -m repro.serve daemon`` and
  :class:`ServiceClient`, speaking the JSON-lines protocol of
  :mod:`repro.serve.protocol`.
* Batch — ``python -m repro.exps fig10 --service HOST:PORT`` delegates
  the ladder to a running daemon (:func:`run_ladder_remote`).
"""

from .batch import run_ladder_remote
from .client import Client
from .coalesce import CellTask, InFlightRegistry, UnitTask, build_cell
from .daemon import DEFAULT_ADDRESS, ServiceClient, ServiceDaemon, parse_address
from .fleet import FleetError, FleetRegistry, Lease, UnknownWorkerError, WorkerInfo
from .jobs import CellFailure, Job, JobState
from .protocol import (
    FLEET_MIN_VERSION,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    LeasedUnit,
    ProtocolError,
    ProtocolVersionError,
    UnknownWorkloadError,
    check_version,
    rows_from_wire,
    rows_to_wire,
    runner_context_from_wire,
    runner_context_to_wire,
    spec_from_wire,
    spec_to_wire,
    summaries_from_wire,
    summaries_to_wire,
    unit_from_wire,
    unit_to_wire,
    workloads_from_wire,
    workloads_to_wire,
)
from .worker import FleetWorker
from .scheduler import CellScheduler, RetryPolicy, UnitTimeoutError
from .service import (
    CampaignService,
    JobCancelledError,
    JobFailedError,
    ServiceBusyError,
    ServiceError,
    UnknownJobError,
)

__all__ = [
    "CampaignService",
    "CellFailure",
    "CellScheduler",
    "CellTask",
    "Client",
    "DEFAULT_ADDRESS",
    "FLEET_MIN_VERSION",
    "FleetError",
    "FleetRegistry",
    "FleetWorker",
    "InFlightRegistry",
    "Job",
    "JobCancelledError",
    "JobFailedError",
    "JobState",
    "Lease",
    "LeasedUnit",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ProtocolVersionError",
    "RetryPolicy",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "UnitTask",
    "UnitTimeoutError",
    "UnknownJobError",
    "UnknownWorkerError",
    "UnknownWorkloadError",
    "WorkerInfo",
    "build_cell",
    "check_version",
    "parse_address",
    "rows_from_wire",
    "rows_to_wire",
    "run_ladder_remote",
    "runner_context_from_wire",
    "runner_context_to_wire",
    "spec_from_wire",
    "spec_to_wire",
    "summaries_from_wire",
    "summaries_to_wire",
    "unit_from_wire",
    "unit_to_wire",
    "workloads_from_wire",
    "workloads_to_wire",
]
