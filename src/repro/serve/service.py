"""The campaign service: submit/status/result/cancel over a shared runner.

:class:`CampaignService` turns the in-process ``ExperimentRunner.run``
API into an asynchronous, multi-tenant one.  A submission is decomposed
into (environment, mode) cells addressed by the artifact cache's
content-addressed :func:`~repro.exps.cache.summary_key`; cells already on
disk are delivered immediately, cells currently being computed for
another job are *followed* (request coalescing — each (chip, core) unit
is computed exactly once no matter how many jobs want it), and the rest
are decomposed into unit tasks and scheduled, by job priority, onto a
supervised worker pool (:mod:`repro.serve.scheduler`).

Failure is contained by construction: a unit that exhausts its retry
budget poisons only its cell, the cell fails only the jobs following it
(with a structured :class:`~repro.serve.jobs.CellFailure` report), and
the pool keeps draining every other job's queue.  The service stays up.

Server-side policy wins over spec fields: a submitted spec's
``parallelism``, ``cache_dir`` and ``use_cache`` are ignored — the
daemon's worker pool and cache are shared, configured once via
:class:`repro.config.Settings` (``service_*`` knobs).
"""

from __future__ import annotations

import itertools
import logging
import threading
from typing import Any, Dict, List, Optional, Tuple

from .. import obs, variation
from ..config import Settings
from ..core.environments import AdaptationMode
from ..exps.cache import ExperimentCache, FactorStore, summary_key
from ..exps.engine import RunResult, RunSpec, run_unit_guarded
from ..exps.runner import ExperimentRunner, summarise
from .coalesce import NOVAR_CHIP, CellTask, InFlightRegistry, UnitTask, build_cell
from .fleet import FleetRegistry
from .jobs import LIVE_STATES, CellFailure, Job, JobState
from .scheduler import CellScheduler, RetryPolicy

log = logging.getLogger("repro.serve.service")


class ServiceError(RuntimeError):
    """Base class for campaign-service request failures."""


class ServiceBusyError(ServiceError):
    """Admission control: the live-job limit is reached."""


class UnknownJobError(ServiceError, KeyError):
    """No job with the requested id."""


class JobFailedError(ServiceError):
    """The awaited job hit a poisoned cell; ``failures`` has the report."""

    def __init__(self, job_id: str, failures: List[CellFailure]):
        self.job_id = job_id
        self.failures = list(failures)
        detail = "; ".join(str(f.to_dict()) for f in failures)
        super().__init__(f"{job_id} failed: {detail}")


class JobCancelledError(ServiceError):
    """The awaited job was cancelled."""


class CampaignService:
    """An async, coalescing, fault-tolerant front-end to one runner."""

    def __init__(
        self,
        runner: Optional[ExperimentRunner] = None,
        *,
        settings: Optional[Settings] = None,
        workers: Optional[int] = None,
        policy: Optional[RetryPolicy] = None,
        cache: Optional[ExperimentCache] = None,
    ):
        """Args:
            runner: The shared experiment runner; built from ``settings``
                scale knobs when omitted.
            settings: Service knobs (worker width via ``jobs``, admission
                limit, retry budget, per-unit timeout, cache).
            workers: Worker-thread override (default: ``settings.jobs``).
            policy: Retry-policy override (default: from ``settings``).
            cache: Artifact-cache override (default: the runner's, else
                ``settings.build_cache()``).
        """
        settings = settings if settings is not None else Settings()
        if runner is None:
            runner = ExperimentRunner.from_settings(settings)
        self.runner = runner
        self.cache = (
            cache if cache is not None
            else runner.cache if runner.cache is not None
            else settings.build_cache()
        )
        if self.cache is not None:
            # Durable factor storage for the process-wide memo: a daemon
            # restart reloads the Cholesky factor from the artifact cache
            # instead of re-factorising.
            variation.set_store(FactorStore(self.cache))
        self.max_jobs = settings.service_max_jobs
        if policy is None:
            policy = RetryPolicy(
                retries=settings.service_retries,
                timeout=settings.service_cell_timeout,
            )
        self._scheduler = CellScheduler(
            self._execute_unit,
            workers=workers if workers is not None else settings.jobs,
            policy=policy,
            on_done=self._on_unit_done,
            on_failed=self._on_unit_failed,
            claim=self._claim_unit,
            warmup=self._warm_physics,
        )
        # Remote workers lease from the same queue the in-process pool
        # drains; ``workers=0`` (--fleet-only) leaves all compute to the
        # fleet.  The registry only touches the service through these
        # callbacks and always takes its own lock first (see
        # repro.serve.fleet lock-ordering note).
        self.fleet = FleetRegistry(
            take=self._scheduler.take,
            requeue=self._scheduler.requeue,
            claim=self._claim_unit,
            deliver=self._on_unit_done,
            fail=self._on_unit_failed,
            heartbeat_interval=settings.heartbeat_interval,
            lease_timeout=settings.lease_timeout,
            retries=policy.retries,
        )
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._job_cells: Dict[str, List[CellTask]] = {}
        self._registry = InFlightRegistry()
        self._ids = itertools.count(1)
        self._bank_lock = threading.Lock()
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "CampaignService":
        with self._lock:
            if not self._started:
                self._scheduler.start()
                self.fleet.start()
                self._started = True
        return self

    def close(self) -> None:
        with self._lock:
            self._started = False
        self.fleet.stop()
        self._scheduler.stop()

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Client-facing API.
    # ------------------------------------------------------------------
    def submit(self, spec: RunSpec, priority: int = 0) -> str:
        """Accept a campaign; returns a job id immediately.

        Raises :class:`ServiceBusyError` when ``service_max_jobs`` jobs
        are already live (admission control, not queueing — the priority
        queue orders *units*, admission bounds *jobs*).
        """
        self.start()
        with self._lock:
            live = sum(
                1 for job in self._jobs.values() if job.state in LIVE_STATES
            )
            if live >= self.max_jobs:
                obs.inc("serve.jobs_rejected")
                raise ServiceBusyError(
                    f"{live} live jobs >= service_max_jobs={self.max_jobs}"
                )
            job = Job(
                job_id=f"job-{next(self._ids)}", spec=spec, priority=priority
            )
            self._jobs[job.job_id] = job
            self._job_cells[job.job_id] = []
            obs.inc("serve.jobs_submitted")
            self._admit(job)
            if job.pending_cells == 0 and job.state in LIVE_STATES:
                job.finish(JobState.DONE)
                obs.inc("serve.jobs_completed")
            self._update_job_gauges(job)
            self._update_service_gauges()
            log.info(
                "%s: %d cells (%d cached, %d coalesced, %d scheduled)",
                job.job_id, job.cells_total, job.cells_cached,
                job.cells_coalesced,
                job.cells_total - job.cells_cached - job.cells_coalesced,
            )
            return job.job_id

    def status(self, job_id: str) -> Dict[str, Any]:
        """A JSON-safe progress snapshot for one job."""
        with self._lock:
            return self._get(job_id).snapshot()

    def progress(self, job_id: str) -> Dict[str, Any]:
        """The status snapshot plus this job's slice of the obs registry."""
        with self._lock:
            job = self._get(job_id)
            return {
                **job.snapshot(),
                "metrics": obs.metrics_registry().to_dict(
                    prefix=f"serve.job.{job.job_id}."
                ),
            }

    def result(self, job_id: str, timeout: Optional[float] = None) -> RunResult:
        """Block until a job finishes; return its :class:`RunResult`.

        Raises :class:`TimeoutError` if the job is still running after
        ``timeout`` seconds, :class:`JobFailedError` with the structured
        cell reports if it hit a poisoned cell, and
        :class:`JobCancelledError` if it was withdrawn.
        """
        with self._lock:
            job = self._get(job_id)
        if not job.done_event.wait(timeout):
            raise TimeoutError(f"{job_id} still {job.state.value}")
        if job.state is JobState.DONE:
            return RunResult(spec=job.spec, summaries=dict(job.summaries))
        if job.state is JobState.FAILED:
            raise JobFailedError(job_id, job.failures)
        raise JobCancelledError(f"{job_id} was cancelled")

    def cancel(self, job_id: str) -> bool:
        """Withdraw a live job; returns ``False`` if it already finished.

        Units owned exclusively by this job are dropped when a worker
        reaches them; units shared with other jobs keep running.
        """
        with self._lock:
            job = self._get(job_id)
            if job.state not in LIVE_STATES:
                return False
            job.finish(JobState.CANCELLED)
            obs.inc("serve.jobs_cancelled")
            self._detach(job)
            self._update_job_gauges(job)
            self._update_service_gauges()
            return True

    def stats(self) -> Dict[str, Any]:
        """A service-level snapshot (the daemon's ``ping`` payload)."""
        # Fleet stats are collected before taking the service lock: the
        # registry lock must never be acquired under the service lock.
        fleet = self.fleet.stats()
        with self._lock:
            states = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                states[job.state.value] += 1
            return {
                "jobs": states,
                "queue_depth": self._scheduler.depth(),
                "inflight_cells": len(self._registry),
                "max_jobs": self.max_jobs,
                "fleet": fleet,
            }

    # ------------------------------------------------------------------
    # Fleet-facing API (the daemon's ``fleet.*`` ops land here).
    # ------------------------------------------------------------------
    def fleet_register(self, meta: Optional[Dict[str, Any]] = None) -> str:
        """Admit a remote worker; starts the service so leases can flow
        before the first submission arrives."""
        self.start()
        return self.fleet.register(meta)

    def fleet_lease(self, worker_id: str, max_units: int = 1) -> List[Any]:
        """Lease up to ``max_units`` tasks; returns ``(cell, unit)``
        item pairs (the daemon encodes them for the wire)."""
        return [
            lease.item for lease in self.fleet.lease(worker_id, max_units)
        ]

    def fleet_heartbeat(self, worker_id: str) -> None:
        self.fleet.heartbeat(worker_id)

    def fleet_complete(self, worker_id: str, unit_key: str, rows) -> bool:
        return self.fleet.complete(worker_id, unit_key, rows)

    def fleet_fail(self, worker_id: str, unit_key: str, message: str) -> bool:
        return self.fleet.fail(worker_id, unit_key, message)

    # ------------------------------------------------------------------
    # Admission: cache check, coalescing, decomposition.
    # ------------------------------------------------------------------
    def _admit(self, job: Job) -> None:
        runner = self.runner
        spec = job.spec
        workloads = (
            tuple(spec.workloads)
            if spec.workloads is not None
            else tuple(runner.workloads)
        )
        seen: set = set()
        for env, mode in spec.pairs():
            cell_id = (env.name, mode.value)
            if cell_id in seen:
                continue
            seen.add(cell_id)
            job.cells_total += 1
            key = summary_key(
                runner.calib, runner.config, runner.core_config, env, mode,
                list(workloads),
            )
            if self.cache is not None:
                cached = self.cache.load_summary(key)
                if cached is not None:
                    job.summaries[cell_id] = cached
                    job.cells_cached += 1
                    obs.inc("serve.cells_cached")
                    continue
            cell = self._registry.get(key)
            if cell is not None:
                # Coalesce: somebody is already computing exactly this
                # cell; follow it instead of duplicating its units.
                cell.followers.append(job)
                self._job_cells[job.job_id].append(cell)
                job.pending_cells += 1
                job.cells_coalesced += 1
                obs.inc("serve.cells_coalesced")
                obs.inc("serve.units_coalesced", len(cell.units))
                continue
            cell = build_cell(
                key, env, mode, workloads,
                runner.config.n_chips, runner.config.cores_per_chip,
            )
            cell.followers.append(job)
            self._job_cells[job.job_id].append(cell)
            job.pending_cells += 1
            self._registry.add(cell)
            obs.inc("serve.units_scheduled", len(cell.units))
            for unit in cell.units:
                self._scheduler.submit(job.priority, (cell, unit))

    # ------------------------------------------------------------------
    # Scheduler callbacks (worker threads).
    # ------------------------------------------------------------------
    def _warm_physics(self) -> None:
        """Prime the correlation-factor memo before the first unit runs.

        Usually a no-op (the runner's population draw already warmed it);
        after a restart with an artifact cache it loads the factor from
        disk, and at worst it pays the one Cholesky outside any unit's
        retry/timeout budget.
        """
        chip = self.runner.population[0]
        variation.get_factor(chip.grid, chip.params.phi)

    def _claim_unit(self, item: Tuple[CellTask, UnitTask]) -> bool:
        cell, unit = item
        with self._lock:
            if not cell.live:
                return False
            if unit.rows is not None:
                # Already delivered — a fleet requeue/steal left a stale
                # queue copy behind.  Dropping it here is what keeps
                # "every unit computed exactly once" true under worker
                # death and work stealing.
                return False
            cell.started = True
            for job in cell.followers:
                if job.state is JobState.QUEUED:
                    job.state = JobState.RUNNING
            return True

    def _execute_unit(self, item: Tuple[CellTask, UnitTask]):
        cell, unit = item
        if unit.chip_index == NOVAR_CHIP:
            return self.runner.novar_summary(list(cell.workloads)).results
        bank = None
        if cell.mode is AdaptationMode.FUZZY_DYN:
            # Serialise training so concurrent units of one environment
            # share the runner's memoised bank instead of racing to train.
            with self._bank_lock:
                bank = self.runner.bank_for(cell.env)
        return run_unit_guarded(
            self.runner, cell.env, cell.mode, unit.chip_index,
            unit.core_index, list(cell.workloads), bank=bank,
        )

    def _on_unit_done(self, item, rows, attempts: int) -> None:
        cell, unit = item
        with self._lock:
            if not cell.live:
                return
            if unit.rows is not None:
                # Idempotent delivery: a duplicate lease (steal) or a
                # late completion from a presumed-dead worker already
                # delivered this unit.  Content-addressed keys make the
                # two row lists identical, so dropping the second copy
                # loses nothing.
                obs.inc("serve.units_duplicate")
                return
            unit.rows = rows
            unit.attempts = attempts
            cell.pending_units -= 1
            obs.inc("serve.units_done")
            if cell.pending_units > 0:
                return
            # Last unit in: summarise in decomposition order (bit-identical
            # to the serial engine), persist once, deliver to every follower.
            summary = summarise(cell.rows_in_order())
            cell.summary = summary
            self._registry.finish(cell.key)
            if self.cache is not None:
                self.cache.save_summary(cell.key, summary)
            for job in cell.followers:
                if job.state not in LIVE_STATES:
                    continue
                job.summaries[cell.cell] = summary
                job.pending_cells -= 1
                if job.pending_cells == 0:
                    job.finish(JobState.DONE)
                    obs.inc("serve.jobs_completed")
                self._update_job_gauges(job)
            cell.followers.clear()
            self._update_service_gauges()

    def _on_unit_failed(self, item, error: BaseException, attempts: int) -> None:
        cell, unit = item
        with self._lock:
            failure = CellFailure(
                environment=cell.env.name,
                mode=cell.mode.value,
                chip_index=unit.chip_index,
                core_index=unit.core_index,
                attempts=attempts,
                error=str(error),
            )
            log.error("poisoned cell %s: %s", cell.cell, failure.error)
            cell.failure = failure
            cell.live = False
            self._registry.finish(cell.key)
            obs.inc("serve.cells_poisoned")
            for job in list(cell.followers):
                if job.state not in LIVE_STATES:
                    continue
                job.failures.append(failure)
                job.finish(JobState.FAILED)
                obs.inc("serve.jobs_failed")
                self._detach(job)
                self._update_job_gauges(job)
            cell.followers.clear()
            self._update_service_gauges()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def _detach(self, job: Job) -> None:
        """Drop a finished job from its cells; abandon now-orphaned ones."""
        for cell in self._job_cells.get(job.job_id, []):
            if job in cell.followers:
                cell.followers.remove(job)
            if (
                not cell.followers
                and cell.summary is None
                and cell.failure is None
                and cell.live
            ):
                cell.live = False
                self._registry.finish(cell.key)
                obs.inc("serve.cells_abandoned")

    def _update_job_gauges(self, job: Job) -> None:
        prefix = f"serve.job.{job.job_id}"
        obs.set_gauge(f"{prefix}.cells_total", job.cells_total)
        obs.set_gauge(f"{prefix}.cells_done", len(job.summaries))
        obs.set_gauge(f"{prefix}.cells_pending", job.pending_cells)

    def _update_service_gauges(self) -> None:
        live = sum(1 for job in self._jobs.values() if job.state in LIVE_STATES)
        obs.set_gauge("serve.active_jobs", live)
        obs.set_gauge("serve.inflight_cells", len(self._registry))
