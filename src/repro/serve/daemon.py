"""TCP front-end: a JSON-lines daemon and the matching socket client.

The daemon is a :class:`socketserver.ThreadingTCPServer` wrapping one
:class:`~repro.serve.service.CampaignService`; every connection speaks
the newline-framed protocol of :mod:`repro.serve.protocol` (one request
object per line, one response object back).  Handler threads only parse,
dispatch and encode — all scheduling state lives in the service, so a
dropped connection never strands work.

The client opens one connection per request.  Long waits (``result``)
are chunked into short server-side waits so neither side pins a socket
for the lifetime of a campaign.
"""

from __future__ import annotations

import logging
import socket
import socketserver
import threading
import time
from typing import Any, Dict, Optional, Tuple

from .. import __version__, obs
from ..exps.engine import RunSpec
from .jobs import CellFailure
from .fleet import UnknownWorkerError
from .protocol import (
    FLEET_MIN_VERSION,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    ProtocolError,
    ProtocolVersionError,
    UnknownWorkloadError,
    check_version,
    decode_line,
    encode_line,
    error,
    ok,
    rows_from_wire,
    runner_context_to_wire,
    spec_from_wire,
    spec_to_wire,
    summaries_to_wire,
    unit_to_wire,
)
from .service import (
    CampaignService,
    JobCancelledError,
    JobFailedError,
    ServiceBusyError,
    ServiceError,
    UnknownJobError,
)

log = logging.getLogger("repro.serve.daemon")

#: Default daemon address (loopback; pick a free port with port 0).
DEFAULT_ADDRESS = "127.0.0.1:7571"

#: Longest single server-side wait for a ``result`` request; clients
#: re-issue until their own deadline expires.
MAX_RESULT_WAIT = 10.0


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``host:port``; raises ``ValueError`` on malformed input."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be host:port, got {address!r}")
    return host, int(port)


# ----------------------------------------------------------------------
# Server side.
# ----------------------------------------------------------------------
class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        for line in self.rfile:
            if not line.strip():
                continue
            try:
                request = decode_line(line)
                response = self.server.daemon.dispatch(request)
            except ProtocolError as exc:
                response = error(str(exc), kind="protocol")
            except Exception as exc:  # never leak a traceback to the wire
                log.exception("request failed")
                response = error(f"internal error: {exc}", kind="internal")
            self.wfile.write(encode_line(response))
            self.wfile.flush()
            if response.get("bye"):
                break


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ServiceDaemon:
    """One campaign service behind a JSON-lines TCP socket."""

    def __init__(
        self,
        service: CampaignService,
        address: str = DEFAULT_ADDRESS,
    ):
        self.service = service
        host, port = parse_address(address)
        self._server = _Server((host, port), _Handler)
        self._server.daemon = self  # handler back-reference
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        """The bound ``host:port`` (resolves port 0 to the real one)."""
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ServiceDaemon":
        """Serve in a background thread (tests, embedded use)."""
        self.service.start()
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="serve-daemon", daemon=True
        )
        self._thread.start()
        log.info("campaign service listening on %s", self.address)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI daemon subcommand)."""
        self.service.start()
        log.info("campaign service listening on %s", self.address)
        try:
            self._server.serve_forever()
        finally:
            self.service.close()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.close()

    def __enter__(self) -> "ServiceDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- dispatch --------------------------------------------------------
    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Route one request object to the service; never raises
        :class:`ServiceError` (they become structured error responses)."""
        op = request.get("op")
        try:
            effective = check_version(request)
        except ProtocolVersionError as exc:
            # Structured rejection, not a KeyError: the client learns what
            # majors this daemon speaks and can downgrade or upgrade.
            return error(
                str(exc),
                kind="version",
                requested=exc.requested,
                supported=list(SUPPORTED_PROTOCOL_VERSIONS),
            )
        if isinstance(op, str) and op.startswith("fleet."):
            if effective < FLEET_MIN_VERSION:
                return error(
                    f"op {op!r} requires protocol v{FLEET_MIN_VERSION}+ "
                    f"(request spoke v{effective})",
                    kind="version",
                    requested=effective,
                    supported=list(SUPPORTED_PROTOCOL_VERSIONS),
                )
            return self._dispatch_fleet(op, request)
        try:
            if op == "ping":
                return ok(
                    __version__=__version__,
                    **self.service.stats(),
                )
            if op == "submit":
                spec = spec_from_wire(request.get("spec") or {})
                job_id = self.service.submit(
                    spec, priority=int(request.get("priority", 0))
                )
                return ok(job_id=job_id)
            if op == "status":
                return ok(**self.service.status(request["job_id"]))
            if op == "progress":
                return ok(**self.service.progress(request["job_id"]))
            if op == "result":
                return self._result(request)
            if op == "cancel":
                return ok(cancelled=self.service.cancel(request["job_id"]))
            if op == "metrics":
                return ok(metrics=obs.metrics_registry().to_dict())
            if op == "shutdown":
                threading.Thread(target=self.stop, daemon=True).start()
                return ok(bye=True)
        except UnknownWorkloadError as exc:
            # Like version errors: structured, with the names the client
            # needs to correct the spec (or switch to inline profiles).
            return error(
                str(exc),
                kind="workload",
                missing=exc.missing,
                available=exc.available,
            )
        except ServiceBusyError as exc:
            return error(str(exc), kind="busy")
        except UnknownJobError as exc:
            return error(f"unknown job {exc.args[0]}", kind="unknown-job")
        except JobFailedError as exc:
            return error(
                str(exc),
                kind="failed",
                failures=[f.to_dict() for f in exc.failures],
            )
        except JobCancelledError as exc:
            return error(str(exc), kind="cancelled")
        except KeyError as exc:
            raise ProtocolError(f"request missing field {exc}") from exc
        raise ProtocolError(f"unknown op {op!r}")

    def _dispatch_fleet(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        """Route one ``fleet.*`` request (protocol v3+, workers only)."""
        service = self.service
        try:
            if op == "fleet.register":
                worker_id = service.fleet_register(request.get("meta"))
                return ok(
                    worker_id=worker_id,
                    context=runner_context_to_wire(service.runner),
                    heartbeat_interval=service.fleet.heartbeat_interval,
                    lease_timeout=service.fleet.lease_timeout,
                )
            if op == "fleet.heartbeat":
                service.fleet_heartbeat(request["worker_id"])
                return ok(alive=True)
            if op == "fleet.lease":
                items = service.fleet_lease(
                    request["worker_id"],
                    max_units=int(request.get("max_units", 1)),
                )
                return ok(units=[unit_to_wire(cell, unit)
                                 for cell, unit in items])
            if op == "fleet.complete":
                accepted = service.fleet_complete(
                    request["worker_id"],
                    request["unit_key"],
                    rows_from_wire(request.get("rows") or []),
                )
                return ok(accepted=accepted)
            if op == "fleet.fail":
                charged = service.fleet_fail(
                    request["worker_id"],
                    request["unit_key"],
                    str(request.get("error", "worker reported failure")),
                )
                return ok(charged=charged)
        except UnknownWorkerError as exc:
            return error(
                f"unknown or retired worker {exc.args[0]!r}; re-register",
                kind="unknown-worker",
            )
        except KeyError as exc:
            raise ProtocolError(f"request missing field {exc}") from exc
        raise ProtocolError(f"unknown op {op!r}")

    def _result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        wait = min(float(request.get("timeout", 0.0)), MAX_RESULT_WAIT)
        try:
            result = self.service.result(request["job_id"], timeout=wait)
        except TimeoutError:
            snapshot = self.service.status(request["job_id"])
            return ok(pending=True, state=snapshot["state"])
        return ok(
            pending=False,
            state="done",
            spec=spec_to_wire(result.spec),
            cells=summaries_to_wire(result.summaries),
        )


# ----------------------------------------------------------------------
# Client side.
# ----------------------------------------------------------------------
class ServiceClient:
    """Socket client: one connection per request, same surface as
    :class:`repro.serve.client.Client`."""

    def __init__(self, address: str = DEFAULT_ADDRESS, connect_timeout: float = 10.0):
        self.host, self.port = parse_address(address)
        self._connect_timeout = connect_timeout

    # -- plumbing --------------------------------------------------------
    def request(self, op: str, **payload: Any) -> Dict[str, Any]:
        """One request/response round trip; raises on error envelopes."""
        frame = encode_line({"op": op, "v": PROTOCOL_VERSION, **payload})
        # The socket read must outlive the server-side result wait.
        io_timeout = self._connect_timeout + float(payload.get("timeout", 0.0))
        with socket.create_connection(
            (self.host, self.port), timeout=io_timeout
        ) as sock:
            sock.sendall(frame)
            line = sock.makefile("rb").readline()
        if not line:
            raise ServiceError("daemon closed the connection")
        response = decode_line(line)
        if response.get("ok"):
            return response
        self._raise(response)

    def _raise(self, response: Dict[str, Any]) -> None:
        kind = response.get("kind")
        message = response.get("error", "request failed")
        if kind == "version":
            raise ProtocolError(message)
        if kind == "workload":
            raise UnknownWorkloadError(
                response.get("missing", []), response.get("available", [])
            )
        if kind == "busy":
            raise ServiceBusyError(message)
        if kind == "unknown-job":
            raise UnknownJobError(message)
        if kind == "unknown-worker":
            raise UnknownWorkerError(message)
        if kind == "failed":
            raise JobFailedError(
                response.get("job_id", "?"),
                [CellFailure.from_dict(f) for f in response.get("failures", [])],
            )
        if kind == "cancelled":
            raise JobCancelledError(message)
        raise ServiceError(message)

    # -- API -------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def submit(self, spec: RunSpec, priority: int = 0) -> str:
        return self.request(
            "submit", spec=spec_to_wire(spec), priority=priority
        )["job_id"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request("status", job_id=job_id)

    def progress(self, job_id: str) -> Dict[str, Any]:
        return self.request("progress", job_id=job_id)

    def result(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll: float = MAX_RESULT_WAIT,
    ) -> Dict[str, Any]:
        """Wait for a finished job; returns the raw wire payload.

        Use :func:`repro.serve.protocol.summaries_from_wire` on the
        ``cells`` field to rebuild :class:`SuiteSummary` objects.  Raises
        :class:`JobFailedError` / :class:`JobCancelledError` /
        :class:`TimeoutError` like the in-process API.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (
                poll if deadline is None
                else min(poll, deadline - time.monotonic())
            )
            if remaining is not None and remaining <= 0:
                raise TimeoutError(f"{job_id} still pending")
            response = self.request("result", job_id=job_id, timeout=remaining)
            if not response.get("pending"):
                return response

    def cancel(self, job_id: str) -> bool:
        return bool(self.request("cancel", job_id=job_id)["cancelled"])

    def metrics(self) -> Dict[str, Any]:
        return self.request("metrics")["metrics"]

    def shutdown(self) -> None:
        self.request("shutdown")
