"""Runtime settings: the single source of truth for engine + obs knobs.

Every consumer of the execution engine — the ``python -m repro.exps``
CLI, the Figures 10-13 drivers, and the benchmark harness — used to read
``EVAL_REPRO_*`` environment variables on its own.  :class:`Settings`
centralises that: :meth:`Settings.from_env` parses the environment once,
:meth:`Settings.from_args` layers parsed CLI arguments on top (explicit
flags beat environment variables beat defaults), and
:meth:`Settings.add_cli_arguments` registers the shared flags on an
``argparse`` parser so every entry point exposes the same surface.

Recognised environment variables::

    EVAL_REPRO_JOBS         worker processes (``--jobs``)
    EVAL_REPRO_CACHE        artifact cache directory (``--cache-dir``)
    EVAL_REPRO_NO_CACHE     any non-empty value disables the disk cache
    EVAL_REPRO_CHIPS        Monte-Carlo population size (``--chips``)
    EVAL_REPRO_CORES        cores per chip (``--cores``)
    EVAL_REPRO_FC_EXAMPLES  fuzzy-training examples (``--fc-examples``)
    EVAL_REPRO_SEED         base RNG seed (``--seed``)
    EVAL_REPRO_LOG_LEVEL    repro logger threshold (``--log-level``)
    EVAL_REPRO_LOG_JSON     any non-empty value selects JSON log lines
    EVAL_REPRO_METRICS_OUT  metrics JSON path (``--metrics-out``)
    EVAL_REPRO_SERIAL_PHASES  any non-empty value routes Exh-Dyn phase
                            optimisation through the per-phase serial
                            loop (``--serial-phases``) instead of the
                            batched kernels; bit-identical, for perf
                            baselining and debugging
    EVAL_REPRO_SERIAL_UNITS  any non-empty value routes (chip, core)
                            unit execution through the per-unit serial
                            loop (``--serial-units``) instead of the
                            population-tier batched kernels;
                            bit-identical, for perf baselining
    EVAL_REPRO_SHARED_MEM   ``0``/``false``/``no``/``off`` disables the
                            shared-memory population broadcast to pool
                            workers (``--no-shared-mem``); any other
                            non-empty value enables it.  Bit-identical
                            either way — workers fall back to the
                            deterministic rebuild.

Campaign-service knobs (see :mod:`repro.serve`)::

    EVAL_REPRO_SERVICE           daemon address, ``host:port`` (``--service``)
    EVAL_REPRO_SERVICE_MAX_JOBS  admission limit on live jobs
    EVAL_REPRO_SERVICE_RETRIES   per-unit retry budget
    EVAL_REPRO_SERVICE_TIMEOUT   per-unit wall-clock budget, seconds

Worker-fleet knobs (see :mod:`repro.serve.fleet`)::

    EVAL_REPRO_WORKER_CONNECT      daemon a fleet worker joins (``--connect``)
    EVAL_REPRO_HEARTBEAT_INTERVAL  worker heartbeat period, seconds
    EVAL_REPRO_LEASE_TIMEOUT       lease age before it becomes stealable
    EVAL_REPRO_STORE_BACKEND       artifact-store backend: local | shared
"""

from __future__ import annotations

import argparse
import dataclasses
import os
from dataclasses import dataclass
from typing import Mapping, Optional

_LOG_LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR")


@dataclass(frozen=True)
class Settings:
    """Engine, cache, scale and observability knobs for one run."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    cache_enabled: bool = True
    chips: int = 12
    cores: int = 1
    fc_examples: int = 4000
    seed: int = 7
    log_level: str = "WARNING"
    log_json: bool = False
    metrics_out: Optional[str] = None
    batch_phases: bool = True
    batch_units: bool = True
    shared_mem: bool = True
    service_addr: Optional[str] = None
    service_max_jobs: int = 8
    service_retries: int = 1
    service_cell_timeout: Optional[float] = None
    worker_connect: Optional[str] = None
    heartbeat_interval: float = 2.0
    lease_timeout: float = 60.0
    store_backend: str = "local"

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.log_level.upper() not in _LOG_LEVELS:
            raise ValueError(f"log_level must be one of {_LOG_LEVELS}")
        if self.service_max_jobs < 1:
            raise ValueError("service_max_jobs must be >= 1")
        if self.service_retries < 0:
            raise ValueError("service_retries must be >= 0")
        if self.service_cell_timeout is not None and self.service_cell_timeout <= 0:
            raise ValueError("service_cell_timeout must be > 0 when set")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        if self.store_backend not in ("local", "shared"):
            raise ValueError("store_backend must be 'local' or 'shared'")

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    @classmethod
    def from_env(
        cls,
        environ: Optional[Mapping[str, str]] = None,
        defaults: Optional["Settings"] = None,
    ) -> "Settings":
        """Parse ``EVAL_REPRO_*`` variables over ``defaults``.

        Unset (or empty) variables keep the default; the benchmark
        harness passes its own ``defaults`` (8 chips) while the CLI uses
        the dataclass defaults.
        """
        env = os.environ if environ is None else environ
        base = defaults if defaults is not None else cls()

        def text(name: str, fallback: Optional[str]) -> Optional[str]:
            return env.get(name) or fallback

        def integer(name: str, fallback: int) -> int:
            raw = env.get(name)
            return int(raw) if raw not in (None, "") else fallback

        def flag(name: str, fallback: bool) -> bool:
            raw = env.get(name)
            return bool(raw) if raw is not None else fallback

        def number(name: str, fallback: Optional[float]) -> Optional[float]:
            raw = env.get(name)
            return float(raw) if raw not in (None, "") else fallback

        def tristate(name: str, fallback: bool) -> bool:
            raw = env.get(name)
            if raw in (None, ""):
                return fallback
            return raw.strip().lower() not in ("0", "false", "no", "off")

        return cls(
            jobs=integer("EVAL_REPRO_JOBS", base.jobs),
            cache_dir=text("EVAL_REPRO_CACHE", base.cache_dir),
            cache_enabled=not flag("EVAL_REPRO_NO_CACHE", not base.cache_enabled),
            chips=integer("EVAL_REPRO_CHIPS", base.chips),
            cores=integer("EVAL_REPRO_CORES", base.cores),
            fc_examples=integer("EVAL_REPRO_FC_EXAMPLES", base.fc_examples),
            seed=integer("EVAL_REPRO_SEED", base.seed),
            log_level=text("EVAL_REPRO_LOG_LEVEL", base.log_level).upper(),
            log_json=flag("EVAL_REPRO_LOG_JSON", base.log_json),
            metrics_out=text("EVAL_REPRO_METRICS_OUT", base.metrics_out),
            batch_phases=not flag(
                "EVAL_REPRO_SERIAL_PHASES", not base.batch_phases
            ),
            batch_units=not flag(
                "EVAL_REPRO_SERIAL_UNITS", not base.batch_units
            ),
            shared_mem=tristate("EVAL_REPRO_SHARED_MEM", base.shared_mem),
            service_addr=text("EVAL_REPRO_SERVICE", base.service_addr),
            service_max_jobs=integer(
                "EVAL_REPRO_SERVICE_MAX_JOBS", base.service_max_jobs
            ),
            service_retries=integer(
                "EVAL_REPRO_SERVICE_RETRIES", base.service_retries
            ),
            service_cell_timeout=number(
                "EVAL_REPRO_SERVICE_TIMEOUT", base.service_cell_timeout
            ),
            worker_connect=text("EVAL_REPRO_WORKER_CONNECT", base.worker_connect),
            heartbeat_interval=number(
                "EVAL_REPRO_HEARTBEAT_INTERVAL", base.heartbeat_interval
            ),
            lease_timeout=number("EVAL_REPRO_LEASE_TIMEOUT", base.lease_timeout),
            store_backend=text("EVAL_REPRO_STORE_BACKEND", base.store_backend),
        )

    @classmethod
    def from_args(
        cls,
        args: argparse.Namespace,
        base: Optional["Settings"] = None,
    ) -> "Settings":
        """Layer parsed CLI arguments over ``base`` (default: the env).

        Only attributes present on the namespace override; a parser that
        registered its flags through :meth:`add_cli_arguments` with
        env-derived defaults therefore yields the full precedence chain
        *flag > environment variable > default* in one call.
        """
        base = base if base is not None else cls.from_env()

        def take(name: str, fallback):
            value = getattr(args, name, None)
            return value if value is not None else fallback

        return cls(
            jobs=take("jobs", base.jobs),
            cache_dir=take("cache_dir", base.cache_dir),
            cache_enabled=base.cache_enabled and not getattr(args, "no_cache", False),
            chips=take("chips", base.chips),
            cores=take("cores", base.cores),
            fc_examples=take("fc_examples", base.fc_examples),
            seed=take("seed", base.seed),
            log_level=str(take("log_level", base.log_level)).upper(),
            log_json=bool(take("log_json", base.log_json)),
            metrics_out=take("metrics_out", base.metrics_out),
            batch_phases=base.batch_phases
            and not getattr(args, "serial_phases", False),
            batch_units=base.batch_units
            and not getattr(args, "serial_units", False),
            shared_mem=take("shared_mem", base.shared_mem),
            service_addr=take("service", base.service_addr),
            service_max_jobs=take("service_max_jobs", base.service_max_jobs),
            service_retries=take("service_retries", base.service_retries),
            service_cell_timeout=take(
                "service_timeout", base.service_cell_timeout
            ),
            worker_connect=take("connect", base.worker_connect),
            heartbeat_interval=take(
                "heartbeat_interval", base.heartbeat_interval
            ),
            lease_timeout=take("lease_timeout", base.lease_timeout),
            store_backend=take("store_backend", base.store_backend),
        )

    @staticmethod
    def add_cli_arguments(
        parser: argparse.ArgumentParser, defaults: "Settings"
    ) -> None:
        """Register the shared engine/obs flags with env-derived defaults."""
        parser.add_argument(
            "--jobs",
            type=int,
            default=defaults.jobs,
            help="worker processes for Monte-Carlo targets "
                 "(default: $EVAL_REPRO_JOBS or 1)",
        )
        parser.add_argument(
            "--cache-dir",
            default=defaults.cache_dir,
            help="persist measurements/banks/summaries here "
                 "(default: $EVAL_REPRO_CACHE)",
        )
        parser.add_argument(
            "--no-cache",
            action="store_true",
            default=not defaults.cache_enabled,
            help="disable the on-disk artifact cache",
        )
        parser.add_argument(
            "--log-level",
            choices=[level for case in _LOG_LEVELS for level in (case, case.lower())],
            default=defaults.log_level,
            help="repro logger threshold (default: $EVAL_REPRO_LOG_LEVEL "
                 "or WARNING)",
        )
        parser.add_argument(
            "--log-json",
            action="store_true",
            default=defaults.log_json,
            help="emit log records as JSON lines",
        )
        parser.add_argument(
            "--metrics-out",
            default=defaults.metrics_out,
            help="write the merged fleet-wide metrics registry to this "
                 "JSON file at exit",
        )
        parser.add_argument(
            "--serial-phases",
            action="store_true",
            default=not defaults.batch_phases,
            help="route Exh-Dyn phase optimisation through the per-phase "
                 "serial loop instead of the batched kernels "
                 "(bit-identical; for perf baselining)",
        )
        parser.add_argument(
            "--serial-units",
            action="store_true",
            default=not defaults.batch_units,
            help="route (chip, core) unit execution through the per-unit "
                 "serial loop instead of the population-tier batched "
                 "kernels (bit-identical; for perf baselining)",
        )
        parser.add_argument(
            "--shared-mem",
            action=argparse.BooleanOptionalAction,
            default=None,
            help="broadcast the chip population to --jobs N workers over "
                 "shared memory instead of rebuilding it per worker "
                 "(bit-identical; default: $EVAL_REPRO_SHARED_MEM or on)",
        )

    @staticmethod
    def add_service_arguments(
        parser: argparse.ArgumentParser, defaults: "Settings"
    ) -> None:
        """Register the campaign-service policy flags (:mod:`repro.serve`).

        The daemon *address* is deliberately not here: daemons bind it as
        ``--addr`` and clients reach it as ``--service``, both defaulting
        to :attr:`service_addr` ($EVAL_REPRO_SERVICE).
        """
        parser.add_argument(
            "--service-max-jobs",
            type=int,
            default=defaults.service_max_jobs,
            help="reject submissions beyond this many live jobs "
                 "(default: $EVAL_REPRO_SERVICE_MAX_JOBS or 8)",
        )
        parser.add_argument(
            "--service-retries",
            type=int,
            default=defaults.service_retries,
            help="per-unit retry budget before a cell is declared "
                 "poisoned (default: $EVAL_REPRO_SERVICE_RETRIES or 1)",
        )
        parser.add_argument(
            "--service-timeout",
            type=float,
            default=defaults.service_cell_timeout,
            metavar="SECONDS",
            help="per-unit wall-clock budget; an over-budget unit counts "
                 "as a failure (default: $EVAL_REPRO_SERVICE_TIMEOUT)",
        )

    @staticmethod
    def add_fleet_arguments(
        parser: argparse.ArgumentParser,
        defaults: "Settings",
        role: str = "daemon",
    ) -> None:
        """Register the worker-fleet flags (:mod:`repro.serve.fleet`).

        Both the daemon and the ``worker`` subcommand call this;
        ``role`` selects the side-specific flags (the daemon owns the
        liveness policy, the worker owns where it connects).  Both sides
        take ``--store-backend`` — a fleet sharing one cache directory
        should run every member with ``shared``.
        """
        parser.add_argument(
            "--store-backend",
            choices=("local", "shared"),
            default=defaults.store_backend,
            help="artifact-store backend: 'local' single-host layout or "
                 "'shared' with advisory locks + completed-write markers "
                 "for fleet-shared mounts "
                 "(default: $EVAL_REPRO_STORE_BACKEND or local)",
        )
        if role == "worker":
            parser.add_argument(
                "--connect",
                default=defaults.worker_connect or defaults.service_addr,
                metavar="HOST:PORT",
                help="daemon to register with "
                     "(default: $EVAL_REPRO_WORKER_CONNECT or "
                     "$EVAL_REPRO_SERVICE)",
            )
            return
        parser.add_argument(
            "--heartbeat-interval",
            type=float,
            default=defaults.heartbeat_interval,
            metavar="SECONDS",
            help="fleet worker heartbeat period; a worker missing three "
                 "beats is declared dead and its leases are re-queued "
                 "(default: $EVAL_REPRO_HEARTBEAT_INTERVAL or 2)",
        )
        parser.add_argument(
            "--lease-timeout",
            type=float,
            default=defaults.lease_timeout,
            metavar="SECONDS",
            help="lease age after which an idle worker may steal the "
                 "unit from its slow holder "
                 "(default: $EVAL_REPRO_LEASE_TIMEOUT or 60)",
        )
        parser.add_argument(
            "--fleet-only",
            action="store_true",
            help="run no in-process unit workers; all compute comes from "
                 "registered fleet workers",
        )

    # ------------------------------------------------------------------
    # Application.
    # ------------------------------------------------------------------
    @property
    def effective_cache_dir(self) -> Optional[str]:
        """The cache directory, or ``None`` when caching is disabled."""
        return self.cache_dir if self.cache_enabled else None

    def build_store(self):
        """An :class:`~repro.exps.cache.ArtifactStore`, or ``None``.

        The backend is selected by :attr:`store_backend`; the root is
        :attr:`effective_cache_dir`.
        """
        root = self.effective_cache_dir
        if root is None:
            return None
        from .exps.cache import build_store  # lazy: avoids an import cycle

        return build_store(root, self.store_backend)

    def build_cache(self):
        """An :class:`~repro.exps.cache.ExperimentCache`, or ``None``."""
        store = self.build_store()
        if store is None:
            return None
        from .exps.cache import ExperimentCache  # lazy: avoids an import cycle

        return ExperimentCache(store=store)

    def configure(self) -> "Settings":
        """Apply the logging settings; returns self for chaining."""
        from .obs import configure_logging

        configure_logging(self.log_level, json_lines=self.log_json)
        return self

    def replace(self, **changes) -> "Settings":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)
