"""Device-level circuit models: delay, leakage, dynamic power, ABB/ASV.

These are the paper's Eqs. 1-3 and 7-9 — the physical substrate every other
layer (variation maps, timing errors, thermal solver, optimisation) builds
on.
"""

from .delay import (
    DEFAULT_DELAY_PARAMS,
    DelayParams,
    delay_factor,
    delay_vt_sensitivity,
    gate_delay,
)
from .knobs import (
    DEFAULT_KNOB_RANGES,
    DEFAULT_VT_SENSITIVITIES,
    NOMINAL_OPERATING_POINT,
    KnobRanges,
    OperatingPoint,
    VtSensitivities,
    threshold_voltage,
)
from .leakage import IDEALITY_FACTOR, static_power, vt0_from_leakage
from .power import dynamic_power

__all__ = [
    "DEFAULT_DELAY_PARAMS",
    "DEFAULT_KNOB_RANGES",
    "DEFAULT_VT_SENSITIVITIES",
    "DelayParams",
    "IDEALITY_FACTOR",
    "KnobRanges",
    "NOMINAL_OPERATING_POINT",
    "OperatingPoint",
    "VtSensitivities",
    "delay_factor",
    "delay_vt_sensitivity",
    "dynamic_power",
    "gate_delay",
    "static_power",
    "threshold_voltage",
    "vt0_from_leakage",
]
