"""Alpha-power-law gate delay model (paper Eq. 1).

The paper uses the Sakurai-Newton alpha-power law [25]::

    Tg  ∝  Vdd * Leff / (mu(T) * (Vdd - Vt)^alpha)

where carrier mobility ``mu`` degrades with temperature as
``(T / T_ref)^-theta``.  All delays in this module are *relative*: the
library works with delay factors normalised to a nominal operating point,
which is how the paper reasons about frequency (everything is reported
relative to the no-variation 4 GHz design).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DelayParams:
    """Parameters of the alpha-power-law delay model.

    Attributes:
        alpha: Velocity-saturation exponent of the alpha-power law.  The
            paper cites Sakurai-Newton.  We use 2.1: near the
            long-channel square law and the deeply velocity-saturated 1.2-1.3,
            reflecting that a stage delay mixes gate and interconnect terms
            and matching the supply-voltage sensitivity the paper's ASV
            results imply.
        mobility_temp_exponent: Exponent ``theta`` in the mobility
            degradation ``mu(T) = mu0 * (T/T_ref)^-theta``.
        t_ref: Reference temperature in kelvin at which ``mu = mu0``.
    """

    alpha: float = 2.1
    mobility_temp_exponent: float = 1.5
    t_ref: float = 333.15  # 60 C, a typical operating temperature


DEFAULT_DELAY_PARAMS = DelayParams()


def gate_delay(
    vdd,
    vt,
    leff,
    temp,
    params: DelayParams = DEFAULT_DELAY_PARAMS,
):
    """Return gate delay in arbitrary units (paper Eq. 1).

    Accepts scalars or numpy arrays (broadcasting applies).

    Args:
        vdd: Supply voltage in volts.
        vt: Threshold voltage in volts.  Must satisfy ``vt < vdd``.
        leff: Effective channel length, relative to nominal (1.0 = nominal).
        temp: Device temperature in kelvin.
        params: Alpha-power-law parameters.

    Raises:
        ValueError: If any gate has ``vdd <= vt`` (the transistor would not
            switch, so the delay model does not apply).
    """
    vdd = np.asarray(vdd, dtype=float)
    vt = np.asarray(vt, dtype=float)
    overdrive = vdd - vt
    if np.any(overdrive <= 0.0):
        raise ValueError(
            "gate_delay requires Vdd > Vt everywhere; got min overdrive "
            f"{float(np.min(overdrive)):.4f} V"
        )
    temp = np.asarray(temp, dtype=float)
    mobility = (temp / params.t_ref) ** (-params.mobility_temp_exponent)
    return vdd * np.asarray(leff, dtype=float) / (mobility * overdrive**params.alpha)


def delay_factor(
    vdd,
    vt,
    leff,
    temp,
    *,
    vdd_nom: float,
    vt_nom: float,
    temp_nom: float,
    leff_nom: float = 1.0,
    params: DelayParams = DEFAULT_DELAY_PARAMS,
):
    """Return gate delay relative to a nominal operating point.

    A value of 1.0 means the gate is exactly as fast as the nominal design
    point; values above 1.0 mean the gate is slower (e.g. due to a high
    local ``Vt``, long ``Leff``, low ``Vdd`` or high temperature).
    """
    nominal = gate_delay(vdd_nom, vt_nom, leff_nom, temp_nom, params)
    return gate_delay(vdd, vt, leff, temp, params) / nominal


def delay_vt_sensitivity(
    vdd: float, vt: float, params: DelayParams = DEFAULT_DELAY_PARAMS
) -> float:
    """Return ``d ln(Tg) / d Vt`` in 1/volt at the given operating point.

    Useful for converting a threshold-voltage sigma into a relative delay
    sigma analytically (the variation model does this for the random
    component, which is too fine-grained to represent spatially).
    """
    if vdd <= vt:
        raise ValueError("requires Vdd > Vt")
    return params.alpha / (vdd - vt)
