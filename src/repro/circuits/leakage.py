"""Subthreshold leakage (static power) model (paper Eqs. 2 and 8).

The paper models per-gate static power as::

    Psta  ∝  Vdd * T^2 * exp(-q * Vt / (k * T))

We add the standard subthreshold ideality factor ``n`` (the paper folds it
into the proportionality constant): the exponential becomes
``exp(-q*Vt / (n*k*T))``.  Without it, a realistic ``Vt`` spread produces
unphysically extreme leakage ratios.

The same expression is inverted by :func:`vt0_from_leakage` to emulate the
manufacturer tester flow of Section 4.1: ``Vt0`` is *measured* by powering a
subsystem at a known temperature and reading the leakage current.
"""

from __future__ import annotations

import numpy as np

from ..units import Q_OVER_K

#: Subthreshold ideality factor ``n`` (dimensionless, typically 1.3-1.7).
IDEALITY_FACTOR: float = 1.5


def static_power(ksta, vdd, temp, vt, ideality: float = IDEALITY_FACTOR):
    """Return static power in watts (paper Eq. 8).

    Args:
        ksta: Per-subsystem leakage constant (set by CAD tools from the
            number/type of devices; unaffected by variation).
        vdd: Supply voltage in volts.
        temp: Temperature in kelvin.
        vt: Threshold voltage in volts.
        ideality: Subthreshold ideality factor ``n``.
    """
    if (
        isinstance(ksta, float)
        and isinstance(vdd, float)
        and isinstance(temp, float)
        and isinstance(vt, float)
    ):
        # All-scalar fast path (the serial per-phase call shape): same
        # IEEE operations in the same order as the array path — numpy's
        # float power ``x**2`` is exactly ``x*x`` and the scalar
        # ``np.exp`` matches the ufunc bit-for-bit — without the four
        # asarray round-trips.
        return ksta * vdd * (temp * temp) * np.exp(
            -Q_OVER_K * vt / (ideality * temp)
        )
    vdd = np.asarray(vdd, dtype=float)
    temp = np.asarray(temp, dtype=float)
    vt = np.asarray(vt, dtype=float)
    exponent = -Q_OVER_K * vt / (ideality * temp)
    return ksta * vdd * temp**2 * np.exp(exponent)


def vt0_from_leakage(
    power: float,
    ksta: float,
    vdd: float,
    temp: float,
    ideality: float = IDEALITY_FACTOR,
) -> float:
    """Invert Eq. 8 to recover ``Vt`` from a measured leakage power.

    This is the tester-side measurement of Section 4.1: with clocks
    suspended, each subsystem is powered individually, the inflowing
    current (== static power) is read, and ``Vt0`` is solved for.
    """
    if power <= 0.0:
        raise ValueError("leakage power must be positive")
    if ksta <= 0.0 or vdd <= 0.0 or temp <= 0.0:
        raise ValueError("ksta, vdd and temp must be positive")
    ratio = power / (ksta * vdd * temp**2)
    if ratio >= 1.0:
        raise ValueError("measured leakage exceeds the Vt=0 bound of Eq. 8")
    return -np.log(ratio) * ideality * temp / Q_OVER_K
