"""ABB / ASV actuation knobs and the threshold-voltage law (paper Eq. 9).

Eq. 9 of the paper captures how the *effective* threshold voltage moves
with temperature, supply voltage (DIBL) and body bias::

    Vt = Vt0 + k1*(T - T0) + k2*Vdd + k3*Vbb

We use the differential form ``k2*(Vdd - Vdd_ref)`` so that ``Vt0`` is the
threshold voltage at the reference temperature *and* reference supply,
which matches how the tester measures it (Section 4.1).

Sign conventions:

* ``k1 < 0``: threshold voltage drops as temperature rises.
* ``k2 < 0``: raising ``Vdd`` lowers ``Vt`` (drain-induced barrier
  lowering), so ASV speeds gates up both through overdrive and DIBL.
* ``Vbb > 0`` is forward body bias (FBB).  ``k3 < 0``: FBB lowers ``Vt``
  (faster, leakier); reverse body bias (``Vbb < 0``) raises it.

The module also encodes the actuation ranges of Figure 7(a):
frequency 2.4 GHz upward in 100 MHz steps, ``Vdd`` 800-1200 mV in 50 mV
steps, ``Vbb`` -500..500 mV in 50 mV steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import ghz, mhz, millivolts


@dataclass(frozen=True)
class VtSensitivities:
    """Coefficients of the threshold-voltage law (paper Eq. 9)."""

    k1: float = -1.2e-3  # V per kelvin
    k2: float = -0.12  # V per volt of Vdd (DIBL)
    k3: float = -0.18  # V per volt of body bias
    t_ref: float = 373.15  # kelvin (100 C); Vt0 is quoted here, like Fig 7(a)
    vdd_ref: float = 1.0  # volts; supply at which Vt0 is quoted


DEFAULT_VT_SENSITIVITIES = VtSensitivities()


def threshold_voltage(
    vt0,
    temp,
    vdd,
    vbb=0.0,
    sens: VtSensitivities = DEFAULT_VT_SENSITIVITIES,
):
    """Return the effective ``Vt`` at an operating point (paper Eq. 9).

    Args:
        vt0: Threshold voltage at ``sens.t_ref`` kelvin and
            ``sens.vdd_ref`` volts with zero body bias.
        temp: Device temperature in kelvin.
        vdd: Supply voltage in volts.
        vbb: Body-bias voltage in volts (positive = forward bias).
        sens: Sensitivity coefficients.
    """
    if (
        isinstance(vt0, float)
        and isinstance(temp, float)
        and isinstance(vdd, float)
        and isinstance(vbb, float)
    ):
        # All-scalar fast path (the serial per-phase call shape): pure
        # IEEE double arithmetic, bit-identical to the array path,
        # without the four asarray round-trips.
        return (
            vt0
            + sens.k1 * (temp - sens.t_ref)
            + sens.k2 * (vdd - sens.vdd_ref)
            + sens.k3 * vbb
        )
    vt0 = np.asarray(vt0, dtype=float)
    temp = np.asarray(temp, dtype=float)
    vdd = np.asarray(vdd, dtype=float)
    vbb = np.asarray(vbb, dtype=float)
    return (
        vt0
        + sens.k1 * (temp - sens.t_ref)
        + sens.k2 * (vdd - sens.vdd_ref)
        + sens.k3 * vbb
    )


@dataclass(frozen=True)
class KnobRanges:
    """Legal actuation ranges and step sizes (Figure 7(a))."""

    f_min: float = ghz(2.4)
    f_max: float = ghz(5.6)
    f_step: float = mhz(100)
    vdd_min: float = millivolts(800)
    vdd_max: float = millivolts(1200)
    vdd_step: float = millivolts(50)
    vbb_min: float = millivolts(-500)
    vbb_max: float = millivolts(500)
    vbb_step: float = millivolts(50)

    def frequencies(self) -> np.ndarray:
        """Return the legal frequency grid in hertz (ascending)."""
        count = int(round((self.f_max - self.f_min) / self.f_step)) + 1
        return self.f_min + self.f_step * np.arange(count)

    def vdd_levels(self) -> np.ndarray:
        """Return the legal supply-voltage grid in volts (ascending)."""
        count = int(round((self.vdd_max - self.vdd_min) / self.vdd_step)) + 1
        return self.vdd_min + self.vdd_step * np.arange(count)

    def vbb_levels(self) -> np.ndarray:
        """Return the legal body-bias grid in volts (ascending)."""
        count = int(round((self.vbb_max - self.vbb_min) / self.vbb_step)) + 1
        return self.vbb_min + self.vbb_step * np.arange(count)

    def clamp_frequency(self, freq: float) -> float:
        """Snap ``freq`` down to the nearest legal frequency step."""
        if freq <= self.f_min:
            return self.f_min
        steps = int(np.floor((freq - self.f_min) / self.f_step + 1e-9))
        return min(self.f_min + steps * self.f_step, self.f_max)

    def clamp_frequencies(self, freqs) -> np.ndarray:
        """Vectorised :meth:`clamp_frequency` (bit-identical per element)."""
        freqs = np.asarray(freqs, dtype=float)
        steps = np.floor((freqs - self.f_min) / self.f_step + 1e-9)
        snapped = np.minimum(self.f_min + steps * self.f_step, self.f_max)
        return np.where(freqs <= self.f_min, self.f_min, snapped)


DEFAULT_KNOB_RANGES = KnobRanges()


@dataclass(frozen=True)
class OperatingPoint:
    """One subsystem's actuation state: supply and body-bias voltages."""

    vdd: float = 1.0
    vbb: float = 0.0

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise ValueError("Vdd must be positive")


NOMINAL_OPERATING_POINT = OperatingPoint()
