"""Dynamic power model (paper Eqs. 3 and 7).

The paper models per-subsystem dynamic power as::

    Pdyn = Kdyn * alpha_f * Vdd^2 * f

where ``Kdyn`` is a per-subsystem constant (effective switched capacitance,
estimated by CAD tools), ``alpha_f`` the activity factor in accesses per
cycle, ``Vdd`` the subsystem supply and ``f`` the core frequency.
"""

from __future__ import annotations

import numpy as np


def dynamic_power(kdyn, activity, vdd, freq):
    """Return dynamic power in watts (paper Eq. 7).

    Args:
        kdyn: Per-subsystem switched-capacitance constant (W / (V^2 * Hz)
            at activity 1.0).
        activity: Activity factor in accesses per cycle (``alpha_f``).
        vdd: Supply voltage in volts.
        freq: Clock frequency in hertz.
    """
    activity = np.asarray(activity, dtype=float)
    if np.any(activity < 0.0):
        raise ValueError("activity factor cannot be negative")
    return kdyn * activity * np.asarray(vdd, dtype=float) ** 2 * freq
