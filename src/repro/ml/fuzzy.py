"""Fuzzy controller inference (paper Appendix A, Eqs 10-12).

A controller is two matrices ``mu`` and ``sigma`` (one row per fuzzy rule,
one column per input variable) and an output vector ``y`` (one entry per
rule).  For an input vector ``x``:

    W_ij = exp(-((x_j - mu_ij) / sigma_ij)^2)        (Eq 10)
    W_i  = prod_j W_ij                               (Eq 11)
    z    = sum_i(W_i * y_i) / sum_i W_i              (Eq 12)

Inputs are standardised (zero mean, unit variance over the training set)
before entering Eq 10 — with raw physical units the "sigma < 0.1"
initialisation of the training phase would be meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Floor on the rule-strength sum to avoid 0/0 for far-out inputs.
_STRENGTH_FLOOR = 1e-30


@dataclass
class FuzzyController:
    """A trained (or in-training) fuzzy controller.

    Attributes:
        mu: Rule centres, shape ``(n_rules, n_inputs)`` (standardised).
        sigma: Rule widths, same shape, strictly positive.
        y: Rule outputs, shape ``(n_rules,)`` (in output units).
        input_mean: Standardisation offsets, shape ``(n_inputs,)``.
        input_std: Standardisation scales, shape ``(n_inputs,)``.
    """

    mu: np.ndarray
    sigma: np.ndarray
    y: np.ndarray
    input_mean: np.ndarray
    input_std: np.ndarray

    def __post_init__(self) -> None:
        if self.mu.shape != self.sigma.shape:
            raise ValueError("mu and sigma must have the same shape")
        if self.y.shape != (self.mu.shape[0],):
            raise ValueError("y must have one entry per rule")
        if self.input_mean.shape != (self.mu.shape[1],):
            raise ValueError("input_mean must have one entry per input")
        if np.any(self.sigma <= 0.0):
            raise ValueError("sigma entries must be positive")
        if np.any(self.input_std <= 0.0):
            raise ValueError("input_std entries must be positive")

    @property
    def n_rules(self) -> int:
        """Number of fuzzy rules."""
        return self.mu.shape[0]

    @property
    def n_inputs(self) -> int:
        """Number of input variables."""
        return self.mu.shape[1]

    def standardise(self, x: np.ndarray) -> np.ndarray:
        """Map raw inputs to the standardised space of the rules."""
        return (np.asarray(x, dtype=float) - self.input_mean) / self.input_std

    def rule_strengths(self, x_std: np.ndarray) -> np.ndarray:
        """Eqs 10-11: firing strength of each rule for one input."""
        w = np.exp(-(((x_std - self.mu) / self.sigma) ** 2))
        return w.prod(axis=1)

    def predict(self, x: np.ndarray) -> float:
        """Eq 12: the defuzzified output for one raw input vector."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_inputs,):
            raise ValueError(
                f"input must have shape ({self.n_inputs},), got {x.shape}"
            )
        w = self.rule_strengths(self.standardise(x))
        total = w.sum()
        if total < _STRENGTH_FLOOR:
            # No rule fires: fall back to the nearest rule's output.
            nearest = int(
                np.argmin((((self.standardise(x) - self.mu) / self.sigma) ** 2).sum(1))
            )
            return float(self.y[nearest])
        return float((w * self.y).sum() / total)

    def predict_batch(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`predict` over rows of ``xs``."""
        xs = np.asarray(xs, dtype=float)
        if xs.ndim != 2 or xs.shape[1] != self.n_inputs:
            raise ValueError(f"xs must have shape (n, {self.n_inputs})")
        x_std = (xs - self.input_mean) / self.input_std
        # (n, rules): log-strengths summed over inputs.
        z2 = ((x_std[:, None, :] - self.mu[None]) / self.sigma[None]) ** 2
        w = np.exp(-z2.sum(axis=2))
        total = w.sum(axis=1)
        out = np.empty(len(xs))
        fired = total >= _STRENGTH_FLOOR
        out[fired] = (w[fired] * self.y).sum(axis=1) / total[fired]
        if np.any(~fired):
            nearest = np.argmin(z2[~fired].sum(axis=2), axis=1)
            out[~fired] = self.y[nearest]
        return out
