"""Machine-learning layer: fuzzy controllers (paper Appendix A, Sec 4.3)."""

from .bank import (
    BASE,
    FU_LOWSLOPE,
    FU_NORMAL,
    QUEUE_FULL,
    QUEUE_RESIZED,
    ControllerBank,
    clear_bank_cache,
    get_bank,
    train_controller_bank,
)
from .dataset import (
    FREQ_INPUT_NAMES,
    POWER_INPUT_NAMES,
    SampledInputs,
    generate_training_data,
    sample_inputs,
)
from .fuzzy import FuzzyController
from .persistence import load_bank, save_bank
from .training import (
    DEFAULT_LEARNING_RATE,
    DEFAULT_N_RULES,
    TrainingReport,
    train_fuzzy_controller,
)

__all__ = [
    "BASE",
    "ControllerBank",
    "DEFAULT_LEARNING_RATE",
    "DEFAULT_N_RULES",
    "FREQ_INPUT_NAMES",
    "FU_LOWSLOPE",
    "FU_NORMAL",
    "FuzzyController",
    "POWER_INPUT_NAMES",
    "QUEUE_FULL",
    "QUEUE_RESIZED",
    "SampledInputs",
    "TrainingReport",
    "clear_bank_cache",
    "generate_training_data",
    "get_bank",
    "load_bank",
    "sample_inputs",
    "save_bank",
    "train_controller_bank",
    "train_fuzzy_controller",
]
