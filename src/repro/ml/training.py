"""Fuzzy-controller training (paper Appendix A, Eq 13).

The manufacturer-site training: the first ``n_rules`` examples seed the
rule centres (``mu_ij = x_ij``, ``sigma_ij`` random below 0.1, ``y_i`` the
example's output); every further example performs one gradient step on
every rule's ``mu``, ``sigma`` and ``y`` with learning rate ``alpha``
(0.04 in the paper)::

    eta(k+1) = eta(k) - alpha * de/d_eta        (Eq 13)

with ``e = 0.5 * (z - target)^2`` for the Eq 12 output ``z``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .. import obs
from .fuzzy import FuzzyController

#: Paper settings (Figure 7(a)): 25 rules, 10,000 training examples.
DEFAULT_N_RULES = 25
DEFAULT_LEARNING_RATE = 0.04

_MIN_SIGMA = 0.02  # keep widths positive and rules well-conditioned


@dataclass(frozen=True)
class TrainingReport:
    """Summary statistics of one training run."""

    n_examples: int
    epochs: int
    final_rmse: float  # over the training set after the last epoch


def train_fuzzy_controller(
    inputs: np.ndarray,
    targets: np.ndarray,
    n_rules: int = DEFAULT_N_RULES,
    learning_rate: float = DEFAULT_LEARNING_RATE,
    epochs: int = 1,
    seed: int = 0,
) -> "tuple[FuzzyController, TrainingReport]":
    """Train a fuzzy controller on (input, output) examples.

    Args:
        inputs: Raw input vectors, shape ``(n_examples, n_inputs)``.
        targets: Desired outputs, shape ``(n_examples,)``.
        n_rules: Number of fuzzy rules (paper: 25).
        learning_rate: Gradient step size (paper: 0.04).
        epochs: Passes over the data (the paper's single online pass is
            ``epochs=1``; more passes tighten the fit).
        seed: RNG seed for the sigma initialisation.

    Returns:
        The trained controller and a :class:`TrainingReport`.
    """
    inputs = np.asarray(inputs, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if inputs.ndim != 2:
        raise ValueError("inputs must be 2-D (examples x variables)")
    if len(inputs) != len(targets):
        raise ValueError("inputs and targets must have the same length")
    if len(inputs) < n_rules:
        raise ValueError(f"need at least n_rules={n_rules} examples")

    rng = np.random.default_rng(seed)
    mean = inputs.mean(axis=0)
    std = inputs.std(axis=0)
    std = np.where(std > 1e-12, std, 1.0)
    x_std = (inputs - mean) / std

    # Seeding phase: first n_rules examples become the rules.
    mu = x_std[:n_rules].copy()
    sigma = rng.uniform(0.02, 0.1, size=mu.shape)
    # Widen to a useful receptive field before online training; the
    # paper's tiny initial widths rely on the gradient to open them up,
    # which needs many more examples than rules — starting wider converges
    # to the same place faster and is numerically safer.
    sigma = np.maximum(sigma, 0.25 + rng.uniform(0.0, 0.25, size=mu.shape))
    y = targets[:n_rules].astype(float).copy()

    controller = FuzzyController(
        mu=mu, sigma=sigma, y=y, input_mean=mean, input_std=std
    )

    start = time.perf_counter()
    for _ in range(max(1, epochs)):
        for k in range(n_rules, len(inputs)):
            _online_step(controller, x_std[k], targets[k], learning_rate)

    predictions = controller.predict_batch(inputs)
    rmse = float(np.sqrt(np.mean((predictions - targets) ** 2)))
    obs.inc("ml.fcs_trained")
    obs.observe("ml.train_seconds", time.perf_counter() - start)
    obs.observe("ml.train_rmse", rmse)
    return controller, TrainingReport(
        n_examples=len(inputs), epochs=max(1, epochs), final_rmse=rmse
    )


def _online_step(
    fc: FuzzyController, x_std: np.ndarray, target: float, lr: float
) -> None:
    """One Eq 13 gradient update on all rules for one example."""
    diff = x_std - fc.mu  # (rules, inputs)
    z2 = (diff / fc.sigma) ** 2
    w = np.exp(-z2.sum(axis=1))  # (rules,)
    total = w.sum()
    if total < 1e-30:
        return  # example is outside every rule's receptive field
    z = float((w * fc.y).sum() / total)
    err = z - target
    # d e / d y_i = err * W_i / sum(W)
    grad_y = err * w / total
    # Common factor for mu/sigma gradients: err * (y_i - z) * W_i / sum(W).
    common = (err * (fc.y - z) * w / total)[:, None]
    grad_mu = common * 2.0 * diff / fc.sigma**2
    grad_sigma = common * 2.0 * diff**2 / fc.sigma**3

    fc.y -= lr * grad_y
    fc.mu -= lr * grad_mu
    fc.sigma -= lr * grad_sigma
    np.maximum(fc.sigma, _MIN_SIGMA, out=fc.sigma)
