"""Per-subsystem fuzzy-controller banks (paper Figure 3 / Section 4.3.1).

One *bank* holds, for a given environment's knob set, the trained fuzzy
controllers of every subsystem: one Freq FC (output ``f_max`` in GHz) and,
when the environment exposes the knobs, one Power FC for ``Vdd`` and one
for ``Vbb`` (Figure 3(b) shows two FCs per subsystem in the Power stage).

Subsystems with a second hardware configuration (the resizable queues and
replicated FUs) get separately trained FCs per configuration *variant*,
since the variant changes the stage's delay distribution.

Training is the manufacturer-site procedure: Exhaustive-labelled samples
(:mod:`repro.ml.dataset`) fed to the Appendix A gradient trainer.  Banks
depend only on design-level constants, so one bank serves an entire chip
population; :func:`get_bank` memoises them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from .. import obs
from ..chip.chip import Core
from ..numerics import ndtri
from ..core.optimizer import OptimizationSpec
from ..mitigation.base import (
    BASE,
    FU_LOWSLOPE,
    FU_NORMAL,
    QUEUE_FULL,
    QUEUE_RESIZED,
)
from .dataset import TrainingRequest, generate_training_datasets
from .fuzzy import FuzzyController
from .training import DEFAULT_N_RULES, train_fuzzy_controller

FCKey = Tuple[int, str]  # (subsystem index, variant)


@dataclass
class ControllerBank:
    """Trained fuzzy controllers for one environment's knob set."""

    spec: OptimizationSpec
    freq_fcs: Dict[FCKey, FuzzyController] = field(default_factory=dict)
    vdd_fcs: Dict[FCKey, FuzzyController] = field(default_factory=dict)
    vbb_fcs: Dict[FCKey, FuzzyController] = field(default_factory=dict)
    freq_rmse: Dict[FCKey, float] = field(default_factory=dict)
    #: The core frequency is the MIN of 15 noisy per-subsystem estimates,
    #: which biases it low; biasing each estimate up by its training RMSE
    #: re-centres the min.  Overshoot is cheap — the retuning cycles back
    #: off exponentially (the "Error" outcome of Fig 13) — while
    #: undershoot is sticky, so optimism is the right direction.
    optimism: float = 1.0
    #: Upward bias (volts) applied to Vdd predictions before snapping.
    #: Undervolting the binding subsystem by one 50 mV step costs ~8%
    #: frequency through the retuning back-off, while overvolting costs a
    #: few percent power, so predictions are rounded cautiously upward.
    vdd_caution: float = 0.025

    @property
    def has_vdd(self) -> bool:
        """True when the environment exposes more than one Vdd level."""
        return len(self.spec.vdd_levels) > 1

    @property
    def has_vbb(self) -> bool:
        """True when the environment exposes more than one Vbb level."""
        return len(self.spec.vbb_levels) > 1

    def predict_fmax(
        self, core: Core, index: int, variant: str, th: float, alpha: float,
        rho: float,
    ) -> float:
        """FC estimate of a subsystem's max frequency, in hertz."""
        start = time.perf_counter()
        fc = self.freq_fcs[(index, variant)]
        slowness = self.demand(
            core, index, variant, th, rho, core.calib.f_nominal
        )
        inputs = np.array([slowness, alpha, rho, th, core.vt0_leak[index]])
        ghz = fc.predict(inputs)
        ghz += self.optimism * self.freq_rmse.get((index, variant), 0.0)
        obs.inc("ml.inference_calls")
        obs.inc("ml.inference_seconds", time.perf_counter() - start)
        return float(
            np.clip(ghz * 1e9, self.spec.knob_ranges.f_min, self.spec.knob_ranges.f_max)
        )

    def demand(
        self,
        core: Core,
        index: int,
        variant: str,
        th: float,
        rho: float,
        f_core: float,
    ) -> float:
        """The Power-FC *demand* feature, computed like the training set.

        Mirrors :func:`repro.ml.dataset.demand_feature` for a real core:
        required speed-up ratio at nominal knobs and a typical local
        temperature rise above the heat sink.
        """
        from .dataset import DEMAND_TEMP_RISE  # local to avoid a cycle

        calib = core.calib
        mean = float(core.stage_mean_rel[index] + core.tail_rel[index])
        sigma = float(core.stage_sigma_rel[index])
        if variant == QUEUE_RESIZED:
            factor = calib.queue_resize_delay_factor
            mean, sigma = mean * factor, sigma * factor
        elif variant == FU_LOWSLOPE:
            free = mean + calib.z_free * sigma
            sigma = sigma * calib.lowslope_sigma_factor
            mean = free - calib.z_free * sigma
        if self.spec.pe_budget <= 0.0:
            z = calib.z_free
        else:
            quantile = min(self.spec.pe_budget / max(rho, 1e-12), 0.5)
            z = float(np.clip(ndtri(1.0 - quantile), 0.0, calib.z_free))
        d = float(
            core.delay_factor(
                calib.vdd_nominal, 0.0, th + DEMAND_TEMP_RISE
            )[index]
        )
        return f_core / calib.f_nominal * d * (mean + z * sigma)

    def predict_voltages(
        self,
        core: Core,
        index: int,
        variant: str,
        th: float,
        alpha: float,
        rho: float,
        f_core: float,
    ) -> Tuple[float, float]:
        """FC estimates of (Vdd, Vbb), snapped to the legal level grids."""
        start = time.perf_counter()
        demand = self.demand(core, index, variant, th, rho, f_core)
        inputs = np.array([demand, alpha])
        if self.has_vdd:
            raw_vdd = self.vdd_fcs[(index, variant)].predict(inputs)
            vdd = _snap(raw_vdd + self.vdd_caution, self.spec.vdd_levels)
        else:
            vdd = float(self.spec.vdd_levels[0])
        if self.has_vbb:
            raw_vbb = self.vbb_fcs[(index, variant)].predict(inputs)
            vbb = _snap(raw_vbb, self.spec.vbb_levels)
        else:
            vbb = float(self.spec.vbb_levels[0])
        obs.inc("ml.inference_calls")
        obs.inc("ml.inference_seconds", time.perf_counter() - start)
        return vdd, vbb

    def variants_for(self, core: Core, index: int) -> Tuple[str, ...]:
        """The variants this bank has FCs for, at a given subsystem."""
        spec = core.floorplan.subsystems[index]
        if spec.resizable:
            return (QUEUE_FULL, QUEUE_RESIZED)
        if spec.replicable:
            return (FU_NORMAL, FU_LOWSLOPE)
        return (BASE,)


def _snap(value: float, levels: np.ndarray) -> float:
    """Snap a raw FC output to the nearest legal actuation level."""
    return float(levels[np.argmin(np.abs(levels - value))])


def _variant_kwargs(core: Core, variant: str) -> Dict[str, float]:
    calib = core.calib
    if variant == QUEUE_RESIZED:
        return {"delay_scale": calib.queue_resize_delay_factor}
    if variant == FU_LOWSLOPE:
        return {
            "sigma_scale": calib.lowslope_sigma_factor,
            "power_factor": calib.lowslope_power_factor,
        }
    return {}


def train_controller_bank(
    core: Core,
    spec: OptimizationSpec,
    n_examples: int = 10000,
    n_rules: int = DEFAULT_N_RULES,
    epochs: int = 2,
    seed: int = 0,
    *,
    include_variants: bool = True,
) -> ControllerBank:
    """Train the full FC bank for one environment (manufacturer-site).

    Args:
        core: A template core — only its design-level constants (``Rth``,
            ``Kdyn``, ``Ksta``, stage shapes) matter, not its particular
            variation sample, because the variation-dependent quantities
            are FC *inputs*.
        spec: The environment's knob availability and constraints.
        n_examples: Training-set size per FC (paper: 10,000).
        n_rules: Fuzzy rules per FC (paper: 25).
        epochs: Gradient passes over the data.
        seed: Base RNG seed.
        include_variants: Train the queue/FU variant FCs too (needed by
            environments with those techniques; skipping them speeds up
            banks for environments without).
    """
    bank = ControllerBank(spec=spec)
    jobs: "list[Tuple[int, str]]" = []
    for index, sub in enumerate(core.floorplan.subsystems):
        variants = [BASE]
        if include_variants and sub.resizable:
            variants = [QUEUE_FULL, QUEUE_RESIZED]
        elif include_variants and sub.replicable:
            variants = [FU_NORMAL, FU_LOWSLOPE]
        jobs.extend((index, variant) for variant in variants)
    # Label every (subsystem, variant) job through the batched oracle:
    # chunks from all jobs stack along the optimizer's lane axis, so the
    # whole bank is labelled by a handful of wide kernel calls instead of
    # one Freq + one Power sweep per chunk per job.
    requests = [
        TrainingRequest(
            index=index,
            seed=seed + 1000 * index + hashish(variant),
            n_examples=n_examples,
            **_variant_kwargs(core, variant),
        )
        for index, variant in jobs
    ]
    with obs.span("ml.label_generation", jobs=len(requests)):
        datasets = generate_training_datasets(core, spec, requests)
    for (index, variant), data in zip(jobs, datasets):
        freq_x, f_ghz, power_x, vdd_t, vbb_t = data
        fc, report = train_fuzzy_controller(
            freq_x, f_ghz, n_rules=n_rules, epochs=epochs, seed=seed + index
        )
        bank.freq_fcs[(index, variant)] = fc
        bank.freq_rmse[(index, variant)] = report.final_rmse
        if len(spec.vdd_levels) > 1:
            fc_vdd, _ = train_fuzzy_controller(
                power_x, vdd_t, n_rules=n_rules, epochs=epochs, seed=seed + index
            )
            bank.vdd_fcs[(index, variant)] = fc_vdd
        if len(spec.vbb_levels) > 1:
            fc_vbb, _ = train_fuzzy_controller(
                power_x, vbb_t, n_rules=n_rules, epochs=epochs, seed=seed + index
            )
            bank.vbb_fcs[(index, variant)] = fc_vbb
    return bank


def hashish(text: str) -> int:
    """Small deterministic hash for seed derivation."""
    return sum(ord(c) * (i + 1) for i, c in enumerate(text))


_BANK_CACHE: Dict[Tuple, ControllerBank] = {}


def get_bank(
    core: Core,
    spec: OptimizationSpec,
    n_examples: int = 10000,
    epochs: int = 2,
    seed: int = 0,
) -> ControllerBank:
    """Memoised :func:`train_controller_bank` keyed on the knob set."""
    key = (
        tuple(np.round(spec.vdd_levels, 4)),
        tuple(np.round(spec.vbb_levels, 4)),
        round(spec.pe_budget, 12),
        round(spec.t_max, 3),
        round(spec.t_heatsink, 3),
        n_examples,
        epochs,
        seed,
    )
    bank = _BANK_CACHE.get(key)
    if bank is None:
        bank = train_controller_bank(
            core, spec, n_examples=n_examples, epochs=epochs, seed=seed
        )
        _BANK_CACHE[key] = bank
    return bank


def clear_bank_cache() -> None:
    """Drop all memoised banks (used by tests)."""
    _BANK_CACHE.clear()
