"""Saving and loading trained fuzzy-controller banks.

The paper's flow trains the controllers once at the manufacturer and ships
them in a reserved memory area (~120 KB data footprint, Section 5).  This
module provides the software equivalent: a bank round-trips through a
single ``.npz`` archive, so the expensive Exhaustive-labelled training can
be done once and reused across sessions.

The archive stores, per controller, the ``mu`` / ``sigma`` / ``y``
matrices and input standardisation of Appendix A, plus the bank-level
metadata (knob levels, constraints, optimism).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..circuits.knobs import KnobRanges
from ..core.optimizer import OptimizationSpec
from .bank import ControllerBank, FCKey
from .fuzzy import FuzzyController

_FC_FIELDS = ("mu", "sigma", "y", "input_mean", "input_std")


def _encode_key(kind: str, key: FCKey) -> str:
    index, variant = key
    return f"{kind}/{index}/{variant}"


def _decode_key(token: str) -> "tuple[str, FCKey]":
    kind, index, variant = token.split("/")
    return kind, (int(index), variant)


def save_bank(bank: ControllerBank, path) -> Union[Path, None]:
    """Serialise a trained bank to a single ``.npz`` archive.

    ``path`` may be a filesystem path or any writable binary file-like
    object (the artifact-store backends serialise through in-memory
    buffers); file-likes return ``None`` instead of a path.
    """
    file_like = hasattr(path, "write")
    if not file_like:
        path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    for kind, table in (
        ("freq", bank.freq_fcs),
        ("vdd", bank.vdd_fcs),
        ("vbb", bank.vbb_fcs),
    ):
        for key, fc in table.items():
            prefix = _encode_key(kind, key)
            for field in _FC_FIELDS:
                arrays[f"{prefix}:{field}"] = getattr(fc, field)

    spec = bank.spec
    meta = {
        "optimism": bank.optimism,
        "vdd_caution": bank.vdd_caution,
        "pe_budget": spec.pe_budget,
        "t_max": spec.t_max,
        "t_heatsink": spec.t_heatsink,
        "freq_rmse": {
            _encode_key("freq", key): value
            for key, value in bank.freq_rmse.items()
        },
        "knob_ranges": {
            "f_min": spec.knob_ranges.f_min,
            "f_max": spec.knob_ranges.f_max,
            "f_step": spec.knob_ranges.f_step,
            "vdd_min": spec.knob_ranges.vdd_min,
            "vdd_max": spec.knob_ranges.vdd_max,
            "vdd_step": spec.knob_ranges.vdd_step,
            "vbb_min": spec.knob_ranges.vbb_min,
            "vbb_max": spec.knob_ranges.vbb_max,
            "vbb_step": spec.knob_ranges.vbb_step,
        },
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    arrays["__vdd_levels__"] = spec.vdd_levels
    arrays["__vbb_levels__"] = spec.vbb_levels
    np.savez_compressed(path, **arrays)
    if file_like:
        return None
    return path if path.suffix == ".npz" else path.with_suffix(".npz")


def load_bank(path) -> ControllerBank:
    """Reconstruct a :class:`ControllerBank` from :func:`save_bank` output.

    Accepts a filesystem path or a readable binary file-like object.
    """
    source = path if hasattr(path, "read") else Path(path)
    with np.load(source) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode())
        spec = OptimizationSpec(
            vdd_levels=archive["__vdd_levels__"],
            vbb_levels=archive["__vbb_levels__"],
            pe_budget=meta["pe_budget"],
            t_max=meta["t_max"],
            t_heatsink=meta["t_heatsink"],
            knob_ranges=KnobRanges(**meta["knob_ranges"]),
        )
        bank = ControllerBank(
            spec=spec,
            optimism=meta["optimism"],
            vdd_caution=meta["vdd_caution"],
        )
        tables = {"freq": bank.freq_fcs, "vdd": bank.vdd_fcs, "vbb": bank.vbb_fcs}
        grouped: Dict[str, Dict[str, np.ndarray]] = {}
        for name in archive.files:
            if name.startswith("__"):
                continue
            prefix, field = name.rsplit(":", 1)
            grouped.setdefault(prefix, {})[field] = archive[name]
        for prefix, fields in grouped.items():
            kind, key = _decode_key(prefix)
            tables[kind][key] = FuzzyController(**fields)
        for token, value in meta["freq_rmse"].items():
            _, key = _decode_key(token)
            bank.freq_rmse[key] = value
    return bank
